//! # skia — reproduction of *"Exposing Shadow Branches"* (ASPLOS 2025)
//!
//! Facade crate re-exporting the whole workspace behind one dependency:
//!
//! * [`isa`] — from-scratch x86-64 subset encoder/length-decoder.
//! * [`uarch`] — caches, BTB, TAGE/ITTAGE, RAS, FTQ, CACTI latency model.
//! * [`workloads`] — synthetic front-end-bound programs + the paper's 16
//!   benchmark profiles.
//! * [`frontend`] — the decoupled FDIP front-end cycle simulator.
//! * [`core`] — Skia itself: the Shadow Branch Decoder and Shadow Branch
//!   Buffer.
//! * [`telemetry`] — the metric registry every layer reports into:
//!   counters, log-bucketed histograms, and a sampled cycle-level event
//!   trace, serializable to JSON / Chrome `trace_event` format.
//!
//! ## Quick start
//!
//! Simulate the paper's baseline and Skia configurations on a synthetic
//! workload and compare:
//!
//! ```rust
//! use skia::prelude::*;
//!
//! let spec = ProgramSpec { functions: 200, ..ProgramSpec::default() };
//! let program = Program::generate(&spec);
//!
//! let baseline = skia::frontend::run(
//!     &program,
//!     FrontendConfig::test_small(),
//!     Walker::new(&program, 7, 6).take(5_000),
//! );
//! let with_skia = skia::frontend::run(
//!     &program,
//!     FrontendConfig::test_small().with_skia(SkiaConfig::default()),
//!     Walker::new(&program, 7, 6).take(5_000),
//! );
//! assert!(with_skia.cycles <= baseline.cycles + baseline.cycles / 10);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/skia-experiments` for
//! the binaries that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]

pub use skia_core as core;
pub use skia_frontend as frontend;
pub use skia_isa as isa;
pub use skia_telemetry as telemetry;
pub use skia_uarch as uarch;
pub use skia_workloads as workloads;

/// Commonly used items in one import.
pub mod prelude {
    pub use skia_core::{IndexPolicy, SbbConfig, Skia, SkiaConfig};
    pub use skia_frontend::{BtbMode, FrontendConfig, SimStats, Simulator};
    pub use skia_isa::{BranchKind, InsnKind};
    pub use skia_telemetry::{EventKind, MetricRegistry, Snapshot, TraceConfig};
    pub use skia_uarch::btb::BtbConfig;
    pub use skia_workloads::{profile, Layout, Program, ProgramSpec, TraceStep, Walker};
}
