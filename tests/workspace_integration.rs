//! Cross-crate integration tests exercised through the `skia` facade — the
//! whole pipeline from profile to simulator statistics.

use skia::prelude::*;

fn run_profile(name: &str, steps: usize, config: FrontendConfig) -> SimStats {
    let p = profile(name).expect("paper benchmark");
    let mut spec = p.spec.clone();
    spec.functions = spec.functions.min(1200); // test-sized
    let program = Program::generate(&spec);
    let trace = Walker::new(&program, p.trace_seed, spec.mean_trip_count).take(steps);
    skia::frontend::run(&program, config, trace)
}

#[test]
fn every_paper_profile_simulates() {
    for name in skia::workloads::profiles::PAPER_BENCHMARKS {
        let stats = run_profile(name, 4_000, FrontendConfig::test_small());
        assert!(stats.instructions > 0, "{name} produced no instructions");
        assert!(stats.ipc() > 0.0, "{name} produced zero IPC");
        assert_eq!(stats.branches, 4_000, "{name} step accounting");
    }
}

#[test]
fn skia_pipeline_rescues_on_real_profiles() {
    let base = run_profile("tpcc", 40_000, FrontendConfig::alder_lake_like());
    let with = run_profile("tpcc", 40_000, FrontendConfig::alder_lake_with_skia());
    assert!(with.sbb_rescues > 0, "no rescues on tpcc");
    assert!(
        with.cycles < base.cycles,
        "Skia should speed up tpcc: {} vs {}",
        with.cycles,
        base.cycles
    );
}

#[test]
fn iso_storage_comparison_favors_skia() {
    // The paper's central claim at small BTBs: SBB storage beats the same
    // storage as BTB entries.
    let p = profile("tpcc").unwrap();
    let mut spec = p.spec.clone();
    spec.functions = 2000;
    let program = Program::generate(&spec);
    let steps = 60_000;
    let run = |cfg: FrontendConfig| {
        let trace = Walker::new(&program, p.trace_seed, spec.mean_trip_count).take(steps);
        skia::frontend::run(&program, cfg, trace)
    };
    let extra = BtbConfig::entries_for_budget_kb(12.25, 4);
    let grown = run(FrontendConfig::alder_lake_like().with_btb_entries(2048 + extra));
    let skia_cfg = run(FrontendConfig::alder_lake_like()
        .with_btb_entries(2048)
        .with_skia(SkiaConfig::default()));
    assert!(
        skia_cfg.cycles <= grown.cycles,
        "SBB should beat iso-storage BTB growth: {} vs {}",
        skia_cfg.cycles,
        grown.cycles
    );
}

#[test]
fn infinite_btb_is_an_upper_bound() {
    let finite = run_profile("ycsb", 30_000, FrontendConfig::alder_lake_like());
    let infinite = run_profile(
        "ycsb",
        30_000,
        FrontendConfig {
            btb: BtbMode::Infinite,
            ..FrontendConfig::alder_lake_like()
        },
    );
    assert!(infinite.cycles <= finite.cycles);
    assert!(infinite.btb_misses <= finite.btb_misses);
}

#[test]
fn bolted_layout_agrees_with_oracle_and_packs_hot_code() {
    // Replaces the previously-#[ignore]d `bolted_layout_reduces_btb_pressure`
    // perf assertion, whose btb_misses delta sat inside generator noise
    // (±0.5% across seeds) because the synthetic generator only reorders
    // functions — it does not straighten hot paths the way BOLT does. The
    // two claims that *are* deterministic get asserted instead:
    //
    // 1. Semantics: both layouts simulate in exact lockstep with the
    //    executable reference model (per-step stats and event traces).
    // 2. Structure (§6.1.4): the Bolted layout packs the hottest functions
    //    into a tighter address span than Interleaved, which is the
    //    mechanism behind BOLT's BTB-pressure reduction.
    for bolted in [false, true] {
        let case = skia_oracle::DiffCase {
            spec_seed: 0xB017,
            functions: 120,
            bolted,
            trace_seed: 9,
            steps: 800,
            with_skia: true,
            btb_sets: 8,
            small_sbb: false,
        };
        if let Err(report) = skia_oracle::run_case(&case, None) {
            panic!("{report}");
        }
    }

    let spec = |layout| ProgramSpec {
        seed: 0xB017,
        functions: 400,
        layout,
        ..ProgramSpec::default()
    };
    let span_of_hot_tenth = |layout| {
        let program = Program::generate(&spec(layout));
        let mut weights: Vec<(u64, f64)> = program
            .functions()
            .iter()
            .map(|f| (f.entry, f.weight))
            .collect();
        weights.sort_by(|a, b| b.1.total_cmp(&a.1));
        let hot = &weights[..weights.len() / 10];
        let lo = hot.iter().map(|&(e, _)| e).min().unwrap();
        let hi = hot.iter().map(|&(e, _)| e).max().unwrap();
        hi - lo
    };
    let bolted = span_of_hot_tenth(Layout::Bolted);
    let interleaved = span_of_hot_tenth(Layout::Interleaved);
    assert!(
        bolted < interleaved,
        "Bolted must pack the hot tenth tighter: {bolted} vs {interleaved} bytes"
    );
}

#[test]
fn trace_is_identical_across_configurations() {
    // §5.4: divergence between configurations must be zero by construction.
    let p = profile("noop").unwrap();
    let mut spec = p.spec.clone();
    spec.functions = 800;
    let program = Program::generate(&spec);
    let a: Vec<TraceStep> = Walker::new(&program, p.trace_seed, spec.mean_trip_count)
        .take(10_000)
        .collect();
    let b: Vec<TraceStep> = Walker::new(&program, p.trace_seed, spec.mean_trip_count)
        .take(10_000)
        .collect();
    assert_eq!(a, b);
}

#[test]
fn shadow_decoder_runs_on_program_bytes() {
    // End-to-end: the SBD must find real branches in real generated lines.
    let p = profile("cassandra").unwrap();
    let mut spec = p.spec.clone();
    spec.functions = 500;
    let program = Program::generate(&spec);
    let mut sbd = skia::core::ShadowDecoder::default();
    let mut found = 0usize;
    for f in program.functions().iter().take(200) {
        for b in &f.blocks {
            let t = &b.terminator;
            if !t.kind.is_unconditional() {
                continue;
            }
            let end = t.pc + u64::from(t.len);
            let (line_base, line) = program.line(end.saturating_sub(1));
            let exit = (end - line_base) as usize;
            if exit < line.len() {
                found += sbd.decode_tail(&line, line_base, exit).len();
            }
        }
    }
    assert!(found > 10, "tail decoding found only {found} branches");
}

#[test]
fn telemetry_snapshot_agrees_with_simstats_end_to_end() {
    // The registry snapshot and the legacy SimStats are materialized from
    // the same counter cells; this asserts they agree counter-by-counter on
    // a real instrumented run, and that the snapshot survives a JSON
    // round-trip (the `--emit-json` path).
    let p = profile("tpcc").unwrap();
    let mut spec = p.spec.clone();
    spec.functions = 800;
    let program = Program::generate(&spec);
    let trace = Walker::new(&program, p.trace_seed, spec.mean_trip_count).take(20_000);
    let (stats, snap) = skia::frontend::run_instrumented(
        &program,
        FrontendConfig::alder_lake_with_skia(),
        Some(TraceConfig::sampled(8, 4096)),
        trace,
    );

    // Every scalar SimStats counter must appear in the snapshot, equal.
    let expected: &[(&str, u64)] = &[
        ("sim.instructions", stats.instructions),
        ("sim.cycles", stats.cycles),
        ("sim.branches", stats.branches),
        ("sim.taken_branches", stats.taken_branches),
        ("btb.misses", stats.btb_misses),
        ("btb.miss_l1i_resident", stats.btb_miss_l1i_resident),
        ("btb.miss_taken", stats.btb_miss_taken),
        ("btb.miss_rescuable", stats.btb_miss_rescuable),
        ("sbb.rescues", stats.sbb_rescues),
        ("sbb.rescuable_seen_before", stats.rescuable_seen_before),
        ("resteer.decode", stats.decode_resteers),
        ("resteer.execute", stats.exec_resteers),
        ("resteer.bogus", stats.bogus_resteers),
        ("branch.cond", stats.cond_branches),
        ("branch.cond_mispredicts", stats.cond_mispredicts),
        ("branch.indirect", stats.indirect_branches),
        ("branch.indirect_mispredicts", stats.indirect_mispredicts),
        ("branch.return_mispredicts", stats.return_mispredicts),
        ("decode.idle_icache_cycles", stats.idle_icache_cycles),
        ("decode.idle_resteer_cycles", stats.idle_resteer_cycles),
        ("decode.busy_cycles", stats.decode_busy_cycles),
        ("wrong_path.blocks", stats.wrong_path_blocks),
        ("wrong_path.prefetches", stats.wrong_path_prefetches),
    ];
    for &(name, want) in expected {
        assert_eq!(snap.counter(name), Some(want), "counter {name}");
    }
    for (i, kind) in BranchKind::ALL.iter().enumerate() {
        let name = skia::frontend::telemetry::btb_miss_kind_name(*kind);
        assert_eq!(
            snap.counter(name),
            Some(stats.btb_misses_by_kind[i]),
            "counter {name}"
        );
    }

    // Pull-model exports: cache stats and Skia counters.
    assert_eq!(snap.counter("l1i.demand_hits"), Some(stats.l1i.demand_hits));
    assert_eq!(
        snap.counter("l2.demand_misses"),
        Some(stats.l2.demand_misses)
    );
    let sk = stats.skia.as_ref().expect("skia enabled");
    assert_eq!(snap.counter("skia.sbb.u_inserts"), Some(sk.sbb.u_inserts));

    // The four standing histograms carry real data; FTQ occupancy mean
    // matches the legacy scalar exactly.
    for h in [
        "ftq.occupancy",
        "resteer.repair_latency",
        "shadow_decode.batch_size",
        "sbb.entry_lifetime",
    ] {
        assert!(snap.histogram(h).is_some(), "histogram {h} missing");
    }
    let ftq = snap.histogram("ftq.occupancy").unwrap();
    assert!(ftq.count > 0, "ftq histogram empty");
    assert!((ftq.mean() - stats.mean_ftq_occupancy).abs() < 1e-12);

    // The sampled event trace is live and survives serialization.
    assert!(!snap.events.is_empty(), "no events sampled");
    assert!(snap.events_seen > 0);
    let json = snap.to_json_string();
    let back = Snapshot::from_json_str(&json).expect("snapshot JSON parses");
    assert_eq!(back, snap, "snapshot JSON round-trip");
}
