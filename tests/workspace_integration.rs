//! Cross-crate integration tests exercised through the `skia` facade — the
//! whole pipeline from profile to simulator statistics.

use skia::prelude::*;

fn run_profile(name: &str, steps: usize, config: FrontendConfig) -> SimStats {
    let p = profile(name).expect("paper benchmark");
    let mut spec = p.spec.clone();
    spec.functions = spec.functions.min(1200); // test-sized
    let program = Program::generate(&spec);
    let trace = Walker::new(&program, p.trace_seed, spec.mean_trip_count).take(steps);
    skia::frontend::run(&program, config, trace)
}

#[test]
fn every_paper_profile_simulates() {
    for name in skia::workloads::profiles::PAPER_BENCHMARKS {
        let stats = run_profile(name, 4_000, FrontendConfig::test_small());
        assert!(stats.instructions > 0, "{name} produced no instructions");
        assert!(stats.ipc() > 0.0, "{name} produced zero IPC");
        assert_eq!(stats.branches, 4_000, "{name} step accounting");
    }
}

#[test]
fn skia_pipeline_rescues_on_real_profiles() {
    let base = run_profile("tpcc", 40_000, FrontendConfig::alder_lake_like());
    let with = run_profile("tpcc", 40_000, FrontendConfig::alder_lake_with_skia());
    assert!(with.sbb_rescues > 0, "no rescues on tpcc");
    assert!(
        with.cycles < base.cycles,
        "Skia should speed up tpcc: {} vs {}",
        with.cycles,
        base.cycles
    );
}

#[test]
fn iso_storage_comparison_favors_skia() {
    // The paper's central claim at small BTBs: SBB storage beats the same
    // storage as BTB entries.
    let p = profile("tpcc").unwrap();
    let mut spec = p.spec.clone();
    spec.functions = 2000;
    let program = Program::generate(&spec);
    let steps = 60_000;
    let run = |cfg: FrontendConfig| {
        let trace = Walker::new(&program, p.trace_seed, spec.mean_trip_count).take(steps);
        skia::frontend::run(&program, cfg, trace)
    };
    let extra = BtbConfig::entries_for_budget_kb(12.25, 4);
    let grown = run(FrontendConfig::alder_lake_like().with_btb_entries(2048 + extra));
    let skia_cfg = run(FrontendConfig::alder_lake_like()
        .with_btb_entries(2048)
        .with_skia(SkiaConfig::default()));
    assert!(
        skia_cfg.cycles <= grown.cycles,
        "SBB should beat iso-storage BTB growth: {} vs {}",
        skia_cfg.cycles,
        grown.cycles
    );
}

#[test]
fn infinite_btb_is_an_upper_bound() {
    let finite = run_profile("ycsb", 30_000, FrontendConfig::alder_lake_like());
    let infinite = run_profile(
        "ycsb",
        30_000,
        FrontendConfig {
            btb: BtbMode::Infinite,
            ..FrontendConfig::alder_lake_like()
        },
    );
    assert!(infinite.cycles <= finite.cycles);
    assert!(infinite.btb_misses <= finite.btb_misses);
}

#[test]
fn bolted_layout_reduces_btb_pressure() {
    // §6.1.4: BOLT packs hot code, shrinking the BTB working set.
    let p = profile("verilator").unwrap();
    let pre = profile("verilator_prebolt").unwrap();
    let mut bolted_spec = p.spec.clone();
    let mut pre_spec = pre.spec.clone();
    bolted_spec.functions = 2500;
    pre_spec.functions = 2500;
    let steps = 50_000;
    let run = |spec: &ProgramSpec, seed: u64| {
        let program = Program::generate(spec);
        let trace = Walker::new(&program, seed, spec.mean_trip_count).take(steps);
        skia::frontend::run(&program, FrontendConfig::alder_lake_like(), trace)
    };
    let bolted = run(&bolted_spec, p.trace_seed);
    let prebolt = run(&pre_spec, pre.trace_seed);
    assert!(
        bolted.btb_misses < prebolt.btb_misses,
        "bolted {} vs pre-bolt {}",
        bolted.btb_misses,
        prebolt.btb_misses
    );
}

#[test]
fn trace_is_identical_across_configurations() {
    // §5.4: divergence between configurations must be zero by construction.
    let p = profile("noop").unwrap();
    let mut spec = p.spec.clone();
    spec.functions = 800;
    let program = Program::generate(&spec);
    let a: Vec<TraceStep> =
        Walker::new(&program, p.trace_seed, spec.mean_trip_count).take(10_000).collect();
    let b: Vec<TraceStep> =
        Walker::new(&program, p.trace_seed, spec.mean_trip_count).take(10_000).collect();
    assert_eq!(a, b);
}

#[test]
fn shadow_decoder_runs_on_program_bytes() {
    // End-to-end: the SBD must find real branches in real generated lines.
    let p = profile("cassandra").unwrap();
    let mut spec = p.spec.clone();
    spec.functions = 500;
    let program = Program::generate(&spec);
    let mut sbd = skia::core::ShadowDecoder::default();
    let mut found = 0usize;
    for f in program.functions().iter().take(200) {
        for b in &f.blocks {
            let t = &b.terminator;
            if !t.kind.is_unconditional() {
                continue;
            }
            let end = t.pc + u64::from(t.len);
            let (line_base, line) = program.line(end.saturating_sub(1));
            let exit = (end - line_base) as usize;
            if exit < line.len() {
                found += sbd.decode_tail(&line, line_base, exit).len();
            }
        }
    }
    assert!(found > 10, "tail decoding found only {found} branches");
}
