//! Workspace-level fuzzing smoke: a tiny budget of every `skia-fuzz` target
//! plus one fault-rediscovery proof, so a plain `cargo test` at the root
//! exercises the whole fuzz stack (the full budgeted runs live in
//! `crates/skia-fuzz/tests/fuzz.rs` and the CI `fuzz-smoke` job).

use skia_fuzz::{fuzz, replay, DecodeTarget, FuzzConfig, LockstepTarget, SbbTarget, ShadowTarget};
use skia_oracle::OracleFault;

#[test]
fn every_target_survives_a_small_budget() {
    let reports = [
        fuzz(&mut DecodeTarget, &FuzzConfig::ephemeral(60)),
        fuzz(&mut ShadowTarget::new(), &FuzzConfig::ephemeral(30)),
        fuzz(&mut SbbTarget::new(), &FuzzConfig::ephemeral(80)),
        fuzz(&mut LockstepTarget::new(), &FuzzConfig::ephemeral(2)),
    ];
    for report in reports {
        assert!(
            report.failure.is_none(),
            "{} diverged:\n{}",
            report.target,
            report.failure.unwrap().report()
        );
        assert!(report.features > 0, "{}: no coverage", report.target);
    }
}

#[test]
fn planted_fault_is_found_and_replayable() {
    let report = fuzz(
        &mut LockstepTarget::with_fault(Some(OracleFault::StaleBtbLru)),
        &FuzzConfig::ephemeral(10),
    );
    let failure = report.failure.expect("planted BTB fault must be found");
    assert!(failure.token.starts_with("lockstep@stale-btb-lru:"));
    assert!(replay(&failure.token).is_err(), "token must reproduce");
}
