//! Workspace-level property tests: invariants that must hold for *any*
//! generated workload and simulator configuration.

use proptest::prelude::*;
use skia::prelude::*;

prop_compose! {
    fn arb_spec()(
        seed in any::<u64>(),
        functions in 30usize..300,
        cond in 0.2f64..0.8,
        call in 0.2f64..0.8,
        zipf in 0.7f64..1.4,
        bolted in any::<bool>(),
    ) -> ProgramSpec {
        ProgramSpec {
            seed,
            functions,
            cond_fraction: cond,
            call_fraction: call,
            zipf_s: zipf,
            layout: if bolted { Layout::Bolted } else { Layout::Interleaved },
            ..ProgramSpec::default()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated program's ground truth is decode-consistent: each
    /// block terminator decodes from the image to its recorded metadata.
    #[test]
    fn ground_truth_matches_bytes(spec in arb_spec()) {
        let program = Program::generate(&spec);
        for f in program.functions().iter().take(40) {
            for b in &f.blocks {
                let t = &b.terminator;
                let d = skia::isa::decode::decode(program.bytes_at(t.pc, 15))
                    .expect("terminator decodes");
                prop_assert_eq!(d.len, t.len);
                let bi = d.kind.branch().expect("terminator is a branch");
                prop_assert_eq!(bi.kind, t.kind);
                if let Some(target) = t.target {
                    prop_assert_eq!(d.branch_target(t.pc), Some(target));
                }
            }
        }
    }

    /// Trace steps always chain: next_pc of step n is block_start of n+1,
    /// and instruction counts are consistent with block metadata.
    #[test]
    fn trace_chains(spec in arb_spec(), seed in any::<u64>()) {
        let program = Program::generate(&spec);
        let steps: Vec<TraceStep> =
            Walker::new(&program, seed, 5).take(500).collect();
        for pair in steps.windows(2) {
            prop_assert_eq!(pair[1].block_start, pair[0].next_pc);
        }
        for s in &steps {
            prop_assert!(s.branch_pc >= s.block_start);
            prop_assert!(s.insns >= 1);
            if !s.taken {
                prop_assert_eq!(s.next_pc, s.block_end());
            }
        }
    }

    /// The simulator conserves instructions and never divides by zero, for
    /// arbitrary (small) BTB geometries, with and without Skia.
    #[test]
    fn simulator_conserves_instructions(
        spec in arb_spec(),
        btb_sets in 4usize..64,
        with_skia in any::<bool>(),
    ) {
        let program = Program::generate(&spec);
        let expected: u64 = Walker::new(&program, 3, 5)
            .take(800)
            .map(|s| u64::from(s.insns))
            .sum();
        let mut config = FrontendConfig::test_small();
        config.btb = BtbMode::Finite(BtbConfig { entries: btb_sets * 4, ways: 4 });
        if with_skia {
            config.skia = Some(SkiaConfig::default());
        }
        let stats = skia::frontend::run(
            &program,
            config,
            Walker::new(&program, 3, 5).take(800),
        );
        prop_assert_eq!(stats.instructions, expected);
        prop_assert!(stats.cycles > 0);
        prop_assert!(stats.btb_miss_l1i_resident <= stats.btb_misses);
        prop_assert!(stats.btb_miss_rescuable <= stats.btb_miss_taken);
        prop_assert!(stats.sbb_rescues <= stats.btb_misses);
        let kind_sum: u64 = stats.btb_misses_by_kind.iter().sum();
        prop_assert_eq!(kind_sum, stats.btb_misses);
    }

    /// SBB occupancy never exceeds its configured capacity, and its storage
    /// arithmetic is consistent under scaling.
    #[test]
    fn sbb_capacity_respected(factor in 1usize..6) {
        let sbb = SbbConfig::default().scaled(factor as f64 / 2.0);
        prop_assert_eq!(sbb.u_entries % sbb.ways, 0);
        prop_assert_eq!(sbb.r_entries % sbb.ways, 0);
        let kb = sbb.storage_kb();
        prop_assert!(kb > 0.0);
        // Scaling is roughly proportional.
        let expect = 12.25 * factor as f64 / 2.0;
        prop_assert!((kb - expect).abs() / expect < 0.1, "kb {} expect {}", kb, expect);
    }
}
