//! Quickstart: build a synthetic front-end-bound workload, run the paper's
//! baseline front-end and the Skia-enhanced one, and print the headline
//! comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use skia::prelude::*;

fn main() {
    // A mid-sized synthetic program: ~3000 functions of real x86-64 bytes,
    // hot and cold functions interleaved on the same cache lines.
    let spec = ProgramSpec {
        functions: 3000,
        ..ProgramSpec::default()
    };
    let program = Program::generate(&spec);
    println!(
        "program: {} KB of code, {} functions, {} static branches",
        program.code_bytes() / 1024,
        program.functions().len(),
        program.branch_count()
    );

    let steps = 200_000;
    let trace = || Walker::new(&program, 42, spec.mean_trip_count).take(steps);

    // Paper baseline: 8K-entry (78 KB) BTB, FDIP front-end, no Skia.
    let baseline = skia::frontend::run(&program, FrontendConfig::alder_lake_like(), trace());

    // Same front-end plus Skia's 12.25 KB Shadow Branch Buffer.
    let enhanced = skia::frontend::run(&program, FrontendConfig::alder_lake_with_skia(), trace());

    println!("\n{:<28}{:>12}{:>12}", "metric", "baseline", "with Skia");
    let r = |name: &str, a: f64, b: f64| println!("{name:<28}{a:>12.3}{b:>12.3}");
    r("IPC", baseline.ipc(), enhanced.ipc());
    r("BTB MPKI", baseline.btb_mpki(), enhanced.btb_mpki());
    r("L1-I MPKI", baseline.l1i_mpki(), enhanced.l1i_mpki());
    r(
        "decode resteers /KI",
        baseline.decode_resteers as f64 * 1000.0 / baseline.instructions as f64,
        enhanced.decode_resteers as f64 * 1000.0 / enhanced.instructions as f64,
    );
    r(
        "decoder idle cycles /KI",
        baseline.decoder_idle_cycles() as f64 * 1000.0 / baseline.instructions as f64,
        enhanced.decoder_idle_cycles() as f64 * 1000.0 / enhanced.instructions as f64,
    );

    let speedup = (enhanced.speedup_over(&baseline) - 1.0) * 100.0;
    println!("\nSkia speedup: {speedup:.2}%");
    if let Some(sk) = &enhanced.skia {
        println!(
            "SBB: {} U-inserts, {} R-inserts, {} rescued BTB misses, bogus rate {:.6}%",
            sk.sbb.u_inserts,
            sk.sbb.r_inserts,
            enhanced.sbb_rescues,
            sk.bogus_rate() * 100.0
        );
    }
}
