//! Shadow-decoding walkthrough on raw bytes — the paper's Figs. 8–10 as a
//! runnable demo.
//!
//! Builds a cache line by hand, shows the head-decode Index Computation /
//! Path Validation phases (including the multiple-valid-decodings ambiguity
//! of Fig. 8) and the unambiguous tail decode of Fig. 10.
//!
//! ```text
//! cargo run --example shadow_decode_bytes
//! ```

use skia::core::{IndexPolicy, ShadowDecoder};
use skia::isa::{decode, encode};

fn main() {
    // ---- Fig. 8: ambiguity ----
    // "31 C3" is xor ebx,eax from byte 0, but byte 1 alone is a ret.
    let fig8 = [0x31u8, 0xC3];
    let from0 = decode::decode(&fig8).unwrap();
    let from1 = decode::decode(&fig8[1..]).unwrap();
    println!("Fig. 8 ambiguity on bytes {fig8:02X?}:");
    println!("  from byte 0: len {} ({:?})", from0.len, from0.kind);
    println!("  from byte 1: len {} ({:?})", from1.len, from1.kind);

    // ---- Head decode (Fig. 9): Index Computation + Path Validation ----
    // Line: [push rax][jmp rel32 -> +0x3F9][entry at 6 ...]
    let mut line = Vec::new();
    encode::emit_nonbranch(&mut line, 0); // push rax (1 byte)
    encode::jmp_rel32(&mut line, 0x3F9); // the shadow branch
    let entry_offset = line.len();
    while line.len() < 64 {
        encode::nop_exact(&mut line, 1);
    }

    println!(
        "\nHead region bytes 0..{entry_offset}: {:02X?}",
        &line[..entry_offset]
    );
    println!("Per-byte Length vector (Index Computation):");
    for i in 0..entry_offset {
        let len = decode::decode(&line[i..]).map(|d| d.len).unwrap_or(0);
        println!("  Length[{i}] = {len}");
    }

    for policy in IndexPolicy::ALL {
        let mut sbd = ShadowDecoder::new(policy, 6);
        let hd = sbd.decode_head(&line, 0x1000, entry_offset);
        println!(
            "Path Validation [{}]: valid starts {:?}, chosen {:?}, {} shadow branch(es)",
            policy.label(),
            hd.valid_starts,
            hd.chosen_start,
            hd.branches.len()
        );
        for b in &hd.branches {
            println!("    {:?} at {:#x}, target {:?}", b.kind, b.pc, b.target);
        }
    }

    // ---- Tail decode (Fig. 10) ----
    let mut tail_line = Vec::new();
    encode::nop_exact(&mut tail_line, 4);
    encode::jmp_rel8(&mut tail_line, 16); // executed exit branch
    let exit_offset = tail_line.len();
    encode::emit_nonbranch(&mut tail_line, 3); // mov r32,r32
    encode::call_rel32(&mut tail_line, 0x100); // shadow call
    encode::ret(&mut tail_line); // shadow return
    while tail_line.len() < 64 {
        encode::nop_exact(&mut tail_line, 1);
    }

    let mut sbd = ShadowDecoder::default();
    let found = sbd.decode_tail(&tail_line, 0x2000, exit_offset);
    println!("\nTail decode from exit offset {exit_offset} (Fig. 10):");
    for b in found.iter() {
        println!("  {:?} at {:#x}, target {:?}", b.kind, b.pc, b.target);
    }
}
