//! OLTP-server scenario: the paper's motivating workload class.
//!
//! Database transaction processing (the OLTP-Bench suite in Table 2) is the
//! canonical front-end-bound workload: enormous stored-procedure code
//! footprints, call/return-heavy control flow, and request bursts. This
//! example runs the `voter` and `sibench` profiles — the paper's two
//! biggest Skia winners — and breaks down *where* the win comes from:
//! rescued BTB misses by branch kind, decoder idle cycles, and wrong-path
//! prefetch pollution.
//!
//! ```text
//! cargo run --release --example oltp_server
//! ```

use skia::prelude::*;

fn main() {
    for name in ["voter", "sibench"] {
        let p = profile(name).expect("OLTP profile");
        let program = Program::generate(&p.spec);
        let steps = 200_000;
        let trace = || Walker::new(&program, p.trace_seed, p.spec.mean_trip_count).take(steps);

        let base = skia::frontend::run(&program, FrontendConfig::alder_lake_like(), trace());
        let with = skia::frontend::run(&program, FrontendConfig::alder_lake_with_skia(), trace());

        println!("== {name} ==");
        println!(
            "  code footprint {} KB, {} static branches",
            program.code_bytes() / 1024,
            program.branch_count()
        );
        println!(
            "  IPC {:.3} -> {:.3}  ({:+.2}%)",
            base.ipc(),
            with.ipc(),
            (with.speedup_over(&base) - 1.0) * 100.0
        );
        println!(
            "  BTB miss MPKI {:.2}, of which {:.1}% lines already in L1-I",
            base.btb_mpki(),
            base.btb_miss_l1i_resident_fraction() * 100.0
        );
        println!("  BTB misses by kind (baseline):");
        for kind in BranchKind::ALL {
            let n = base.btb_misses_of(kind);
            if n > 0 {
                println!(
                    "    {:<13} {:>8}  ({:.1}%)",
                    kind.label(),
                    n,
                    n as f64 * 100.0 / base.btb_misses as f64
                );
            }
        }
        println!(
            "  rescued misses: {} ({:.2}/KI) — all direct-uncond/call/return by construction",
            with.sbb_rescues,
            with.sbb_rescues as f64 * 1000.0 / with.instructions as f64
        );
        println!(
            "  decoder idle cycles/KI: {:.0} -> {:.0}",
            base.decoder_idle_cycles() as f64 * 1000.0 / base.instructions as f64,
            with.decoder_idle_cycles() as f64 * 1000.0 / with.instructions as f64
        );
        println!(
            "  wrong-path prefetches/KI: {:.1} -> {:.1}\n",
            base.wrong_path_prefetches as f64 * 1000.0 / base.instructions as f64,
            with.wrong_path_prefetches as f64 * 1000.0 / with.instructions as f64
        );
    }
}
