//! BTB scaling mini-study (the shape of the paper's Fig. 3).
//!
//! Sweeps BTB sizes on one workload and compares: the plain BTB, the BTB
//! grown by 12.25 KB, and the BTB plus Skia's 12.25 KB SBB — showing that
//! the SBB buys more than the same storage spent on BTB entries.
//!
//! ```text
//! cargo run --release --example btb_scaling
//! ```

use skia::prelude::*;
use skia::uarch::btb::BtbConfig;

fn main() {
    let spec = ProgramSpec {
        functions: 4000,
        ..ProgramSpec::default()
    };
    let program = Program::generate(&spec);
    let steps = 120_000;
    let trace = || Walker::new(&program, 21, spec.mean_trip_count).take(steps);

    let extra = BtbConfig::entries_for_budget_kb(12.25, 4);
    println!("12.25 KB of BTB storage = {extra} extra entries\n");
    println!(
        "{:>10} {:>12} {:>14} {:>12}",
        "BTB", "IPC", "IPC +12.25KB", "IPC +SBB"
    );

    for entries in [1024usize, 2048, 4096, 8192, 16384] {
        let base = skia::frontend::run(
            &program,
            FrontendConfig::alder_lake_like().with_btb_entries(entries),
            trace(),
        );
        let grown = skia::frontend::run(
            &program,
            FrontendConfig::alder_lake_like().with_btb_entries(entries + extra),
            trace(),
        );
        let with_sbb = skia::frontend::run(
            &program,
            FrontendConfig::alder_lake_like()
                .with_btb_entries(entries)
                .with_skia(SkiaConfig::default()),
            trace(),
        );
        println!(
            "{:>10} {:>12.3} {:>14.3} {:>12.3}",
            entries,
            base.ipc(),
            grown.ipc(),
            with_sbb.ipc()
        );
    }
}
