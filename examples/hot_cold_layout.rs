//! Hot/cold layout study: why shadow branches exist.
//!
//! The paper's §1 example: frequently used functions placed next to colder
//! functions in the binary share cache lines with them, so cold branches
//! ride into the L1-I inside lines fetched for hot code — undecoded, hence
//! invisible to the BTB, until Skia exposes them. This example builds the
//! *same* program with the default interleaved layout and with a BOLT-like
//! hot-packed layout (§6.1.4), and shows how layout changes BTB miss
//! behaviour and Skia's leverage.
//!
//! ```text
//! cargo run --release --example hot_cold_layout
//! ```

use skia::prelude::*;

fn run_pair(label: &str, profile_name: &str) {
    // The verilator profiles: identical program structure and seed, only
    // the layout differs (the paper's §6.1.4 experiment).
    let p = profile(profile_name).expect("chipyard profile");
    let program = Program::generate(&p.spec);
    let steps = 150_000;
    let trace = || Walker::new(&program, p.trace_seed, p.spec.mean_trip_count).take(steps);

    let base = skia::frontend::run(&program, FrontendConfig::alder_lake_like(), trace());
    let with = skia::frontend::run(&program, FrontendConfig::alder_lake_with_skia(), trace());

    println!(
        "{label:<22} btbMPKI {:>6.2}  l1iResident {:>5.1}%  skiaSpeedup {:>5.2}%  rescues/KI {:>5.2}",
        base.btb_mpki(),
        base.btb_miss_l1i_resident_fraction() * 100.0,
        (with.speedup_over(&base) - 1.0) * 100.0,
        with.sbb_rescues as f64 * 1000.0 / with.instructions as f64,
    );
}

fn main() {
    println!("Identical program structure, two memory layouts (verilator, §6.1.4):\n");
    run_pair("interleaved (pre-BOLT)", "verilator_prebolt");
    run_pair("bolted", "verilator");
    println!(
        "\nThe interleaved (ordinary) layout mixes hot and cold bytes on the same\n\
         lines — more shadow-branch opportunity; BOLT-style packing shrinks the\n\
         BTB working set, which is why the paper reports larger Skia gains on\n\
         the pre-BOLT verilator (§6.1.4)."
    );
}
