//! Telemetry walkthrough: run an instrumented simulation, inspect the
//! registry snapshot, and export the sampled event trace as Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` / Perfetto) and JSONL.
//!
//! ```text
//! cargo run --release --example telemetry_trace [out_dir]
//! ```

use skia::prelude::*;
use skia::telemetry::trace::{to_chrome_trace, to_jsonl};

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".to_string());

    let p = profile("tpcc").expect("tpcc profile");
    let mut spec = p.spec.clone();
    spec.functions = 1500;
    let program = Program::generate(&spec);
    let trace = Walker::new(&program, p.trace_seed, spec.mean_trip_count).take(50_000);

    // Counters and histograms are always on; the event trace is opt-in.
    let (stats, snapshot) = skia::frontend::run_instrumented(
        &program,
        FrontendConfig::alder_lake_with_skia(),
        Some(TraceConfig::sampled(16, 32 * 1024)),
        trace,
    );

    println!("instructions: {}", stats.instructions);
    println!("IPC:          {:.3}", stats.ipc());
    println!(
        "BTB misses:   {} (snapshot agrees: {})",
        stats.btb_misses,
        snapshot.counter("btb.misses") == Some(stats.btb_misses)
    );
    for name in [
        "ftq.occupancy",
        "resteer.repair_latency",
        "shadow_decode.batch_size",
        "sbb.entry_lifetime",
    ] {
        let h = snapshot.histogram(name).expect("standing histogram");
        println!(
            "hist {name:<26} n={:<8} mean={:.2} max={}",
            h.count,
            h.mean(),
            h.max
        );
    }
    println!(
        "events: {} sampled of {} seen",
        snapshot.events.len(),
        snapshot.events_seen
    );

    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let snap_path = format!("{out_dir}/telemetry_trace.snapshot.json");
    let chrome_path = format!("{out_dir}/telemetry_trace.chrome.json");
    let jsonl_path = format!("{out_dir}/telemetry_trace.events.jsonl");
    std::fs::write(&snap_path, snapshot.to_json_string()).expect("write snapshot");
    std::fs::write(&chrome_path, to_chrome_trace(&snapshot.events)).expect("write chrome trace");
    std::fs::write(&jsonl_path, to_jsonl(&snapshot.events)).expect("write jsonl");
    println!("wrote {snap_path}, {chrome_path}, {jsonl_path}");
}
