//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment cannot fetch the real crate, so this vendored
//! stand-in implements the surface the workspace's property tests use:
//!
//! * [`Strategy`] with range, `any`, tuple and `collection::vec` strategies,
//! * the [`proptest!`], [`prop_compose!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros,
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Semantics are the useful core of the real crate: each test runs `cases`
//! random cases from a deterministic per-test seed, and a failing case is
//! **shrunk** before it is reported — integers step toward zero (or the
//! range start), booleans toward `false`, tuples shrink one component at a
//! time — so the panic the harness prints corresponds to a minimal failing
//! input (also written to stderr). Closure-composed strategies
//! (`prop_compose!`) are opaque to shrinking and re-fail as generated.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest};
}

/// Assert inside a property test. Equivalent to `assert!` here (the case
/// runner catches the panic and drives shrinking from it).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn` body runs once per random case with its
/// arguments drawn from the given strategies; failing cases are shrunk.
///
/// The argument strategies are bundled into one tuple strategy, so the
/// components draw from the RNG in declaration order — exactly the stream
/// the previous per-argument expansion consumed, keeping historical case
/// seeds stable.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr);
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategy = ($(($strat),)+);
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let value = $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    $crate::test_runner::run_case(&strategy, value, case, &|($($arg,)+)| {
                        let _ = case;
                        $body
                    });
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Compose strategies into a named strategy-returning function.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($ctor_arg:ident: $ctor_ty:ty),* $(,)?)
            ($($field:ident in $strat:expr),+ $(,)?)
            -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($ctor_arg: $ctor_ty),*)
            -> impl $crate::strategy::Strategy<Value = $out>
        {
            $crate::strategy::FnStrategy::new(
                move |rng: &mut $crate::test_runner::TestRng| -> $out {
                    $(let $field = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    $body
                },
            )
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0usize..10, b in 10usize..20) -> (usize, usize) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_hold(x in 1usize..16, f in 0.25f64..0.75, b in any::<bool>()) {
            prop_assert!((1..16).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            let _ = b;
        }

        #[test]
        fn vec_strategy_respects_len(v in crate::collection::vec(0u8..16, 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert!(v.iter().all(|&x| x < 16));
        }

        #[test]
        fn tuple_and_compose(pair in arb_pair(), t in (any::<u32>(), 5u8..9)) {
            prop_assert!(pair.0 < 10 && pair.1 >= 10);
            prop_assert!((5..9).contains(&t.1));
        }
    }

    #[test]
    fn shrinking_finds_minimal_input() {
        use std::cell::RefCell;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let strategy = (0u64..1000,);
        let failing_runs = RefCell::new(Vec::new());
        let result = catch_unwind(AssertUnwindSafe(|| {
            crate::test_runner::run_case(&strategy, (615,), 0, &|(x,)| {
                if x >= 17 {
                    failing_runs.borrow_mut().push(x);
                    panic!("too big: {x}");
                }
            });
        }));
        assert!(result.is_err(), "minimal input must re-panic");
        // Greedy descent must land exactly on the smallest failing value.
        assert_eq!(failing_runs.borrow().last().copied(), Some(17));
    }

    #[test]
    fn cases_are_deterministic() {
        let s = 0u64..1000;
        let mut first = Vec::new();
        for case in 0..10 {
            let mut rng = TestRng::for_case("det", case);
            first.push(s.generate(&mut rng));
        }
        for case in 0..10 {
            let mut rng = TestRng::for_case("det", case);
            assert_eq!(first[case as usize], s.generate(&mut rng));
        }
    }
}
