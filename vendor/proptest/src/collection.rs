//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy for `Vec<T>` with a length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    len: core::ops::Range<usize>,
}

/// A `Vec` whose length is drawn from `len` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "collection::vec: empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
