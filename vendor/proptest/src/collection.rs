//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy for `Vec<T>` with a length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    len: core::ops::Range<usize>,
}

/// A `Vec` whose length is drawn from `len` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "collection::vec: empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Length reductions first (biggest simplification), down to the
        // strategy's minimum length: shortest, half, one-less.
        let mut lens = Vec::new();
        for n in [
            self.len.start,
            value.len() / 2,
            value.len().saturating_sub(1),
        ] {
            if n >= self.len.start && n < value.len() && !lens.contains(&n) {
                lens.push(n);
                out.push(value[..n].to_vec());
            }
        }
        // Then per-element shrinking, one position at a time.
        for (i, v) in value.iter().enumerate() {
            for c in self.element.shrink(v) {
                let mut next = value.clone();
                next[i] = c;
                out.push(next);
            }
        }
        out
    }
}
