//! Test-run configuration, the deterministic per-case RNG, and the
//! shrinking case runner.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use crate::strategy::Strategy;

/// How many cases each property test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies: deterministic per (test name, case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// RNG for one case of one named test.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(
                h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Total shrink-candidate executions allowed per failing case. Greedy
/// first-failing-candidate descent converges in far fewer runs than this;
/// the bound only caps pathological shrinkers.
const SHRINK_BUDGET: usize = 1000;

/// Run one generated case, and on failure greedily shrink the input via
/// [`Strategy::shrink`] before re-panicking on the minimal reproducer.
///
/// The first failure's panic propagates only after shrinking completes, so
/// the assertion message always corresponds to the *minimal* input, which
/// is printed to stderr just before.
pub fn run_case<S: Strategy>(strategy: &S, value: S::Value, case: u32, run: &dyn Fn(S::Value))
where
    S::Value: Clone + std::fmt::Debug,
{
    if catch_unwind(AssertUnwindSafe(|| run(value.clone()))).is_ok() {
        return;
    }

    // Shrink: repeatedly replace the failing input with its first still-
    // failing shrink candidate. The default panic hook would print a
    // backtrace per probed candidate; silence it for the probe phase.
    let quiet_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut minimal = value;
    let mut budget = SHRINK_BUDGET;
    'descend: while budget > 0 {
        for candidate in strategy.shrink(&minimal) {
            if budget == 0 {
                break 'descend;
            }
            budget -= 1;
            if catch_unwind(AssertUnwindSafe(|| run(candidate.clone()))).is_err() {
                minimal = candidate;
                continue 'descend;
            }
        }
        break;
    }
    std::panic::set_hook(quiet_hook);

    eprintln!("proptest: case {case} failed; minimal failing input: {minimal:?}");
    // Re-run the minimal input outside catch_unwind so the original
    // assertion failure is what the test harness reports.
    run(minimal);
    unreachable!("shrunk input no longer fails; non-deterministic property?");
}
