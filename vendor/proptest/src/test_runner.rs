//! Test-run configuration and the deterministic per-case RNG.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// How many cases each property test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies: deterministic per (test name, case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// RNG for one case of one named test.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(
                h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
