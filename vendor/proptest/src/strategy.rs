//! Value-generation strategies, with basic input shrinking.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Propose strictly "smaller" candidate replacements for a failing
    /// value, best candidates first. The test runner greedily re-runs the
    /// failing property on each candidate and recurses on the first that
    /// still fails, so shrinkers need not enumerate exhaustively — a few
    /// large jumps (zero, half) plus a single small step converge quickly.
    /// The default is no shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Strategy for "any value of `T`" (the real crate's `Arbitrary`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Any value of `T`, drawn uniformly from the whole domain.
#[must_use]
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let mut out = Vec::new();
                for c in [0, v / 2, v.wrapping_sub(1)] {
                    if c < v && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )+};
}
impl_any_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_any_sint {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let mut out = Vec::new();
                // `unsigned_abs` keeps `$t::MIN` (whose `abs()` overflows)
                // shrinkable.
                for c in [0, v / 2, v - v.signum()] {
                    if c != v && c.unsigned_abs() <= v.unsigned_abs() && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )+};
}
impl_any_sint!(i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen::<f64>()
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )+};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Candidates between a range's `start` and a failing `value`, biggest jump
/// first. Works in i128 so every integer width and sign combination (all of
/// which embed losslessly in i128) uses one overflow-free midpoint formula;
/// candidates lie in `[start, value)`, so the caller's cast back is lossless.
fn shrink_toward(start: i128, value: i128) -> Vec<i128> {
    if value <= start {
        return Vec::new();
    }
    let mut out = Vec::new();
    for c in [start, start + (value - start) / 2, value - 1] {
        if c < value && !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Per-component replacement: shrink one coordinate at a
                // time, holding the others fixed.
                let mut out = Vec::new();
                $(
                    for c in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = c;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// A strategy backed by a closure (what [`crate::prop_compose!`] expands to).
/// Closure strategies are opaque to shrinking (the default no-op applies).
pub struct FnStrategy<F> {
    f: F,
}

impl<T, F: Fn(&mut TestRng) -> T> FnStrategy<F> {
    /// Wrap a generator closure.
    pub fn new(f: F) -> Self {
        FnStrategy { f }
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_shrink_moves_toward_zero() {
        let s = any::<u64>();
        let c = s.shrink(&100);
        assert!(c.contains(&0) && c.contains(&50) && c.contains(&99));
        assert!(s.shrink(&0).is_empty());
        assert_eq!(s.shrink(&1), vec![0]);
    }

    #[test]
    fn sint_shrink_reduces_magnitude() {
        let s = any::<i32>();
        assert!(s.shrink(&-8).iter().all(|&c| c.abs() < 8));
        assert!(s.shrink(&8).iter().all(|&c| c.abs() < 8));
        assert!(s.shrink(&0).is_empty());
    }

    #[test]
    fn range_shrink_stays_in_range() {
        let s = 10usize..100;
        for &c in &s.shrink(&73) {
            assert!(s.contains(&c) && c < 73);
        }
        assert!(s.shrink(&10).is_empty());
        let inc = 5u8..=9;
        for &c in &inc.shrink(&9) {
            assert!(inc.contains(&c) && c < 9);
        }
    }

    #[test]
    fn bool_shrink_prefers_false() {
        assert_eq!(any::<bool>().shrink(&true), vec![false]);
        assert!(any::<bool>().shrink(&false).is_empty());
    }

    #[test]
    fn tuple_shrink_replaces_one_component() {
        let s = (0u64..100, any::<bool>());
        let cands = s.shrink(&(40, true));
        assert!(!cands.is_empty());
        for (a, b) in &cands {
            // Exactly one coordinate moved.
            assert!((*a < 40 && *b) || (*a == 40 && !*b));
        }
    }
}
