//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy for "any value of `T`" (the real crate's `Arbitrary`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Any value of `T`, drawn uniformly from the whole domain.
#[must_use]
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )+};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// A strategy backed by a closure (what [`crate::prop_compose!`] expands to).
pub struct FnStrategy<F> {
    f: F,
}

impl<T, F: Fn(&mut TestRng) -> T> FnStrategy<F> {
    /// Wrap a generator closure.
    pub fn new(f: F) -> Self {
        FnStrategy { f }
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}
