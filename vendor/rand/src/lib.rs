//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! real `rand` cannot be fetched. This vendored stand-in implements exactly
//! the surface the workspace uses — [`rngs::SmallRng`], [`Rng`] and
//! [`SeedableRng`] with `gen`, `gen_range`, `gen_bool` — on top of a
//! xoshiro256++ core seeded through splitmix64 (the same generator family
//! the real `SmallRng` uses on 64-bit targets). Streams differ from the real
//! crate's, which is fine: every consumer treats the RNG as an arbitrary
//! deterministic function of its seed.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from their whole domain
/// (the `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges (half-open and inclusive) that `gen_range` accepts.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )+};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Uniform value in `0..span` via Lemire's multiply-shift with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// High-level convenience methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator: xoshiro256++ seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1u32..=8);
            assert!((1..=8).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac={frac}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn uniformity_rough_check() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }
}
