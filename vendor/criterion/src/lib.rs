//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment cannot fetch the real crate, so this vendored
//! stand-in implements the workspace's benchmark surface — `Criterion`,
//! `bench_function`, `benchmark_group`, `iter`/`iter_batched`,
//! `criterion_group!`/`criterion_main!`, `black_box` — as a simple wall-clock
//! runner. Each benchmark is warmed up once, then timed for `sample_size`
//! samples whose per-iteration mean/min/max are printed in criterion's
//! familiar `time: [low mid high]` shape. There is no statistical analysis,
//! HTML report, or saved baseline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample batch sizing policy (accepted for API compatibility; the
/// runner always uses one setup per measured routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: setup cost comparable to the routine.
    SmallInput,
    /// Large inputs: one setup per sample.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// Soft cap on measuring time per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Set the soft cap on per-benchmark measuring time.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            deadline: self.measurement_time,
        };
        f(&mut b);
        report(&id, &b.samples);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Override the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Measures one routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    deadline: Duration,
}

impl Bencher {
    /// Time `routine`, one sample per call, `sample_size` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also primes caches/allocator).
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.deadline {
                break;
            }
        }
    }

    /// Time `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.deadline {
                break;
            }
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id:<50} time: [{} {} {}]  (n={})",
        fmt(min),
        fmt(mean),
        fmt(max),
        samples.len()
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a named runner group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        // Just exercise the plumbing; output goes to stdout.
        c.bench_function("smoke_iter", |b| b.iter(|| black_box(2u64 + 2)));
        c.bench_function("smoke_batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| black_box(1)));
        g.finish();
    }
}
