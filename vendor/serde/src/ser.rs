//! The serialization traits: a trimmed but signature-compatible subset of
//! `serde::ser`.

use std::collections::{BTreeMap, HashMap};

/// A data structure that can be serialized into any serde data format.
pub trait Serialize {
    /// Drive `serializer` with this value's structure.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format backend: receives the serde data model.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error;
    /// Sequence sub-serializer.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Map sub-serializer.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Struct sub-serializer.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a missing optional value.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize a present optional value.
    fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<Self::Ok, Self::Error>;
    /// Serialize `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Begin a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begin a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

/// Sequence serialization sub-trait.
pub trait SerializeSeq {
    /// Output type, matching the parent serializer.
    type Ok;
    /// Error type, matching the parent serializer.
    type Error;
    /// Serialize one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map serialization sub-trait.
pub trait SerializeMap {
    /// Output type, matching the parent serializer.
    type Ok;
    /// Error type, matching the parent serializer.
    type Error;
    /// Serialize one key/value entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    /// Finish the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct serialization sub-trait.
pub trait SerializeStruct {
    /// Output type, matching the parent serializer.
    type Ok;
    /// Error type, matching the parent serializer.
    type Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! impl_serialize_uint {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(u64::from(*self))
            }
        }
    )+};
}
impl_serialize_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u64(*self as u64)
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(i64::from(*self))
            }
        }
    )+};
}
impl_serialize_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_i64(*self as i64)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(f64::from(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => s.serialize_some(v),
            None => s.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut map = s.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut map = s.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}
