//! Offline, API-compatible subset of `serde`'s serialization data model.
//!
//! The build environment cannot reach a crate registry, so the real `serde`
//! is unavailable. This vendored stand-in keeps the real crate's architecture
//! — a [`Serialize`] trait driving a visitor-style [`Serializer`] — so every
//! manual `impl Serialize` written against it is source-compatible with the
//! real thing. The derive macro is not provided (it would need a proc-macro
//! stack); workspace types implement `Serialize` by hand.

#![forbid(unsafe_code)]

pub mod ser;

pub use ser::{Serialize, SerializeMap, SerializeSeq, SerializeStruct, Serializer};

#[cfg(test)]
mod tests {
    use super::ser::*;

    /// A toy serializer that renders the driven data model as an S-expression,
    /// proving the visitor plumbing works end to end.
    struct Sexpr(String);

    struct SexprCompound<'a>(&'a mut Sexpr);

    impl<'a> SerializeSeq for SexprCompound<'a> {
        type Ok = ();
        type Error = std::fmt::Error;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Self::Error> {
            self.0 .0.push(' ');
            v.serialize(&mut *self.0)
        }
        fn end(self) -> Result<(), Self::Error> {
            self.0 .0.push(')');
            Ok(())
        }
    }

    impl<'a> SerializeMap for SexprCompound<'a> {
        type Ok = ();
        type Error = std::fmt::Error;
        fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
            &mut self,
            k: &K,
            v: &V,
        ) -> Result<(), Self::Error> {
            self.0 .0.push(' ');
            k.serialize(&mut *self.0)?;
            self.0 .0.push('=');
            v.serialize(&mut *self.0)
        }
        fn end(self) -> Result<(), Self::Error> {
            self.0 .0.push(')');
            Ok(())
        }
    }

    impl<'a> SerializeStruct for SexprCompound<'a> {
        type Ok = ();
        type Error = std::fmt::Error;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            name: &'static str,
            v: &T,
        ) -> Result<(), Self::Error> {
            self.0 .0.push(' ');
            self.0 .0.push_str(name);
            self.0 .0.push('=');
            v.serialize(&mut *self.0)
        }
        fn end(self) -> Result<(), Self::Error> {
            self.0 .0.push(')');
            Ok(())
        }
    }

    impl<'a> Serializer for &'a mut Sexpr {
        type Ok = ();
        type Error = std::fmt::Error;
        type SerializeSeq = SexprCompound<'a>;
        type SerializeMap = SexprCompound<'a>;
        type SerializeStruct = SexprCompound<'a>;

        fn serialize_bool(self, v: bool) -> Result<(), Self::Error> {
            self.0.push_str(if v { "#t" } else { "#f" });
            Ok(())
        }
        fn serialize_u64(self, v: u64) -> Result<(), Self::Error> {
            self.0.push_str(&v.to_string());
            Ok(())
        }
        fn serialize_i64(self, v: i64) -> Result<(), Self::Error> {
            self.0.push_str(&v.to_string());
            Ok(())
        }
        fn serialize_f64(self, v: f64) -> Result<(), Self::Error> {
            self.0.push_str(&v.to_string());
            Ok(())
        }
        fn serialize_str(self, v: &str) -> Result<(), Self::Error> {
            self.0.push_str(v);
            Ok(())
        }
        fn serialize_none(self) -> Result<(), Self::Error> {
            self.0.push_str("nil");
            Ok(())
        }
        fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), Self::Error> {
            v.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), Self::Error> {
            self.0.push_str("()");
            Ok(())
        }
        fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error> {
            self.0.push_str("(seq");
            Ok(SexprCompound(self))
        }
        fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, Self::Error> {
            self.0.push_str("(map");
            Ok(SexprCompound(self))
        }
        fn serialize_struct(
            self,
            name: &'static str,
            _len: usize,
        ) -> Result<Self::SerializeStruct, Self::Error> {
            self.0.push('(');
            self.0.push_str(name);
            Ok(SexprCompound(self))
        }
    }

    #[test]
    fn visitor_plumbing_round() {
        struct P {
            x: u64,
            tags: Vec<bool>,
        }
        impl Serialize for P {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let mut st = s.serialize_struct("P", 2)?;
                st.serialize_field("x", &self.x)?;
                st.serialize_field("tags", &self.tags)?;
                st.end()
            }
        }
        let mut out = Sexpr(String::new());
        P {
            x: 7,
            tags: vec![true, false],
        }
        .serialize(&mut out)
        .unwrap();
        assert_eq!(out.0, "(P x=7 tags=(seq #t #f))");
    }
}
