#!/bin/sh
# Regenerate every table and figure of the paper into results/.
# SKIA_STEPS scales trace length (default 400000 ~ 2.8M instructions per run).
# SKIA_THREADS sets the sweep worker count (default: all cores).
# SKIA_EMIT=1 additionally writes each experiment's merged telemetry snapshot
# (counters, histograms, sampled event trace, profiling spans) to
# results/<exp>.telemetry.json, then aggregates all snapshots into
# results/manifest.json + results/manifest.md (per-experiment wall time,
# steps/sec, trace-cache traffic, per-phase span rollups) and a merged
# Chrome trace at results/trace.json via skia-report. Compare two runs with
# `skia-report diff <old-manifest> <new-manifest>`.
# SKIA_SPANS=1/0 force-enables/disables span profiling (default: on exactly
# when --emit-json is passed; spans never touch stdout).
# SKIA_CACHE points the on-disk cache somewhere else (default
# target/skia-cache; set to 0 to disable). The cache holds BOTH generated
# program images AND recorded branch traces: the first run of this script
# records one trace per (workload, step-count) and every later run — and
# every config sweep within a run — replays it instead of re-walking.
#
# Each experiment's stderr reports the two phases separately: a
# "prepare: ..." line (trace record/load wall time) followed by a
# "sweep: ..." line (pure simulation wall time). Any failure aborts the
# whole script with the failing experiment named.
set -e
cd "$(dirname "$0")"
STEPS="${SKIA_STEPS:-400000}"
export SKIA_STEPS="$STEPS"
echo "running all experiments at $STEPS steps per run"
cargo build --release -p skia-experiments --bins
mkdir -p results
total_start=$(date +%s)
for exp in table1 table2 fig01 fig06 fig13 fig15 fig16 fig18 fig14 ablations fig17 fig03; do
  echo "=== $exp ==="
  EMIT=""
  if [ -n "${SKIA_EMIT:-}" ]; then
    EMIT="--emit-json results/$exp.telemetry.json"
  fi
  exp_start=$(date +%s)
  if ! ./target/release/$exp $EMIT > results/$exp.md; then
    echo "FAILED: $exp (see stderr above)" >&2
    exit 1
  fi
  exp_end=$(date +%s)
  echo "done: results/$exp.md (${exp}: $((exp_end - exp_start))s)"
done
if [ -n "${SKIA_EMIT:-}" ]; then
  ./target/release/skia-report collect \
    --out results/manifest.json --md results/manifest.md \
    --chrome results/trace.json results/*.telemetry.json
fi
total_end=$(date +%s)
echo "all experiments done in $((total_end - total_start))s"
