#!/bin/sh
# Regenerate every table and figure of the paper into results/.
# SKIA_STEPS scales trace length (default 400000 ~ 2.8M instructions per run).
# SKIA_EMIT=1 additionally writes each experiment's merged telemetry snapshot
# (counters, histograms, sampled event trace) to results/<exp>.telemetry.json.
set -e
cd "$(dirname "$0")"
STEPS="${SKIA_STEPS:-400000}"
export SKIA_STEPS="$STEPS"
echo "running all experiments at $STEPS steps per run"
for exp in table1 table2 fig01 fig06 fig13 fig15 fig16 fig18 fig14 ablations fig17 fig03; do
  echo "=== $exp ==="
  EMIT=""
  if [ -n "${SKIA_EMIT:-}" ]; then
    EMIT="--emit-json results/$exp.telemetry.json"
  fi
  ./target/release/$exp $EMIT > results/$exp.md 2>/dev/null || cargo run --release -p skia-experiments --bin $exp -- $EMIT > results/$exp.md
  echo "done: results/$exp.md"
done
