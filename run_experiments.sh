#!/bin/sh
# Regenerate every table and figure of the paper into results/.
# SKIA_STEPS scales trace length (default 400000 ~ 2.8M instructions per run).
# SKIA_THREADS sets the sweep worker count (default: all cores).
# SKIA_EMIT=1 additionally writes each experiment's merged telemetry snapshot
# (counters, histograms, sampled event trace) to results/<exp>.telemetry.json.
#
# Experiment stderr (sweep timing lines, diagnostics) passes through to this
# script's stderr; any failure aborts the whole script with the failing
# experiment named.
set -e
cd "$(dirname "$0")"
STEPS="${SKIA_STEPS:-400000}"
export SKIA_STEPS="$STEPS"
echo "running all experiments at $STEPS steps per run"
cargo build --release -p skia-experiments --bins
total_start=$(date +%s)
for exp in table1 table2 fig01 fig06 fig13 fig15 fig16 fig18 fig14 ablations fig17 fig03; do
  echo "=== $exp ==="
  EMIT=""
  if [ -n "${SKIA_EMIT:-}" ]; then
    EMIT="--emit-json results/$exp.telemetry.json"
  fi
  exp_start=$(date +%s)
  if ! ./target/release/$exp $EMIT > results/$exp.md; then
    echo "FAILED: $exp (see stderr above)" >&2
    exit 1
  fi
  exp_end=$(date +%s)
  echo "done: results/$exp.md (${exp}: $((exp_end - exp_start))s)"
done
total_end=$(date +%s)
echo "all experiments done in $((total_end - total_start))s"
