//! Record/replay equivalence properties.
//!
//! The record-once/replay-many pipeline is only sound if a replayed trace is
//! *bit-identical* to the live walk it was recorded from — every simulator
//! downstream consumes the `TraceStep` stream and nothing else, so stream
//! equality is the whole correctness argument. These properties exercise it
//! across program layouts, seeds, trip counts, and step counts, and also pin
//! down the RNG-isolation guarantee: recording a trace must never perturb an
//! independently running walker (the differential harness replays seed-logged
//! cases and would silently diverge otherwise).

use proptest::prelude::*;
use skia_workloads::{Layout, Program, ProgramSpec, RecordedTrace, Walker};

/// A small spec keeps per-case generation cheap while still covering both
/// layouts, indirect dispatch, loops, and bursts.
fn small_spec(seed: u64, bolted: bool) -> ProgramSpec {
    ProgramSpec {
        seed,
        functions: 60,
        dispatch_blocks: 8,
        dispatch_callees: 8,
        burst_pool: 4,
        layout: if bolted {
            Layout::Bolted
        } else {
            Layout::Interleaved
        },
        ..ProgramSpec::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replay equals the live walker step-for-step, field-for-field, for any
    /// (layout, program seed, walk seed, trip count, length).
    #[test]
    fn replay_equals_live_walk(
        prog_seed in any::<u64>(),
        walk_seed in any::<u64>(),
        bolted in any::<bool>(),
        mean_trip in 1u32..12,
        steps in 1usize..1500,
    ) {
        let program = Program::generate(&small_spec(prog_seed, bolted));
        let trace = RecordedTrace::record(&program, walk_seed, mean_trip, steps);
        let live = Walker::new(&program, walk_seed, mean_trip);
        let mut n = 0;
        for (replayed, lived) in trace.replay().zip(live) {
            prop_assert_eq!(replayed, lived);
            n += 1;
        }
        prop_assert_eq!(n, steps, "replay must yield exactly the recorded length");
    }

    /// A stored trace serves any shorter request: its prefix equals a fresh
    /// walk of that length (the invariant the disk cache's prefix-serving
    /// relies on).
    #[test]
    fn prefix_of_longer_recording_equals_shorter_walk(
        walk_seed in any::<u64>(),
        short in 1usize..400,
        extra in 1usize..400,
    ) {
        let program = Program::generate(&small_spec(7, false));
        let long = RecordedTrace::record(&program, walk_seed, 6, short + extra);
        let fresh = RecordedTrace::record(&program, walk_seed, 6, short);
        prop_assert_eq!(long.prefix(short), fresh);
    }

    /// Chunked replay is a pure partition of the step stream: concatenating
    /// the steps of `chunks(steps, chunk_size)` equals `replay().take(steps)`
    /// for any chunk size, including sizes around and beyond the length.
    #[test]
    fn chunks_concatenate_to_the_replay_stream(
        prog_seed in any::<u64>(),
        walk_seed in any::<u64>(),
        bolted in any::<bool>(),
        steps in 0usize..900,
        chunk in 1usize..1100,
    ) {
        let program = Program::generate(&small_spec(prog_seed, bolted));
        let trace = RecordedTrace::record(&program, walk_seed, 6, 900);
        let whole: Vec<_> = trace.replay().take(steps).collect();
        let chunked: Vec<_> = trace.chunks(steps, chunk).flatten().collect();
        prop_assert_eq!(chunked, whole);
        prop_assert_eq!(trace.chunks(steps, chunk).count(), steps.div_ceil(chunk));
    }

    /// RNG isolation: recording a trace mid-walk must not perturb an
    /// independent live walker. The walker drawn to completion in one gulp
    /// must equal the walker that was interleaved with recording activity.
    #[test]
    fn recording_does_not_perturb_a_live_walker(
        walk_seed in any::<u64>(),
        pause_at in 1usize..300,
    ) {
        let program = Program::generate(&small_spec(11, true));
        let reference: Vec<_> =
            Walker::new(&program, walk_seed, 6).take(600).collect();

        let mut interleaved = Walker::new(&program, walk_seed, 6);
        let mut observed: Vec<_> = (&mut interleaved).take(pause_at).collect();
        // Recording here uses its own fresh walker internally; if it shared
        // or reseeded any global state, the resumed stream would diverge.
        let _ = RecordedTrace::record(&program, walk_seed ^ 0xDEAD, 9, 500);
        observed.extend(interleaved.take(600 - pause_at));
        prop_assert_eq!(observed, reference);
    }
}

/// Each chunk opens at the walker-chaining invariant's boundary: its first
/// step's `block_start` equals the previous chunk's final `next_pc`, with no
/// scan over the skipped prefix. Exercises the edge sizes explicitly.
#[test]
fn chunk_boundaries_chain_without_scanning() {
    let program = Program::generate(&small_spec(5, false));
    let trace = RecordedTrace::record(&program, 42, 6, 1000);
    for chunk_size in [1usize, 7, 250, 999, 1000, 1001] {
        let chunks: Vec<Vec<_>> = trace
            .chunks(1000, chunk_size)
            .map(Iterator::collect)
            .collect();
        assert_eq!(chunks.len(), 1000usize.div_ceil(chunk_size));
        for pair in chunks.windows(2) {
            let prev_last = pair[0].last().expect("chunks are non-empty");
            let next_first = pair[1].first().expect("chunks are non-empty");
            assert_eq!(
                next_first.block_start, prev_last.next_pc,
                "chunk_size={chunk_size}"
            );
        }
    }
    // Degenerate shapes: zero steps yields no chunks; an oversized chunk
    // yields exactly one covering the whole request.
    assert_eq!(trace.chunks(0, 64).count(), 0);
    let all: Vec<_> = trace.chunks(1000, 4096).flatten().collect();
    assert_eq!(all.len(), 1000);
}

/// Replaying twice from one recording yields identical streams — replay holds
/// no hidden mutable state.
#[test]
fn replay_is_stateless_and_repeatable() {
    let program = Program::generate(&small_spec(3, false));
    let trace = RecordedTrace::record(&program, 42, 6, 2000);
    let a: Vec<_> = trace.replay().collect();
    let b: Vec<_> = trace.replay().collect();
    assert_eq!(a, b);
    assert_eq!(a.len(), 2000);
}
