//! Concurrent cache discipline: simultaneous `load_or_generate` /
//! `load_or_record_trace` calls for the *same* key must never publish a torn
//! entry or return divergent results.
//!
//! The store path writes a uniquely-named temp file and renames it into
//! place; the unique name must hold per thread, not just per process — a
//! pid-only suffix lets two racing threads interleave writes into one temp
//! file and then publish the mangled bytes. These tests race threads through
//! a barrier and verify byte-identical results, a loadable published entry,
//! and no stray temp files.

use std::sync::{Arc, Barrier};

use skia_workloads::cache::{load_or_generate_in, load_or_record_trace_in};
use skia_workloads::{Program, ProgramSpec, RecordedTrace};

fn test_spec(seed: u64) -> ProgramSpec {
    ProgramSpec {
        seed,
        functions: 50,
        ..ProgramSpec::default()
    }
}

fn assert_programs_equal(a: &Program, b: &Program) {
    assert_eq!(a.base(), b.base());
    assert_eq!(a.code_bytes(), b.code_bytes());
    assert_eq!(
        a.bytes_at(a.base(), a.code_bytes()),
        b.bytes_at(b.base(), b.code_bytes())
    );
    assert_eq!(a.functions(), b.functions());
}

fn no_temp_leftovers(dir: &std::path::Path) {
    let leftovers: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
        .collect();
    assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
}

#[test]
fn racing_program_stores_publish_identical_untorn_entries() {
    let dir = std::env::temp_dir().join(format!("skia-conc-prog-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    const THREADS: usize = 4;
    const ROUNDS: usize = 6;
    for round in 0..ROUNDS {
        let spec = test_spec(0xC0CC + round as u64);
        let reference = Program::generate(&spec);
        let barrier = Arc::new(Barrier::new(THREADS));
        let results: Vec<Program> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let barrier = Arc::clone(&barrier);
                    let dir = dir.clone();
                    let spec = spec.clone();
                    s.spawn(move || {
                        barrier.wait();
                        load_or_generate_in(Some(&dir), &spec)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for got in &results {
            assert_programs_equal(&reference, got);
        }
        // Whatever entry the race published must itself load cleanly and
        // byte-identically (a torn file would miss, or worse, differ).
        assert_programs_equal(&reference, &load_or_generate_in(Some(&dir), &spec));
        no_temp_leftovers(&dir);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn racing_trace_stores_publish_identical_untorn_entries() {
    let dir = std::env::temp_dir().join(format!("skia-conc-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    const THREADS: usize = 4;
    let spec = test_spec(0x7CACE);
    let program = Program::generate(&spec);
    let reference = RecordedTrace::record(&program, 11, 8, 600);

    for _ in 0..4 {
        let barrier = Arc::new(Barrier::new(THREADS));
        let results: Vec<RecordedTrace> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let barrier = Arc::clone(&barrier);
                    let dir = dir.clone();
                    let (program, spec) = (&program, &spec);
                    s.spawn(move || {
                        barrier.wait();
                        let (t, _outcome) =
                            load_or_record_trace_in(Some(&dir), program, spec, 11, 8, 600);
                        t
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for got in &results {
            assert_eq!(&reference, got);
        }
        let (served, _) = load_or_record_trace_in(Some(&dir), &program, &spec, 11, 8, 600);
        assert_eq!(reference, served);
        no_temp_leftovers(&dir);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
