//! Deterministic control-flow walker.
//!
//! Produces the *retired* instruction stream the front-end simulator
//! replays: an infinite iterator of [`TraceStep`]s, one per executed basic
//! block. Outcomes are a pure function of the program, the seed and the
//! step index, so every simulator configuration replays the identical true
//! path (the paper's §5.4 divergence-control concern, solved exactly).
//!
//! Behaviour model:
//!
//! * **Calls** pick the statically encoded callee; **indirect calls/jumps**
//!   choose among their target set, weighted toward hot functions.
//! * **Conditionals**: loop backedges run trip counts drawn around the
//!   spec's mean; other conditionals flip a per-branch biased coin (bias is
//!   a static property of the branch, as in real code).
//! * **Returns** pop the walker's call stack; the dispatcher (function 0)
//!   restarts forever, modeling a server request loop.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skia_isa::BranchKind;
use std::collections::HashMap;

use crate::program::Program;

/// One executed basic block and its terminating branch outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// Address of the block's first instruction.
    pub block_start: u64,
    /// Address of the terminating branch.
    pub branch_pc: u64,
    /// Encoded length of the branch.
    pub branch_len: u8,
    /// Branch classification.
    pub kind: BranchKind,
    /// Whether the branch was taken.
    pub taken: bool,
    /// The next executed instruction address (target if taken, fallthrough
    /// otherwise).
    pub next_pc: u64,
    /// Instructions executed in this block (terminator included).
    pub insns: u32,
}

impl TraceStep {
    /// First byte after the terminator.
    #[must_use]
    pub fn block_end(&self) -> u64 {
        self.branch_pc + u64::from(self.branch_len)
    }
}

/// Infinite trace iterator over a [`Program`].
#[derive(Debug, Clone)]
pub struct Walker<'p> {
    program: &'p Program,
    rng: SmallRng,
    /// (function idx, block idx) currently executing.
    cur: (u32, u32),
    /// Return stack: (function idx, block idx) to resume *after* the call.
    stack: Vec<(u32, u32)>,
    /// Live loop trip counters, keyed by backedge pc.
    trips: HashMap<u64, u32>,
    mean_trip: u32,
    max_stack: usize,
    /// Recent dispatcher targets (request-burst temporal locality).
    burst_pool: Vec<u64>,
    burst_next: usize,
    burst_prob: f64,
    burst_cap: usize,
}

impl<'p> Walker<'p> {
    /// Current call-stack depth (diagnostic).
    #[must_use]
    pub fn stack_depth(&self) -> usize {
        self.stack.len()
    }

    /// Start walking `program` from the dispatcher (function 0).
    #[must_use]
    pub fn new(program: &'p Program, seed: u64, mean_trip: u32) -> Self {
        let spec = program.spec_burst();
        Walker {
            program,
            rng: SmallRng::seed_from_u64(seed ^ 0x57A1_C0DE),
            cur: (0, 0),
            stack: Vec::with_capacity(64),
            trips: HashMap::new(),
            mean_trip: mean_trip.max(1),
            max_stack: 256,
            burst_pool: Vec::with_capacity(spec.0),
            burst_next: 0,
            burst_prob: spec.1,
            burst_cap: spec.0,
        }
    }
}

impl Iterator for Walker<'_> {
    type Item = TraceStep;

    fn next(&mut self) -> Option<TraceStep> {
        let program = self.program;
        let (fi, bi) = self.cur;
        let func = &program.functions()[fi as usize];
        let block = &func.blocks[bi as usize];
        let t = &block.terminator;

        let (taken, next_pc, next_loc): (bool, u64, (u32, u32)) = match t.kind {
            BranchKind::Return => {
                let resume = self.stack.pop().unwrap_or((0, 0));
                let addr = program.functions()[resume.0 as usize].blocks[resume.1 as usize].start;
                (true, addr, resume)
            }
            BranchKind::DirectUncond => {
                let target = t.target.expect("uncond has target");
                let loc = program.locate_block(target).expect("target is a block");
                (true, target, loc)
            }
            BranchKind::Call => {
                let target = t.target.expect("call has target");
                let loc = program.locate_block(target).expect("callee entry");
                if self.stack.len() < self.max_stack {
                    self.stack.push((fi, bi + 1));
                } // else: deepest frame lost; resume collapses to dispatcher
                (true, target, loc)
            }
            BranchKind::IndirectCall => {
                // Weighted choice among the target set (hotter = likelier).
                // Dispatcher calls additionally model request bursts: most
                // requests repeat a recently seen target, so hot sets stay
                // warm while cold targets recur at long distances.
                let targets = &t.indirect_targets;
                let from_pool = fi == 0
                    && self.burst_cap > 0
                    && !self.burst_pool.is_empty()
                    && self.rng.gen_bool(self.burst_prob);
                let target = if from_pool {
                    self.burst_pool[self.rng.gen_range(0..self.burst_pool.len())]
                } else {
                    let fresh = *weighted_pick(&mut self.rng, program, targets);
                    if fi == 0 && self.burst_cap > 0 {
                        if self.burst_pool.len() < self.burst_cap {
                            self.burst_pool.push(fresh);
                        } else {
                            self.burst_pool[self.burst_next] = fresh;
                            self.burst_next = (self.burst_next + 1) % self.burst_cap;
                        }
                    }
                    fresh
                };
                let loc = program.locate_block(target).expect("indirect callee");
                if self.stack.len() < self.max_stack {
                    self.stack.push((fi, bi + 1));
                }
                (true, target, loc)
            }
            BranchKind::IndirectJmp => {
                let targets = &t.indirect_targets;
                let target = targets[self.rng.gen_range(0..targets.len())];
                let loc = program.locate_block(target).expect("indirect block");
                (true, target, loc)
            }
            BranchKind::DirectCond => {
                let taken = if t.backedge {
                    // Trip-counted loop: taken while iterations remain.
                    let mean = self.mean_trip;
                    let remaining = self.trips.entry(t.pc).or_insert_with(|| {
                        // 1..2·mean, deterministic per (pc, entry).
                        self.rng.gen_range(1..=mean * 2)
                    });
                    if *remaining > 0 {
                        *remaining -= 1;
                        true
                    } else {
                        self.trips.remove(&t.pc);
                        false
                    }
                } else {
                    // Static per-branch bias. Real conditionals are strongly
                    // bimodal (error paths almost-never, guard checks
                    // almost-always); only a minority are balanced. This is
                    // what lets a TAGE-class predictor reach realistic
                    // accuracy on the synthetic trace.
                    // Half the forward conditionals are almost-always taken:
                    // hot jumps over cold fall-through regions — the very
                    // structure of the paper's Fig. 2 (cold bytes in the
                    // shadow of an executed exit point).
                    // Hot jumps are *very* strongly biased (99.5%): their
                    // cold fall-through regions then recur beyond the BTB's
                    // eviction horizon (genuine capacity-missing "cold"
                    // branches) while staying in the shadow of hot fetches.
                    let p = match t.bias {
                        0..=4 => 0.98,
                        5..=7 => 0.02,
                        8 => 0.10,
                        _ => 0.75,
                    };
                    self.rng.gen_bool(p)
                };
                if taken {
                    let target = t.target.expect("cond has target");
                    let loc = program.locate_block(target).expect("cond target");
                    (true, target, loc)
                } else {
                    (false, t.fallthrough, (fi, bi + 1))
                }
            }
        };

        self.cur = next_loc;
        Some(TraceStep {
            block_start: block.start,
            branch_pc: t.pc,
            branch_len: t.len,
            kind: t.kind,
            taken,
            next_pc,
            insns: block.insns,
        })
    }
}

/// Pick an address from `targets`, weighted by the owning function's
/// hotness — tempered so cold targets recur at long intervals instead of
/// never (the paper's "cold branch" capacity-miss behaviour, §1).
fn weighted_pick<'a>(rng: &mut SmallRng, program: &Program, targets: &'a [u64]) -> &'a u64 {
    debug_assert!(!targets.is_empty());
    // 30% of picks are uniform: every callee, however cold, keeps recurring.
    if rng.gen_bool(0.30) {
        return &targets[rng.gen_range(0..targets.len())];
    }
    // Tempered hotness (square root) flattens the Zipf head so one hot
    // callee does not monopolize a call site.
    let weights: Vec<f64> = targets
        .iter()
        .map(|&t| {
            program
                .locate_block(t)
                .map_or(1e-6, |(fi, _)| program.functions()[fi as usize].weight)
                .sqrt()
        })
        .collect();
    let total: f64 = weights.iter().sum();
    let mut pick = rng.gen_range(0.0..total.max(1e-12));
    for (i, w) in weights.iter().enumerate() {
        if pick < *w {
            return &targets[i];
        }
        pick -= w;
    }
    targets.last().expect("nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Program, ProgramSpec};

    fn program() -> Program {
        Program::generate(&ProgramSpec {
            functions: 40,
            ..ProgramSpec::default()
        })
    }

    #[test]
    fn steps_chain_consistently() {
        let p = program();
        let mut w = Walker::new(&p, 7, 8);
        let mut prev_next: Option<u64> = None;
        for step in (&mut w).take(5000) {
            if let Some(expected) = prev_next {
                assert_eq!(step.block_start, expected, "steps must chain");
            }
            assert!(step.branch_pc >= step.block_start);
            if !step.taken {
                assert_eq!(step.next_pc, step.block_end());
            }
            prev_next = Some(step.next_pc);
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let p = program();
        let a: Vec<_> = Walker::new(&p, 42, 8).take(2000).collect();
        let b: Vec<_> = Walker::new(&p, 42, 8).take(2000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let p = program();
        let a: Vec<_> = Walker::new(&p, 1, 8).take(2000).collect();
        let b: Vec<_> = Walker::new(&p, 2, 8).take(2000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn walker_visits_many_functions() {
        let p = program();
        let visited: std::collections::HashSet<u64> = Walker::new(&p, 3, 8)
            .take(20_000)
            .map(|s| s.block_start)
            .collect();
        assert!(
            visited.len() > 50,
            "should roam the program, saw {} blocks",
            visited.len()
        );
    }

    #[test]
    fn returns_balance_calls_in_the_long_run() {
        let p = program();
        let mut calls = 0i64;
        let mut rets = 0i64;
        for s in Walker::new(&p, 9, 8).take(50_000) {
            match s.kind {
                BranchKind::Call | BranchKind::IndirectCall => calls += 1,
                BranchKind::Return => rets += 1,
                _ => {}
            }
        }
        // Dispatcher restarts add extra returns bounded by loop count.
        assert!((calls - rets).abs() < calls / 2 + 100, "{calls} vs {rets}");
    }

    #[test]
    fn backedges_terminate() {
        // If loops did not terminate the walker would stick to one block.
        let p = program();
        let steps: Vec<_> = Walker::new(&p, 11, 4).take(10_000).collect();
        let distinct: std::collections::HashSet<u64> =
            steps.iter().map(|s| s.block_start).collect();
        assert!(distinct.len() > 20);
    }
}
