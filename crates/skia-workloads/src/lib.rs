//! # skia-workloads — synthetic front-end-bound workloads
//!
//! The paper evaluates Skia on 16 commercial multi-threaded workloads
//! (DaCapo, Renaissance, OLTP-Bench/PostgreSQL, Chipyard/Verilator,
//! BrowserBench) checkpointed from a real Alder Lake machine. Those
//! binaries, JVMs and checkpoints are not reproducible here, so this crate
//! builds the *mechanism-equivalent* substrate: synthetic programs whose
//! **real x86-64 code bytes** and control-flow traces exhibit the properties
//! Skia exploits —
//!
//! * code footprints far exceeding the L1-I and BTB reach (capacity-miss
//!   "cold" branches that recur at long distances, §1);
//! * hot and cold functions co-located on the same cache lines (the source
//!   of head/tail shadow branches, §2.3);
//! * per-workload branch-type mixes matching the paper's Fig. 6 (OLTP
//!   workloads call/return heavy, kafka conditional-heavy, …).
//!
//! The three layers:
//!
//! * [`program`] — generates a flat code image of functions/basic blocks
//!   with every instruction emitted through `skia_isa::encode` (so shadow
//!   decoding runs on genuine bytes), plus ground-truth branch metadata.
//! * [`walker`] — a deterministic, infinite control-flow walker producing
//!   the retired-branch trace the front-end simulator replays (Zipf-weighted
//!   calls, biased conditionals, trip-counted loops).
//! * [`profiles`] — the 16 named benchmark profiles of Table 2 plus the
//!   pre-BOLT verilator variant (§6.1.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod profiles;
pub mod program;
pub mod sampling;
pub mod side_table;
pub mod trace;
pub mod walker;

pub use cache::{
    cache_root, load_or_generate, load_or_generate_in, load_or_record_trace,
    load_or_record_trace_in, trace_cache_io, TraceCacheIo, TraceCacheOutcome,
};
pub use profiles::{profile, profile_names, Profile};
pub use program::{BasicBlock, BranchMeta, Function, Layout, Program, ProgramSpec};
pub use sampling::{interval_bbvs, SamplingConfig, SamplingPlan, SliceJob};
pub use side_table::{BranchRecord, BranchTable};
pub use trace::{RecordedTrace, Replay};
pub use walker::{TraceStep, Walker};
