//! SimPoint-style phase sampling over a [`RecordedTrace`].
//!
//! The paper's workloads run billions of instructions; replaying every
//! recorded step caps practical runs near 400k steps. Phase sampling is the
//! standard way out (Sherwood et al., ASPLOS 2002; the protocol of
//! production trace harnesses such as cbp-experiments' `simpoint.rs`):
//! slice the trace into fixed-size **intervals**, summarize each interval
//! by a **basic-block vector** (BBV — how execution distributed over the
//! program's blocks), cluster the BBVs with k-means, and simulate only one
//! **representative** interval per cluster, weighting its measured counters
//! by the cluster's share of the whole trace.
//!
//! Everything here is a pure function of the recorded columns and the
//! [`SamplingConfig`]: BBVs are a single pass over the `branch_pc`/`insns`
//! columns (no replay, no decoding), k-means is seeded and serial, and ties
//! break toward the lowest index — so a plan is byte-identical across
//! repeated runs and thread counts, the same determinism contract as the
//! rest of the repo. The plan's slice windows are prefix-bounded column
//! reads, which the PR 4 trace cache already serves in O(slice).
//!
//! The companion measurement machinery (warmup-then-measure replay and the
//! weighted whole-trace estimator) lives in `skia-frontend::sampling`; the
//! `sampled_vs_full` harness in `skia-experiments` validates the estimates
//! against full replays under explicit error bounds.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::trace::RecordedTrace;

/// Parameters of plan construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Steps per interval (the sampling granularity).
    pub interval: usize,
    /// Maximum clusters — i.e. maximum simulated slices (clamped to the
    /// interval count; empty clusters are dropped).
    pub k: usize,
    /// Steps replayed with telemetry muted before each measured window, to
    /// warm predictors and caches out of the slice's cold start.
    pub warmup: usize,
    /// Seed of the k-means++ initialization RNG.
    pub seed: u64,
    /// BBV dimensionality: block addresses are feature-hashed into this
    /// many dimensions (classic SimPoint projects to ~15; 32 keeps the
    /// serial k-means cheap at any trace length).
    pub dims: usize,
    /// Lloyd-iteration cap (convergence usually ends it much earlier).
    pub iters: usize,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            interval: 16_000,
            k: 3,
            warmup: 1_600,
            seed: 0x5_1A_5A_3B,
            dims: 32,
            iters: 50,
        }
    }
}

impl SamplingConfig {
    /// Scale the interval (and its warmup) to the run length: ~25 intervals
    /// per trace, clamped to `[1_000, 16_000]` steps, warmup one tenth of an
    /// interval. With the default `k = 3` this replays ≤ `3×(interval +
    /// warmup)` ≈ 13% of the trace — better than 7× step-count compression
    /// at every scale from the 40k smoke runs to the 400k standing default.
    /// The shape was tuned against the 12-workload pin suite: fewer, larger
    /// intervals keep branch-mix composition error low (each measured
    /// window averages over more of the walk), and the short warmup
    /// suffices because slices replay with state carryover (see
    /// `skia-frontend::sampling`) — warmup only re-syncs recent-phase
    /// predictor state, not whole structures from cold.
    #[must_use]
    pub fn for_steps(steps: usize) -> Self {
        let interval = (steps / 25).clamp(1_000, 16_000);
        SamplingConfig {
            interval,
            warmup: interval / 10,
            ..SamplingConfig::default()
        }
    }
}

/// One simulated slice of a [`SamplingPlan`].
///
/// Replay semantics: skip the first `skip` steps entirely, replay the next
/// `warmup` steps with telemetry muted, then measure the next `simulate`
/// steps. The measured counters represent `weight_steps` steps of the whole
/// trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceJob {
    /// Steps skipped before the warmup window.
    pub skip: usize,
    /// Muted warmup steps (`[skip, skip + warmup)`).
    pub warmup: usize,
    /// Measured steps (`[skip + warmup, skip + warmup + simulate)`).
    pub simulate: usize,
    /// Whole-trace steps this slice stands for (its cluster's total).
    pub weight_steps: u64,
}

impl SliceJob {
    /// First measured step index.
    #[must_use]
    pub fn measure_start(&self) -> usize {
        self.skip + self.warmup
    }

    /// One past the last measured step index.
    #[must_use]
    pub fn measure_end(&self) -> usize {
        self.measure_start() + self.simulate
    }
}

/// A complete sampling plan: which slices to simulate and how to weight
/// them back into a whole-trace estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplingPlan {
    /// Steps of the full run this plan estimates.
    pub total_steps: usize,
    /// Interval size the plan was built with.
    pub interval: usize,
    /// Cluster budget the plan was built with.
    pub k: usize,
    /// k-means seed the plan was built with.
    pub seed: u64,
    /// Slices in ascending `skip` order. `Σ weight_steps == total_steps`.
    pub slices: Vec<SliceJob>,
}

impl SamplingPlan {
    /// Build a plan for the first `steps` steps of `trace`.
    ///
    /// # Panics
    ///
    /// Panics if `steps > trace.len()` or a config field is zero where a
    /// positive value is required.
    #[must_use]
    pub fn build(trace: &RecordedTrace, steps: usize, cfg: &SamplingConfig) -> SamplingPlan {
        assert!(steps <= trace.len(), "plan longer than recording");
        assert!(cfg.interval > 0, "interval must be positive");
        assert!(cfg.k > 0, "need at least one cluster");
        assert!(cfg.dims > 0, "need at least one BBV dimension");
        let mut plan = SamplingPlan {
            total_steps: steps,
            interval: cfg.interval,
            k: cfg.k,
            seed: cfg.seed,
            slices: Vec::new(),
        };
        if steps == 0 {
            return plan;
        }
        let bbvs = interval_bbvs(trace, steps, cfg.interval, cfg.dims);
        let n = bbvs.len();
        let k = cfg.k.min(n);
        let (assign, centroids) = kmeans(&bbvs, k, cfg.seed, cfg.iters);
        let interval_len = |i: usize| (steps - i * cfg.interval).min(cfg.interval);
        for (c, centroid) in centroids.iter().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assign[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            let weight_steps: u64 = members.iter().map(|&i| interval_len(i) as u64).sum();
            // Representative: the member closest to the centroid; the
            // strict `<` breaks ties toward the lowest interval index.
            let rep = members
                .iter()
                .copied()
                .fold((usize::MAX, f64::INFINITY), |best, i| {
                    let d = dist2(&bbvs[i], centroid);
                    if d < best.1 {
                        (i, d)
                    } else {
                        best
                    }
                })
                .0;
            let start = rep * cfg.interval;
            let warmup = cfg.warmup.min(start);
            plan.slices.push(SliceJob {
                skip: start - warmup,
                warmup,
                simulate: interval_len(rep),
                weight_steps,
            });
        }
        plan.slices.sort_by_key(|s| s.skip);
        debug_assert_eq!(
            plan.slices.iter().map(|s| s.weight_steps).sum::<u64>(),
            steps as u64,
            "cluster weights must partition the trace"
        );
        plan
    }

    /// The trivial plan: one slice covering the whole trace with zero
    /// warmup and weight 1. Estimating through it reproduces the full run's
    /// stats byte-exactly (the `sampled_vs_full` proptest pins this).
    #[must_use]
    pub fn degenerate(steps: usize) -> SamplingPlan {
        SamplingPlan {
            total_steps: steps,
            interval: steps.max(1),
            k: 1,
            seed: 0,
            slices: if steps == 0 {
                Vec::new()
            } else {
                vec![SliceJob {
                    skip: 0,
                    warmup: 0,
                    simulate: steps,
                    weight_steps: steps as u64,
                }]
            },
        }
    }

    /// Whether this plan is the whole-trace identity (single zero-warmup
    /// slice covering every step).
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        self.total_steps == 0
            || (self.slices.len() == 1
                && self.slices[0].skip == 0
                && self.slices[0].warmup == 0
                && self.slices[0].simulate == self.total_steps)
    }

    /// Measured steps (Σ simulate).
    #[must_use]
    pub fn measured_steps(&self) -> usize {
        self.slices.iter().map(|s| s.simulate).sum()
    }

    /// Replayed steps (Σ warmup + simulate) — the work a sampled run pays,
    /// and the numerator of the compression claim.
    #[must_use]
    pub fn replayed_steps(&self) -> usize {
        self.slices.iter().map(|s| s.warmup + s.simulate).sum()
    }

    /// Full-replay steps per sampled-replay step (≥ 5 is the standing
    /// target at default config). 1.0 for the degenerate plan.
    #[must_use]
    pub fn compression(&self) -> f64 {
        let replayed = self.replayed_steps();
        if replayed == 0 {
            1.0
        } else {
            self.total_steps as f64 / replayed as f64
        }
    }

    /// FNV-1a fingerprint of every plan field — the provenance counter
    /// sampled snapshots carry so a result can be traced to the exact plan
    /// that produced it.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(32 + self.slices.len() * 28);
        for v in [
            self.total_steps as u64,
            self.interval as u64,
            self.k as u64,
            self.seed,
        ] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for s in &self.slices {
            for v in [
                s.skip as u64,
                s.warmup as u64,
                s.simulate as u64,
                s.weight_steps,
            ] {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        skia_telemetry::fnv1a(&bytes)
    }

    /// Panic unless every slice window lies inside a `steps`-long replay
    /// and the weights partition it (drivers call this before simulating).
    pub fn validate(&self, steps: usize) {
        assert_eq!(self.total_steps, steps, "plan built for a different length");
        let mut weight = 0u64;
        for s in &self.slices {
            assert!(s.simulate > 0, "empty measure window");
            assert!(s.measure_end() <= steps, "slice past the end of the run");
            weight += s.weight_steps;
        }
        assert_eq!(weight, steps as u64, "weights must partition the trace");
    }
}

/// Per-interval basic-block vectors for the first `steps` steps.
///
/// Each retired step is one basic block (`branch_pc` terminates it);
/// classic SimPoint weighs a block by its instruction count, so dimension
/// `hash(branch_pc) % dims` accumulates `insns`. Vectors are L2-normalized
/// (phase *shape*, not phase *length* — the final partial interval must be
/// comparable to full ones). A single column pass; no replay.
///
/// # Panics
///
/// Panics if `steps > trace.len()`, or `interval`/`dims` is zero.
#[must_use]
pub fn interval_bbvs(
    trace: &RecordedTrace,
    steps: usize,
    interval: usize,
    dims: usize,
) -> Vec<Vec<f64>> {
    assert!(steps <= trace.len(), "BBVs longer than recording");
    assert!(interval > 0, "interval must be positive");
    assert!(dims > 0, "need at least one dimension");
    let n = steps.div_ceil(interval);
    let mut bbvs = vec![vec![0.0f64; dims]; n];
    for i in 0..steps {
        let d = (splitmix64(trace.branch_pc[i]) % dims as u64) as usize;
        bbvs[i / interval][d] += f64::from(trace.insns[i]);
    }
    for bbv in &mut bbvs {
        let norm = bbv.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            for v in bbv.iter_mut() {
                *v /= norm;
            }
        }
    }
    bbvs
}

/// Seeded k-means over the BBVs: k-means++ initialization from a
/// [`SmallRng`], Lloyd iterations to convergence (or `iters`), ties toward
/// the lowest centroid index, empty clusters keep their previous centroid.
/// Serial by construction, so plans are identical at any `SKIA_THREADS`.
///
/// Returns `(assignment per interval, centroids)`.
fn kmeans(bbvs: &[Vec<f64>], k: usize, seed: u64, iters: usize) -> (Vec<usize>, Vec<Vec<f64>>) {
    let n = bbvs.len();
    debug_assert!(k >= 1 && k <= n);
    let dims = bbvs[0].len();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x51_3B_B5_EE);

    // k-means++: first centroid uniform, later ones D²-weighted.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(bbvs[rng.gen_range(0..n)].clone());
    let mut d2: Vec<f64> = bbvs.iter().map(|b| dist2(b, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with a centroid; any pick works — stay
            // deterministic by advancing the same RNG.
            rng.gen_range(0..n)
        } else {
            let mut pick = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if pick < d {
                    chosen = i;
                    break;
                }
                pick -= d;
            }
            chosen
        };
        centroids.push(bbvs[next].clone());
        for (i, b) in bbvs.iter().enumerate() {
            d2[i] = d2[i].min(dist2(b, centroids.last().expect("just pushed")));
        }
    }

    let mut assign = vec![0usize; n];
    for _ in 0..iters.max(1) {
        let mut changed = false;
        for (i, b) in bbvs.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = dist2(b, centroid);
                if d < best_d {
                    best = c;
                    best_d = d;
                }
            }
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assign[i] == c).collect();
            if members.is_empty() {
                continue; // keep the previous centroid
            }
            let inv = 1.0 / members.len() as f64;
            for (d, slot) in centroid.iter_mut().enumerate().take(dims) {
                *slot = members.iter().map(|&i| bbvs[i][d]).sum::<f64>() * inv;
            }
        }
    }
    (assign, centroids)
}

/// Squared Euclidean distance.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// SplitMix64 finalizer — the block-address feature hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Program, ProgramSpec};

    fn trace(steps: usize) -> RecordedTrace {
        let p = Program::generate(&ProgramSpec {
            functions: 40,
            ..ProgramSpec::default()
        });
        RecordedTrace::record(&p, 42, 6, steps)
    }

    #[test]
    fn bbv_interval_boundary_on_chunk_boundary() {
        // 4096 steps at interval 1024: boundaries land exactly on the
        // batched kernel's chunk granularity and the taken-bitset word
        // multiples; every interval is full and every step is counted once.
        let t = trace(4096);
        let bbvs = interval_bbvs(&t, 4096, 1024, 16);
        assert_eq!(bbvs.len(), 4);
        for (i, bbv) in bbvs.iter().enumerate() {
            let norm: f64 = bbv.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "interval {i} not unit-norm");
        }
        // Concatenating two intervals' raw mass equals one double-width
        // interval's: no step is dropped or double-counted at boundaries.
        let wide = interval_bbvs(&t, 4096, 2048, 16);
        assert_eq!(wide.len(), 2);
    }

    #[test]
    fn bbv_partial_final_interval() {
        let t = trace(2500);
        let bbvs = interval_bbvs(&t, 2500, 1000, 8);
        assert_eq!(bbvs.len(), 3, "500-step tail gets its own interval");
        let norm: f64 = bbvs[2].iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(
            (norm - 1.0).abs() < 1e-9,
            "partial interval still unit-norm"
        );
    }

    #[test]
    fn bbv_empty_trace() {
        let t = trace(0);
        assert!(interval_bbvs(&t, 0, 1000, 8).is_empty());
        let plan = SamplingPlan::build(&t, 0, &SamplingConfig::default());
        assert!(plan.slices.is_empty());
        assert!(plan.is_degenerate());
        assert_eq!(plan.measured_steps(), 0);
        plan.validate(0);
    }

    #[test]
    fn bbv_interval_larger_than_trace() {
        let t = trace(700);
        let bbvs = interval_bbvs(&t, 700, 10_000, 8);
        assert_eq!(bbvs.len(), 1, "one partial interval");
        let plan = SamplingPlan::build(
            &t,
            700,
            &SamplingConfig {
                interval: 10_000,
                ..SamplingConfig::default()
            },
        );
        assert_eq!(plan.slices.len(), 1);
        let s = plan.slices[0];
        assert_eq!(
            (s.skip, s.warmup, s.simulate, s.weight_steps),
            (0, 0, 700, 700)
        );
        assert!(
            plan.is_degenerate(),
            "single whole-trace interval is the identity"
        );
    }

    #[test]
    fn plan_weights_partition_and_windows_are_in_bounds() {
        let t = trace(8_192);
        let cfg = SamplingConfig {
            interval: 1_000,
            k: 3,
            warmup: 250,
            ..SamplingConfig::default()
        };
        let plan = SamplingPlan::build(&t, 8_192, &cfg);
        plan.validate(8_192);
        assert!(plan.slices.len() <= 3);
        assert!(!plan.slices.is_empty());
        for s in &plan.slices {
            assert!(s.warmup <= 250);
            assert_eq!(s.warmup, s.warmup.min(s.skip + s.warmup)); // warmup clamped at trace start
        }
        // Slices are sorted and non-overlapping in their measure windows.
        for w in plan.slices.windows(2) {
            assert!(w[0].skip <= w[1].skip);
            assert!(w[0].measure_end() <= w[1].measure_end());
        }
    }

    #[test]
    fn plan_is_deterministic_for_a_seed_and_sensitive_to_it() {
        let t = trace(6_000);
        let cfg = SamplingConfig {
            interval: 500,
            k: 4,
            ..SamplingConfig::default()
        };
        let a = SamplingPlan::build(&t, 6_000, &cfg);
        let b = SamplingPlan::build(&t, 6_000, &cfg);
        assert_eq!(a, b, "same inputs, same plan");
        assert_eq!(a.fingerprint(), b.fingerprint());
        let other = SamplingPlan::build(
            &t,
            6_000,
            &SamplingConfig {
                seed: cfg.seed + 1,
                ..cfg
            },
        );
        // A different seed may or may not move the representatives, but the
        // fingerprint must track the seed either way.
        assert_ne!(a.fingerprint(), other.fingerprint());
    }

    #[test]
    fn degenerate_plan_shape() {
        let plan = SamplingPlan::degenerate(12_345);
        assert!(plan.is_degenerate());
        assert_eq!(plan.measured_steps(), 12_345);
        assert_eq!(plan.replayed_steps(), 12_345);
        assert!((plan.compression() - 1.0).abs() < 1e-12);
        plan.validate(12_345);
    }

    #[test]
    fn for_steps_hits_the_compression_target() {
        for steps in [40_000usize, 100_000, 400_000] {
            let cfg = SamplingConfig::for_steps(steps);
            // Worst case every cluster is non-empty and warmup is full.
            let replayed = cfg.k * (cfg.interval + cfg.warmup);
            assert!(
                steps as f64 / replayed as f64 >= 5.0,
                "steps={steps}: worst-case compression {}",
                steps as f64 / replayed as f64
            );
        }
    }

    #[test]
    fn window_matches_skip_take_and_chunks_range_concatenates() {
        let t = trace(3_000);
        let direct: Vec<_> = t.replay().skip(700).take(800).collect();
        let windowed: Vec<_> = t.window(700, 1_500).collect();
        assert_eq!(direct, windowed);
        let chunked: Vec<_> = t.chunks_range(700, 1_500, 256).flatten().collect();
        assert_eq!(direct, chunked);
        assert_eq!(t.window(0, 0).count(), 0);
        assert_eq!(t.window(3_000, 3_000).count(), 0);
    }
}
