//! On-disk program-image cache.
//!
//! [`Program::generate`] is a pure function of its [`ProgramSpec`], but for
//! the paper-scale profiles it costs tens of milliseconds each — and every
//! figure binary regenerates all 16 benchmarks, so a full
//! `run_experiments.sh` sweep pays 12 × 16 generations for 16 distinct
//! programs. This module memoizes generation on disk: the serialized
//! program is stored under a cache directory keyed by a hash of the spec's
//! canonical byte encoding, and [`load_or_generate`] returns the cached
//! image when present.
//!
//! The cache directory is `target/skia-cache/` by default; the `SKIA_CACHE`
//! environment variable overrides it (`SKIA_CACHE=0` or `off` disables
//! caching entirely). Cache files are versioned and embed the full
//! canonical spec bytes, so a hash collision or a format change falls back
//! to regeneration rather than returning a wrong program. All I/O is
//! best-effort: an unreadable or unwritable cache only costs time, never
//! correctness. Writes go through a temp file + rename so concurrent
//! processes never observe a torn entry.
//!
//! The serialization is hand-rolled little-endian (the derived indexes are
//! rebuilt on load, not stored): the format is private to this module and
//! versioned by [`FORMAT_VERSION`], so it can change freely between
//! releases — stale files simply miss.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use skia_isa::BranchKind;

use crate::program::{BasicBlock, BranchMeta, Function, Layout, Program, ProgramSpec};

/// Bumped whenever the on-disk layout or the generator's output changes;
/// mismatched files are regenerated.
const FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"SKIAPROG";

/// Generate `spec`'s program, consulting the on-disk cache first.
///
/// Equivalent to [`Program::generate`] in every observable way — the cached
/// round trip reproduces the image bytes, ground-truth metadata and derived
/// indexes exactly (asserted by the round-trip tests below).
#[must_use]
pub fn load_or_generate(spec: &ProgramSpec) -> Program {
    let Some(dir) = cache_dir() else {
        return Program::generate(spec);
    };
    let key = spec_key(spec);
    let path = dir.join(format!("program-{key:016x}-v{FORMAT_VERSION}.bin"));
    if let Some(program) = try_load(&path, spec) {
        return program;
    }
    let program = Program::generate(spec);
    try_store(&dir, &path, spec, &program);
    program
}

/// Resolve the cache directory: `SKIA_CACHE` env var (a path, or `0`/`off`
/// to disable), else `skia-cache/` inside the build's target directory.
///
/// The default is anchored to the workspace rather than the working
/// directory — `cargo test` sets each test binary's CWD to its crate root,
/// and a CWD-relative default would scatter `target/skia-cache/` dirs
/// across the source tree.
fn cache_dir() -> Option<PathBuf> {
    match std::env::var("SKIA_CACHE") {
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") || v.is_empty() => None,
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => {
            let workspace = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
            Some(workspace.join("target").join("skia-cache"))
        }
    }
}

/// FNV-1a 64 over the canonical spec encoding — stable across runs and
/// platforms (unlike `DefaultHasher`, whose output is unspecified).
fn spec_key(spec: &ProgramSpec) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &spec_bytes(spec) {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Canonical byte encoding of a spec: every field in declaration order,
/// little-endian, floats via `to_bits`. Embedded in the cache file and
/// compared exactly on load, so the key hash only narrows the candidate —
/// it never decides a match.
fn spec_bytes(spec: &ProgramSpec) -> Vec<u8> {
    let mut out = Vec::with_capacity(160);
    let mut u64le = |v: u64| out.extend_from_slice(&v.to_le_bytes());
    u64le(spec.seed);
    u64le(spec.functions as u64);
    u64le(spec.blocks_per_fn.start as u64);
    u64le(spec.blocks_per_fn.end as u64);
    u64le(spec.insns_per_block.start as u64);
    u64le(spec.insns_per_block.end as u64);
    u64le(spec.cond_fraction.to_bits());
    u64le(spec.call_fraction.to_bits());
    u64le(spec.indirect_fraction.to_bits());
    u64le(spec.zipf_s.to_bits());
    u64le(spec.backedge_fraction.to_bits());
    u64le(u64::from(spec.mean_trip_count));
    u64le(spec.callees_per_fn as u64);
    u64le(spec.leaf_fraction.to_bits());
    u64le(spec.dispatch_blocks as u64);
    u64le(spec.dispatch_callees as u64);
    u64le(spec.burst_pool as u64);
    u64le(spec.burst_prob.to_bits());
    u64le(match spec.layout {
        Layout::Interleaved => 0,
        Layout::Bolted => 1,
    });
    out
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn serialize(spec: &ProgramSpec, program: &Program) -> Vec<u8> {
    let image = program.bytes_at(program.base(), program.code_bytes());
    let mut out = Vec::with_capacity(64 + image.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    let spec_enc = spec_bytes(spec);
    out.extend_from_slice(&(spec_enc.len() as u32).to_le_bytes());
    out.extend_from_slice(&spec_enc);
    out.extend_from_slice(&program.base().to_le_bytes());
    out.extend_from_slice(&(image.len() as u64).to_le_bytes());
    out.extend_from_slice(image);
    let (burst_pool, burst_prob) = program.spec_burst();
    out.extend_from_slice(&(burst_pool as u64).to_le_bytes());
    out.extend_from_slice(&burst_prob.to_bits().to_le_bytes());
    out.extend_from_slice(&(program.functions().len() as u64).to_le_bytes());
    for f in program.functions() {
        out.extend_from_slice(&f.entry.to_le_bytes());
        out.extend_from_slice(&f.weight.to_bits().to_le_bytes());
        out.extend_from_slice(&(f.blocks.len() as u64).to_le_bytes());
        for b in &f.blocks {
            out.extend_from_slice(&b.start.to_le_bytes());
            out.extend_from_slice(&b.insns.to_le_bytes());
            let t = &b.terminator;
            out.extend_from_slice(&t.pc.to_le_bytes());
            out.push(t.len);
            out.push(kind_code(t.kind));
            match t.target {
                Some(addr) => {
                    out.push(1);
                    out.extend_from_slice(&addr.to_le_bytes());
                }
                None => out.push(0),
            }
            out.extend_from_slice(&t.fallthrough.to_le_bytes());
            out.extend_from_slice(&(t.indirect_targets.len() as u32).to_le_bytes());
            for &addr in &t.indirect_targets {
                out.extend_from_slice(&addr.to_le_bytes());
            }
            out.push(u8::from(t.backedge));
            out.push(t.bias);
        }
    }
    out
}

fn kind_code(kind: BranchKind) -> u8 {
    BranchKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("every BranchKind is in ALL") as u8
}

/// Cursor-based reader; every method returns `None` on truncation so a
/// corrupt file degrades to a cache miss.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Bounded length prefix: caps vector preallocation to what the buffer
    /// could actually hold, so a corrupt length can't balloon memory.
    fn len(&mut self, elem_bytes: usize) -> Option<usize> {
        let n = usize::try_from(self.u64()?).ok()?;
        (n.saturating_mul(elem_bytes.max(1)) <= self.buf.len() - self.pos.min(self.buf.len()))
            .then_some(n)
    }
}

fn deserialize(bytes: &[u8], spec: &ProgramSpec) -> Option<Program> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(MAGIC.len())? != MAGIC || r.u32()? != FORMAT_VERSION {
        return None;
    }
    let spec_enc = spec_bytes(spec);
    let stored_len = usize::try_from(r.u32()?).ok()?;
    if stored_len != spec_enc.len() || r.take(stored_len)? != spec_enc.as_slice() {
        return None; // hash collision or different generator input
    }
    let base = r.u64()?;
    let image_len = usize::try_from(r.u64()?).ok()?;
    let image = r.take(image_len)?.to_vec();
    let burst_pool = usize::try_from(r.u64()?).ok()?;
    let burst_prob = r.f64()?;
    let nfuncs = r.len(17)?;
    let mut functions = Vec::with_capacity(nfuncs);
    for _ in 0..nfuncs {
        let entry = r.u64()?;
        let weight = r.f64()?;
        let nblocks = r.len(32)?;
        let mut blocks = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            let start = r.u64()?;
            let insns = r.u32()?;
            let pc = r.u64()?;
            let len = r.u8()?;
            let kind = *BranchKind::ALL.get(usize::from(r.u8()?))?;
            let target = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                _ => return None,
            };
            let fallthrough = r.u64()?;
            let ntargets = usize::try_from(r.u32()?).ok()?;
            let mut indirect_targets = Vec::with_capacity(ntargets.min(1024));
            for _ in 0..ntargets {
                indirect_targets.push(r.u64()?);
            }
            let backedge = match r.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            let bias = r.u8()?;
            blocks.push(BasicBlock {
                start,
                insns,
                terminator: BranchMeta {
                    pc,
                    len,
                    kind,
                    target,
                    fallthrough,
                    indirect_targets,
                    backedge,
                    bias,
                },
            });
        }
        functions.push(Function {
            entry,
            blocks,
            weight,
        });
    }
    if r.pos != bytes.len() {
        return None; // trailing garbage — treat as corrupt
    }
    Some(Program::from_parts(
        base,
        image,
        functions,
        (burst_pool, burst_prob),
    ))
}

// ---------------------------------------------------------------------------
// File I/O (best-effort)
// ---------------------------------------------------------------------------

fn try_load(path: &Path, spec: &ProgramSpec) -> Option<Program> {
    let bytes = std::fs::read(path).ok()?;
    deserialize(&bytes, spec)
}

fn try_store(dir: &Path, path: &Path, spec: &ProgramSpec, program: &Program) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    // Unique temp name per process so concurrent sweeps don't clobber each
    // other mid-write; rename is atomic on POSIX.
    let tmp = dir.join(format!(
        ".tmp-{:016x}-{}",
        spec_key(spec),
        std::process::id()
    ));
    let ok = std::fs::File::create(&tmp)
        .and_then(|mut f| f.write_all(&serialize(spec, program)))
        .is_ok();
    if ok {
        let _ = std::fs::rename(&tmp, path);
    } else {
        let _ = std::fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_spec() -> ProgramSpec {
        ProgramSpec {
            functions: 60,
            ..ProgramSpec::default()
        }
    }

    fn assert_programs_equal(a: &Program, b: &Program) {
        assert_eq!(a.base(), b.base());
        assert_eq!(a.code_bytes(), b.code_bytes());
        assert_eq!(
            a.bytes_at(a.base(), a.code_bytes()),
            b.bytes_at(b.base(), b.code_bytes())
        );
        assert_eq!(a.spec_burst(), b.spec_burst());
        assert_eq!(a.functions(), b.functions());
        // Derived indexes must be rebuilt faithfully.
        for f in a.functions() {
            for blk in &f.blocks {
                assert_eq!(a.locate_block(blk.start), b.locate_block(blk.start));
                assert_eq!(
                    a.locate_branch(blk.terminator.pc),
                    b.locate_branch(blk.terminator.pc)
                );
            }
        }
    }

    #[test]
    fn serialize_round_trips_exactly() {
        let spec = test_spec();
        let program = Program::generate(&spec);
        let bytes = serialize(&spec, &program);
        let loaded = deserialize(&bytes, &spec).expect("round trip");
        assert_programs_equal(&program, &loaded);
    }

    #[test]
    fn deserialize_rejects_wrong_spec() {
        let spec = test_spec();
        let program = Program::generate(&spec);
        let bytes = serialize(&spec, &program);
        let other = ProgramSpec {
            seed: spec.seed ^ 1,
            ..test_spec()
        };
        assert!(deserialize(&bytes, &other).is_none());
    }

    #[test]
    fn deserialize_rejects_corruption() {
        let spec = test_spec();
        let program = Program::generate(&spec);
        let bytes = serialize(&spec, &program);
        assert!(deserialize(&bytes[..bytes.len() - 1], &spec).is_none());
        assert!(deserialize(&bytes[1..], &spec).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(deserialize(&trailing, &spec).is_none());
    }

    #[test]
    fn spec_key_is_stable_and_distinguishes() {
        let a = spec_key(&test_spec());
        assert_eq!(a, spec_key(&test_spec()), "same spec, same key");
        let other = ProgramSpec {
            zipf_s: 1.2,
            ..test_spec()
        };
        assert_ne!(a, spec_key(&other));
        let bolted = ProgramSpec {
            layout: Layout::Bolted,
            ..test_spec()
        };
        assert_ne!(a, spec_key(&bolted));
    }

    #[test]
    fn load_or_generate_survives_corruption_and_version_bumps() {
        // This is the only test in the binary that reads SKIA_CACHE through
        // `load_or_generate`; the env var is scoped to this test and
        // restored at the end (every other cache test passes explicit
        // paths), so parallel test threads never observe the override.
        let dir = std::env::temp_dir().join(format!("skia-cache-robust-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let prior = std::env::var("SKIA_CACHE").ok();
        std::env::set_var("SKIA_CACHE", &dir);

        let spec = ProgramSpec {
            seed: 0xCAC4E,
            ..test_spec()
        };
        let path = dir.join(format!(
            "program-{:016x}-v{FORMAT_VERSION}.bin",
            spec_key(&spec)
        ));
        let reference = Program::generate(&spec);

        // First call populates the cache.
        assert_programs_equal(&reference, &load_or_generate(&spec));
        assert!(path.exists(), "store after miss");
        let good = std::fs::read(&path).unwrap();

        // Truncated entry: falls back to regeneration without panicking,
        // and the rewrite repairs the file.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert_programs_equal(&reference, &load_or_generate(&spec));
        assert_eq!(std::fs::read(&path).unwrap(), good, "repaired on reload");

        // Arbitrary garbage: same fallback.
        std::fs::write(&path, b"not a cache entry at all").unwrap();
        assert_programs_equal(&reference, &load_or_generate(&spec));

        // Flipped byte inside the image payload: the trailing-length check
        // still rejects or the spec echo mismatches — either way the loader
        // must not return a silently-wrong program. Flip a byte in the
        // embedded spec encoding (right after magic + version + length).
        let mut flipped = good.clone();
        flipped[MAGIC.len() + 4 + 4] ^= 0xFF;
        std::fs::write(&path, &flipped).unwrap();
        assert_programs_equal(&reference, &load_or_generate(&spec));

        // Version bump: an entry whose embedded format version is newer (or
        // older) misses, regenerates, and never panics.
        let mut bumped = good.clone();
        bumped[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bumped).unwrap();
        assert!(
            deserialize(&bumped, &spec).is_none(),
            "bumped version misses"
        );
        assert_programs_equal(&reference, &load_or_generate(&spec));

        match prior {
            Some(v) => std::env::set_var("SKIA_CACHE", v),
            None => std::env::remove_var("SKIA_CACHE"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_or_generate_hits_its_own_store() {
        let dir = std::env::temp_dir().join(format!("skia-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = test_spec();
        let key = spec_key(&spec);
        let path = dir.join(format!("program-{key:016x}-v{FORMAT_VERSION}.bin"));

        let generated = Program::generate(&spec);
        try_store(&dir, &path, &spec, &generated);
        let cached = try_load(&path, &spec).expect("stored entry loads");
        assert_programs_equal(&generated, &cached);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
