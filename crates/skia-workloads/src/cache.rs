//! On-disk program-image cache.
//!
//! [`Program::generate`] is a pure function of its [`ProgramSpec`], but for
//! the paper-scale profiles it costs tens of milliseconds each — and every
//! figure binary regenerates all 16 benchmarks, so a full
//! `run_experiments.sh` sweep pays 12 × 16 generations for 16 distinct
//! programs. This module memoizes generation on disk: the serialized
//! program is stored under a cache directory keyed by a hash of the spec's
//! canonical byte encoding, and [`load_or_generate`] returns the cached
//! image when present.
//!
//! The cache directory is `target/skia-cache/` by default; the `SKIA_CACHE`
//! environment variable overrides it (`SKIA_CACHE=0` or `off` disables
//! caching entirely). Cache files are versioned and embed the full
//! canonical spec bytes, so a hash collision or a format change falls back
//! to regeneration rather than returning a wrong program. All I/O is
//! best-effort: an unreadable or unwritable cache only costs time, never
//! correctness. Writes go through a temp file + rename so concurrent
//! processes never observe a torn entry.
//!
//! The serialization is hand-rolled little-endian (the derived indexes are
//! rebuilt on load, not stored): the format is private to this module and
//! versioned by [`FORMAT_VERSION`], so it can change freely between
//! releases — stale files simply miss.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use skia_isa::BranchKind;

use crate::program::{BasicBlock, BranchMeta, Function, Layout, Program, ProgramSpec};
use crate::trace::RecordedTrace;

/// Process-wide cache I/O totals, accumulated across every program and
/// trace cache operation since process start. Atomics (not registry
/// handles) because the cache is called from arbitrary worker threads and
/// long before any experiment registry exists; the JSON emitter surfaces
/// the totals as `trace_cache.*` counters at finish time.
static IO_BYTES_READ: AtomicU64 = AtomicU64::new(0);
static IO_BYTES_WRITTEN: AtomicU64 = AtomicU64::new(0);
static IO_SEEKS: AtomicU64 = AtomicU64::new(0);
static IO_FULL_LOADS: AtomicU64 = AtomicU64::new(0);
static IO_PREFIX_LOADS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide cache I/O totals.
///
/// `seeks` counts per-column positioned reads: a prefix-bounded trace load
/// reads exactly one seeked range per stored column (6 columns), so
/// `seeks == 6 * prefix_loads` when nothing else seeks. `bytes_read` /
/// `bytes_written` count payload bytes actually moved (headers included),
/// not file sizes — a prefix load of 5% of a file adds ~5% of its bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCacheIo {
    /// Bytes read from cache files (program + trace, headers included).
    pub bytes_read: u64,
    /// Bytes written to cache files (program + trace).
    pub bytes_written: u64,
    /// Positioned per-column reads issued by prefix-bounded trace loads.
    pub seeks: u64,
    /// Trace loads that read the whole file in one pass.
    pub full_loads: u64,
    /// Trace loads that materialized a prefix via column seeks.
    pub prefix_loads: u64,
}

/// Read the process-wide cache I/O totals (monotonic since process start;
/// diff two snapshots to meter a region).
#[must_use]
pub fn trace_cache_io() -> TraceCacheIo {
    TraceCacheIo {
        bytes_read: IO_BYTES_READ.load(Ordering::Relaxed),
        bytes_written: IO_BYTES_WRITTEN.load(Ordering::Relaxed),
        seeks: IO_SEEKS.load(Ordering::Relaxed),
        full_loads: IO_FULL_LOADS.load(Ordering::Relaxed),
        prefix_loads: IO_PREFIX_LOADS.load(Ordering::Relaxed),
    }
}

/// Bumped whenever the on-disk layout or the generator's output changes;
/// mismatched files are regenerated.
const FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"SKIAPROG";

/// Bumped whenever the trace columns or the walker's behaviour change;
/// mismatched files are re-recorded.
const TRACE_FORMAT_VERSION: u32 = 1;

const TRACE_MAGIC: &[u8; 8] = b"SKIATRAC";

/// Generate `spec`'s program, consulting the on-disk cache first.
///
/// Equivalent to [`Program::generate`] in every observable way — the cached
/// round trip reproduces the image bytes, ground-truth metadata and derived
/// indexes exactly (asserted by the round-trip tests below).
#[must_use]
pub fn load_or_generate(spec: &ProgramSpec) -> Program {
    load_or_generate_in(cache_dir().as_deref(), spec)
}

/// [`load_or_generate`] against an explicit cache directory (`None` disables
/// caching). Separated so tests can avoid the `SKIA_CACHE` env var, which is
/// process-global.
#[must_use]
pub fn load_or_generate_in(dir: Option<&Path>, spec: &ProgramSpec) -> Program {
    let Some(dir) = dir else {
        let _g = skia_telemetry::span("program_cache.generate");
        return Program::generate(spec);
    };
    let key = spec_key(spec);
    let path = dir.join(format!("program-{key:016x}-v{FORMAT_VERSION}.bin"));
    {
        let _g = skia_telemetry::span("program_cache.load");
        if let Some(program) = try_load(&path, spec) {
            return program;
        }
    }
    let _g = skia_telemetry::span("program_cache.generate");
    let program = Program::generate(spec);
    try_store(dir, &path, spec, &program);
    program
}

/// How [`load_or_record_trace`] satisfied a request (telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceCacheOutcome {
    /// Served from disk — possibly a prefix of a longer stored trace
    /// (walker determinism makes the prefix exact).
    DiskHit,
    /// Recorded live: cache disabled, entry missing/corrupt/stale, or the
    /// stored trace was shorter than the request (the longer recording
    /// then replaces it).
    Recorded,
}

/// Record `steps` walker steps over `program`, consulting the on-disk trace
/// cache first.
///
/// `spec` must be the spec `program` was generated from — its canonical
/// bytes key and verify the entry exactly as the program cache does, so a
/// trace can never be replayed against the wrong program. A stored trace
/// at least as long as the request serves it as a prefix; a shorter one is
/// replaced by the longer recording.
#[must_use]
pub fn load_or_record_trace(
    program: &Program,
    spec: &ProgramSpec,
    seed: u64,
    mean_trip: u32,
    steps: usize,
) -> (RecordedTrace, TraceCacheOutcome) {
    load_or_record_trace_in(
        cache_dir().as_deref(),
        program,
        spec,
        seed,
        mean_trip,
        steps,
    )
}

/// [`load_or_record_trace`] against an explicit cache directory (`None`
/// disables caching). Separated so tests can avoid the `SKIA_CACHE` env
/// var, which is process-global.
pub fn load_or_record_trace_in(
    dir: Option<&Path>,
    program: &Program,
    spec: &ProgramSpec,
    seed: u64,
    mean_trip: u32,
    steps: usize,
) -> (RecordedTrace, TraceCacheOutcome) {
    let Some(dir) = dir else {
        let _g = skia_telemetry::span("trace_cache.record");
        return (
            RecordedTrace::record(program, seed, mean_trip, steps),
            TraceCacheOutcome::Recorded,
        );
    };
    let key = trace_key(spec, seed, mean_trip);
    let path = dir.join(format!("trace-{key:016x}-v{TRACE_FORMAT_VERSION}.bin"));
    // A prefix-bounded load materializes at most `steps` steps; it comes
    // back shorter only when the stored recording itself is shorter, in
    // which case the walk is re-recorded at the longer length below.
    {
        let _g = skia_telemetry::span("trace_cache.load");
        if let Some(stored) = try_load_trace(&path, spec, seed, mean_trip, Some(steps)) {
            if stored.len() >= steps {
                return (stored, TraceCacheOutcome::DiskHit);
            }
        }
    }
    let _g = skia_telemetry::span("trace_cache.record");
    let trace = RecordedTrace::record(program, seed, mean_trip, steps);
    try_store_trace(dir, &path, spec, &trace);
    (trace, TraceCacheOutcome::Recorded)
}

/// Resolve the cache directory: `SKIA_CACHE` env var (a path, or `0`/`off`
/// to disable), else `skia-cache/` inside the build's target directory.
///
/// The default is anchored to the workspace rather than the working
/// directory — `cargo test` sets each test binary's CWD to its crate root,
/// and a CWD-relative default would scatter `target/skia-cache/` dirs
/// across the source tree.
fn cache_dir() -> Option<PathBuf> {
    cache_root()
}

/// The resolved on-disk cache root, honoring `SKIA_CACHE` exactly like the
/// program and trace caches do (`None` when caching is disabled). Other
/// subsystems that persist derived artifacts — e.g. the fuzz corpus — anchor
/// their directories under this root so one env var governs all of them.
#[must_use]
pub fn cache_root() -> Option<PathBuf> {
    match std::env::var("SKIA_CACHE") {
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") || v.is_empty() => None,
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => {
            let workspace = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
            Some(workspace.join("target").join("skia-cache"))
        }
    }
}

/// FNV-1a 64 over the canonical spec encoding — stable across runs and
/// platforms (unlike `DefaultHasher`, whose output is unspecified).
fn spec_key(spec: &ProgramSpec) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &spec_bytes(spec) {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Canonical byte encoding of a spec: every field in declaration order,
/// little-endian, floats via `to_bits`. Embedded in the cache file and
/// compared exactly on load, so the key hash only narrows the candidate —
/// it never decides a match.
fn spec_bytes(spec: &ProgramSpec) -> Vec<u8> {
    let mut out = Vec::with_capacity(160);
    let mut u64le = |v: u64| out.extend_from_slice(&v.to_le_bytes());
    u64le(spec.seed);
    u64le(spec.functions as u64);
    u64le(spec.blocks_per_fn.start as u64);
    u64le(spec.blocks_per_fn.end as u64);
    u64le(spec.insns_per_block.start as u64);
    u64le(spec.insns_per_block.end as u64);
    u64le(spec.cond_fraction.to_bits());
    u64le(spec.call_fraction.to_bits());
    u64le(spec.indirect_fraction.to_bits());
    u64le(spec.zipf_s.to_bits());
    u64le(spec.backedge_fraction.to_bits());
    u64le(u64::from(spec.mean_trip_count));
    u64le(spec.callees_per_fn as u64);
    u64le(spec.leaf_fraction.to_bits());
    u64le(spec.dispatch_blocks as u64);
    u64le(spec.dispatch_callees as u64);
    u64le(spec.burst_pool as u64);
    u64le(spec.burst_prob.to_bits());
    u64le(match spec.layout {
        Layout::Interleaved => 0,
        Layout::Bolted => 1,
    });
    out
}

/// FNV-1a 64 over the trace identity: the program spec's canonical bytes
/// plus the walker parameters. Step count is deliberately excluded — one
/// entry per walk identity, serving any length up to what it stores.
fn trace_key(spec: &ProgramSpec, seed: u64, mean_trip: u32) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for &b in &trace_ident(spec, seed, mean_trip) {
        mix(b);
    }
    hash
}

/// Canonical identity bytes of a trace: spec encoding ++ seed ++ mean_trip.
/// Embedded in the cache file and compared exactly on load.
fn trace_ident(spec: &ProgramSpec, seed: u64, mean_trip: u32) -> Vec<u8> {
    let mut out = spec_bytes(spec);
    out.extend_from_slice(&seed.to_le_bytes());
    out.extend_from_slice(&mean_trip.to_le_bytes());
    out
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn serialize(spec: &ProgramSpec, program: &Program) -> Vec<u8> {
    let image = program.bytes_at(program.base(), program.code_bytes());
    let mut out = Vec::with_capacity(64 + image.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    let spec_enc = spec_bytes(spec);
    out.extend_from_slice(&(spec_enc.len() as u32).to_le_bytes());
    out.extend_from_slice(&spec_enc);
    out.extend_from_slice(&program.base().to_le_bytes());
    out.extend_from_slice(&(image.len() as u64).to_le_bytes());
    out.extend_from_slice(image);
    let (burst_pool, burst_prob) = program.spec_burst();
    out.extend_from_slice(&(burst_pool as u64).to_le_bytes());
    out.extend_from_slice(&burst_prob.to_bits().to_le_bytes());
    out.extend_from_slice(&(program.functions().len() as u64).to_le_bytes());
    for f in program.functions() {
        out.extend_from_slice(&f.entry.to_le_bytes());
        out.extend_from_slice(&f.weight.to_bits().to_le_bytes());
        out.extend_from_slice(&(f.blocks.len() as u64).to_le_bytes());
        for b in &f.blocks {
            out.extend_from_slice(&b.start.to_le_bytes());
            out.extend_from_slice(&b.insns.to_le_bytes());
            let t = &b.terminator;
            out.extend_from_slice(&t.pc.to_le_bytes());
            out.push(t.len);
            out.push(kind_code(t.kind));
            match t.target {
                Some(addr) => {
                    out.push(1);
                    out.extend_from_slice(&addr.to_le_bytes());
                }
                None => out.push(0),
            }
            out.extend_from_slice(&t.fallthrough.to_le_bytes());
            out.extend_from_slice(&(t.indirect_targets.len() as u32).to_le_bytes());
            for &addr in &t.indirect_targets {
                out.extend_from_slice(&addr.to_le_bytes());
            }
            out.push(u8::from(t.backedge));
            out.push(t.bias);
        }
    }
    out
}

fn kind_code(kind: BranchKind) -> u8 {
    BranchKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("every BranchKind is in ALL") as u8
}

/// Infallible little-endian read of up to 4 bytes. The deserializers feed
/// these exact-size `chunks_exact` slices; a fold avoids the
/// `try_into().unwrap()` idiom so no code path between `std::fs::read` and
/// "cache miss" can panic, even on a slice-size bug.
fn le_u32(chunk: &[u8]) -> u32 {
    chunk
        .iter()
        .rev()
        .fold(0u32, |acc, &b| (acc << 8) | u32::from(b))
}

/// Infallible little-endian read of up to 8 bytes; see [`le_u32`].
fn le_u64(chunk: &[u8]) -> u64 {
    chunk
        .iter()
        .rev()
        .fold(0u64, |acc, &b| (acc << 8) | u64::from(b))
}

/// Cursor-based reader; every method returns `None` on truncation so a
/// corrupt file degrades to a cache miss.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(le_u32)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(le_u64)
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Bounded length prefix: caps vector preallocation to what the buffer
    /// could actually hold, so a corrupt length can't balloon memory.
    fn len(&mut self, elem_bytes: usize) -> Option<usize> {
        let n = usize::try_from(self.u64()?).ok()?;
        (n.saturating_mul(elem_bytes.max(1)) <= self.buf.len() - self.pos.min(self.buf.len()))
            .then_some(n)
    }
}

fn deserialize(bytes: &[u8], spec: &ProgramSpec) -> Option<Program> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(MAGIC.len())? != MAGIC || r.u32()? != FORMAT_VERSION {
        return None;
    }
    let spec_enc = spec_bytes(spec);
    let stored_len = usize::try_from(r.u32()?).ok()?;
    if stored_len != spec_enc.len() || r.take(stored_len)? != spec_enc.as_slice() {
        return None; // hash collision or different generator input
    }
    let base = r.u64()?;
    let image_len = usize::try_from(r.u64()?).ok()?;
    let image = r.take(image_len)?.to_vec();
    let burst_pool = usize::try_from(r.u64()?).ok()?;
    let burst_prob = r.f64()?;
    let nfuncs = r.len(17)?;
    let mut functions = Vec::with_capacity(nfuncs);
    for _ in 0..nfuncs {
        let entry = r.u64()?;
        let weight = r.f64()?;
        let nblocks = r.len(32)?;
        let mut blocks = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            let start = r.u64()?;
            let insns = r.u32()?;
            let pc = r.u64()?;
            let len = r.u8()?;
            let kind = *BranchKind::ALL.get(usize::from(r.u8()?))?;
            let target = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                _ => return None,
            };
            let fallthrough = r.u64()?;
            let ntargets = usize::try_from(r.u32()?).ok()?;
            let mut indirect_targets = Vec::with_capacity(ntargets.min(1024));
            for _ in 0..ntargets {
                indirect_targets.push(r.u64()?);
            }
            let backedge = match r.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            let bias = r.u8()?;
            blocks.push(BasicBlock {
                start,
                insns,
                terminator: BranchMeta {
                    pc,
                    len,
                    kind,
                    target,
                    fallthrough,
                    indirect_targets,
                    backedge,
                    bias,
                },
            });
        }
        functions.push(Function {
            entry,
            blocks,
            weight,
        });
    }
    if r.pos != bytes.len() {
        return None; // trailing garbage — treat as corrupt
    }
    Some(Program::from_parts(
        base,
        image,
        functions,
        (burst_pool, burst_prob),
    ))
}

fn serialize_trace(
    spec: &ProgramSpec,
    seed: u64,
    mean_trip: u32,
    trace: &RecordedTrace,
) -> Vec<u8> {
    let n = trace.len();
    let mut out = Vec::with_capacity(64 + trace.byte_size());
    out.extend_from_slice(TRACE_MAGIC);
    out.extend_from_slice(&TRACE_FORMAT_VERSION.to_le_bytes());
    let ident = trace_ident(spec, seed, mean_trip);
    out.extend_from_slice(&(ident.len() as u32).to_le_bytes());
    out.extend_from_slice(&ident);
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&trace.first_block_start.to_le_bytes());
    for &v in &trace.branch_pc {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &v in &trace.next_pc {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &v in &trace.insns {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&trace.kind);
    out.extend_from_slice(&trace.branch_len);
    for &w in &trace.taken {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Decode a stored trace. `want` bounds how much is *materialized*: when the
/// stored trace is longer, only the first `want` steps are parsed and the
/// rest of each column is skipped (columns are contiguous, so the skip is
/// pure pointer arithmetic). This keeps a cache hit O(requested) even when
/// the stored recording is much longer — a sweep asking for 20K steps must
/// not pay to decode a 400K-step file. The returned trace equals
/// [`RecordedTrace::prefix`] of a full load; the structural checks (magic,
/// version, exact identity echo, total file size) always cover the whole
/// file, while per-element validation covers the materialized prefix.
fn deserialize_trace(
    bytes: &[u8],
    spec: &ProgramSpec,
    seed: u64,
    mean_trip: u32,
    want: Option<usize>,
) -> Option<RecordedTrace> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(TRACE_MAGIC.len())? != TRACE_MAGIC || r.u32()? != TRACE_FORMAT_VERSION {
        return None;
    }
    let ident = trace_ident(spec, seed, mean_trip);
    let stored_len = usize::try_from(r.u32()?).ok()?;
    if stored_len != ident.len() || r.take(stored_len)? != ident.as_slice() {
        return None; // hash collision or different walk identity
    }
    let n = r.len(22)?;
    let keep = match want {
        Some(w) if w < n => w,
        _ => n,
    };
    let stored_first = r.u64()?;
    let first_block_start = if keep == 0 { 0 } else { stored_first };
    let u64_col = |r: &mut Reader| -> Option<Vec<u64>> {
        let col: Vec<u64> = r.take(keep * 8)?.chunks_exact(8).map(le_u64).collect();
        r.take((n - keep) * 8)?;
        Some(col)
    };
    let branch_pc = u64_col(&mut r)?;
    let next_pc = u64_col(&mut r)?;
    let insns: Vec<u32> = r.take(keep * 4)?.chunks_exact(4).map(le_u32).collect();
    r.take((n - keep) * 4)?;
    let kind = r.take(keep)?.to_vec();
    if kind
        .iter()
        .any(|&k| usize::from(k) >= BranchKind::ALL.len())
    {
        return None; // out-of-range kind index — corrupt
    }
    r.take(n - keep)?;
    let branch_len = r.take(keep)?.to_vec();
    r.take(n - keep)?;
    let mut taken: Vec<u64> = r
        .take(keep.div_ceil(64) * 8)?
        .chunks_exact(8)
        .map(le_u64)
        .collect();
    r.take((n.div_ceil(64) - keep.div_ceil(64)) * 8)?;
    if keep % 64 != 0 {
        if let Some(last) = taken.last_mut() {
            let stray = *last & !((1u64 << (keep % 64)) - 1);
            if keep == n && stray != 0 {
                return None; // stray bits past the step count — corrupt
            }
            // Prefix load: bits past `keep` belong to the stored tail.
            *last &= (1u64 << (keep % 64)) - 1;
        }
    }
    if r.pos != bytes.len() {
        return None; // trailing garbage — treat as corrupt
    }
    Some(RecordedTrace {
        seed,
        mean_trip,
        first_block_start,
        branch_pc,
        next_pc,
        insns,
        kind,
        branch_len,
        taken,
    })
}

// ---------------------------------------------------------------------------
// File I/O (best-effort)
// ---------------------------------------------------------------------------

fn try_load(path: &Path, spec: &ProgramSpec) -> Option<Program> {
    let bytes = std::fs::read(path).ok()?;
    IO_BYTES_READ.fetch_add(bytes.len() as u64, Ordering::Relaxed);
    deserialize(&bytes, spec)
}

/// Load a stored trace, materializing at most `want` steps.
///
/// When the request covers the whole file the file is read and decoded in
/// one pass. When the stored trace is longer, only the needed byte ranges —
/// the header plus each column's prefix — are read via seeks, so a hit
/// costs I/O and decode proportional to the *request*, not to the stored
/// length (a 20K-step load from a 400K-step file reads ~5% of it). The
/// structural checks still cover the whole file: magic, version, exact
/// identity echo, and the file size implied by the stored step count.
fn try_load_trace(
    path: &Path,
    spec: &ProgramSpec,
    seed: u64,
    mean_trip: u32,
    want: Option<usize>,
) -> Option<RecordedTrace> {
    use std::io::{Read as _, Seek as _, SeekFrom};

    let mut f = std::fs::File::open(path).ok()?;
    let file_len = f.metadata().ok()?.len();
    let ident = trace_ident(spec, seed, mean_trip);
    // magic + version + ident_len + ident + n + first_block_start
    let header_len = 8 + 4 + 4 + ident.len() + 8 + 8;
    if (file_len as usize) < header_len {
        return None;
    }
    let mut head = vec![0u8; header_len];
    f.read_exact(&mut head).ok()?;
    IO_BYTES_READ.fetch_add(header_len as u64, Ordering::Relaxed);
    let mut r = Reader { buf: &head, pos: 0 };
    if r.take(TRACE_MAGIC.len())? != TRACE_MAGIC || r.u32()? != TRACE_FORMAT_VERSION {
        return None;
    }
    if usize::try_from(r.u32()?).ok()? != ident.len() || r.take(ident.len())? != ident.as_slice() {
        return None; // hash collision or different walk identity
    }
    let n = usize::try_from(r.u64()?).ok()?;
    let expect = (header_len as u64)
        .checked_add((n as u64).checked_mul(22)?)?
        .checked_add((n.div_ceil(64) as u64).checked_mul(8)?)?;
    if file_len != expect {
        return None; // truncated or trailing garbage — treat as corrupt
    }
    let keep = match want {
        Some(w) if w < n => w,
        _ => n,
    };
    if keep == n {
        // Full load: one contiguous read of the remainder.
        let mut rest = vec![0u8; file_len as usize - header_len];
        f.read_exact(&mut rest).ok()?;
        IO_BYTES_READ.fetch_add(rest.len() as u64, Ordering::Relaxed);
        IO_FULL_LOADS.fetch_add(1, Ordering::Relaxed);
        let mut whole = head;
        whole.extend_from_slice(&rest);
        return deserialize_trace(&whole, spec, seed, mean_trip, want);
    }
    let _g = skia_telemetry::span("trace_cache.seek_prefix");
    IO_PREFIX_LOADS.fetch_add(1, Ordering::Relaxed);
    let stored_first = r.u64()?;
    let first_block_start = if keep == 0 { 0 } else { stored_first };
    // Column prefixes via seeks. Offsets are relative to the column area.
    let base = header_len as u64;
    let mut col = |offset: u64, len: usize| -> Option<Vec<u8>> {
        f.seek(SeekFrom::Start(base + offset)).ok()?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf).ok()?;
        IO_SEEKS.fetch_add(1, Ordering::Relaxed);
        IO_BYTES_READ.fetch_add(len as u64, Ordering::Relaxed);
        Some(buf)
    };
    let n64 = n as u64;
    let u64s = |b: Vec<u8>| -> Vec<u64> { b.chunks_exact(8).map(le_u64).collect() };
    let branch_pc = u64s(col(0, keep * 8)?);
    let next_pc = u64s(col(8 * n64, keep * 8)?);
    let insns: Vec<u32> = col(16 * n64, keep * 4)?
        .chunks_exact(4)
        .map(le_u32)
        .collect();
    let kind = col(20 * n64, keep)?;
    if kind
        .iter()
        .any(|&k| usize::from(k) >= BranchKind::ALL.len())
    {
        return None; // out-of-range kind index — corrupt
    }
    let branch_len = col(21 * n64, keep)?;
    let mut taken = u64s(col(22 * n64, keep.div_ceil(64) * 8)?);
    if keep % 64 != 0 {
        if let Some(last) = taken.last_mut() {
            // Bits past `keep` belong to the stored tail of the recording.
            *last &= (1u64 << (keep % 64)) - 1;
        }
    }
    Some(RecordedTrace {
        seed,
        mean_trip,
        first_block_start,
        branch_pc,
        next_pc,
        insns,
        kind,
        branch_len,
        taken,
    })
}

/// Per-process sequence number folded into temp-file names. The process id
/// alone is not enough: two *threads* of one process storing the same key
/// would share a temp path and interleave writes, producing a torn entry
/// that the rename then publishes.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_suffix() -> String {
    format!(
        "{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

fn try_store_trace(dir: &Path, path: &Path, spec: &ProgramSpec, trace: &RecordedTrace) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let tmp = dir.join(format!(
        ".tmp-trace-{:016x}-{}",
        trace_key(spec, trace.seed, trace.mean_trip),
        tmp_suffix()
    ));
    let bytes = serialize_trace(spec, trace.seed, trace.mean_trip, trace);
    let ok = std::fs::File::create(&tmp)
        .and_then(|mut f| f.write_all(&bytes))
        .is_ok();
    if ok {
        IO_BYTES_WRITTEN.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let _ = std::fs::rename(&tmp, path);
    } else {
        let _ = std::fs::remove_file(&tmp);
    }
}

fn try_store(dir: &Path, path: &Path, spec: &ProgramSpec, program: &Program) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    // Unique temp name per process *and thread of execution* so concurrent
    // sweeps don't clobber each other mid-write; rename is atomic on POSIX.
    let tmp = dir.join(format!(".tmp-{:016x}-{}", spec_key(spec), tmp_suffix()));
    let bytes = serialize(spec, program);
    let ok = std::fs::File::create(&tmp)
        .and_then(|mut f| f.write_all(&bytes))
        .is_ok();
    if ok {
        IO_BYTES_WRITTEN.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let _ = std::fs::rename(&tmp, path);
    } else {
        let _ = std::fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that set `SKIA_CACHE`: the env var is
    /// process-global, so the two tests below that scope it must never
    /// overlap (every other cache test passes explicit paths).
    static CACHE_ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn test_spec() -> ProgramSpec {
        ProgramSpec {
            functions: 60,
            ..ProgramSpec::default()
        }
    }

    fn assert_programs_equal(a: &Program, b: &Program) {
        assert_eq!(a.base(), b.base());
        assert_eq!(a.code_bytes(), b.code_bytes());
        assert_eq!(
            a.bytes_at(a.base(), a.code_bytes()),
            b.bytes_at(b.base(), b.code_bytes())
        );
        assert_eq!(a.spec_burst(), b.spec_burst());
        assert_eq!(a.functions(), b.functions());
        // Derived indexes must be rebuilt faithfully.
        for f in a.functions() {
            for blk in &f.blocks {
                assert_eq!(a.locate_block(blk.start), b.locate_block(blk.start));
                assert_eq!(
                    a.locate_branch(blk.terminator.pc),
                    b.locate_branch(blk.terminator.pc)
                );
            }
        }
    }

    #[test]
    fn serialize_round_trips_exactly() {
        let spec = test_spec();
        let program = Program::generate(&spec);
        let bytes = serialize(&spec, &program);
        let loaded = deserialize(&bytes, &spec).expect("round trip");
        assert_programs_equal(&program, &loaded);
    }

    #[test]
    fn deserialize_rejects_wrong_spec() {
        let spec = test_spec();
        let program = Program::generate(&spec);
        let bytes = serialize(&spec, &program);
        let other = ProgramSpec {
            seed: spec.seed ^ 1,
            ..test_spec()
        };
        assert!(deserialize(&bytes, &other).is_none());
    }

    #[test]
    fn deserialize_rejects_corruption() {
        let spec = test_spec();
        let program = Program::generate(&spec);
        let bytes = serialize(&spec, &program);
        assert!(deserialize(&bytes[..bytes.len() - 1], &spec).is_none());
        assert!(deserialize(&bytes[1..], &spec).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(deserialize(&trailing, &spec).is_none());
    }

    #[test]
    fn spec_key_is_stable_and_distinguishes() {
        let a = spec_key(&test_spec());
        assert_eq!(a, spec_key(&test_spec()), "same spec, same key");
        let other = ProgramSpec {
            zipf_s: 1.2,
            ..test_spec()
        };
        assert_ne!(a, spec_key(&other));
        let bolted = ProgramSpec {
            layout: Layout::Bolted,
            ..test_spec()
        };
        assert_ne!(a, spec_key(&bolted));
    }

    #[test]
    fn load_or_generate_survives_corruption_and_version_bumps() {
        // The env var is scoped to this test (under CACHE_ENV_LOCK) and
        // restored at the end, so parallel test threads never observe the
        // override.
        let _env = CACHE_ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = std::env::temp_dir().join(format!("skia-cache-robust-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let prior = std::env::var("SKIA_CACHE").ok();
        std::env::set_var("SKIA_CACHE", &dir);

        let spec = ProgramSpec {
            seed: 0xCAC4E,
            ..test_spec()
        };
        let path = dir.join(format!(
            "program-{:016x}-v{FORMAT_VERSION}.bin",
            spec_key(&spec)
        ));
        let reference = Program::generate(&spec);

        // First call populates the cache.
        assert_programs_equal(&reference, &load_or_generate(&spec));
        assert!(path.exists(), "store after miss");
        let good = std::fs::read(&path).unwrap();

        // Truncated entry: falls back to regeneration without panicking,
        // and the rewrite repairs the file.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert_programs_equal(&reference, &load_or_generate(&spec));
        assert_eq!(std::fs::read(&path).unwrap(), good, "repaired on reload");

        // Arbitrary garbage: same fallback.
        std::fs::write(&path, b"not a cache entry at all").unwrap();
        assert_programs_equal(&reference, &load_or_generate(&spec));

        // Flipped byte inside the image payload: the trailing-length check
        // still rejects or the spec echo mismatches — either way the loader
        // must not return a silently-wrong program. Flip a byte in the
        // embedded spec encoding (right after magic + version + length).
        let mut flipped = good.clone();
        flipped[MAGIC.len() + 4 + 4] ^= 0xFF;
        std::fs::write(&path, &flipped).unwrap();
        assert_programs_equal(&reference, &load_or_generate(&spec));

        // Version bump: an entry whose embedded format version is newer (or
        // older) misses, regenerates, and never panics.
        let mut bumped = good.clone();
        bumped[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bumped).unwrap();
        assert!(
            deserialize(&bumped, &spec).is_none(),
            "bumped version misses"
        );
        assert_programs_equal(&reference, &load_or_generate(&spec));

        match prior {
            Some(v) => std::env::set_var("SKIA_CACHE", v),
            None => std::env::remove_var("SKIA_CACHE"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An unwritable (or unreadable-for-new-entries) cache directory must
    /// only cost time: `SKIA_CACHE` pointing at a read-only dir still
    /// produces correct programs and traces, and a pre-populated entry in a
    /// read-only dir is still served.
    #[test]
    #[cfg(unix)]
    fn read_only_cache_dir_degrades_to_regeneration() {
        use std::os::unix::fs::PermissionsExt as _;

        let _env = CACHE_ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = std::env::temp_dir().join(format!("skia-cache-ro-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let spec = ProgramSpec {
            seed: 0x0D1,
            ..test_spec()
        };
        let reference = Program::generate(&spec);

        // Pre-populate one entry while the dir is still writable, then make
        // the dir read-only (r-x: readable, not writable).
        let hot = ProgramSpec {
            seed: 0x0D2,
            ..test_spec()
        };
        let hot_path = dir.join(format!(
            "program-{:016x}-v{FORMAT_VERSION}.bin",
            spec_key(&hot)
        ));
        let hot_reference = Program::generate(&hot);
        try_store(&dir, &hot_path, &hot, &hot_reference);
        assert!(hot_path.exists());
        std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o555)).unwrap();

        let prior = std::env::var("SKIA_CACHE").ok();
        std::env::set_var("SKIA_CACHE", &dir);

        // Miss in a read-only dir: generated, store fails silently.
        assert_programs_equal(&reference, &load_or_generate(&spec));
        // Hit in a read-only dir: served from disk.
        assert_programs_equal(&hot_reference, &load_or_generate(&hot));
        // A nested dir that can't be created degrades the same way.
        std::env::set_var("SKIA_CACHE", dir.join("nested"));
        assert_programs_equal(&reference, &load_or_generate(&spec));

        match prior {
            Some(v) => std::env::set_var("SKIA_CACHE", v),
            None => std::env::remove_var("SKIA_CACHE"),
        }

        // Traces degrade the same way (explicit-dir variant, same dir).
        let program = Program::generate(&spec);
        let (trace, outcome) = load_or_record_trace_in(Some(&dir), &program, &spec, 3, 8, 120);
        assert_eq!(outcome, TraceCacheOutcome::Recorded);
        assert_eq!(trace, RecordedTrace::record(&program, 3, 8, 120));

        // No stray temp files may survive the failed stores.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");

        std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o755)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_serialize_round_trips_exactly() {
        let spec = test_spec();
        let program = Program::generate(&spec);
        let trace = RecordedTrace::record(&program, 42, 8, 777);
        let bytes = serialize_trace(&spec, 42, 8, &trace);
        let loaded = deserialize_trace(&bytes, &spec, 42, 8, None).expect("round trip");
        assert_eq!(trace, loaded);
    }

    #[test]
    fn trace_deserialize_rejects_wrong_identity() {
        let spec = test_spec();
        let program = Program::generate(&spec);
        let trace = RecordedTrace::record(&program, 42, 8, 200);
        let bytes = serialize_trace(&spec, 42, 8, &trace);
        // Different seed, different mean trip, different spec: all miss.
        assert!(deserialize_trace(&bytes, &spec, 43, 8, None).is_none());
        assert!(deserialize_trace(&bytes, &spec, 42, 9, None).is_none());
        let other = ProgramSpec {
            seed: spec.seed ^ 1,
            ..test_spec()
        };
        assert!(deserialize_trace(&bytes, &other, 42, 8, None).is_none());
    }

    #[test]
    fn trace_deserialize_rejects_corruption() {
        let spec = test_spec();
        let program = Program::generate(&spec);
        let trace = RecordedTrace::record(&program, 7, 5, 300);
        let bytes = serialize_trace(&spec, 7, 5, &trace);
        // Truncation, a clobbered header byte, and trailing garbage.
        assert!(deserialize_trace(&bytes[..bytes.len() - 1], &spec, 7, 5, None).is_none());
        assert!(deserialize_trace(&bytes[1..], &spec, 7, 5, None).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(deserialize_trace(&trailing, &spec, 7, 5, None).is_none());
        // An out-of-range kind index in the kind column is caught.
        let mut bad_kind = bytes.clone();
        let kind_off = bytes.len() - 300 /* len */ - 300 /* kind */ - 8 * 300usize.div_ceil(64);
        bad_kind[kind_off] = 0xFF;
        assert!(deserialize_trace(&bad_kind, &spec, 7, 5, None).is_none());
        // Stray taken bits past the step count are caught.
        let mut bad_taken = bytes.clone();
        let last = bad_taken.len() - 1;
        bad_taken[last] |= 0x80; // bit 63 of the tail word; 300 % 64 == 44
        assert!(deserialize_trace(&bad_taken, &spec, 7, 5, None).is_none());
    }

    #[test]
    fn trace_key_distinguishes_walk_identity() {
        let spec = test_spec();
        let a = trace_key(&spec, 1, 8);
        assert_eq!(a, trace_key(&spec, 1, 8));
        assert_ne!(a, trace_key(&spec, 2, 8));
        assert_ne!(a, trace_key(&spec, 1, 9));
        let other = ProgramSpec {
            zipf_s: 1.2,
            ..test_spec()
        };
        assert_ne!(a, trace_key(&other, 1, 8));
    }

    #[test]
    fn trace_cache_serves_prefixes_and_upgrades_on_longer_requests() {
        let dir = std::env::temp_dir().join(format!("skia-trace-prefix-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = test_spec();
        let program = Program::generate(&spec);

        // Disabled cache records live.
        let (live, outcome) = load_or_record_trace_in(None, &program, &spec, 5, 8, 400);
        assert_eq!(outcome, TraceCacheOutcome::Recorded);

        // First store.
        let (first, outcome) = load_or_record_trace_in(Some(&dir), &program, &spec, 5, 8, 400);
        assert_eq!(outcome, TraceCacheOutcome::Recorded);
        assert_eq!(live, first);

        // Same length: disk hit, identical trace.
        let (again, outcome) = load_or_record_trace_in(Some(&dir), &program, &spec, 5, 8, 400);
        assert_eq!(outcome, TraceCacheOutcome::DiskHit);
        assert_eq!(first, again);

        // Shorter request: served as a prefix, equal to a fresh short walk.
        let (short, outcome) = load_or_record_trace_in(Some(&dir), &program, &spec, 5, 8, 150);
        assert_eq!(outcome, TraceCacheOutcome::DiskHit);
        assert_eq!(short, RecordedTrace::record(&program, 5, 8, 150));

        // Longer request: re-recorded and the entry upgraded, so the next
        // long request hits.
        let (long, outcome) = load_or_record_trace_in(Some(&dir), &program, &spec, 5, 8, 900);
        assert_eq!(outcome, TraceCacheOutcome::Recorded);
        assert_eq!(long.len(), 900);
        let (long2, outcome) = load_or_record_trace_in(Some(&dir), &program, &spec, 5, 8, 900);
        assert_eq!(outcome, TraceCacheOutcome::DiskHit);
        assert_eq!(long, long2);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_cache_survives_corruption_and_version_bumps() {
        let dir = std::env::temp_dir().join(format!("skia-trace-robust-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = ProgramSpec {
            seed: 0x7AC4E,
            ..test_spec()
        };
        let program = Program::generate(&spec);
        let path = dir.join(format!(
            "trace-{:016x}-v{TRACE_FORMAT_VERSION}.bin",
            trace_key(&spec, 9, 6)
        ));
        let reference = RecordedTrace::record(&program, 9, 6, 500);

        // First call populates the cache.
        let (t, _) = load_or_record_trace_in(Some(&dir), &program, &spec, 9, 6, 500);
        assert_eq!(t, reference);
        assert!(path.exists(), "store after miss");
        let good = std::fs::read(&path).unwrap();

        // Truncated entry: falls back to re-recording, and the rewrite
        // repairs the file.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        let (t, outcome) = load_or_record_trace_in(Some(&dir), &program, &spec, 9, 6, 500);
        assert_eq!(outcome, TraceCacheOutcome::Recorded);
        assert_eq!(t, reference);
        assert_eq!(std::fs::read(&path).unwrap(), good, "repaired on reload");

        // Arbitrary garbage: same fallback.
        std::fs::write(&path, b"not a trace entry").unwrap();
        let (t, _) = load_or_record_trace_in(Some(&dir), &program, &spec, 9, 6, 500);
        assert_eq!(t, reference);

        // Flipped byte in the embedded identity: exact echo rejects it.
        let mut flipped = good.clone();
        flipped[TRACE_MAGIC.len() + 4 + 4] ^= 0xFF;
        std::fs::write(&path, &flipped).unwrap();
        let (t, _) = load_or_record_trace_in(Some(&dir), &program, &spec, 9, 6, 500);
        assert_eq!(t, reference);

        // Version bump: misses, re-records, never panics.
        let mut bumped = good.clone();
        bumped[TRACE_MAGIC.len()..TRACE_MAGIC.len() + 4]
            .copy_from_slice(&(TRACE_FORMAT_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bumped).unwrap();
        assert!(deserialize_trace(&bumped, &spec, 9, 6, None).is_none());
        let (t, outcome) = load_or_record_trace_in(Some(&dir), &program, &spec, 9, 6, 500);
        assert_eq!(outcome, TraceCacheOutcome::Recorded);
        assert_eq!(t, reference);

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The I/O totals are process-wide and other tests run concurrently, so
    /// every assertion here is a *lower bound on the delta* — concurrent
    /// cache traffic can only add to the counters, never subtract.
    #[test]
    fn io_counters_meter_bytes_and_seeks() {
        let dir = std::env::temp_dir().join(format!("skia-cache-io-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = ProgramSpec {
            seed: 0x10C0,
            ..test_spec()
        };
        let program = Program::generate(&spec);

        // The stored trace is deliberately large (~1.4 MB) so the prefix
        // upper-bound below has orders-of-magnitude headroom over any bytes
        // concurrent tests might add between the two snapshots.
        const STEPS: usize = 65_536;

        // Store: bytes_written grows by at least the serialized trace size.
        let before = trace_cache_io();
        let (trace, outcome) = load_or_record_trace_in(Some(&dir), &program, &spec, 11, 8, STEPS);
        assert_eq!(outcome, TraceCacheOutcome::Recorded);
        let stored_bytes = serialize_trace(&spec, 11, 8, &trace).len() as u64;
        let after_store = trace_cache_io();
        assert!(
            after_store.bytes_written >= before.bytes_written + stored_bytes,
            "store must meter its bytes: {before:?} -> {after_store:?}"
        );

        // Full-length hit: one full load reading the whole file.
        let (_, outcome) = load_or_record_trace_in(Some(&dir), &program, &spec, 11, 8, STEPS);
        assert_eq!(outcome, TraceCacheOutcome::DiskHit);
        let after_full = trace_cache_io();
        assert!(after_full.full_loads > after_store.full_loads);
        assert!(
            after_full.bytes_read >= after_store.bytes_read + stored_bytes,
            "a full hit reads the whole file"
        );

        // Prefix hit (~1.5% of the file): one prefix load, 6 column seeks,
        // and far fewer bytes than the full file.
        let (short, outcome) = load_or_record_trace_in(Some(&dir), &program, &spec, 11, 8, 1024);
        assert_eq!(outcome, TraceCacheOutcome::DiskHit);
        assert_eq!(short.len(), 1024);
        let after_prefix = trace_cache_io();
        assert!(after_prefix.prefix_loads > after_full.prefix_loads);
        assert!(after_prefix.seeks >= after_full.seeks + 6, "6 column seeks");
        let prefix_bytes = after_prefix.bytes_read - after_full.bytes_read;
        assert!(
            prefix_bytes < stored_bytes / 2,
            "a ~1.5% prefix load must not read most of the file \
             ({prefix_bytes} of {stored_bytes} bytes)"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_or_generate_hits_its_own_store() {
        let dir = std::env::temp_dir().join(format!("skia-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = test_spec();
        let key = spec_key(&spec);
        let path = dir.join(format!("program-{key:016x}-v{FORMAT_VERSION}.bin"));

        let generated = Program::generate(&spec);
        try_store(&dir, &path, &spec, &generated);
        let cached = try_load(&path, &spec).expect("stored entry loads");
        assert_programs_equal(&generated, &cached);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
