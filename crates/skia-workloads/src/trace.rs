//! Materialized traces: record a [`Walker`] stream once, replay it many
//! times.
//!
//! Every figure in the paper is a sweep — one workload trace replayed under
//! many front-end configurations. The live [`Walker`] pays RNG draws, trip
//! bookkeeping and (for indirect calls) a per-step weight vector allocation
//! on every block; a sweep re-pays all of it once per configuration for a
//! stream that is, by construction, identical across configurations. A
//! [`RecordedTrace`] materializes the stream into struct-of-arrays columns
//! (~22 bytes/step) so replay is a pure column read: no RNG, no hashing, no
//! allocation. This is the checkpoint-reuse discipline of SimPoint-style
//! sampling applied to the simulator's own trace generator.
//!
//! Bit-identity is structural, not probabilistic: [`Replay`] yields the
//! exact [`TraceStep`] values the recording walker produced (the `taken`
//! column is a bitset; `block_start` is reconstructed from the chaining
//! invariant `block_start[i+1] == next_pc[i]`, which the walker guarantees
//! and tests assert). A prefix of a longer recording equals a shorter walk
//! from the same seed, because the walker is deterministic — that is what
//! lets the disk cache serve any request no longer than what it stored.

use skia_isa::BranchKind;

use crate::program::Program;
use crate::walker::{TraceStep, Walker};

/// A recorded walker stream in struct-of-arrays form.
///
/// Columns are parallel; `taken` packs one bit per step. The first block
/// start is kept in the header and later ones are reconstructed from
/// `next_pc` chaining during replay, so the buffer stores no redundant
/// column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedTrace {
    /// Seed the recording walker was created with (identity/debug).
    pub seed: u64,
    /// Mean trip count the recording walker was created with.
    pub mean_trip: u32,
    /// `block_start` of step 0.
    pub(crate) first_block_start: u64,
    /// Terminating branch pc per step.
    pub(crate) branch_pc: Vec<u64>,
    /// Next executed instruction address per step.
    pub(crate) next_pc: Vec<u64>,
    /// Instructions per block (terminator included).
    pub(crate) insns: Vec<u32>,
    /// Branch kind per step, as an index into [`BranchKind::ALL`].
    pub(crate) kind: Vec<u8>,
    /// Encoded branch length per step.
    pub(crate) branch_len: Vec<u8>,
    /// Taken bitset, one bit per step, LSB-first within each word.
    pub(crate) taken: Vec<u64>,
}

impl RecordedTrace {
    /// Record `steps` steps of a fresh walker over `program`.
    ///
    /// The walker is constructed locally and dropped afterwards, so
    /// recording can never perturb the RNG state of any other walker (the
    /// differential harness's seed-logged cases replay unchanged).
    #[must_use]
    pub fn record(program: &Program, seed: u64, mean_trip: u32, steps: usize) -> Self {
        Self::record_from(
            Walker::new(program, seed, mean_trip),
            seed,
            mean_trip,
            steps,
        )
    }

    /// Record `steps` steps from an existing walker (consumed by value —
    /// a recording cannot share RNG state with a live iterator).
    #[must_use]
    pub fn record_from(walker: Walker<'_>, seed: u64, mean_trip: u32, steps: usize) -> Self {
        let mut trace = RecordedTrace {
            seed,
            mean_trip,
            first_block_start: 0,
            branch_pc: Vec::with_capacity(steps),
            next_pc: Vec::with_capacity(steps),
            insns: Vec::with_capacity(steps),
            kind: Vec::with_capacity(steps),
            branch_len: Vec::with_capacity(steps),
            taken: vec![0u64; steps.div_ceil(64)],
        };
        for (i, step) in walker.take(steps).enumerate() {
            if i == 0 {
                trace.first_block_start = step.block_start;
            } else {
                debug_assert_eq!(
                    step.block_start,
                    trace.next_pc[i - 1],
                    "walker chaining invariant"
                );
            }
            trace.branch_pc.push(step.branch_pc);
            trace.next_pc.push(step.next_pc);
            trace.insns.push(step.insns);
            trace.kind.push(kind_index(step.kind));
            trace.branch_len.push(step.branch_len);
            if step.taken {
                trace.taken[i / 64] |= 1 << (i % 64);
            }
        }
        trace
    }

    /// Recorded step count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.branch_pc.len()
    }

    /// Whether no steps were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.branch_pc.is_empty()
    }

    /// Heap bytes held by the columns (telemetry).
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.branch_pc.len() * (8 + 8 + 4 + 1 + 1) + self.taken.len() * 8
    }

    /// A copy holding only the first `steps` steps. Because the walker is
    /// deterministic, this equals a fresh recording of `steps` steps from
    /// the same seed — which is what lets the disk cache serve any request
    /// no longer than what it stored.
    ///
    /// # Panics
    ///
    /// Panics if `steps > len()`.
    #[must_use]
    pub fn prefix(&self, steps: usize) -> RecordedTrace {
        assert!(steps <= self.len(), "prefix longer than recording");
        let mut taken = self.taken[..steps.div_ceil(64)].to_vec();
        if !steps.is_multiple_of(64) {
            // Mask stray tail bits so the prefix is value-equal to a fresh
            // recording of the same length.
            if let Some(last) = taken.last_mut() {
                *last &= (1u64 << (steps % 64)) - 1;
            }
        }
        RecordedTrace {
            seed: self.seed,
            mean_trip: self.mean_trip,
            first_block_start: if steps == 0 {
                0
            } else {
                self.first_block_start
            },
            branch_pc: self.branch_pc[..steps].to_vec(),
            next_pc: self.next_pc[..steps].to_vec(),
            insns: self.insns[..steps].to_vec(),
            kind: self.kind[..steps].to_vec(),
            branch_len: self.branch_len[..steps].to_vec(),
            taken,
        }
    }

    /// Allocation-free, RNG-free iterator over the recorded steps,
    /// bit-identical to the live walk that produced them. May be called
    /// any number of times; `take(n)` for `n <= len()` equals a shorter
    /// walk from the same seed.
    #[must_use]
    pub fn replay(&self) -> Replay<'_> {
        Replay {
            trace: self,
            idx: 0,
            end: self.len(),
            block_start: self.first_block_start,
        }
    }

    /// Chunked replay of the first `steps` steps: successive bounded
    /// [`Replay`] iterators of at most `chunk_size` steps each, whose
    /// concatenation is bit-identical to `replay().take(steps)`.
    ///
    /// Chunk boundaries need no scan to establish: the `block_start` of a
    /// chunk's first step is `next_pc` of the step before it (the walker
    /// chaining invariant), so each chunk is an independent column-slice
    /// view — the batched simulation kernel consumes these, and tests
    /// replay individual chunks in isolation.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is 0 or `steps > len()`.
    #[must_use]
    pub fn chunks(&self, steps: usize, chunk_size: usize) -> Chunks<'_> {
        self.chunks_range(0, steps, chunk_size)
    }

    /// Chunked replay of the half-open step window `[lo, hi)` — the
    /// mid-trace generalization of [`RecordedTrace::chunks`] that SimPoint
    /// slices consume. The first chunk's opening `block_start` comes from
    /// the chaining invariant (`next_pc[lo-1]`), so starting mid-trace
    /// costs one column read, not a prefix scan.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is 0, `lo > hi`, or `hi > len()`.
    #[must_use]
    pub fn chunks_range(&self, lo: usize, hi: usize, chunk_size: usize) -> Chunks<'_> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        assert!(lo <= hi, "window start past its end");
        assert!(hi <= self.len(), "chunked replay longer than recording");
        Chunks {
            trace: self,
            lo,
            end: hi,
            chunk_size,
        }
    }

    /// The replay entry state at step `lo`: the block-start PC of the step
    /// about to execute and whether that block is entered through a taken
    /// branch (the previous step's `taken` bit; `true` at `lo == 0`,
    /// matching a fresh BPU positioned at the program entry). Sampled
    /// replay uses this to re-sync the IAG when a slice jumps over a trace
    /// gap: the values are exactly what a continuous replay would have
    /// chained to at that index.
    ///
    /// # Panics
    ///
    /// Panics if `lo > len()`.
    #[must_use]
    pub fn entry_at(&self, lo: usize) -> (u64, bool) {
        assert!(lo <= self.len(), "entry past the recording");
        if lo == 0 {
            (self.first_block_start, true)
        } else {
            let i = lo - 1;
            (self.next_pc[i], (self.taken[i / 64] >> (i % 64)) & 1 == 1)
        }
    }

    /// Replay of the half-open step window `[lo, hi)`: bit-identical to
    /// `replay().skip(lo).take(hi - lo)` but O(1) to position (the opening
    /// `block_start` is chained from `next_pc[lo-1]`). Sampling warmup
    /// windows use this.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > len()`.
    #[must_use]
    pub fn window(&self, lo: usize, hi: usize) -> Replay<'_> {
        assert!(lo <= hi, "window start past its end");
        assert!(hi <= self.len(), "window longer than recording");
        Replay {
            trace: self,
            idx: lo,
            end: hi,
            block_start: if lo == 0 {
                self.first_block_start
            } else {
                self.next_pc[lo - 1]
            },
        }
    }
}

/// Iterator of bounded [`Replay`] chunks (see [`RecordedTrace::chunks`]).
#[derive(Debug, Clone)]
pub struct Chunks<'t> {
    trace: &'t RecordedTrace,
    lo: usize,
    end: usize,
    chunk_size: usize,
}

impl<'t> Iterator for Chunks<'t> {
    type Item = Replay<'t>;

    fn next(&mut self) -> Option<Replay<'t>> {
        let lo = self.lo;
        if lo >= self.end {
            return None;
        }
        let hi = (lo + self.chunk_size).min(self.end);
        self.lo = hi;
        Some(Replay {
            trace: self.trace,
            idx: lo,
            end: hi,
            block_start: if lo == 0 {
                self.trace.first_block_start
            } else {
                self.trace.next_pc[lo - 1]
            },
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.end - self.lo.min(self.end)).div_ceil(self.chunk_size);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Chunks<'_> {}

/// Iterator over a [`RecordedTrace`]. Pure column reads.
#[derive(Debug, Clone)]
pub struct Replay<'t> {
    trace: &'t RecordedTrace,
    idx: usize,
    /// One past the last step this iterator yields (`len()` for a full
    /// replay; a chunk boundary for [`RecordedTrace::chunks`]).
    end: usize,
    /// `block_start` of the step about to be yielded (chained).
    block_start: u64,
}

impl Iterator for Replay<'_> {
    type Item = TraceStep;

    fn next(&mut self) -> Option<TraceStep> {
        let t = self.trace;
        let i = self.idx;
        if i >= self.end {
            return None;
        }
        let next_pc = t.next_pc[i];
        let step = TraceStep {
            block_start: self.block_start,
            branch_pc: t.branch_pc[i],
            branch_len: t.branch_len[i],
            kind: BranchKind::ALL[t.kind[i] as usize],
            taken: (t.taken[i / 64] >> (i % 64)) & 1 == 1,
            next_pc,
            insns: t.insns[i],
        };
        self.idx = i + 1;
        self.block_start = next_pc;
        Some(step)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.end - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Replay<'_> {}

/// Index of `kind` in [`BranchKind::ALL`] (total: `ALL` covers the enum).
pub(crate) fn kind_index(kind: BranchKind) -> u8 {
    BranchKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("BranchKind::ALL is total") as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramSpec;

    fn program() -> Program {
        Program::generate(&ProgramSpec {
            functions: 40,
            ..ProgramSpec::default()
        })
    }

    #[test]
    fn replay_is_bit_identical_to_live_walk() {
        let p = program();
        let live: Vec<TraceStep> = Walker::new(&p, 42, 8).take(3000).collect();
        let trace = RecordedTrace::record(&p, 42, 8, 3000);
        assert_eq!(trace.len(), 3000);
        let replayed: Vec<TraceStep> = trace.replay().collect();
        assert_eq!(live, replayed);
    }

    #[test]
    fn replay_prefix_equals_shorter_walk() {
        let p = program();
        let trace = RecordedTrace::record(&p, 7, 5, 2048);
        let short: Vec<TraceStep> = Walker::new(&p, 7, 5).take(500).collect();
        let prefix: Vec<TraceStep> = trace.replay().take(500).collect();
        assert_eq!(short, prefix);
    }

    #[test]
    fn replay_is_repeatable_and_exact_size() {
        let p = program();
        let trace = RecordedTrace::record(&p, 1, 8, 100);
        let a: Vec<TraceStep> = trace.replay().collect();
        let b: Vec<TraceStep> = trace.replay().collect();
        assert_eq!(a, b);
        let mut it = trace.replay();
        assert_eq!(it.len(), 100);
        it.next();
        assert_eq!(it.len(), 99);
    }

    #[test]
    fn kind_index_round_trips_every_kind() {
        for k in BranchKind::ALL {
            assert_eq!(BranchKind::ALL[kind_index(k) as usize], k);
        }
    }

    #[test]
    fn empty_recording_replays_nothing() {
        let p = program();
        let trace = RecordedTrace::record(&p, 3, 8, 0);
        assert!(trace.is_empty());
        assert_eq!(trace.replay().count(), 0);
        assert_eq!(trace.byte_size(), 0);
    }
}
