//! The paper's benchmark suite (Table 2) as synthetic profiles.
//!
//! Each profile parameterizes [`ProgramSpec`] to reproduce the qualitative
//! properties the paper reports for the corresponding real workload:
//!
//! * **Footprint / BTB pressure** — `functions` scales the static branch
//!   count relative to the 8K-entry BTB and 32 KB L1-I; the Zipf skew
//!   (`zipf_s`) sets how much of it is active at once. Flat skews make
//!   "cold" capacity-missing branches (the paper's §1 definition) dominant.
//! * **Branch-type mix (Fig. 6)** — `cond_fraction`/`call_fraction` steer
//!   the terminator mix: the OLTP `voter` and `sibench` are call/return
//!   heavy (hence big Skia gains, §6.3); `kafka` is conditional-heavy with
//!   few direct calls/returns (hence small gains despite many BTB misses,
//!   §6.1.2); `finagle-chirper` and `speedometer2.0` simply have fewer BTB
//!   misses (§6.1.1).
//! * **Layout** — `verilator` ships BOLT-optimized in the paper, so its
//!   profile uses [`Layout::Bolted`]; `verilator_prebolt` is the same
//!   program interleaved (§6.1.4).

use crate::program::{Layout, ProgramSpec};

/// A named workload: generation spec plus the trace seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Benchmark name as the paper spells it.
    pub name: &'static str,
    /// Originating suite (Table 2).
    pub suite: &'static str,
    /// Program generation parameters.
    pub spec: ProgramSpec,
    /// Seed for the trace walker.
    pub trace_seed: u64,
}

/// The 16 benchmark names, in the paper's reporting order.
pub const PAPER_BENCHMARKS: [&str; 16] = [
    "cassandra",
    "kafka",
    "tomcat",
    "finagle-chirper",
    "finagle-http",
    "dotty",
    "tpcc",
    "ycsb",
    "twitter",
    "voter",
    "smallbank",
    "tatp",
    "sibench",
    "noop",
    "verilator",
    "speedometer2.0",
];

fn base_spec(seed: u64, functions: usize) -> ProgramSpec {
    ProgramSpec {
        seed,
        functions,
        ..ProgramSpec::default()
    }
}

/// Look up a profile by name. `verilator_prebolt` is accepted in addition
/// to the 16 paper benchmarks.
#[must_use]
pub fn profile(name: &str) -> Option<Profile> {
    let mk = |name: &'static str,
              suite: &'static str,
              functions: usize,
              cond: f64,
              call: f64,
              indirect: f64,
              zipf: f64,
              layout: Layout,
              seed: u64|
     -> Profile {
        let mut spec = base_spec(seed, functions);
        spec.cond_fraction = cond;
        spec.call_fraction = call;
        spec.indirect_fraction = indirect;
        spec.zipf_s = zipf;
        spec.layout = layout;
        Profile {
            name,
            suite,
            spec,
            trace_seed: seed ^ 0x0007_EACE_5EED,
        }
    };
    use Layout::{Bolted, Interleaved};
    let p = match name {
        // DaCapo
        "cassandra" => mk(
            "cassandra",
            "DaCapo",
            10000,
            0.55,
            0.50,
            0.03,
            0.90,
            Interleaved,
            101,
        ),
        "kafka" => mk(
            "kafka",
            "DaCapo",
            9000,
            0.78,
            0.22,
            0.02,
            0.92,
            Interleaved,
            102,
        ),
        "tomcat" => mk(
            "tomcat",
            "DaCapo",
            12000,
            0.55,
            0.50,
            0.03,
            0.88,
            Interleaved,
            103,
        ),
        // Renaissance
        "finagle-chirper" => mk(
            "finagle-chirper",
            "Renaissance",
            2000,
            0.60,
            0.45,
            0.03,
            1.30,
            Interleaved,
            104,
        ),
        "finagle-http" => mk(
            "finagle-http",
            "Renaissance",
            4500,
            0.60,
            0.45,
            0.03,
            1.10,
            Interleaved,
            105,
        ),
        "dotty" => mk(
            "dotty",
            "Renaissance",
            14000,
            0.50,
            0.55,
            0.04,
            0.85,
            Interleaved,
            106,
        ),
        // OLTP-Bench on PostgreSQL
        "tpcc" => mk(
            "tpcc",
            "OLTP",
            10000,
            0.50,
            0.55,
            0.02,
            0.90,
            Interleaved,
            107,
        ),
        "ycsb" => mk(
            "ycsb",
            "OLTP",
            7500,
            0.55,
            0.50,
            0.02,
            0.95,
            Interleaved,
            108,
        ),
        "twitter" => mk(
            "twitter",
            "OLTP",
            8000,
            0.55,
            0.50,
            0.02,
            0.90,
            Interleaved,
            109,
        ),
        "voter" => mk(
            "voter",
            "OLTP",
            16000,
            0.35,
            0.72,
            0.02,
            0.78,
            Interleaved,
            110,
        ),
        "smallbank" => mk(
            "smallbank",
            "OLTP",
            7000,
            0.50,
            0.55,
            0.02,
            0.95,
            Interleaved,
            111,
        ),
        "tatp" => mk(
            "tatp",
            "OLTP",
            6500,
            0.50,
            0.55,
            0.02,
            0.95,
            Interleaved,
            112,
        ),
        "sibench" => mk(
            "sibench",
            "OLTP",
            15000,
            0.35,
            0.72,
            0.02,
            0.78,
            Interleaved,
            113,
        ),
        "noop" => mk(
            "noop",
            "OLTP",
            4500,
            0.50,
            0.50,
            0.02,
            1.00,
            Interleaved,
            114,
        ),
        // Chipyard (shipped BOLT-optimized in the paper)
        "verilator" => mk(
            "verilator",
            "Chipyard",
            16000,
            0.70,
            0.30,
            0.01,
            0.82,
            Bolted,
            115,
        ),
        "verilator_prebolt" => mk(
            "verilator_prebolt",
            "Chipyard",
            16000,
            0.70,
            0.30,
            0.01,
            0.82,
            Interleaved,
            115,
        ),
        // BrowserBench
        "speedometer2.0" => mk(
            "speedometer2.0",
            "BrowserBench",
            2500,
            0.65,
            0.40,
            0.04,
            1.25,
            Interleaved,
            116,
        ),
        _ => return None,
    };
    Some(p)
}

/// The 16 paper benchmark names (reporting order).
#[must_use]
pub fn profile_names() -> &'static [&'static str] {
    &PAPER_BENCHMARKS
}

/// All 16 paper profiles, materialized.
#[must_use]
pub fn all_profiles() -> Vec<Profile> {
    PAPER_BENCHMARKS
        .iter()
        .map(|n| profile(n).expect("paper benchmark exists"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    #[test]
    fn all_sixteen_resolve() {
        assert_eq!(all_profiles().len(), 16);
        for name in PAPER_BENCHMARKS {
            assert!(profile(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn prebolt_variant_exists_and_differs_only_in_layout() {
        let bolted = profile("verilator").unwrap();
        let pre = profile("verilator_prebolt").unwrap();
        assert_eq!(bolted.spec.functions, pre.spec.functions);
        assert_eq!(bolted.spec.seed, pre.spec.seed);
        assert_ne!(bolted.spec.layout, pre.spec.layout);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(profile("doom-eternal").is_none());
    }

    #[test]
    fn oltp_profiles_are_call_heavier_than_kafka() {
        let kafka = profile("kafka").unwrap();
        for n in ["voter", "sibench"] {
            let p = profile(n).unwrap();
            assert!(p.spec.call_fraction > kafka.spec.call_fraction);
            assert!(p.spec.cond_fraction < kafka.spec.cond_fraction);
        }
    }

    #[test]
    fn footprints_exceed_the_l1i() {
        // Every workload must be front-end bound: code ≫ 32 KB L1-I.
        for name in ["kafka", "voter", "speedometer2.0"] {
            let p = profile(name).unwrap();
            let prog = Program::generate(&p.spec);
            assert!(
                prog.code_bytes() > 4 * 32 * 1024,
                "{name}: {} bytes",
                prog.code_bytes()
            );
        }
    }
}
