//! Dense per-program branch side table.
//!
//! The BPU's block-formation scan asks one question every IAG cycle: *which
//! is the first branch I know about in this fetch window?* The previous
//! implementation answered it with an ordered mirror of resident BTB keys
//! (`BTreeSet::range`) — O(log n) per scan plus O(log n) of maintenance on
//! every insert and eviction, paid once per committed branch in every
//! configuration of every sweep job.
//!
//! This module precomputes the static half of that question once per
//! [`Program`](crate::Program): a flat, pc-sorted array of every branch's
//! ground-truth record plus a dense per-cache-line index (`line →` first
//! branch at or after the line's base). Because every branch the BTB can
//! ever hold is a block terminator of the program (the simulator only
//! installs retired branches), "first *resident* branch in `[start, limit)`"
//! becomes: enumerate the handful of static branch pcs in the window —
//! O(1) via the line index — and probe each for residency. No ordered
//! mirror, no per-insert maintenance, no tree walk.
//!
//! This is the profile-side-table discipline of AsmDB applied to the
//! simulator's own hot loop: metadata that is a pure function of the binary
//! is computed once and reused by every configuration.

use skia_isa::{BranchKind, CACHE_LINE_BYTES};

/// Ground-truth record for one static branch, laid out for the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchRecord {
    /// Address of the branch's first byte.
    pub pc: u64,
    /// Address of the owning block's first instruction.
    pub block_start: u64,
    /// Static target for direct branches (`None` for returns/indirect).
    pub target: Option<u64>,
    /// Address of the next sequential instruction (`pc + len`).
    pub fallthrough: u64,
    /// Instructions in the owning block, terminator included.
    pub insns: u32,
    /// Encoded length.
    pub len: u8,
    /// Classification.
    pub kind: BranchKind,
}

impl BranchRecord {
    /// The cache-line span `[first, last]` (line base addresses) that the
    /// owning block occupies, from its first instruction through the last
    /// byte of the terminator.
    #[must_use]
    pub fn block_line_span(&self) -> (u64, u64) {
        let mask = !(CACHE_LINE_BYTES as u64 - 1);
        (
            self.block_start & mask,
            self.fallthrough.wrapping_sub(1) & mask,
        )
    }
}

/// Immutable pc-sorted branch records with a dense per-line start index.
///
/// Built once per program (at generation or cache load) and shared by every
/// simulator instance; all queries are `&self` and allocation-free.
#[derive(Debug, Clone)]
pub struct BranchTable {
    /// Line-aligned base of the covered span.
    span_base: u64,
    /// First address past the covered span (line-aligned up).
    span_end: u64,
    /// Branch pcs, ascending. Parallel to `recs`.
    pcs: Vec<u64>,
    /// Records, in `pcs` order.
    recs: Vec<BranchRecord>,
    /// For each cache line of the span: index into `pcs` of the first
    /// branch at or after the line base.
    line_first: Vec<u32>,
}

impl BranchTable {
    /// Build the table from a program's branch records (any order).
    #[must_use]
    pub fn from_records(mut recs: Vec<BranchRecord>) -> Self {
        recs.sort_by_key(|r| r.pc);
        let pcs: Vec<u64> = recs.iter().map(|r| r.pc).collect();
        debug_assert!(pcs.windows(2).all(|w| w[0] < w[1]), "branch pcs unique");
        let line = CACHE_LINE_BYTES as u64;
        let (span_base, span_end) = match (pcs.first(), pcs.last()) {
            (Some(&lo), Some(&hi)) => (lo & !(line - 1), (hi & !(line - 1)) + line),
            _ => (0, 0),
        };
        let nlines = ((span_end - span_base) / line) as usize;
        let mut line_first = vec![0u32; nlines + 1];
        let mut idx = 0usize;
        for (li, slot) in line_first.iter_mut().enumerate() {
            let base = span_base + li as u64 * line;
            while idx < pcs.len() && pcs[idx] < base {
                idx += 1;
            }
            *slot = idx as u32;
        }
        BranchTable {
            span_base,
            span_end,
            pcs,
            recs,
            line_first,
        }
    }

    /// Number of branch records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// Whether the table holds no branches.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// Index of the first branch with `pc >= addr` (== `len()` when none).
    /// O(1): one dense line lookup plus a within-line advance.
    fn start_index(&self, addr: u64) -> usize {
        if addr <= self.span_base {
            return 0;
        }
        if addr >= self.span_end {
            return self.pcs.len();
        }
        let li = ((addr - self.span_base) / CACHE_LINE_BYTES as u64) as usize;
        let mut idx = self.line_first[li] as usize;
        while idx < self.pcs.len() && self.pcs[idx] < addr {
            idx += 1;
        }
        idx
    }

    /// The first branch pc in `[start, limit)` satisfying `resident` —
    /// the BPU's fetch-window scan, with residency supplied by the caller
    /// (a BTB probe). Candidates are visited in ascending pc order.
    #[must_use]
    pub fn first_matching_in(
        &self,
        start: u64,
        limit: u64,
        mut resident: impl FnMut(u64) -> bool,
    ) -> Option<u64> {
        let mut idx = self.start_index(start);
        while let Some(&pc) = self.pcs.get(idx) {
            if pc >= limit {
                return None;
            }
            if resident(pc) {
                return Some(pc);
            }
            idx += 1;
        }
        None
    }

    /// Exact-pc record lookup (O(1) via the line index).
    #[must_use]
    pub fn record_at(&self, pc: u64) -> Option<&BranchRecord> {
        let idx = self.start_index(pc);
        match self.pcs.get(idx) {
            Some(&p) if p == pc => Some(&self.recs[idx]),
            _ => None,
        }
    }

    /// Static target of the branch at `pc`, if one exists there.
    #[must_use]
    pub fn target_of(&self, pc: u64) -> Option<u64> {
        self.record_at(pc).and_then(|r| r.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Program, ProgramSpec};

    fn rec(pc: u64, len: u8) -> BranchRecord {
        BranchRecord {
            pc,
            block_start: pc.saturating_sub(8),
            target: Some(pc ^ 0xFF0),
            fallthrough: pc + u64::from(len),
            insns: 3,
            len,
            kind: BranchKind::DirectUncond,
        }
    }

    #[test]
    fn window_scan_matches_naive_filter() {
        let pcs = [0x1002u64, 0x1010, 0x103F, 0x1040, 0x10A0, 0x2000];
        let table = BranchTable::from_records(pcs.iter().map(|&p| rec(p, 5)).collect());
        let resident = |pc: u64| pc != 0x1010; // one non-resident branch
        for start in (0x0FC0..0x2060u64).step_by(1) {
            let limit = start + 64;
            let naive = pcs
                .iter()
                .copied()
                .find(|&p| p >= start && p < limit && resident(p));
            assert_eq!(
                table.first_matching_in(start, limit, resident),
                naive,
                "start {start:#x}"
            );
        }
    }

    #[test]
    fn empty_table_never_matches() {
        let table = BranchTable::from_records(Vec::new());
        assert!(table.is_empty());
        assert_eq!(table.first_matching_in(0, u64::MAX, |_| true), None);
        assert_eq!(table.record_at(0x1000), None);
    }

    #[test]
    fn record_lookup_is_exact() {
        let table = BranchTable::from_records(vec![rec(0x1005, 2), rec(0x1040, 6)]);
        assert_eq!(table.record_at(0x1005).unwrap().len, 2);
        assert_eq!(table.record_at(0x1006), None);
        assert_eq!(table.target_of(0x1040), Some(0x1040 ^ 0xFF0));
        assert_eq!(table.target_of(0x1041), None);
    }

    #[test]
    fn program_table_agrees_with_ground_truth_maps() {
        let p = Program::generate(&ProgramSpec {
            functions: 80,
            ..ProgramSpec::default()
        });
        let table = p.branch_table();
        assert_eq!(table.len(), p.branch_count());
        for f in p.functions() {
            for b in &f.blocks {
                let t = &b.terminator;
                let r = table.record_at(t.pc).expect("every terminator indexed");
                assert_eq!(r.len, t.len);
                assert_eq!(r.kind, t.kind);
                assert_eq!(r.target, t.target);
                assert_eq!(r.fallthrough, t.fallthrough);
                assert_eq!(r.block_start, b.start);
                assert_eq!(r.insns, b.insns);
                assert_eq!(table.target_of(t.pc), t.target);
                // No phantom record one byte in.
                assert!(table.record_at(t.pc + 1).is_none_or(|n| n.pc != t.pc));
                let (first, last) = r.block_line_span();
                assert!(first <= last);
                assert_eq!(first % 64, 0);
            }
        }
    }

    #[test]
    fn windowed_scan_over_a_real_program_matches_btreeset_semantics() {
        let p = Program::generate(&ProgramSpec {
            functions: 40,
            ..ProgramSpec::default()
        });
        let table = p.branch_table();
        // Synthetic residency: every third branch "resident", mimicking a
        // partially filled BTB.
        let all: Vec<u64> = {
            let mut v: Vec<u64> = p
                .functions()
                .iter()
                .flat_map(|f| f.blocks.iter().map(|b| b.terminator.pc))
                .collect();
            v.sort_unstable();
            v
        };
        let resident_set: std::collections::BTreeSet<u64> =
            all.iter().copied().step_by(3).collect();
        for &start in all.iter().step_by(7) {
            for delta in [0u64, 1, 63, 64] {
                let s = start.saturating_sub(delta);
                let limit = s + 64;
                let expect = resident_set
                    .range(s..)
                    .next()
                    .copied()
                    .filter(|&x| x < limit);
                let got = table.first_matching_in(s, limit, |pc| resident_set.contains(&pc));
                assert_eq!(got, expect, "start {s:#x}");
            }
        }
    }
}
