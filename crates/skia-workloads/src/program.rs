//! Synthetic program generation.
//!
//! A [`Program`] is a flat x86-64 code image plus structural ground truth:
//! functions, basic blocks and branch metadata. Every instruction is emitted
//! through [`skia_isa::encode`], so the bytes in the image are genuinely
//! decodable (and mis-decodable from wrong offsets — exactly what head
//! shadow decoding must cope with).
//!
//! Generation is two-phase: an abstract structure (functions → blocks →
//! instruction templates + terminators) is built first from a seeded RNG,
//! then laid out into bytes with relocation fixups patched in a second pass.
//! The layout order implements the hot/cold co-location that produces
//! shadow branches: [`Layout::Interleaved`] alternates hot and cold
//! functions in memory (the default; what ordinary compilation does to
//! unrelated functions), while [`Layout::Bolted`] sorts hot functions
//! together, modeling what the BOLT binary optimizer achieves (§6.1.4).

use std::collections::HashMap;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skia_isa::{encode, BranchKind, CACHE_LINE_BYTES};

use crate::side_table::{BranchRecord, BranchTable};

/// Function layout order in the image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Hot and cold functions alternate in memory, maximizing hot/cold
    /// cache-line sharing (the shadow-branch generator).
    #[default]
    Interleaved,
    /// Functions sorted hottest-first (BOLT-like): hot code is packed, so
    /// fewer lines mix hot and cold bytes and the BTB working set shrinks.
    Bolted,
}

/// Generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSpec {
    /// RNG seed; everything about the program is a pure function of the spec.
    pub seed: u64,
    /// Number of functions.
    pub functions: usize,
    /// Blocks per function (inclusive range).
    pub blocks_per_fn: Range<usize>,
    /// Non-branch instructions per block (inclusive range).
    pub insns_per_block: Range<usize>,
    /// Probability that a non-final block terminator is conditional.
    pub cond_fraction: f64,
    /// Probability that a non-final, non-conditional terminator is a call
    /// (the rest are unconditional jumps).
    pub call_fraction: f64,
    /// Fraction of calls/jumps made indirect (through a register).
    pub indirect_fraction: f64,
    /// Zipf skew for function hotness (higher = more skewed).
    pub zipf_s: f64,
    /// Fraction of conditional terminators that are loop backedges.
    pub backedge_fraction: f64,
    /// Mean loop trip count for backedges.
    pub mean_trip_count: u32,
    /// Callees listed per function (targets of its calls).
    pub callees_per_fn: usize,
    /// Fraction of functions that are *leaves* (no outgoing calls), like
    /// real utility/getter functions. Calls are biased toward leaves, which
    /// keeps the call tree of one dispatcher request bounded — without this
    /// a branching factor above 1 makes request trees effectively infinite.
    pub leaf_fraction: f64,
    /// Dispatcher (function 0) blocks: each is one indirect call site of the
    /// event loop. Together with `dispatch_callees` this sets how many entry
    /// points the workload's active set spans — the main BTB-pressure knob.
    pub dispatch_blocks: usize,
    /// Callee candidates per dispatcher call site.
    pub dispatch_callees: usize,
    /// Size of the walker's recent-request pool (temporal locality model:
    /// servers see bursts of similar requests). 0 disables burstiness.
    pub burst_pool: usize,
    /// Probability that a dispatcher call repeats a pooled recent target
    /// instead of drawing a fresh one.
    pub burst_prob: f64,
    /// Layout order.
    pub layout: Layout,
}

impl Default for ProgramSpec {
    fn default() -> Self {
        ProgramSpec {
            seed: 0xC0FFEE,
            functions: 2000,
            blocks_per_fn: 2..7,
            insns_per_block: 2..7,
            cond_fraction: 0.55,
            call_fraction: 0.45,
            indirect_fraction: 0.03,
            zipf_s: 1.1,
            backedge_fraction: 0.18,
            mean_trip_count: 6,
            leaf_fraction: 0.55,
            callees_per_fn: 6,
            dispatch_blocks: 64,
            dispatch_callees: 64,
            burst_pool: 64,
            burst_prob: 0.5,
            layout: Layout::Interleaved,
        }
    }
}

/// Ground-truth metadata for one branch instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchMeta {
    /// Address of the branch's first byte.
    pub pc: u64,
    /// Encoded length.
    pub len: u8,
    /// Classification.
    pub kind: BranchKind,
    /// Static target for direct branches (`None` for returns/indirect).
    pub target: Option<u64>,
    /// Address of the next sequential instruction.
    pub fallthrough: u64,
    /// Possible targets of an indirect branch (walker's choice set).
    pub indirect_targets: Vec<u64>,
    /// Whether a conditional branch is a loop backedge.
    pub backedge: bool,
    /// Bias selector for the walker's conditional outcome model.
    pub bias: u8,
}

/// One basic block: straight-line instructions ending in a branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: u64,
    /// Instructions in the block, including the terminator.
    pub insns: u32,
    /// Terminating branch.
    pub terminator: BranchMeta,
}

impl BasicBlock {
    /// First byte after the terminator (block byte range end).
    #[must_use]
    pub fn end(&self) -> u64 {
        self.terminator.pc + u64::from(self.terminator.len)
    }
}

/// A function: contiguous blocks, entered at `entry`, exited by return.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Entry address (start of block 0).
    pub entry: u64,
    /// Blocks in layout order.
    pub blocks: Vec<BasicBlock>,
    /// Hotness weight used by the walker's call selection.
    pub weight: f64,
}

/// The generated program.
#[derive(Debug, Clone)]
pub struct Program {
    base: u64,
    image: Vec<u8>,
    functions: Vec<Function>,
    /// pc → (function index, block index) for every block terminator.
    branch_index: HashMap<u64, (u32, u32)>,
    /// block start address → (function index, block index).
    block_index: HashMap<u64, (u32, u32)>,
    /// Dense pc-sorted branch side table (hot-path metadata lookups).
    table: BranchTable,
    /// Burst-locality parameters carried from the spec for the walker.
    burst: (usize, f64),
}

/// Build the dense side table from the assembled functions. Derived data:
/// never serialized, rebuilt on generation and cache load alike.
fn build_branch_table(functions: &[Function]) -> BranchTable {
    let recs: Vec<BranchRecord> = functions
        .iter()
        .flat_map(|f| {
            f.blocks.iter().map(|b| {
                let t = &b.terminator;
                BranchRecord {
                    pc: t.pc,
                    block_start: b.start,
                    target: t.target,
                    fallthrough: t.fallthrough,
                    insns: b.insns,
                    len: t.len,
                    kind: t.kind,
                }
            })
        })
        .collect();
    BranchTable::from_records(recs)
}

// ---------------------------------------------------------------------------
// Abstract structure (pre-layout)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum AbsTerm {
    Cond { target_block: usize, backedge: bool },
    Uncond { target_block: usize },
    Call { callee: usize },
    IndirectCall { callees: Vec<usize> },
    IndirectJmp { target_blocks: Vec<usize> },
    Ret,
}

#[derive(Debug, Clone)]
struct AbsBlock {
    selectors: Vec<u64>,
    term: AbsTerm,
}

#[derive(Debug, Clone)]
struct AbsFn {
    blocks: Vec<AbsBlock>,
    weight: f64,
}

fn sample_range(rng: &mut SmallRng, r: &Range<usize>) -> usize {
    if r.start + 1 >= r.end {
        r.start
    } else {
        rng.gen_range(r.start..r.end)
    }
}

impl Program {
    /// Generate a program from its spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero functions or empty ranges).
    #[must_use]
    pub fn generate(spec: &ProgramSpec) -> Self {
        assert!(spec.functions > 0, "need at least one function");
        assert!(spec.blocks_per_fn.start >= 1);
        let mut rng = SmallRng::seed_from_u64(spec.seed);

        // ---- Phase 1: abstract structure ----
        // Leaf assignment: leaves make no calls; call sites prefer them.
        let is_leaf: Vec<bool> = (0..spec.functions)
            .map(|fi| fi != 0 && rng.gen_bool(spec.leaf_fraction))
            .collect();
        let leaves: Vec<usize> = (1..spec.functions).filter(|&fi| is_leaf[fi]).collect();

        let mut fns: Vec<AbsFn> = Vec::with_capacity(spec.functions);

        // Function 0 is the dispatcher: an event loop of indirect calls
        // fanning out across the whole program (a server's request loop).
        // Without it the walk could get trapped in a call-free region.
        {
            let fanout_blocks = spec.dispatch_blocks.min(spec.functions.max(2) - 1).max(1);
            let mut blocks = Vec::with_capacity(fanout_blocks + 1);
            for _ in 0..fanout_blocks {
                let ninsns = sample_range(&mut rng, &spec.insns_per_block);
                let selectors: Vec<u64> = (0..ninsns).map(|_| rng.gen()).collect();
                let n = spec.dispatch_callees.clamp(2, 256).min(spec.functions - 1);
                let callees: Vec<usize> =
                    (0..n).map(|_| rng.gen_range(1..spec.functions)).collect();
                blocks.push(AbsBlock {
                    selectors,
                    term: AbsTerm::IndirectCall { callees },
                });
            }
            blocks.push(AbsBlock {
                selectors: vec![rng.gen()],
                term: AbsTerm::Ret,
            });
            fns.push(AbsFn {
                blocks,
                weight: 1.0,
            });
        }

        #[allow(clippy::needless_range_loop)] // fi also derives entry PCs, not just is_leaf
        for fi in 1..spec.functions {
            let nblocks = sample_range(&mut rng, &spec.blocks_per_fn).max(1);
            // Zipf-like hotness over a random permutation: weight by rank.
            let rank = 1 + rng.gen_range(0..spec.functions);
            let weight = 1.0 / (rank as f64).powf(spec.zipf_s);

            let mut blocks = Vec::with_capacity(nblocks);
            for bi in 0..nblocks {
                let ninsns = sample_range(&mut rng, &spec.insns_per_block);
                let selectors: Vec<u64> = (0..ninsns).map(|_| rng.gen()).collect();
                let last = bi + 1 == nblocks;
                let term = if last {
                    AbsTerm::Ret
                } else if rng.gen_bool(spec.cond_fraction) {
                    let backedge = bi > 0 && rng.gen_bool(spec.backedge_fraction);
                    let target_block = if backedge {
                        rng.gen_range(0..bi)
                    } else {
                        rng.gen_range(bi + 1..nblocks)
                    };
                    AbsTerm::Cond {
                        target_block,
                        backedge,
                    }
                } else if !is_leaf[fi] && rng.gen_bool(spec.call_fraction) {
                    // DAG constraint (callee index > caller) bounds stack
                    // depth; function 0 is the dispatcher. Most calls target
                    // leaf functions (bounding the request tree); the rest
                    // are drawn from a *band* just above the caller so
                    // non-leaf call trees occupy disjoint index regions
                    // instead of collapsing onto one shared tail — this is
                    // what keeps the active branch set large (cold-branch
                    // capacity misses, §1).
                    let leaf_call = !leaves.is_empty() && rng.gen_bool(0.75);
                    // Any leaf is a safe callee regardless of index order:
                    // leaves make no calls, so no cycle can form.
                    let pick_leaf =
                        |rng: &mut SmallRng| -> usize { leaves[rng.gen_range(0..leaves.len())] };
                    if fi + 1 >= spec.functions && !leaf_call {
                        AbsTerm::Uncond {
                            target_block: rng.gen_range(bi + 1..nblocks),
                        }
                    } else if rng.gen_bool(spec.indirect_fraction) {
                        let n = spec.callees_per_fn.clamp(2, 8);
                        let callees: Vec<usize> = (0..n)
                            .map(|_| {
                                if leaf_call {
                                    pick_leaf(&mut rng)
                                } else {
                                    rng.gen_range((fi + 1).min(spec.functions - 1)..spec.functions)
                                }
                            })
                            .collect();
                        AbsTerm::IndirectCall { callees }
                    } else if leaf_call {
                        AbsTerm::Call {
                            callee: pick_leaf(&mut rng),
                        }
                    } else {
                        let span = (spec.functions / 8).max(64);
                        let hi = (fi + 1 + span).min(spec.functions);
                        AbsTerm::Call {
                            callee: rng.gen_range(fi + 1..hi),
                        }
                    }
                } else if rng.gen_bool(spec.indirect_fraction) && nblocks > bi + 2 {
                    let n = 3.min(nblocks - bi - 1);
                    let target_blocks: Vec<usize> =
                        (0..n).map(|_| rng.gen_range(bi + 1..nblocks)).collect();
                    AbsTerm::IndirectJmp { target_blocks }
                } else {
                    AbsTerm::Uncond {
                        target_block: rng.gen_range(bi + 1..nblocks),
                    }
                };
                blocks.push(AbsBlock { selectors, term });
            }
            fns.push(AbsFn { blocks, weight });
        }

        // ---- Phase 2: layout order ----
        let mut order: Vec<usize> = (0..spec.functions).collect();
        match spec.layout {
            Layout::Interleaved => {
                // Hot and cold functions mixed in memory: a seeded shuffle,
                // which is what ordinary compilation/linking produces —
                // neighboring functions are unrelated, so hot and cold bytes
                // share cache lines pervasively (the shadow-branch source).
                for i in (1..order.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    order.swap(i, j);
                }
            }
            Layout::Bolted => {
                order.sort_by(|&a, &b| fns[b].weight.total_cmp(&fns[a].weight));
            }
        }
        // Function 0 (the dispatcher) always leads so the entry point is
        // stable; keep the rest of the order as computed.
        if let Some(pos) = order.iter().position(|&f| f == 0) {
            order.remove(pos);
            order.insert(0, 0);
        }

        // ---- Phase 3: emission with fixups ----
        let base = 0x0040_0000u64;
        let mut image: Vec<u8> = Vec::new();
        // Block start addresses, indexed [fn][block].
        let mut block_addr: Vec<Vec<u64>> = vec![Vec::new(); spec.functions];
        // Fixups: (image offset of rel32, end-of-insn pc, fn, block).
        let mut fixups: Vec<(usize, u64, usize, usize)> = Vec::new();
        // Terminator record: (fn, block, pc, len, kind-specifics).
        struct TermRec {
            pc: u64,
            len: u8,
            kind: BranchKind,
            target_ref: Option<(usize, usize)>,
            indirect_refs: Vec<(usize, usize)>,
            backedge: bool,
        }
        let mut term_recs: Vec<Vec<TermRec>> = Vec::new();
        term_recs.resize_with(spec.functions, Vec::new);

        for &fi in &order {
            let f = &fns[fi];
            term_recs[fi] = Vec::with_capacity(f.blocks.len());
            block_addr[fi] = Vec::with_capacity(f.blocks.len());
            for (bi, b) in f.blocks.iter().enumerate() {
                block_addr[fi].push(base + image.len() as u64);
                for &sel in &b.selectors {
                    encode::emit_nonbranch(&mut image, sel);
                }
                let pc = base + image.len() as u64;
                let (len, kind, target_ref, indirect_refs, backedge) = match &b.term {
                    AbsTerm::Cond {
                        target_block,
                        backedge,
                    } => {
                        let cc = (rng.gen_range(0u8..16)) & 0x0F;
                        let len = encode::jcc_rel32(&mut image, cc, 0) as u8;
                        fixups.push((image.len() - 4, pc + u64::from(len), fi, *target_block));
                        (
                            len,
                            BranchKind::DirectCond,
                            Some((fi, *target_block)),
                            Vec::new(),
                            *backedge,
                        )
                    }
                    AbsTerm::Uncond { target_block } => {
                        let len = encode::jmp_rel32(&mut image, 0) as u8;
                        fixups.push((image.len() - 4, pc + u64::from(len), fi, *target_block));
                        (
                            len,
                            BranchKind::DirectUncond,
                            Some((fi, *target_block)),
                            Vec::new(),
                            false,
                        )
                    }
                    AbsTerm::Call { callee } => {
                        let len = encode::call_rel32(&mut image, 0) as u8;
                        fixups.push((image.len() - 4, pc + u64::from(len), *callee, 0));
                        (len, BranchKind::Call, Some((*callee, 0)), Vec::new(), false)
                    }
                    AbsTerm::IndirectCall { callees } => {
                        let reg = encode::Reg::ALL[rng.gen_range(0..8usize)];
                        let len = encode::call_reg(&mut image, reg) as u8;
                        let refs = callees.iter().map(|&c| (c, 0)).collect();
                        (len, BranchKind::IndirectCall, None, refs, false)
                    }
                    AbsTerm::IndirectJmp { target_blocks } => {
                        let reg = encode::Reg::ALL[rng.gen_range(0..8usize)];
                        let len = encode::jmp_reg(&mut image, reg) as u8;
                        let refs = target_blocks.iter().map(|&tb| (fi, tb)).collect();
                        (len, BranchKind::IndirectJmp, None, refs, false)
                    }
                    AbsTerm::Ret => {
                        let len = encode::ret(&mut image) as u8;
                        (len, BranchKind::Return, None, Vec::new(), false)
                    }
                };
                term_recs[fi].push(TermRec {
                    pc,
                    len,
                    kind,
                    target_ref,
                    indirect_refs,
                    backedge,
                });
                let _ = bi;
            }
        }

        // Patch fixups.
        for (off, end_pc, tfn, tblock) in fixups {
            let target = block_addr[tfn][tblock];
            let rel = target.wrapping_sub(end_pc) as i64 as i32;
            image[off..off + 4].copy_from_slice(&rel.to_le_bytes());
        }

        // ---- Phase 4: assemble public structures ----
        let mut functions: Vec<Function> = Vec::with_capacity(spec.functions);
        let mut branch_index = HashMap::new();
        let mut bias_rng = SmallRng::seed_from_u64(spec.seed ^ 0xB1A5);
        for fi in 0..spec.functions {
            let mut blocks = Vec::with_capacity(fns[fi].blocks.len());
            for (bi, rec) in term_recs[fi].iter().enumerate() {
                let target = rec.target_ref.map(|(tf, tb)| block_addr[tf][tb]);
                let indirect_targets: Vec<u64> = rec
                    .indirect_refs
                    .iter()
                    .map(|&(tf, tb)| block_addr[tf][tb])
                    .collect();
                let meta = BranchMeta {
                    pc: rec.pc,
                    len: rec.len,
                    kind: rec.kind,
                    target,
                    fallthrough: rec.pc + u64::from(rec.len),
                    indirect_targets,
                    backedge: rec.backedge,
                    bias: bias_rng.gen_range(0..=9),
                };
                branch_index.insert(rec.pc, (fi as u32, bi as u32));
                blocks.push(BasicBlock {
                    start: block_addr[fi][bi],
                    insns: fns[fi].blocks[bi].selectors.len() as u32 + 1,
                    terminator: meta,
                });
            }
            functions.push(Function {
                entry: block_addr[fi][0],
                blocks,
                weight: fns[fi].weight,
            });
        }

        let mut block_index = HashMap::new();
        for (fi, f) in functions.iter().enumerate() {
            for (bi, b) in f.blocks.iter().enumerate() {
                block_index.insert(b.start, (fi as u32, bi as u32));
            }
        }

        let table = build_branch_table(&functions);
        Program {
            base,
            image,
            functions,
            branch_index,
            block_index,
            table,
            burst: (spec.burst_pool, spec.burst_prob),
        }
    }

    /// Reassemble a program from its serialized parts (disk cache load),
    /// rebuilding the derived `branch_index`/`block_index` maps — they are
    /// pure functions of `functions`, so the cache never stores them.
    pub(crate) fn from_parts(
        base: u64,
        image: Vec<u8>,
        functions: Vec<Function>,
        burst: (usize, f64),
    ) -> Self {
        let mut branch_index = HashMap::new();
        let mut block_index = HashMap::new();
        for (fi, f) in functions.iter().enumerate() {
            for (bi, b) in f.blocks.iter().enumerate() {
                branch_index.insert(b.terminator.pc, (fi as u32, bi as u32));
                block_index.insert(b.start, (fi as u32, bi as u32));
            }
        }
        let table = build_branch_table(&functions);
        Program {
            base,
            image,
            functions,
            branch_index,
            block_index,
            table,
            burst,
        }
    }

    /// `(pool size, repeat probability)` of the request-burst model, for the
    /// walker.
    #[must_use]
    pub fn spec_burst(&self) -> (usize, f64) {
        self.burst
    }

    /// Base address of the image.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total code bytes.
    #[must_use]
    pub fn code_bytes(&self) -> usize {
        self.image.len()
    }

    /// Number of cache lines the image spans.
    #[must_use]
    pub fn code_lines(&self) -> usize {
        self.image.len().div_ceil(CACHE_LINE_BYTES)
    }

    /// All functions.
    #[must_use]
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Total static branch count.
    #[must_use]
    pub fn branch_count(&self) -> usize {
        self.branch_index.len()
    }

    /// Whether `addr` lies inside the image.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.image.len() as u64
    }

    /// The 64-byte cache line containing `addr`, zero-padded at the image
    /// edge. Returns the line base address and its bytes.
    #[must_use]
    pub fn line(&self, addr: u64) -> (u64, [u8; CACHE_LINE_BYTES]) {
        let line_base = addr & !(CACHE_LINE_BYTES as u64 - 1);
        let mut bytes = [0u8; CACHE_LINE_BYTES];
        // One bulk copy of the line's overlap with the image (hot path:
        // the SBD fetches a line for every shadow-decoded block).
        let image_end = self.base + self.image.len() as u64;
        let lo = line_base.max(self.base);
        let hi = (line_base + CACHE_LINE_BYTES as u64).min(image_end);
        if lo < hi {
            let dst = (lo - line_base) as usize;
            let src = (lo - self.base) as usize;
            let n = (hi - lo) as usize;
            bytes[dst..dst + n].copy_from_slice(&self.image[src..src + n]);
        }
        (line_base, bytes)
    }

    /// Raw bytes starting at `addr` (up to `len`, truncated at image end).
    #[must_use]
    pub fn bytes_at(&self, addr: u64, len: usize) -> &[u8] {
        if !self.contains(addr) {
            return &[];
        }
        let off = (addr - self.base) as usize;
        &self.image[off..(off + len).min(self.image.len())]
    }

    /// Ground-truth branch metadata at `pc`, if a block terminator lives
    /// there.
    #[must_use]
    pub fn branch_at(&self, pc: u64) -> Option<&BranchMeta> {
        let &(fi, bi) = self.branch_index.get(&pc)?;
        Some(&self.functions[fi as usize].blocks[bi as usize].terminator)
    }

    /// The block whose first instruction is at `pc`, if any.
    #[must_use]
    pub fn block_starting_at(&self, pc: u64) -> Option<&BasicBlock> {
        let &(fi, bi) = self.block_index.get(&pc)?;
        Some(&self.functions[fi as usize].blocks[bi as usize])
    }

    /// `(function index, block index)` of the block starting at `pc`.
    #[must_use]
    pub fn locate_block(&self, pc: u64) -> Option<(u32, u32)> {
        self.block_index.get(&pc).copied()
    }

    /// `(function index, block index)` of the terminator at `pc`.
    #[must_use]
    pub fn locate_branch(&self, pc: u64) -> Option<(u32, u32)> {
        self.branch_index.get(&pc).copied()
    }

    /// The dense pc-sorted branch side table (built once at generation or
    /// cache load; shared by every simulator over this program).
    #[must_use]
    pub fn branch_table(&self) -> &BranchTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skia_isa::{decode, InsnKind};

    fn small_spec() -> ProgramSpec {
        ProgramSpec {
            functions: 50,
            ..ProgramSpec::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Program::generate(&small_spec());
        let b = Program::generate(&small_spec());
        assert_eq!(a.code_bytes(), b.code_bytes());
        assert_eq!(a.bytes_at(a.base(), 256), b.bytes_at(b.base(), 256));
    }

    #[test]
    fn every_block_terminator_decodes_to_its_ground_truth() {
        let p = Program::generate(&small_spec());
        for f in p.functions() {
            for b in &f.blocks {
                let t = &b.terminator;
                let bytes = p.bytes_at(t.pc, 15);
                let d = decode::decode(bytes).expect("terminator must decode");
                assert_eq!(d.len, t.len, "length at {:#x}", t.pc);
                match d.kind {
                    InsnKind::Branch(bi) => {
                        assert_eq!(bi.kind, t.kind, "kind at {:#x}", t.pc);
                        if let Some(target) = t.target {
                            assert_eq!(
                                d.branch_target(t.pc),
                                Some(target),
                                "target at {:#x}",
                                t.pc
                            );
                        }
                    }
                    InsnKind::Other => panic!("terminator at {:#x} is not a branch", t.pc),
                }
            }
        }
    }

    #[test]
    fn block_bodies_decode_cleanly_from_start_to_terminator() {
        let p = Program::generate(&small_spec());
        for f in p.functions().iter().take(10) {
            for b in &f.blocks {
                let mut pc = b.start;
                let mut count = 0u32;
                while pc < b.terminator.pc {
                    let d = decode::decode(p.bytes_at(pc, 15)).expect("body instruction");
                    assert_eq!(d.kind, InsnKind::Other, "non-terminator at {pc:#x}");
                    pc += u64::from(d.len);
                    count += 1;
                }
                assert_eq!(pc, b.terminator.pc, "boundaries align");
                assert_eq!(count + 1, b.insns, "instruction count matches");
            }
        }
    }

    #[test]
    fn direct_targets_are_block_starts() {
        let p = Program::generate(&small_spec());
        let starts: std::collections::HashSet<u64> = p
            .functions()
            .iter()
            .flat_map(|f| f.blocks.iter().map(|b| b.start))
            .collect();
        for f in p.functions() {
            for b in &f.blocks {
                if let Some(t) = b.terminator.target {
                    assert!(starts.contains(&t), "target {t:#x} is a block start");
                }
                for &t in &b.terminator.indirect_targets {
                    assert!(starts.contains(&t), "indirect target {t:#x} valid");
                }
            }
        }
    }

    #[test]
    fn last_block_returns() {
        let p = Program::generate(&small_spec());
        for f in p.functions() {
            assert_eq!(f.blocks.last().unwrap().terminator.kind, BranchKind::Return);
        }
    }

    #[test]
    fn backedges_point_backward_and_forward_jumps_forward() {
        let p = Program::generate(&small_spec());
        for f in p.functions() {
            for b in &f.blocks {
                let t = &b.terminator;
                if t.kind == BranchKind::DirectCond {
                    let target = t.target.unwrap();
                    if t.backedge {
                        assert!(target < b.start, "backedge at {:#x}", t.pc);
                    } else {
                        assert!(target > t.pc, "forward cond at {:#x}", t.pc);
                    }
                }
                if t.kind == BranchKind::DirectUncond {
                    assert!(t.target.unwrap() > t.pc, "uncond forward at {:#x}", t.pc);
                }
            }
        }
    }

    #[test]
    fn bolted_layout_packs_hot_functions() {
        let mut spec = small_spec();
        spec.functions = 200;
        let interleaved = Program::generate(&spec);
        spec.layout = Layout::Bolted;
        let bolted = Program::generate(&spec);
        // Same total size, different order.
        assert_eq!(interleaved.code_bytes(), bolted.code_bytes());
        // In the bolted image, the hottest non-dispatcher function should
        // sit earlier (lower address) than in the interleaved image on
        // average: compare mean address of the top decile by weight.
        let mean_hot_addr = |p: &Program| -> f64 {
            let mut fs: Vec<&Function> = p.functions().iter().collect();
            fs.sort_by(|a, b| b.weight.total_cmp(&a.weight));
            let top = &fs[..20];
            top.iter().map(|f| f.entry as f64).sum::<f64>() / top.len() as f64
        };
        assert!(mean_hot_addr(&bolted) < mean_hot_addr(&interleaved));
    }

    #[test]
    fn line_accessor_zero_pads_past_image() {
        let p = Program::generate(&small_spec());
        let end = p.base() + p.code_bytes() as u64;
        let (line_base, bytes) = p.line(end - 1);
        assert!(line_base < end);
        let in_image = (end - line_base) as usize;
        if in_image < CACHE_LINE_BYTES {
            assert!(bytes[in_image..].iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn branch_lookup_by_pc() {
        let p = Program::generate(&small_spec());
        let f = &p.functions()[0];
        let t = &f.blocks[0].terminator;
        assert_eq!(p.branch_at(t.pc).unwrap().pc, t.pc);
        assert!(p.branch_at(t.pc + 1).is_none());
    }
}
