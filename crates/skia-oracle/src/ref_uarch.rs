//! Deliberately slow, obviously-correct reference structures for the BTB,
//! the split SBB halves and the RAS.
//!
//! Everything here is a plain `Vec` with linear search: no set slicing, no
//! slot reuse tricks, no ordered mirrors. The structures implement the
//! *paper-literal* policies — one global recency tick per array, true-LRU
//! victim selection with an optional "prefer un-retired" class (§4.3) — and
//! are extensionally equal to `skia_uarch::TagArray`-backed production
//! structures:
//!
//! * tags are unique per set (an insert with a matching tag overwrites), so
//!   linear search finds the same entry a way scan finds;
//! * every insert/access draws a fresh tick, so `last_use` values are unique
//!   across the array and the LRU minimum is unambiguous — slot order, which
//!   the production array's way scan depends on for ties, can never matter.

/// One valid entry of a [`RefArray`].
#[derive(Debug, Clone)]
struct RefSlot<V> {
    set: usize,
    tag: u64,
    last_use: u64,
    value: V,
}

/// A flat-`Vec` reference model of a set-associative tag array with
/// true-LRU replacement and caller-controlled victim preference.
#[derive(Debug, Clone)]
pub struct RefArray<V> {
    sets: usize,
    ways: usize,
    tick: u64,
    entries: Vec<RefSlot<V>>,
}

impl<V> RefArray<V> {
    /// Create an empty array of `sets × ways` capacity.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0);
        RefArray {
            sets,
            ways,
            tick: 0,
            entries: Vec::new(),
        }
    }

    /// Map a key to its set index. The production array uses a mask when the
    /// set count is a power of two; the mask is provably identical to the
    /// modulo there, so the reference always takes the modulo.
    pub fn set_of(&self, key: u64) -> usize {
        (key % self.sets as u64) as usize
    }

    /// Look up without recency update.
    pub fn probe(&self, set: usize, tag: u64) -> Option<&V> {
        self.entries
            .iter()
            .find(|e| e.set == set && e.tag == tag)
            .map(|e| &e.value)
    }

    /// Look up and refresh recency on a hit. The production array advances
    /// its tick on *every* access, hit or miss; so does this one.
    pub fn access(&mut self, set: usize, tag: u64) -> Option<&mut V> {
        self.access_inner(set, tag, true)
    }

    /// [`RefArray::access`]: advances the tick but — as a deliberate fault
    /// for divergence-detection tests — does **not** refresh `last_use`.
    pub fn access_stale(&mut self, set: usize, tag: u64) -> Option<&mut V> {
        self.access_inner(set, tag, false)
    }

    fn access_inner(&mut self, set: usize, tag: u64, refresh: bool) -> Option<&mut V> {
        self.tick += 1;
        let tick = self.tick;
        self.entries
            .iter_mut()
            .find(|e| e.set == set && e.tag == tag)
            .map(|e| {
                if refresh {
                    e.last_use = tick;
                }
                &mut e.value
            })
    }

    /// Mutable access without any recency or tick update.
    pub fn peek_mut(&mut self, set: usize, tag: u64) -> Option<&mut V> {
        self.entries
            .iter_mut()
            .find(|e| e.set == set && e.tag == tag)
            .map(|e| &mut e.value)
    }

    /// Insert with a victim preference, mirroring
    /// `TagArray::insert_with`: overwrite on tag match (returning the old
    /// value under the same tag), fill a free way, else evict the oldest
    /// entry of the preferred class — oldest overall when no candidate is
    /// preferred. Returns the displaced `(tag, value)`.
    pub fn insert_with(
        &mut self,
        set: usize,
        tag: u64,
        value: V,
        prefer_evict: impl Fn(&V) -> bool,
    ) -> Option<(u64, V)> {
        self.tick += 1;
        let tick = self.tick;

        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.set == set && e.tag == tag)
        {
            e.last_use = tick;
            let old = std::mem::replace(&mut e.value, value);
            return Some((tag, old));
        }

        let in_set = self.entries.iter().filter(|e| e.set == set).count();
        if in_set < self.ways {
            self.entries.push(RefSlot {
                set,
                tag,
                last_use: tick,
                value,
            });
            return None;
        }

        // Victim: preferred class first, then strict LRU. `last_use` values
        // are unique, so `min_by_key` is unambiguous.
        let victim = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.set == set)
            .min_by_key(|(_, e)| (!prefer_evict(&e.value), e.last_use))
            .map(|(i, _)| i)
            .expect("set is full here");
        let old = std::mem::replace(
            &mut self.entries[victim],
            RefSlot {
                set,
                tag,
                last_use: tick,
                value,
            },
        );
        Some((old.tag, old.value))
    }

    /// Plain-LRU insert.
    pub fn insert(&mut self, set: usize, tag: u64, value: V) -> Option<(u64, V)> {
        self.insert_with(set, tag, value, |_| false)
    }

    /// Remove an entry, returning its value.
    pub fn invalidate(&mut self, set: usize, tag: u64) -> Option<V> {
        let pos = self
            .entries
            .iter()
            .position(|e| e.set == set && e.tag == tag)?;
        Some(self.entries.remove(pos).value)
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entry is valid.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The lowest resident tag at or after `pc`, across all sets (the
    /// "next known branch" scan the production structures answer through a
    /// `BTreeSet` mirror).
    pub fn next_tag_at_or_after(&self, pc: u64) -> Option<u64> {
        self.entries
            .iter()
            .map(|e| e.tag)
            .filter(|&t| t >= pc)
            .min()
    }
}

use skia_isa::BranchKind;
use skia_uarch::btb::BtbEntry;

/// Reference finite BTB: a [`RefArray`] of [`BtbEntry`] with the production
/// geometry mapping (PC modulo sets) and plain LRU.
#[derive(Debug, Clone)]
pub struct RefBtb {
    arr: RefArray<BtbEntry>,
    /// Fault knob: `lookup` advances the recency tick but leaves `last_use`
    /// stale, perturbing LRU order under set pressure (test-only).
    pub stale_lru: bool,
}

impl RefBtb {
    /// Build from `(entries, ways)` geometry.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries >= ways && entries.is_multiple_of(ways));
        RefBtb {
            arr: RefArray::new(entries / ways, ways),
            stale_lru: false,
        }
    }

    /// Predict-path lookup (recency-updating).
    pub fn lookup(&mut self, pc: u64) -> Option<BtbEntry> {
        let set = self.arr.set_of(pc);
        if self.stale_lru {
            self.arr.access_stale(set, pc).copied()
        } else {
            self.arr.access(set, pc).copied()
        }
    }

    /// Stateless probe.
    pub fn probe(&self, pc: u64) -> Option<BtbEntry> {
        self.arr.probe(self.arr.set_of(pc), pc).copied()
    }

    /// Install or refresh the branch at `pc`.
    pub fn insert(&mut self, pc: u64, kind: BranchKind, target: u64, len: u8) {
        let set = self.arr.set_of(pc);
        self.arr.insert(set, pc, BtbEntry { kind, target, len });
    }

    /// The lowest resident branch PC at or after `pc`.
    pub fn next_branch_at_or_after(&self, pc: u64) -> Option<u64> {
        self.arr.next_tag_at_or_after(pc)
    }
}

/// Reference infinite BTB: an unsorted `Vec` of `(pc, entry)`.
#[derive(Debug, Clone, Default)]
pub struct RefIdealBtb {
    entries: Vec<(u64, BtbEntry)>,
}

impl RefIdealBtb {
    /// Create an empty ideal BTB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up the branch at `pc`.
    pub fn lookup(&self, pc: u64) -> Option<BtbEntry> {
        self.entries.iter().find(|(p, _)| *p == pc).map(|(_, e)| *e)
    }

    /// Install (or overwrite) the branch at `pc`.
    pub fn insert(&mut self, pc: u64, kind: BranchKind, target: u64, len: u8) {
        let entry = BtbEntry { kind, target, len };
        match self.entries.iter_mut().find(|(p, _)| *p == pc) {
            Some(slot) => slot.1 = entry,
            None => self.entries.push((pc, entry)),
        }
    }

    /// The lowest resident branch PC at or after `pc`.
    pub fn next_branch_at_or_after(&self, pc: u64) -> Option<u64> {
        self.entries
            .iter()
            .map(|(p, _)| *p)
            .filter(|&p| p >= pc)
            .min()
    }
}

/// Reference return address stack: a plain `Vec` that drops its *oldest*
/// entry on overflow.
///
/// The production RAS is a fixed circular buffer with a saturating depth
/// counter. The two are extensionally equal for the operations the
/// simulator uses (`push`/`pop`/`peek`; checkpoints are never taken):
/// overflow overwrites the slot `depth` entries below the top, which is
/// exactly the oldest *readable* entry — anything deeper was already
/// unreachable because pops stop at depth 0 — and an underflowing pop
/// returns `None` without moving the top in either model.
#[derive(Debug, Clone)]
pub struct RefRas {
    entries: Vec<u64>,
    capacity: usize,
}

impl RefRas {
    /// Create a stack bounded at `capacity` readable entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        RefRas {
            entries: Vec::new(),
            capacity,
        }
    }

    /// Push a return address, dropping the oldest on overflow.
    pub fn push(&mut self, return_address: u64) {
        self.entries.push(return_address);
        if self.entries.len() > self.capacity {
            self.entries.remove(0);
        }
    }

    /// Pop the predicted return address; `None` on underflow.
    pub fn pop(&mut self) -> Option<u64> {
        self.entries.pop()
    }

    /// Peek at the top without popping.
    pub fn peek(&self) -> Option<u64> {
        self.entries.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_matches_insert_order_semantics() {
        let mut a: RefArray<u32> = RefArray::new(1, 2);
        a.insert(0, 1, 10);
        a.insert(0, 2, 20);
        assert!(a.access(0, 1).is_some()); // tag 2 becomes LRU
        let evicted = a.insert(0, 3, 30);
        assert_eq!(evicted.map(|(t, _)| t), Some(2));
    }

    #[test]
    fn preferred_class_evicts_before_lru() {
        let mut a: RefArray<bool> = RefArray::new(1, 2);
        a.insert(0, 1, true); // retired
        a.insert(0, 2, false); // newer but unretired
        let evicted = a.insert_with(0, 3, false, |&retired| !retired);
        assert_eq!(evicted.map(|(t, _)| t), Some(2));
    }

    #[test]
    fn stale_access_still_ticks() {
        let mut a: RefArray<u32> = RefArray::new(1, 2);
        a.insert(0, 1, 10);
        a.insert(0, 2, 20);
        // A stale access to tag 1 does not refresh it: it stays LRU.
        assert!(a.access_stale(0, 1).is_some());
        let evicted = a.insert(0, 3, 30);
        assert_eq!(evicted.map(|(t, _)| t), Some(1));
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut ras = RefRas::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }
}
