//! Memo-free reference Shadow Branch Decoder.
//!
//! Re-implements the paper's tail decode (§3.3) and two-phase head decode
//! (§3.2: Index Computation + Path Validation) directly from the text, with
//! no memoization and no stat-replay machinery — every region is decoded
//! from the bytes every time. Running this in lockstep against the
//! production `skia_core::ShadowDecoder` differentially tests the head-memo
//! optimization added in PR 2: a memo bug (stale hit, stat-replay skew)
//! shows up as a `ShadowDecoderStats` or shadow-branch divergence.

use skia_core::{HeadDecode, IndexPolicy, ShadowBranch, ShadowDecoderStats};
use skia_isa::{decode, InsnKind};

/// Deliberate reference-decoder bugs, settable through
/// [`RefShadowDecoder::fault`]. Used by the fault-injection proofs: the
/// differential harness and the fuzzer must *detect* each of these as a
/// divergence from the production decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SbdFault {
    /// Tail decode starts one byte past the known boundary, as if the exit
    /// offset were off by one (§3.3 broken).
    TailSkipFirstByte,
    /// Head extraction walks from the *last* valid start index instead of
    /// the policy-chosen one (§3.2 Path Validation selection broken).
    HeadChoosesLastStart,
}

/// The reference decoder: policy + bound + counters, nothing else.
#[derive(Debug, Clone)]
pub struct RefShadowDecoder {
    policy: IndexPolicy,
    max_valid_paths: usize,
    stats: ShadowDecoderStats,
    /// Injected bug, `None` in every honest run.
    pub fault: Option<SbdFault>,
}

impl RefShadowDecoder {
    /// Create a decoder with the given index policy and valid-path bound.
    pub fn new(policy: IndexPolicy, max_valid_paths: usize) -> Self {
        assert!(max_valid_paths >= 1);
        RefShadowDecoder {
            policy,
            max_valid_paths,
            stats: ShadowDecoderStats::default(),
            fault: None,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> ShadowDecoderStats {
        self.stats
    }

    /// Tail decode: linear scan from `exit_offset` (a known instruction
    /// boundary) to the end of the line, stopping at the first byte that
    /// does not decode or at an instruction spilling past the line.
    pub fn decode_tail(
        &mut self,
        line: &[u8],
        line_base: u64,
        exit_offset: usize,
    ) -> Vec<ShadowBranch> {
        self.stats.tail_regions += 1;
        let mut found = Vec::new();
        let mut off = exit_offset;
        if self.fault == Some(SbdFault::TailSkipFirstByte) {
            off += 1;
        }
        while off < line.len() {
            match decode::decode(&line[off..]) {
                Ok(d) => {
                    if let InsnKind::Branch(b) = d.kind {
                        if b.kind.sbb_eligible() {
                            let pc = line_base + off as u64;
                            found.push(ShadowBranch {
                                pc,
                                len: d.len,
                                kind: b.kind,
                                target: b.target(pc, d.len),
                                line_offset: off as u8,
                            });
                        }
                    }
                    off += usize::from(d.len);
                }
                Err(_) => break,
            }
        }
        self.stats.tail_branches += found.len() as u64;
        found
    }

    /// Head decode: Index Computation at every byte offset, Path Validation
    /// of every start index with merging-family counting, policy-chosen
    /// extraction. Always decoded fresh — no memo.
    pub fn decode_head(&mut self, line: &[u8], line_base: u64, entry_offset: usize) -> HeadDecode {
        self.stats.head_regions += 1;
        let entry = entry_offset.min(line.len());
        if entry == 0 {
            return HeadDecode::default();
        }
        let hd = self.decode_head_fresh(line, line_base, entry);
        if hd.discarded {
            self.stats.head_regions_discarded += 1;
        } else if !hd.valid_starts.is_empty() {
            self.stats.head_regions_valid += 1;
            self.stats.valid_path_sum += hd.valid_starts.len() as u64;
            self.stats.head_branches += hd.branches.len() as u64;
        }
        hd
    }

    fn decode_head_fresh(&self, line: &[u8], line_base: u64, entry: usize) -> HeadDecode {
        // Phase 1: Index Computation. A candidate instruction is usable on a
        // path only if it ends at or before the entry point.
        let mut lengths = vec![0u8; entry];
        for (i, slot) in lengths.iter_mut().enumerate() {
            if let Ok(d) = decode::decode(&line[i..]) {
                if i + usize::from(d.len) <= entry {
                    *slot = d.len;
                }
            }
        }

        // Phase 2: Path Validation with merge detection. A path that runs
        // into an offset already covered by a validated path merges into it;
        // only non-merging families count against the ambiguity bound.
        let mut valid_starts: Vec<u8> = Vec::new();
        let mut last_index: Vec<u8> = Vec::new();
        let mut families = 0usize;
        let mut on_valid_path = vec![false; entry];
        let mut discarded = false;
        for start in 0..entry {
            let mut pos = start;
            let mut last = start;
            let mut merged = false;
            let valid = loop {
                if pos == entry {
                    break true;
                }
                if on_valid_path[pos] {
                    merged = true;
                    break true;
                }
                let len = lengths[pos];
                if len == 0 {
                    break false;
                }
                last = pos;
                pos += usize::from(len);
                if pos > entry {
                    break false;
                }
            };
            if valid {
                if !merged {
                    families += 1;
                    if families > self.max_valid_paths {
                        discarded = true;
                        break;
                    }
                }
                valid_starts.push(start as u8);
                last_index.push(if merged { pos as u8 } else { last as u8 });
                let mut p = start;
                while p < entry && !on_valid_path[p] {
                    on_valid_path[p] = true;
                    let l = lengths[p];
                    if l == 0 {
                        break;
                    }
                    p += usize::from(l);
                }
            }
        }

        if discarded {
            return HeadDecode {
                branches: Vec::new(),
                valid_starts,
                chosen_start: None,
                discarded: true,
            };
        }
        if valid_starts.is_empty() {
            return HeadDecode::default();
        }

        if self.fault == Some(SbdFault::HeadChoosesLastStart) {
            let chosen = *valid_starts.last().expect("non-empty valid_starts");
            return self.extract(line, line_base, entry, &lengths, valid_starts, chosen);
        }
        let chosen = match self.policy {
            IndexPolicy::First => valid_starts[0],
            IndexPolicy::Zero => 0,
            IndexPolicy::Merge => {
                let mut best = (0usize, last_index[0]);
                for &cand in &last_index {
                    let count = last_index.iter().filter(|&&x| x == cand).count();
                    if count > best.0 || (count == best.0 && cand < best.1) {
                        best = (count, cand);
                    }
                }
                best.1
            }
        };

        self.extract(line, line_base, entry, &lengths, valid_starts, chosen)
    }

    /// Walk the chosen path and collect SBB-eligible branches.
    fn extract(
        &self,
        line: &[u8],
        line_base: u64,
        entry: usize,
        lengths: &[u8],
        valid_starts: Vec<u8>,
        chosen: u8,
    ) -> HeadDecode {
        let mut branches = Vec::new();
        let mut pos = usize::from(chosen);
        while pos < entry {
            let len = lengths[pos];
            if len == 0 {
                break;
            }
            if let Ok(d) = decode::decode(&line[pos..]) {
                if let InsnKind::Branch(b) = d.kind {
                    if b.kind.sbb_eligible() {
                        let pc = line_base + pos as u64;
                        branches.push(ShadowBranch {
                            pc,
                            len: d.len,
                            kind: b.kind,
                            target: b.target(pc, d.len),
                            line_offset: pos as u8,
                        });
                    }
                }
            }
            pos += usize::from(len);
        }

        HeadDecode {
            branches,
            valid_starts,
            chosen_start: Some(chosen),
            discarded: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skia_core::ShadowDecoder;
    use skia_isa::encode;

    fn pad_to_line(mut bytes: Vec<u8>) -> Vec<u8> {
        while bytes.len() < 64 {
            let gap = (64 - bytes.len()).min(8);
            encode::nop_exact(&mut bytes, gap);
        }
        bytes
    }

    /// The reference decoder and the production (memoized) decoder must
    /// agree on results and stats, including across repeated decodes of the
    /// same region (memo-hit path).
    #[test]
    fn agrees_with_production_decoder_across_repeats() {
        let lines = [
            pad_to_line({
                let mut b = Vec::new();
                encode::call_rel32(&mut b, 0x40);
                encode::nop_exact(&mut b, 3);
                b
            }),
            pad_to_line(vec![0x31, 0xC3]),
            pad_to_line(vec![0x50, 0x50, 0xC3]),
        ];
        for policy in IndexPolicy::ALL {
            let mut oracle = RefShadowDecoder::new(policy, 6);
            let mut prod = ShadowDecoder::new(policy, 6);
            for _ in 0..3 {
                for (i, line) in lines.iter().enumerate() {
                    let base = 0x1000 * (i as u64 + 1);
                    let entry = [8usize, 2, 3][i];
                    let a = oracle.decode_head(line, base, entry);
                    let b = prod.decode_head(line, base, entry);
                    assert_eq!(a.branches, b.branches, "policy {policy:?} line {i}");
                    assert_eq!(a.valid_starts, b.valid_starts);
                    assert_eq!(a.chosen_start, b.chosen_start);
                    assert_eq!(a.discarded, b.discarded);
                    let t1 = oracle.decode_tail(line, base, 5);
                    let t2 = prod.decode_tail(line, base, 5);
                    assert_eq!(t1, *t2);
                }
            }
            assert_eq!(oracle.stats(), prod.stats(), "policy {policy:?}");
        }
    }
}
