//! Reference SBB (U-SBB + R-SBB halves) and reference Skia mechanism with
//! a ground-truth cross-check layer.
//!
//! [`RefSbb`] mirrors `skia_core::Sbb` stat-for-stat and tick-for-tick on
//! top of the linear-search [`RefArray`]. [`RefSkia`] mirrors
//! `skia_core::Skia`'s fill/lookup/retire/bogus hooks — including the
//! telemetry `born`-map and the `SbbInsert`/`SbbEvict` event stream, which
//! it writes into a shared event sink so the oracle's event order can be
//! compared against the production trace.
//!
//! On top of the behavioural mirror, `RefSkia` cross-checks every decoded
//! shadow branch against the generator's ground-truth metadata
//! (`Program::branch_at`). A decoded branch whose PC *is* a real branch
//! must agree with the metadata in kind, length and static target — any
//! mismatch is recorded as a ground-truth violation (a decoder bug). A
//! decoded branch with no metadata is a *phantom*: expected for head
//! regions (mis-aligned decode paths, §3.4 bogus branches) and counted
//! separately for head and tail regions.

use std::cell::RefCell;
use std::rc::Rc;

use skia_core::{SbbHit, SbbStats, ShadowBranch, SkiaConfig, SkiaStats};
use skia_isa::BranchKind;
use skia_telemetry::{Event, EventKind};
use skia_workloads::Program;

use crate::ref_sbd::RefShadowDecoder;
use crate::ref_uarch::RefArray;

/// Shared ordered event sink (the oracle's stand-in for the telemetry ring
/// buffer; the reference simulator and `RefSkia` both append to it).
pub type EventSink = Rc<RefCell<Vec<Event>>>;

/// U-SBB payload (mirrors the production private struct).
#[derive(Debug, Clone, Copy)]
struct RefUEntry {
    target: u64,
    len: u8,
    is_call: bool,
    retired: bool,
}

/// R-SBB payload.
#[derive(Debug, Clone, Copy)]
struct RefREntry {
    len: u8,
    retired: bool,
}

/// Reference split Shadow Branch Buffer.
#[derive(Debug, Clone)]
pub struct RefSbb {
    u: RefArray<RefUEntry>,
    r: RefArray<RefREntry>,
    /// Unordered resident-PC mirror; scanned linearly.
    keys: Vec<u64>,
    stats: SbbStats,
    retired_aware: bool,
    /// Fault knob: ignore the retired bit during victim selection,
    /// degrading §4.3 replacement to plain LRU (test-only).
    pub ignore_retired: bool,
}

impl RefSbb {
    /// Build from the production geometry.
    pub fn new(u_entries: usize, r_entries: usize, ways: usize, retired_aware: bool) -> Self {
        assert!(u_entries.is_multiple_of(ways) && r_entries.is_multiple_of(ways));
        RefSbb {
            u: RefArray::new(u_entries / ways, ways),
            r: RefArray::new(r_entries / ways, ways),
            keys: Vec::new(),
            stats: SbbStats::default(),
            retired_aware,
            ignore_retired: false,
        }
    }

    /// The lowest resident shadow-branch PC at or after `pc`.
    pub fn next_key_at_or_after(&self, pc: u64) -> Option<u64> {
        self.keys.iter().copied().filter(|&k| k >= pc).min()
    }

    /// Recency-updating probe of both halves; the U-SBB tick always
    /// advances, the R-SBB tick only when the U-SBB misses (mirroring the
    /// production early return).
    pub fn lookup(&mut self, pc: u64) -> Option<SbbHit> {
        self.stats.lookups += 1;
        let uset = self.u.set_of(pc);
        if let Some(e) = self.u.access(uset, pc) {
            let hit = SbbHit {
                kind: if e.is_call {
                    BranchKind::Call
                } else {
                    BranchKind::DirectUncond
                },
                target: Some(e.target),
                len: e.len,
            };
            self.stats.u_hits += 1;
            return Some(hit);
        }
        let rset = self.r.set_of(pc);
        if let Some(e) = self.r.access(rset, pc) {
            let len = e.len;
            self.stats.r_hits += 1;
            return Some(SbbHit {
                kind: BranchKind::Return,
                target: None,
                len,
            });
        }
        None
    }

    /// Stateless probe.
    pub fn probe(&self, pc: u64) -> Option<SbbHit> {
        if let Some(e) = self.u.probe(self.u.set_of(pc), pc) {
            return Some(SbbHit {
                kind: if e.is_call {
                    BranchKind::Call
                } else {
                    BranchKind::DirectUncond
                },
                target: Some(e.target),
                len: e.len,
            });
        }
        if let Some(e) = self.r.probe(self.r.set_of(pc), pc) {
            return Some(SbbHit {
                kind: BranchKind::Return,
                target: None,
                len: e.len,
            });
        }
        None
    }

    /// Insert a shadow branch; returns the PC of a displaced *different*
    /// entry (for lifetime telemetry), mirroring the production ordering of
    /// stat updates and key maintenance.
    pub fn insert(&mut self, branch: &ShadowBranch) -> Option<u64> {
        let prefer_retired = self.retired_aware && !self.ignore_retired;
        match branch.kind {
            BranchKind::DirectUncond | BranchKind::Call => {
                let target = branch.target?;
                let set = self.u.set_of(branch.pc);
                self.stats.u_inserts += 1;
                let evicted = self.u.insert_with(
                    set,
                    branch.pc,
                    RefUEntry {
                        target,
                        len: branch.len,
                        is_call: branch.kind == BranchKind::Call,
                        retired: false,
                    },
                    |e| prefer_retired && !e.retired,
                );
                self.key_insert(branch.pc);
                if let Some((tag, old)) = evicted {
                    if tag != branch.pc {
                        self.key_remove(tag);
                        if !old.retired {
                            self.stats.evicted_unretired += 1;
                        }
                        return Some(tag);
                    }
                }
                None
            }
            BranchKind::Return => {
                let set = self.r.set_of(branch.pc);
                self.stats.r_inserts += 1;
                let evicted = self.r.insert_with(
                    set,
                    branch.pc,
                    RefREntry {
                        len: branch.len,
                        retired: false,
                    },
                    |e| prefer_retired && !e.retired,
                );
                self.key_insert(branch.pc);
                if let Some((tag, old)) = evicted {
                    if tag != branch.pc {
                        self.key_remove(tag);
                        if !old.retired {
                            self.stats.evicted_unretired += 1;
                        }
                        return Some(tag);
                    }
                }
                None
            }
            _ => None,
        }
    }

    /// Set the retired bit (idempotent on the counter).
    pub fn mark_retired(&mut self, pc: u64) {
        let uset = self.u.set_of(pc);
        if let Some(e) = self.u.peek_mut(uset, pc) {
            if !e.retired {
                e.retired = true;
                self.stats.retirements += 1;
            }
            return;
        }
        let rset = self.r.set_of(pc);
        if let Some(e) = self.r.peek_mut(rset, pc) {
            if !e.retired {
                e.retired = true;
                self.stats.retirements += 1;
            }
        }
    }

    /// Remove the entry at `pc`.
    pub fn invalidate(&mut self, pc: u64) {
        let uset = self.u.set_of(pc);
        if self.u.invalidate(uset, pc).is_some() {
            self.key_remove(pc);
            return;
        }
        let rset = self.r.set_of(pc);
        if self.r.invalidate(rset, pc).is_some() {
            self.key_remove(pc);
        }
    }

    /// Counters.
    pub fn stats(&self) -> SbbStats {
        self.stats
    }

    fn key_insert(&mut self, pc: u64) {
        if !self.keys.contains(&pc) {
            self.keys.push(pc);
        }
    }

    fn key_remove(&mut self, pc: u64) {
        self.keys.retain(|&k| k != pc);
    }
}

/// One ground-truth violation: a decoded shadow branch that disagrees with
/// the program's branch metadata at the same PC.
#[derive(Debug, Clone)]
pub struct GtViolation {
    /// Human-readable description of the mismatch.
    pub description: String,
}

/// Reference Skia mechanism.
#[derive(Debug, Clone)]
pub struct RefSkia {
    config: SkiaConfig,
    sbd: RefShadowDecoder,
    /// The reference SBB (public so the fault knob can be set).
    pub sbb: RefSbb,
    filtered_known: u64,
    bogus_uses: u64,
    useful_uses: u64,
    ever_inserted: Vec<u64>,
    cycle: u64,
    /// Birth cycle of each live SBB entry (mirrors the telemetry map).
    born: Vec<(u64, u64)>,
    events: EventSink,
    /// Ground-truth violations (decoder disagreeing with `Program`
    /// metadata at a real branch PC). Must stay empty.
    pub gt_violations: Vec<GtViolation>,
    /// Decoded head-region branches with no ground-truth branch at their PC
    /// (bogus shadow-branch candidates, expected per §3.4).
    pub head_phantoms: u64,
    /// Decoded tail-region branches with no ground-truth branch at their
    /// PC. Tail decoding starts at a true instruction boundary, so these
    /// only appear when the decode runs across padding into misalignment.
    pub tail_phantoms: u64,
}

impl RefSkia {
    /// Build from the production configuration, sharing `events`.
    pub fn new(config: SkiaConfig, events: EventSink) -> Self {
        RefSkia {
            sbd: RefShadowDecoder::new(config.index_policy, config.max_valid_paths),
            sbb: RefSbb::new(
                config.sbb.u_entries,
                config.sbb.r_entries,
                config.sbb.ways,
                config.retired_bit_replacement,
            ),
            config,
            filtered_known: 0,
            bogus_uses: 0,
            useful_uses: 0,
            ever_inserted: Vec::new(),
            cycle: 0,
            born: Vec::new(),
            events,
            gt_violations: Vec::new(),
            head_phantoms: 0,
            tail_phantoms: 0,
        }
    }

    /// Configuration.
    pub fn config(&self) -> &SkiaConfig {
        &self.config
    }

    /// Mutable access to the reference shadow decoder — the entry point for
    /// fault-injection knobs ([`crate::ref_sbd::SbdFault`]) and for driving
    /// the decoder directly in differential fuzz targets.
    pub fn sbd_mut(&mut self) -> &mut RefShadowDecoder {
        &mut self.sbd
    }

    /// Advance the telemetry clock.
    pub fn set_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    /// Whether `pc` was ever inserted into the SBB this run.
    pub fn ever_inserted(&self, pc: u64) -> bool {
        self.ever_inserted.contains(&pc)
    }

    /// Head-decode hook with ground-truth cross-check.
    pub fn on_line_entered_filtered(
        &mut self,
        program: &Program,
        line: &[u8],
        line_base: u64,
        entry_offset: usize,
        known: impl Fn(u64) -> bool,
    ) -> usize {
        if !self.config.head || entry_offset == 0 {
            return 0;
        }
        let hd = self.sbd.decode_head(line, line_base, entry_offset);
        self.cross_check(program, &hd.branches, true);
        self.fill(&hd.branches, known)
    }

    /// Tail-decode hook with ground-truth cross-check.
    pub fn on_line_exited_filtered(
        &mut self,
        program: &Program,
        line: &[u8],
        line_base: u64,
        exit_offset: usize,
        known: impl Fn(u64) -> bool,
    ) -> usize {
        if !self.config.tail || exit_offset >= line.len() {
            return 0;
        }
        let branches = self.sbd.decode_tail(line, line_base, exit_offset);
        self.cross_check(program, &branches, false);
        self.fill(&branches, known)
    }

    /// Check each decoded branch against the generator's metadata.
    fn cross_check(&mut self, program: &Program, branches: &[ShadowBranch], head: bool) {
        for b in branches {
            match program.branch_at(b.pc) {
                Some(meta) => {
                    if meta.kind != b.kind || meta.len != b.len || meta.target != b.target {
                        self.gt_violations.push(GtViolation {
                            description: format!(
                                "decoded shadow branch at {:#x} disagrees with ground truth: \
                                 decoded (kind {:?}, len {}, target {:?}) vs metadata \
                                 (kind {:?}, len {}, target {:?})",
                                b.pc, b.kind, b.len, b.target, meta.kind, meta.len, meta.target
                            ),
                        });
                    }
                }
                None => {
                    if head {
                        self.head_phantoms += 1;
                    } else {
                        self.tail_phantoms += 1;
                    }
                }
            }
        }
    }

    fn fill(&mut self, branches: &[ShadowBranch], known: impl Fn(u64) -> bool) -> usize {
        let mut inserted = 0;
        for b in branches {
            if known(b.pc) || self.sbb.probe(b.pc).is_some() {
                self.filtered_known += 1;
                continue;
            }
            let evicted = self.sbb.insert(b);
            if !self.ever_inserted.contains(&b.pc) {
                self.ever_inserted.push(b.pc);
            }
            if let Some(victim) = evicted {
                self.note_remove(victim);
            }
            self.note_insert(b.pc);
            inserted += 1;
        }
        inserted
    }

    fn note_insert(&mut self, pc: u64) {
        if !self.born.iter().any(|&(p, _)| p == pc) {
            self.born.push((pc, self.cycle));
        }
        self.events.borrow_mut().push(Event {
            cycle: self.cycle,
            kind: EventKind::SbbInsert,
            pc,
            arg: 0,
        });
    }

    fn note_remove(&mut self, pc: u64) {
        if let Some(pos) = self.born.iter().position(|&(p, _)| p == pc) {
            let (_, birth) = self.born.remove(pos);
            let life = self.cycle.saturating_sub(birth);
            self.events.borrow_mut().push(Event {
                cycle: self.cycle,
                kind: EventKind::SbbEvict,
                pc,
                arg: life,
            });
        }
    }

    /// BPU-parallel probe.
    pub fn lookup(&mut self, pc: u64) -> Option<SbbHit> {
        self.sbb.lookup(pc)
    }

    /// Stateless probe.
    pub fn probe(&self, pc: u64) -> Option<SbbHit> {
        self.sbb.probe(pc)
    }

    /// The lowest SBB-resident PC at or after `pc`.
    pub fn next_key_at_or_after(&self, pc: u64) -> Option<u64> {
        self.sbb.next_key_at_or_after(pc)
    }

    /// Commit hook for an SBB-supplied branch.
    pub fn mark_retired(&mut self, pc: u64) {
        self.useful_uses += 1;
        self.sbb.mark_retired(pc);
    }

    /// Verification hook: SBB-supplied prediction was bogus.
    pub fn note_bogus(&mut self, pc: u64) {
        self.bogus_uses += 1;
        self.sbb.invalidate(pc);
        self.note_remove(pc);
    }

    /// Counters.
    pub fn stats(&self) -> SkiaStats {
        SkiaStats {
            sbd: self.sbd.stats(),
            sbb: self.sbb.stats(),
            filtered_known: self.filtered_known,
            bogus_uses: self.bogus_uses,
            useful_uses: self.useful_uses,
        }
    }
}
