//! Reference BPU and reference front-end simulator.
//!
//! [`RefBpu`] and [`RefSimulator`] re-state the semantics of
//! `skia_frontend::bpu` / `skia_frontend::sim` over the reference
//! structures of this crate: the BTB, the split SBB and the RAS are the
//! linear-search models from [`crate::ref_uarch`]/[`crate::ref_skia`], and
//! the shadow decoder is the memo-free [`crate::ref_sbd`]. The
//! direction/target predictors (TAGE, ITTAGE) and the cache hierarchy are
//! reused from `skia-uarch` *by design*: the ISSUE scopes the reference
//! model to the BTB/U-SBB/R-SBB/RAS update-and-probe semantics, and
//! driving the shared components through byte-identical call sequences
//! makes them transparent to the comparison (a divergence can only
//! originate in independently-implemented logic).
//!
//! The simulator exposes a per-step API ([`RefSimulator::step`] +
//! [`RefSimulator::stats_now`]) so the differential driver can compare
//! full [`SimStats`] after every retired branch, and writes every telemetry
//! event (resteers, SBB traffic, BTB misses, prefetch issues, shadow
//! decodes) into a shared [`EventSink`] in production emission order.

use std::collections::VecDeque;

use skia_core::SkiaConfig;
use skia_isa::BranchKind;
use skia_telemetry::{Event, EventKind};
use skia_uarch::cache::Hierarchy;
use skia_uarch::ittage::Ittage;
use skia_uarch::tage::Tage;
use skia_workloads::{Program, TraceStep};

use skia_frontend::bpu::{PredictedBlock, PredictedBranch};
use skia_frontend::config::{BtbMode, FrontendConfig};
use skia_frontend::stats::{ResteerStage, SimStats};

use crate::ref_skia::{EventSink, RefSkia};
use crate::ref_uarch::{RefBtb, RefIdealBtb, RefRas};

/// Average instruction bytes assumed by the decode-occupancy estimate
/// (mirrors the production constant).
const AVG_INSN_BYTES: u64 = 4;

/// Finite or infinite reference BTB.
#[derive(Debug, Clone)]
pub enum RefBtbStore {
    /// Set-associative, LRU.
    Finite(RefBtb),
    /// Unbounded (the paper's infinite-BTB upper bound).
    Infinite(RefIdealBtb),
}

impl RefBtbStore {
    fn lookup(&mut self, pc: u64) -> Option<skia_uarch::btb::BtbEntry> {
        match self {
            RefBtbStore::Finite(b) => b.lookup(pc),
            RefBtbStore::Infinite(b) => b.lookup(pc),
        }
    }

    fn probe(&self, pc: u64) -> Option<skia_uarch::btb::BtbEntry> {
        match self {
            RefBtbStore::Finite(b) => b.probe(pc),
            RefBtbStore::Infinite(b) => b.lookup(pc),
        }
    }

    fn insert(&mut self, pc: u64, kind: BranchKind, target: u64, len: u8) {
        match self {
            RefBtbStore::Finite(b) => b.insert(pc, kind, target, len),
            RefBtbStore::Infinite(b) => b.insert(pc, kind, target, len),
        }
    }

    fn next_at_or_after(&self, pc: u64) -> Option<u64> {
        match self {
            RefBtbStore::Finite(b) => b.next_branch_at_or_after(pc),
            RefBtbStore::Infinite(b) => b.next_branch_at_or_after(pc),
        }
    }
}

/// The reference BPU. Block formation, commit-time training and shadow
/// decoding mirror the production `Bpu` call-for-call; prediction records
/// reuse the production [`PredictedBlock`]/[`PredictedBranch`] types so the
/// verification logic downstream is expressed over identical data.
#[derive(Debug)]
pub struct RefBpu {
    /// The reference BTB (public so the fault knob can be reached).
    pub btb: RefBtbStore,
    /// The reference Skia mechanism, when configured.
    pub skia: Option<RefSkia>,
    tage: Tage,
    ittage: Ittage,
    ras: RefRas,
    spec_pc: u64,
    entered_by_branch: bool,
    max_block_bytes: u64,
}

impl RefBpu {
    /// Build from the production front-end configuration.
    pub fn new(config: &FrontendConfig, start_pc: u64, events: EventSink) -> Self {
        let btb = match config.btb {
            BtbMode::Finite(c) => RefBtbStore::Finite(RefBtb::new(c.entries, c.ways)),
            BtbMode::Infinite => RefBtbStore::Infinite(RefIdealBtb::new()),
        };
        RefBpu {
            btb,
            skia: config.skia.map(|sc: SkiaConfig| RefSkia::new(sc, events)),
            tage: Tage::new(config.tage.clone()),
            ittage: Ittage::new(
                config.ittage.tables,
                config.ittage.index_bits,
                config.ittage.max_history,
            ),
            ras: RefRas::new(config.ras_depth),
            spec_pc: start_pc,
            entered_by_branch: true,
            max_block_bytes: config.max_block_bytes,
        }
    }

    /// Redirect the IAG.
    pub fn resteer(&mut self, pc: u64, entered_by_branch: bool) {
        self.spec_pc = pc;
        self.entered_by_branch = entered_by_branch;
    }

    /// Stateless BTB residency probe.
    pub fn btb_resident(&self, pc: u64) -> bool {
        self.btb.probe(pc).is_some()
    }

    /// Form one predicted basic block and advance the speculative PC.
    pub fn predict_block(&mut self) -> PredictedBlock {
        let start = self.spec_pc;
        let limit = start.saturating_add(self.max_block_bytes);
        let entered_by_branch = self.entered_by_branch;

        let cand_btb = self.btb.next_at_or_after(start).filter(|&p| p < limit);
        let cand_sbb = self
            .skia
            .as_ref()
            .and_then(|s| s.next_key_at_or_after(start))
            .filter(|&p| p < limit);
        let branch_pc = match (cand_btb, cand_sbb) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };

        let Some(bpc) = branch_pc else {
            let end = (start | 63) + 1;
            self.spec_pc = end;
            self.entered_by_branch = false;
            return PredictedBlock {
                start,
                end,
                branch: None,
                next_pc: end,
                entered_by_branch,
            };
        };

        // Retrieval order matters for state: the BTB lookup always runs
        // (ticking a finite BTB's recency clock even when the SBB supplies).
        let (kind, target0, len, from_sbb) = match self.btb.lookup(bpc) {
            Some(e) => (e.kind, e.target, e.len, false),
            None => {
                let hit = self
                    .skia
                    .as_mut()
                    .and_then(|s| s.lookup(bpc))
                    .expect("scan found a key, so one structure must hit");
                (hit.kind, hit.target.unwrap_or(bpc), hit.len, true)
            }
        };
        let fallthrough = bpc + u64::from(len);

        let mut tage_pred = None;
        let mut it_pred = None;
        let (taken, target) = match kind {
            BranchKind::DirectCond => {
                let p = self.tage.predict(bpc);
                let t = (p.taken, target0);
                tage_pred = Some(p);
                t
            }
            BranchKind::DirectUncond | BranchKind::Call => (true, target0),
            BranchKind::Return => (true, self.ras.peek().unwrap_or(target0)),
            BranchKind::IndirectJmp | BranchKind::IndirectCall => {
                let p = self.ittage.predict(bpc);
                let t = p.target.unwrap_or(target0);
                it_pred = Some(p);
                (true, t)
            }
        };

        let next_pc = if taken { target } else { fallthrough };
        self.spec_pc = next_pc;
        self.entered_by_branch = taken;
        PredictedBlock {
            start,
            end: fallthrough,
            branch: Some(PredictedBranch {
                pc: bpc,
                len,
                kind,
                taken,
                target,
                from_sbb,
                tage: tage_pred,
                ittage: it_pred,
            }),
            next_pc,
            entered_by_branch,
        }
    }

    /// Commit a retired branch (training, RAS maintenance, BTB fill,
    /// retired-bit maintenance) — production order preserved.
    #[allow(clippy::too_many_arguments)] // one argument per retired-branch attribute
    pub fn commit_branch(
        &mut self,
        pc: u64,
        kind: BranchKind,
        taken: bool,
        actual_target: u64,
        static_target: Option<u64>,
        len: u8,
        recorded: Option<&PredictedBranch>,
    ) {
        match kind {
            BranchKind::DirectCond => {
                let pred = match recorded.and_then(|r| r.tage) {
                    Some(p) => p,
                    None => self.tage.predict(pc),
                };
                self.tage.update(pc, &pred, taken);
                self.tage.push_history(taken);
                self.ittage.push_history(taken);
            }
            BranchKind::IndirectJmp | BranchKind::IndirectCall => {
                let pred = match recorded.and_then(|r| r.ittage) {
                    Some(p) => p,
                    None => self.ittage.predict(pc),
                };
                self.ittage.update(pc, &pred, actual_target);
                self.tage.push_history(true);
                self.ittage.push_history(true);
                if kind == BranchKind::IndirectCall {
                    self.ras.push(pc + u64::from(len));
                }
            }
            BranchKind::Call => self.ras.push(pc + u64::from(len)),
            BranchKind::Return => {
                let _ = self.ras.pop();
            }
            BranchKind::DirectUncond => {}
        }

        let btb_target = match kind {
            BranchKind::DirectCond | BranchKind::DirectUncond | BranchKind::Call => {
                static_target.unwrap_or(actual_target)
            }
            _ => actual_target,
        };
        self.btb.insert(pc, kind, btb_target, len);

        if recorded.is_some_and(|r| r.from_sbb) {
            if let Some(skia) = &mut self.skia {
                skia.mark_retired(pc);
            }
        }
    }

    /// TAGE agreement check (decode-time late predict).
    pub fn tage_would_predict(&self, pc: u64, taken: bool) -> bool {
        self.tage.predict(pc).taken == taken
    }

    /// ITTAGE agreement check.
    pub fn ittage_would_predict(&self, pc: u64, target: u64) -> bool {
        self.ittage.predict(pc).target == Some(target)
    }

    /// RAS top check.
    pub fn ras_top_is(&self, target: u64) -> bool {
        self.ras.peek() == Some(target)
    }

    /// Drive the shadow-decode hooks for a formed block; returns the number
    /// of SBB insertions.
    pub fn shadow_decode(&mut self, program: &Program, block: &PredictedBlock) -> usize {
        let Some(skia) = &mut self.skia else { return 0 };
        let filter = skia.config().filter_btb_resident;
        let btb = &self.btb;
        let known = |pc: u64| filter && btb.probe(pc).is_some();
        let mut inserted = 0;
        if block.entered_by_branch {
            let entry_offset = (block.start % 64) as usize;
            if entry_offset != 0 {
                let (line_base, line) = program.line(block.start);
                inserted +=
                    skia.on_line_entered_filtered(program, &line, line_base, entry_offset, known);
            }
        }
        if let Some(b) = &block.branch {
            if b.taken {
                let end = b.pc + u64::from(b.len);
                let (line_base, line) = program.line(end.saturating_sub(1));
                let exit_offset = (end - line_base) as usize;
                if exit_offset < line.len() {
                    inserted +=
                        skia.on_line_exited_filtered(program, &line, line_base, exit_offset, known);
                }
            }
        }
        inserted
    }
}

/// The oracle's flat counter block (one plain `u64` per `SimStats` scalar
/// the hot path maintains; `cycles` is derived in [`RefSimulator::stats_now`]).
#[derive(Debug, Clone, Copy, Default)]
struct RefCounters {
    instructions: u64,
    branches: u64,
    taken_branches: u64,
    btb_misses: u64,
    btb_miss_l1i_resident: u64,
    btb_miss_taken: u64,
    btb_miss_rescuable: u64,
    sbb_rescues: u64,
    rescuable_seen_before: u64,
    decode_resteers: u64,
    exec_resteers: u64,
    bogus_resteers: u64,
    cond_branches: u64,
    cond_mispredicts: u64,
    indirect_branches: u64,
    indirect_mispredicts: u64,
    return_mispredicts: u64,
    idle_icache_cycles: u64,
    idle_resteer_cycles: u64,
    decode_busy_cycles: u64,
    wrong_path_blocks: u64,
    wrong_path_prefetches: u64,
}

/// A formed block plus its timing and pre-fetch L1-I residency snapshot
/// (the reference keeps a plain `Vec` where production inlines an array).
#[derive(Debug, Clone)]
struct RefInFlight {
    block: PredictedBlock,
    iag_cycle: u64,
    decode_start: u64,
    lines: Vec<(u64, bool)>,
}

/// The reference front-end simulator.
#[derive(Debug)]
pub struct RefSimulator<'p> {
    program: &'p Program,
    config: FrontendConfig,
    /// The reference BPU (public so fault knobs can be reached).
    pub bpu: RefBpu,
    hier: Hierarchy,
    c: RefCounters,
    by_kind: [u64; 6],
    /// Wrapping sum + count of the per-formed-block FTQ occupancy samples
    /// (mirrors the telemetry histogram's mean arithmetic exactly).
    ftq_sum: u64,
    ftq_count: u64,
    iag_cycle: u64,
    decode_free: u64,
    ftq: VecDeque<u64>,
    pending: Option<RefInFlight>,
    last_fill_done: u64,
    events: EventSink,
}

impl<'p> RefSimulator<'p> {
    /// Build the oracle over `program`, emitting events into `events`.
    pub fn new(program: &'p Program, config: FrontendConfig, events: EventSink) -> Self {
        let start = program.functions()[0].entry;
        let bpu = RefBpu::new(&config, start, events.clone());
        RefSimulator {
            events,
            bpu,
            hier: Hierarchy::new(config.hierarchy),
            program,
            config,
            c: RefCounters::default(),
            by_kind: [0; 6],
            ftq_sum: 0,
            ftq_count: 0,
            iag_cycle: 0,
            decode_free: 0,
            ftq: VecDeque::new(),
            pending: None,
            last_fill_done: 0,
        }
    }

    /// Replay one retired trace step.
    pub fn step(&mut self, step: &TraceStep) {
        self.c.branches += 1;
        self.c.instructions += u64::from(step.insns);
        if step.taken {
            self.c.taken_branches += 1;
        }
        self.verify_step(step);
    }

    /// Materialize the oracle's counters into a [`SimStats`], including the
    /// finalize-formula cycle count (the production `run()` finalizes on
    /// every call, so a per-step comparison sees exactly this value).
    pub fn stats_now(&self) -> SimStats {
        let retire_floor = self
            .c
            .instructions
            .div_ceil(u64::from(self.config.retire_width));
        SimStats {
            instructions: self.c.instructions,
            cycles: self.decode_free.max(retire_floor) + u64::from(self.config.backend_depth),
            branches: self.c.branches,
            taken_branches: self.c.taken_branches,
            btb_misses: self.c.btb_misses,
            btb_misses_by_kind: self.by_kind,
            btb_miss_l1i_resident: self.c.btb_miss_l1i_resident,
            btb_miss_taken: self.c.btb_miss_taken,
            btb_miss_rescuable: self.c.btb_miss_rescuable,
            sbb_rescues: self.c.sbb_rescues,
            rescuable_seen_before: self.c.rescuable_seen_before,
            decode_resteers: self.c.decode_resteers,
            exec_resteers: self.c.exec_resteers,
            bogus_resteers: self.c.bogus_resteers,
            cond_branches: self.c.cond_branches,
            cond_mispredicts: self.c.cond_mispredicts,
            indirect_branches: self.c.indirect_branches,
            indirect_mispredicts: self.c.indirect_mispredicts,
            return_mispredicts: self.c.return_mispredicts,
            idle_icache_cycles: self.c.idle_icache_cycles,
            idle_resteer_cycles: self.c.idle_resteer_cycles,
            decode_busy_cycles: self.c.decode_busy_cycles,
            wrong_path_blocks: self.c.wrong_path_blocks,
            wrong_path_prefetches: self.c.wrong_path_prefetches,
            l1i: self.hier.l1i_stats(),
            l2: self.hier.l2_stats(),
            l3: self.hier.l3_stats(),
            skia: self.bpu.skia.as_ref().map(RefSkia::stats),
            mean_ftq_occupancy: if self.ftq_count == 0 {
                0.0
            } else {
                self.ftq_sum as f64 / self.ftq_count as f64
            },
        }
    }

    fn event(&self, cycle: u64, kind: EventKind, pc: u64, arg: u64) {
        self.events.borrow_mut().push(Event {
            cycle,
            kind,
            pc,
            arg,
        });
    }

    // -- block formation & timing (mirrors `Simulator`) ---------------------

    fn form_block(&mut self) -> RefInFlight {
        while self.ftq.front().is_some_and(|&t| t <= self.iag_cycle) {
            self.ftq.pop_front();
        }
        if self.ftq.len() >= self.config.ftq_depth {
            let head = self.ftq.pop_front().expect("non-empty");
            self.iag_cycle = self.iag_cycle.max(head);
        }
        self.iag_cycle += 1;
        self.ftq_sum = self.ftq_sum.wrapping_add(self.ftq.len() as u64);
        self.ftq_count += 1;

        let block = self.bpu.predict_block();
        self.issue_block(block)
    }

    fn issue_block(&mut self, block: PredictedBlock) -> RefInFlight {
        let lines = self.prefetch_lines(&block);
        let fill_done = self.last_fill_done;
        let frontier =
            (self.iag_cycle + u64::from(self.config.fetch_to_decode)).max(self.decode_free);
        if frontier > self.decode_free {
            self.c.idle_resteer_cycles += frontier - self.decode_free;
        }
        let decode_start = frontier.max(fill_done);
        if decode_start > frontier {
            self.c.idle_icache_cycles += decode_start - frontier;
        }
        let bytes = block.end.saturating_sub(block.start).max(1);
        let decode_cycles = bytes
            .div_ceil(u64::from(self.config.decode_width) * AVG_INSN_BYTES)
            .max(1);
        self.c.decode_busy_cycles += decode_cycles;
        self.decode_free = decode_start + decode_cycles;
        self.ftq.push_back(self.decode_free);

        self.shadow_decode(&block);

        RefInFlight {
            block,
            iag_cycle: self.iag_cycle,
            decode_start,
            lines,
        }
    }

    fn shadow_decode(&mut self, block: &PredictedBlock) {
        if self.bpu.skia.is_none() {
            return;
        }
        if let Some(skia) = &mut self.bpu.skia {
            skia.set_cycle(self.iag_cycle);
        }
        let inserted = self.bpu.shadow_decode(self.program, block) as u64;
        self.event(
            self.iag_cycle,
            EventKind::ShadowDecode,
            block.start,
            inserted,
        );
    }

    fn prefetch_lines(&mut self, block: &PredictedBlock) -> Vec<(u64, bool)> {
        let first = block.start & !63;
        let last = block.end.saturating_sub(1).max(block.start) & !63;
        let mut lines = Vec::new();
        let mut max_latency = 0u32;
        let mut la = first;
        loop {
            let resident = self.hier.l1i_contains(la);
            let lat = self.hier.fetch_line(la, true);
            max_latency = max_latency.max(lat);
            lines.push((la, resident));
            self.event(self.iag_cycle, EventKind::PrefetchIssue, la, u64::from(lat));
            if la >= last {
                break;
            }
            la += 64;
        }
        self.last_fill_done = self.iag_cycle + u64::from(max_latency);
        lines
    }

    // -- verification -------------------------------------------------------

    fn verify_step(&mut self, step: &TraceStep) {
        loop {
            let pending = match self.pending.take() {
                Some(p) => p,
                None => self.form_block(),
            };
            let branch = pending.block.branch;
            match branch {
                None => {
                    if step.branch_pc >= pending.block.end {
                        continue;
                    }
                    self.count_btb_miss(step, &pending);
                    if step.taken {
                        self.resteer_missed_taken(step, pending);
                    } else {
                        self.commit_unpredicted(step);
                        if step.block_end() < pending.block.end {
                            self.pending = Some(pending);
                        }
                    }
                    return;
                }
                Some(b) => {
                    if b.pc > step.branch_pc {
                        self.count_btb_miss(step, &pending);
                        if step.taken {
                            self.resteer_missed_taken(step, pending);
                        } else {
                            self.commit_unpredicted(step);
                            self.pending = Some(pending);
                        }
                        return;
                    }
                    if b.pc < step.branch_pc {
                        debug_assert!(b.from_sbb, "only the SBB can be bogus here");
                        self.resteer_bogus(&pending, b.pc);
                        continue;
                    }
                    if b.from_sbb {
                        self.count_btb_miss(step, &pending);
                    }
                    let target_ok = !step.taken || b.target == step.next_pc;
                    let correct = b.taken == step.taken && target_ok;
                    self.commit_aligned(step, &b);
                    if correct {
                        if b.from_sbb {
                            self.c.sbb_rescues += 1;
                            self.event(self.iag_cycle, EventKind::SbbRescue, step.branch_pc, 0);
                        }
                        return;
                    }
                    match step.kind {
                        BranchKind::DirectCond => self.c.cond_mispredicts += 1,
                        BranchKind::Return => self.c.return_mispredicts += 1,
                        BranchKind::IndirectJmp | BranchKind::IndirectCall => {
                            self.c.indirect_mispredicts += 1;
                        }
                        _ => {}
                    }
                    self.do_resteer(&pending, ResteerStage::Execute, step.next_pc, step.taken);
                    return;
                }
            }
        }
    }

    // -- commit paths -------------------------------------------------------

    fn static_target(&self, pc: u64) -> Option<u64> {
        self.program.branch_at(pc).and_then(|m| m.target)
    }

    fn kind_counters(&mut self, kind: BranchKind) {
        match kind {
            BranchKind::DirectCond => self.c.cond_branches += 1,
            BranchKind::IndirectJmp | BranchKind::IndirectCall => {
                self.c.indirect_branches += 1;
            }
            _ => {}
        }
    }

    fn commit_unpredicted(&mut self, step: &TraceStep) {
        self.kind_counters(step.kind);
        let st = self.static_target(step.branch_pc);
        self.bpu.commit_branch(
            step.branch_pc,
            step.kind,
            step.taken,
            step.next_pc,
            st,
            step.branch_len,
            None,
        );
    }

    fn commit_aligned(&mut self, step: &TraceStep, b: &PredictedBranch) {
        self.kind_counters(step.kind);
        let st = self.static_target(step.branch_pc);
        self.bpu.commit_branch(
            step.branch_pc,
            step.kind,
            step.taken,
            step.next_pc,
            st,
            step.branch_len,
            Some(b),
        );
    }

    // -- miss/resteer machinery ---------------------------------------------

    fn count_btb_miss(&mut self, step: &TraceStep, pending: &RefInFlight) {
        if self.bpu.btb_resident(step.branch_pc) {
            return;
        }
        self.c.btb_misses += 1;
        let idx = BranchKind::ALL
            .iter()
            .position(|&k| k == step.kind)
            .expect("kind in table");
        self.by_kind[idx] += 1;
        self.event(
            self.iag_cycle,
            EventKind::BtbMiss,
            step.branch_pc,
            idx as u64,
        );
        if step.taken {
            self.c.btb_miss_taken += 1;
            if step.kind.sbb_eligible() {
                self.c.btb_miss_rescuable += 1;
                if self
                    .bpu
                    .skia
                    .as_ref()
                    .is_some_and(|s| s.ever_inserted(step.branch_pc))
                {
                    self.c.rescuable_seen_before += 1;
                }
            }
        }
        let la = step.branch_pc & !63;
        let resident_before = pending
            .lines
            .iter()
            .find(|&&(a, _)| a == la)
            .map_or_else(|| self.hier.l1i_contains(step.branch_pc), |&(_, r)| r);
        if resident_before {
            self.c.btb_miss_l1i_resident += 1;
        }
    }

    fn resteer_missed_taken(&mut self, step: &TraceStep, pending: RefInFlight) {
        let stage = match step.kind {
            BranchKind::DirectUncond | BranchKind::Call => ResteerStage::Decode,
            BranchKind::Return => {
                if self.bpu.ras_top_is(step.next_pc) {
                    ResteerStage::Decode
                } else {
                    self.c.return_mispredicts += 1;
                    ResteerStage::Execute
                }
            }
            BranchKind::DirectCond => {
                self.c.cond_mispredicts += 1;
                if self.bpu.tage_would_predict(step.branch_pc, true) {
                    ResteerStage::Decode
                } else {
                    ResteerStage::Execute
                }
            }
            BranchKind::IndirectJmp | BranchKind::IndirectCall => {
                if self.bpu.ittage_would_predict(step.branch_pc, step.next_pc) {
                    ResteerStage::Decode
                } else {
                    self.c.indirect_mispredicts += 1;
                    ResteerStage::Execute
                }
            }
        };
        self.do_resteer(&pending, stage, step.next_pc, true);
        self.commit_unpredicted(step);
    }

    fn resteer_bogus(&mut self, pending: &RefInFlight, bogus_pc: u64) {
        self.c.bogus_resteers += 1;
        if let Some(skia) = &mut self.bpu.skia {
            skia.set_cycle(self.iag_cycle);
            skia.note_bogus(bogus_pc);
        }
        self.do_resteer(pending, ResteerStage::Decode, bogus_pc + 1, false);
    }

    fn do_resteer(
        &mut self,
        pending: &RefInFlight,
        stage: ResteerStage,
        resume_pc: u64,
        entered_by_branch: bool,
    ) {
        let detect = match stage {
            ResteerStage::Decode => {
                self.c.decode_resteers += 1;
                pending.decode_start + 1
            }
            ResteerStage::Execute => {
                self.c.exec_resteers += 1;
                pending.decode_start + u64::from(self.config.exec_detect)
            }
        };

        let shadow_cycles = detect.saturating_sub(pending.iag_cycle);
        let wp_blocks = shadow_cycles.min(self.config.ftq_depth as u64);
        for _ in 0..wp_blocks {
            let blk = self.bpu.predict_block();
            let lines = self.prefetch_lines(&blk);
            self.c.wrong_path_prefetches += lines.len() as u64;
            self.c.wrong_path_blocks += 1;
            self.shadow_decode(&blk);
        }

        self.iag_cycle = detect
            + u64::from(self.config.decode_repair)
            + u64::from(self.config.btb_extra_latency);
        self.ftq.clear();
        self.bpu.resteer(resume_pc, entered_by_branch);
        self.pending = None;

        let stage_arg = match stage {
            ResteerStage::Decode => 0,
            ResteerStage::Execute => 1,
        };
        self.event(detect, EventKind::Resteer, resume_pc, stage_arg);
    }
}
