//! The lockstep differential driver.
//!
//! [`run_case`] runs the production `skia_frontend::Simulator` and the
//! oracle [`RefSimulator`] side by side over one generated workload,
//! comparing the **full** [`SimStats`] (every counter, the per-kind miss
//! table, all three cache levels, the Skia/SBB/SBD counters and the exact
//! `mean_ftq_occupancy` float) after *every* retired trace step, and the
//! complete telemetry event stream (resteers, SBB insert/evict/rescue,
//! BTB misses, prefetch issues, shadow decodes — order included) at the
//! end of the run. On divergence it returns a [`DivergenceReport`] whose
//! `Display` prints the minimal replay command: the encoded [`DiffCase`]
//! (which contains the program seed and the trace seed) plus the step
//! index at which the two simulators first disagreed.
//!
//! After the per-step comparison the same case is replayed once more
//! through the production batched kernel
//! ([`Simulator::run_batched`]) at a case-derived chunk size; its final
//! [`SimStats`] must equal the per-step run's byte for byte, so every
//! corpus case doubles as a batching-equivalence witness.
//!
//! [`OracleFault`] injects deliberate bugs into the oracle (stale BTB LRU,
//! ignored retired bit) — or, for [`OracleFault::BatchDoubleFlush`], into
//! the production batched kernel — so the harness can prove it actually
//! catches divergences.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use skia_core::{SbbConfig, SkiaConfig};
use skia_frontend::config::{BtbMode, FrontendConfig};
use skia_frontend::{BatchFault, SimStats, Simulator};
use skia_telemetry::{Snapshot, TraceConfig};
use skia_uarch::btb::BtbConfig;
use skia_workloads::{Layout, Program, ProgramSpec, RecordedTrace, TraceStep, Walker};

use crate::ref_sbd::SbdFault;
use crate::ref_sim::{RefBtbStore, RefSimulator};
use crate::ref_skia::EventSink;

/// One differential test case: everything needed to regenerate the
/// program, the trace and the configuration bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffCase {
    /// Program-generator seed.
    pub spec_seed: u64,
    /// Function count of the generated program.
    pub functions: usize,
    /// `true` → Bolted layout, `false` → Interleaved.
    pub bolted: bool,
    /// Walker seed.
    pub trace_seed: u64,
    /// Retired trace steps to replay.
    pub steps: usize,
    /// Whether the Skia mechanism is attached.
    pub with_skia: bool,
    /// Finite-BTB sets (4 ways each — small values create real pressure).
    pub btb_sets: usize,
    /// Use a deliberately tiny SBB so eviction/retired-bit policy is hot.
    pub small_sbb: bool,
}

impl DiffCase {
    /// Serialize to the colon-joined replay token printed by divergence
    /// reports and accepted by `SKIA_DIFF_REPLAY`.
    pub fn encode(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}:{}:{}:{}",
            self.spec_seed,
            self.functions,
            u8::from(self.bolted),
            self.trace_seed,
            self.steps,
            u8::from(self.with_skia),
            self.btb_sets,
            u8::from(self.small_sbb),
        )
    }

    /// Parse a replay token produced by [`DiffCase::encode`].
    pub fn decode(s: &str) -> Option<DiffCase> {
        let mut it = s.trim().split(':');
        let case = DiffCase {
            spec_seed: it.next()?.parse().ok()?,
            functions: it.next()?.parse().ok()?,
            bolted: it.next()? == "1",
            trace_seed: it.next()?.parse().ok()?,
            steps: it.next()?.parse().ok()?,
            with_skia: it.next()? == "1",
            btb_sets: it.next()?.parse().ok()?,
            small_sbb: it.next()? == "1",
        };
        if it.next().is_some() {
            return None;
        }
        Some(case)
    }

    /// The program specification this case generates.
    pub fn spec(&self) -> ProgramSpec {
        ProgramSpec {
            seed: self.spec_seed,
            functions: self.functions,
            layout: if self.bolted {
                Layout::Bolted
            } else {
                Layout::Interleaved
            },
            ..ProgramSpec::default()
        }
    }

    /// The front-end configuration this case runs under.
    pub fn config(&self) -> FrontendConfig {
        let mut c = FrontendConfig::test_small();
        c.btb = BtbMode::Finite(BtbConfig {
            entries: self.btb_sets * 4,
            ways: 4,
        });
        c.skia = self.with_skia.then(|| {
            let mut sc = SkiaConfig::default();
            if self.small_sbb {
                sc.sbb = SbbConfig {
                    u_entries: 32,
                    r_entries: 40,
                    ways: 4,
                    retired_aware: true,
                };
            }
            sc
        });
        c
    }
}

/// Deliberate oracle bugs, used to prove the harness detects divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleFault {
    /// BTB lookups stop refreshing LRU recency (replacement skew).
    StaleBtbLru,
    /// SBB victim selection ignores the retired bit (§4.3 policy dropped).
    IgnoreRetiredBit,
    /// Reference tail decode starts one byte past the exit boundary
    /// (§3.3 broken; see [`crate::ref_sbd::SbdFault`]).
    TailSkipFirstByte,
    /// Reference head extraction walks from the last valid start instead of
    /// the policy-chosen one (§3.2 selection broken).
    HeadChoosesLastStart,
    /// The *production* batched kernel drains its telemetry accumulator
    /// twice at every chunk boundary ([`BatchFault::DoubleFlush`]). Unlike
    /// the other knobs this faults the real simulator, proving the
    /// batched-vs-per-step comparison catches batching bugs.
    BatchDoubleFlush,
}

impl OracleFault {
    /// Every knob, for exhaustive fault-injection sweeps.
    pub const ALL: [OracleFault; 5] = [
        OracleFault::StaleBtbLru,
        OracleFault::IgnoreRetiredBit,
        OracleFault::TailSkipFirstByte,
        OracleFault::HeadChoosesLastStart,
        OracleFault::BatchDoubleFlush,
    ];

    /// Stable kebab-case tag, used in fuzz replay tokens.
    pub fn tag(&self) -> &'static str {
        match self {
            OracleFault::StaleBtbLru => "stale-btb-lru",
            OracleFault::IgnoreRetiredBit => "ignore-retired-bit",
            OracleFault::TailSkipFirstByte => "tail-skip-first-byte",
            OracleFault::HeadChoosesLastStart => "head-chooses-last-start",
            OracleFault::BatchDoubleFlush => "batch-double-flush",
        }
    }

    /// Parse a tag produced by [`OracleFault::tag`].
    pub fn from_tag(s: &str) -> Option<OracleFault> {
        OracleFault::ALL.into_iter().find(|f| f.tag() == s)
    }
}

/// Summary of a divergence-free run.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Final statistics (identical between the two simulators).
    pub stats: SimStats,
    /// Total telemetry events compared.
    pub events: usize,
    /// Head-region decoded branches with no ground-truth branch at their PC
    /// (expected bogus candidates, §3.4).
    pub head_phantoms: u64,
    /// Tail-region phantoms (should not occur: tail decode starts at a true
    /// instruction boundary).
    pub tail_phantoms: u64,
    /// The production simulator's final telemetry snapshot. Registry-counter
    /// values double as a cheap behavioural-coverage signal for fuzzing.
    pub snapshot: Snapshot,
}

/// A lockstep divergence, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// The diverging case.
    pub case: DiffCase,
    /// The fault that was injected, if any.
    pub fault: Option<OracleFault>,
    /// Index of the first diverging trace step (`case.steps` means the
    /// divergence was only visible in the end-of-run event comparison).
    pub step: usize,
    /// Human-readable field/event level detail.
    pub detail: String,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lockstep divergence at step {}/{} (spec seed {}, trace seed {}){}",
            self.step,
            self.case.steps,
            self.case.spec_seed,
            self.case.trace_seed,
            match self.fault {
                Some(fault) => format!(" with injected fault {fault:?}"),
                None => String::new(),
            }
        )?;
        writeln!(f, "{}", self.detail)?;
        writeln!(
            f,
            "replay: SKIA_DIFF_REPLAY='{}' cargo test -p skia-oracle --test lockstep \
             replay_env_case -- --nocapture",
            self.case.encode()
        )
    }
}

/// List every `SimStats` field on which the two runs disagree.
fn diff_stats(real: &SimStats, oracle: &SimStats) -> Vec<String> {
    let mut diffs = Vec::new();
    macro_rules! cmp {
        ($($field:ident),+ $(,)?) => {
            $(
                if real.$field != oracle.$field {
                    diffs.push(format!(
                        "{}: real {:?} vs oracle {:?}",
                        stringify!($field),
                        real.$field,
                        oracle.$field
                    ));
                }
            )+
        };
    }
    cmp!(
        instructions,
        cycles,
        branches,
        taken_branches,
        btb_misses,
        btb_misses_by_kind,
        btb_miss_l1i_resident,
        btb_miss_taken,
        btb_miss_rescuable,
        sbb_rescues,
        rescuable_seen_before,
        decode_resteers,
        exec_resteers,
        bogus_resteers,
        cond_branches,
        cond_mispredicts,
        indirect_branches,
        indirect_mispredicts,
        return_mispredicts,
        idle_icache_cycles,
        idle_resteer_cycles,
        decode_busy_cycles,
        wrong_path_blocks,
        wrong_path_prefetches,
        l1i,
        l2,
        l3,
        skia,
        mean_ftq_occupancy,
    );
    diffs
}

/// Run one case in lockstep. `Ok` carries the matching final state; `Err`
/// carries the first divergence.
pub fn run_case(
    case: &DiffCase,
    fault: Option<OracleFault>,
) -> Result<CaseOutcome, Box<DivergenceReport>> {
    let _case_span = skia_telemetry::span("oracle.case");
    let program = Program::generate(&case.spec());
    let config = case.config();

    let batched_config = config.clone();
    let mut sim = Simulator::new(&program, config.clone());
    let trace = sim.enable_trace(TraceConfig {
        capacity: 1 << 20,
        sample_every: 1,
    });

    let sink: EventSink = Rc::new(RefCell::new(Vec::new()));
    let mut oracle = RefSimulator::new(&program, config, sink.clone());
    match fault {
        Some(OracleFault::StaleBtbLru) => {
            if let RefBtbStore::Finite(b) = &mut oracle.bpu.btb {
                b.stale_lru = true;
            }
        }
        Some(OracleFault::IgnoreRetiredBit) => {
            if let Some(skia) = &mut oracle.bpu.skia {
                skia.sbb.ignore_retired = true;
            }
        }
        Some(OracleFault::TailSkipFirstByte) => {
            if let Some(skia) = &mut oracle.bpu.skia {
                skia.sbd_mut().fault = Some(SbdFault::TailSkipFirstByte);
            }
        }
        Some(OracleFault::HeadChoosesLastStart) => {
            if let Some(skia) = &mut oracle.bpu.skia {
                skia.sbd_mut().fault = Some(SbdFault::HeadChoosesLastStart);
            }
        }
        // Planted into the batched production run below, not the oracle.
        Some(OracleFault::BatchDoubleFlush) | None => {}
    }

    let steps: Vec<TraceStep> = Walker::new(&program, case.trace_seed, 5)
        .take(case.steps)
        .collect();

    let report = |step: usize, detail: String| {
        Box::new(DivergenceReport {
            case: *case,
            fault,
            step,
            detail,
        })
    };

    for (i, step) in steps.iter().enumerate() {
        // `run` finalizes on every call; repeated finalization recomputes
        // the same closed-form cycle count, so per-step stats are exact.
        let real = sim.run(std::iter::once(*step));
        oracle.step(step);
        let ours = oracle.stats_now();
        if real != ours {
            let detail = format!(
                "SimStats mismatch after replaying {step:?}:\n  {}",
                diff_stats(&real, &ours).join("\n  ")
            );
            return Err(report(i, detail));
        }
        if let Some(violation) = oracle
            .bpu
            .skia
            .as_ref()
            .and_then(|s| s.gt_violations.first())
        {
            return Err(report(
                i,
                format!("ground-truth violation: {}", violation.description),
            ));
        }
    }

    assert_eq!(
        trace.dropped(),
        0,
        "production event trace overflowed; raise the driver's capacity"
    );
    let real_events = trace.events();
    let oracle_events = sink.borrow();
    if *oracle_events != real_events {
        let first = real_events
            .iter()
            .zip(oracle_events.iter())
            .position(|(a, b)| a != b);
        let detail = match first {
            Some(i) => format!(
                "event stream mismatch at event {i}: real {:?} vs oracle {:?} \
                 ({} real events, {} oracle events)",
                real_events[i],
                oracle_events[i],
                real_events.len(),
                oracle_events.len()
            ),
            None => format!(
                "event stream length mismatch: {} real events vs {} oracle events",
                real_events.len(),
                oracle_events.len()
            ),
        };
        return Err(report(case.steps, detail));
    }

    // Batched-kernel lockstep: replay the identical stream through
    // `run_batched` and require the final stats to match the per-step run
    // byte for byte. The chunk size is case-derived so the corpus sweeps
    // boundary placements; `SKIA_CHUNK` is deliberately ignored here — a
    // replay token must reproduce bit-for-bit in any environment.
    let final_per_step = sim.run(std::iter::empty());
    let chunk = 1 + (case.spec_seed % 499) as usize;
    let recorded = RecordedTrace::record(&program, case.trace_seed, 5, case.steps);
    let mut batched_sim = Simulator::new(&program, batched_config);
    if fault == Some(OracleFault::BatchDoubleFlush) {
        batched_sim.plant_batch_fault(BatchFault::DoubleFlush);
    }
    let batched = batched_sim.run_batched(&recorded, case.steps, chunk);
    if batched != final_per_step {
        let detail = format!(
            "batched kernel mismatch (chunk size {chunk}):\n  {}",
            diff_stats(&batched, &final_per_step).join("\n  ")
        );
        return Err(report(case.steps, detail));
    }

    let (head_phantoms, tail_phantoms) = oracle
        .bpu
        .skia
        .as_ref()
        .map_or((0, 0), |s| (s.head_phantoms, s.tail_phantoms));
    Ok(CaseOutcome {
        stats: oracle.stats_now(),
        events: real_events.len(),
        head_phantoms,
        tail_phantoms,
        snapshot: sim.snapshot(),
    })
}
