//! # skia-oracle — executable reference model + lockstep differential harness
//!
//! A deliberately slow, obviously-correct restatement of the Skia front-end
//! pipeline, and the machinery to run it in lockstep against the real
//! simulator:
//!
//! * [`ref_uarch`] — plain-`Vec`, linear-search reference models of the BTB
//!   (finite and infinite), with paper-literal one-tick-per-access true
//!   LRU, and of the RAS.
//! * [`ref_sbd`] — a memo-free reference Shadow Branch Decoder: the
//!   two-phase head decode (§3.2) and the tail decode (§3.3) re-derived
//!   from the paper text with no caching, differentially testing the
//!   production decoder's head-memo fast path.
//! * [`ref_skia`] — the reference split SBB (U-SBB/R-SBB, retired-bit
//!   replacement of §4.3) and Skia fill/lookup/retire/bogus hooks, plus a
//!   ground-truth cross-check that validates every decoded shadow branch
//!   against the generator's branch metadata (`Program::branch_at`) instead
//!   of re-decoded bytes.
//! * [`ref_sim`] — the reference BPU and cycle-ledger simulator exposing a
//!   per-step API.
//! * [`differential`] — the lockstep driver: per-step full-`SimStats`
//!   comparison, end-of-run event-stream comparison, replayable
//!   [`DivergenceReport`]s, and injectable [`OracleFault`]s proving the
//!   harness catches real bugs.
//!
//! ## What is independently re-implemented, and what is shared
//!
//! The reference model re-implements everything this repository wrote from
//! scratch for the Skia mechanism and its evaluation: the BTB/U-SBB/R-SBB
//! replacement and probe semantics, the RAS, the shadow decoder, the block
//! former, the verification/resteer state machine and the cycle ledger.
//! The TAGE/ITTAGE predictors and the cache hierarchy are shared with
//! production *on purpose*: the oracle drives them through byte-identical
//! call sequences, so they cancel out of the comparison — any divergence
//! must originate in the independently-written logic under test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod differential;
pub mod ref_sbd;
pub mod ref_sim;
pub mod ref_skia;
pub mod ref_uarch;

pub use differential::{run_case, CaseOutcome, DiffCase, DivergenceReport, OracleFault};
pub use ref_sbd::{RefShadowDecoder, SbdFault};
pub use ref_sim::{RefBpu, RefSimulator};
pub use ref_skia::{RefSbb, RefSkia};
pub use ref_uarch::{RefArray, RefBtb, RefIdealBtb, RefRas};
