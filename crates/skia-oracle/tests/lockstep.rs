//! The lockstep differential harness: production simulator vs. oracle.
//!
//! Three layers of cases run here:
//!
//! 1. a fixed regression corpus covering Bolted/Interleaved layouts, Skia
//!    on/off, BTB pressure and a deliberately tiny SBB;
//! 2. seed-logged random cases (`SKIA_DIFF_SEED` overrides the seed, and
//!    every generated case token is printed so any failure is replayable);
//! 3. a proptest sweep whose failing tuples shrink toward minimal cases.
//!
//! `replay_env_case` replays one encoded case from `SKIA_DIFF_REPLAY` — the
//! exact command a [`skia_oracle::DivergenceReport`] prints.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skia_oracle::{run_case, DiffCase, OracleFault};

/// The fixed regression corpus. Every combination a divergence has been
/// (or plausibly could be) sensitive to: layout × Skia × SBB pressure ×
/// BTB pressure, plus one long run.
fn fixed_corpus() -> Vec<DiffCase> {
    vec![
        // Baseline, no Skia, interleaved.
        DiffCase {
            spec_seed: 0xC0FFEE,
            functions: 60,
            bolted: false,
            trace_seed: 1,
            steps: 600,
            with_skia: false,
            btb_sets: 16,
            small_sbb: false,
        },
        // Bolted layout, no Skia, strong BTB pressure.
        DiffCase {
            spec_seed: 0xBEEF,
            functions: 90,
            bolted: true,
            trace_seed: 2,
            steps: 600,
            with_skia: false,
            btb_sets: 4,
            small_sbb: false,
        },
        // Skia on, default SBB, interleaved.
        DiffCase {
            spec_seed: 7,
            functions: 80,
            bolted: false,
            trace_seed: 3,
            steps: 700,
            with_skia: true,
            btb_sets: 8,
            small_sbb: false,
        },
        // Skia on, Bolted, default SBB.
        DiffCase {
            spec_seed: 0x5EED,
            functions: 120,
            bolted: true,
            trace_seed: 4,
            steps: 700,
            with_skia: true,
            btb_sets: 16,
            small_sbb: false,
        },
        // Skia on, tiny SBB: eviction + retired-bit replacement is hot.
        DiffCase {
            spec_seed: 11,
            functions: 100,
            bolted: false,
            trace_seed: 5,
            steps: 800,
            with_skia: true,
            btb_sets: 8,
            small_sbb: true,
        },
        // Skia on, tiny SBB, tiny BTB, Bolted: maximal structure churn.
        DiffCase {
            spec_seed: 13,
            functions: 100,
            bolted: true,
            trace_seed: 6,
            steps: 800,
            with_skia: true,
            btb_sets: 4,
            small_sbb: true,
        },
        // Small program: heavy re-walks, RAS depth exercised.
        DiffCase {
            spec_seed: 17,
            functions: 8,
            bolted: false,
            trace_seed: 7,
            steps: 500,
            with_skia: true,
            btb_sets: 4,
            small_sbb: true,
        },
        // Long run for drift: any one-cycle skew compounds visibly.
        DiffCase {
            spec_seed: 19,
            functions: 70,
            bolted: true,
            trace_seed: 8,
            steps: 1500,
            with_skia: true,
            btb_sets: 8,
            small_sbb: false,
        },
    ]
}

#[test]
fn fixed_corpus_has_zero_divergences() {
    let mut total_events = 0usize;
    let mut tail_phantoms = 0u64;
    let mut sbb_inserts = 0u64;
    let mut rescues = 0u64;
    for case in fixed_corpus() {
        let outcome = run_case(&case, None).unwrap_or_else(|report| panic!("{report}"));
        total_events += outcome.events;
        tail_phantoms += outcome.tail_phantoms;
        if let Some(skia) = &outcome.stats.skia {
            sbb_inserts += skia.sbb.u_inserts + skia.sbb.r_inserts;
        }
        rescues += outcome.stats.sbb_rescues;
    }
    // Canary asserts: the corpus must actually exercise the machinery it
    // claims to cover, and tail decoding (which starts at a true
    // instruction boundary) must never manufacture phantom branches.
    assert!(total_events > 0, "corpus produced no telemetry events");
    assert!(sbb_inserts > 0, "corpus never filled the SBB");
    assert!(rescues > 0, "corpus never exercised an SBB rescue");
    assert_eq!(
        tail_phantoms, 0,
        "tail decode found branches with no ground truth"
    );
}

/// 32 random cases from a logged seed (set `SKIA_DIFF_SEED` to reproduce a
/// CI run locally); each case token is printed before it runs.
#[test]
fn random_cases_with_logged_seed() {
    let seed: u64 = std::env::var("SKIA_DIFF_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0D1F_F5EE_D000_0001);
    println!("SKIA_DIFF_SEED={seed}");
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..32 {
        let case = DiffCase {
            spec_seed: rng.gen(),
            functions: rng.gen_range(8..48),
            bolted: rng.gen::<bool>(),
            trace_seed: rng.gen(),
            steps: rng.gen_range(200..700),
            with_skia: rng.gen::<bool>(),
            btb_sets: rng.gen_range(4..32),
            small_sbb: rng.gen::<bool>(),
        };
        println!("case {i}: {}", case.encode());
        if let Err(report) = run_case(&case, None) {
            panic!("{report}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized lockstep sweep. A failing tuple shrinks toward a minimal
    /// (seed, size, steps, …) reproducer before the panic is reported.
    #[test]
    fn lockstep_holds_for_arbitrary_cases(
        spec_seed in any::<u64>(),
        functions in 8usize..48,
        steps in 200usize..700,
        bolted in any::<bool>(),
        with_skia in any::<bool>(),
        btb_sets in 4usize..32,
    ) {
        let case = DiffCase {
            spec_seed,
            functions,
            bolted,
            // Derive the remaining knobs from the seed: six proptest
            // dimensions shrink well, and these two stay exercised.
            trace_seed: spec_seed.rotate_left(17) ^ 0xA5A5,
            steps,
            with_skia,
            btb_sets,
            small_sbb: spec_seed & 1 == 1,
        };
        if let Err(report) = run_case(&case, None) {
            panic!("{report}");
        }
    }
}

/// The harness must actually catch divergence: a stale-LRU BTB fault in
/// the oracle has to produce a report carrying the replay command.
#[test]
fn broken_oracle_stale_lru_is_caught() {
    let case = DiffCase {
        spec_seed: 0xBAD,
        functions: 90,
        bolted: false,
        trace_seed: 40,
        steps: 900,
        with_skia: true,
        btb_sets: 4,
        small_sbb: false,
    };
    // Sanity: the healthy oracle agrees on this exact case...
    run_case(&case, None).unwrap_or_else(|report| panic!("healthy oracle diverged: {report}"));
    // ...and the faulty one is caught, with a replayable report.
    let report =
        run_case(&case, Some(OracleFault::StaleBtbLru)).expect_err("stale-LRU fault must diverge");
    let text = report.to_string();
    assert!(report.step <= case.steps);
    assert!(
        text.contains("SKIA_DIFF_REPLAY") && text.contains(&case.encode()),
        "report must carry the replay command:\n{text}"
    );
    assert!(
        text.contains(&format!("at step {}", report.step)),
        "report must name the diverging step:\n{text}"
    );
}

/// Same, for the retired-bit replacement policy: ignoring the retired bit
/// under SBB pressure must diverge.
#[test]
fn broken_oracle_ignored_retired_bit_is_caught() {
    let case = DiffCase {
        spec_seed: 23,
        functions: 100,
        bolted: true,
        trace_seed: 41,
        steps: 1200,
        with_skia: true,
        btb_sets: 8,
        small_sbb: true,
    };
    run_case(&case, None).unwrap_or_else(|report| panic!("healthy oracle diverged: {report}"));
    let report = run_case(&case, Some(OracleFault::IgnoreRetiredBit))
        .expect_err("ignored-retired-bit fault must diverge");
    assert!(report.to_string().contains("SKIA_DIFF_REPLAY"));
}

/// Same, for the decoder knobs added for the fuzzing subsystem: every
/// `OracleFault` must be caught by the plain differential harness on at
/// least one fixed case (the fuzzer additionally rediscovers them from
/// scratch — see `skia-fuzz`).
#[test]
fn broken_oracle_decoder_faults_are_caught() {
    let case = DiffCase {
        spec_seed: 0xBAD,
        functions: 90,
        bolted: false,
        trace_seed: 40,
        steps: 900,
        with_skia: true,
        btb_sets: 4,
        small_sbb: false,
    };
    run_case(&case, None).unwrap_or_else(|report| panic!("healthy oracle diverged: {report}"));
    for fault in [
        OracleFault::TailSkipFirstByte,
        OracleFault::HeadChoosesLastStart,
    ] {
        let Err(report) = run_case(&case, Some(fault)) else {
            panic!("{fault:?} must diverge");
        };
        let text = report.to_string();
        assert!(report.step <= case.steps);
        assert!(
            text.contains("SKIA_DIFF_REPLAY") && text.contains(&case.encode()),
            "report must carry the replay command:\n{text}"
        );
    }
}

/// The batched-kernel leg of the harness has teeth: a planted accumulator
/// double-flush at chunk boundaries (a pure batching bug — the oracle and
/// the per-step production run stay healthy) must be caught by the final
/// batched-vs-per-step comparison, with a replayable report.
#[test]
fn broken_batching_double_flush_is_caught() {
    let case = DiffCase {
        spec_seed: 0xBAD,
        functions: 90,
        bolted: false,
        trace_seed: 40,
        steps: 900,
        with_skia: true,
        btb_sets: 4,
        small_sbb: false,
    };
    run_case(&case, None).unwrap_or_else(|report| panic!("healthy batching diverged: {report}"));
    let report = run_case(&case, Some(OracleFault::BatchDoubleFlush))
        .expect_err("double-flush fault must diverge");
    let text = report.to_string();
    assert!(
        report.detail.contains("batched kernel mismatch"),
        "divergence must be attributed to the batched kernel:\n{text}"
    );
    assert!(
        text.contains("SKIA_DIFF_REPLAY") && text.contains(&case.encode()),
        "report must carry the replay command:\n{text}"
    );
}

/// The fault-tag codec round trips for every knob (fuzz replay tokens
/// embed these tags).
#[test]
fn oracle_fault_tags_round_trip() {
    for fault in OracleFault::ALL {
        assert_eq!(OracleFault::from_tag(fault.tag()), Some(fault));
    }
    assert_eq!(OracleFault::from_tag("no-such-fault"), None);
}

/// Round-trip of the replay token codec.
#[test]
fn diff_case_codec_round_trips() {
    for case in fixed_corpus() {
        assert_eq!(DiffCase::decode(&case.encode()), Some(case));
    }
    assert_eq!(DiffCase::decode(""), None);
    assert_eq!(DiffCase::decode("1:2:3"), None);
    assert_eq!(DiffCase::decode("1:2:1:4:5:1:7:0:extra"), None);
}

/// Replay one case from the `SKIA_DIFF_REPLAY` env var (printed by every
/// divergence report). A no-op when the variable is unset.
#[test]
fn replay_env_case() {
    let Ok(token) = std::env::var("SKIA_DIFF_REPLAY") else {
        return;
    };
    let case = DiffCase::decode(&token)
        .unwrap_or_else(|| panic!("SKIA_DIFF_REPLAY holds an invalid case token: {token:?}"));
    match run_case(&case, None) {
        Ok(outcome) => println!(
            "case {} replayed cleanly: {} events, {} steps, {} instructions",
            token, outcome.events, case.steps, outcome.stats.instructions
        ),
        Err(report) => panic!("{report}"),
    }
}
