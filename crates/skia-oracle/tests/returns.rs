//! R-SBB return-handling regressions: RAS overflow, §4.3 retired-bit
//! replacement priority, and re-insertion after eviction — each checked as
//! a production-vs-reference pair, plus end-to-end lockstep canaries that
//! prove the differential traffic actually contains return mispredicts and
//! return-kind BTB misses (so the comparisons above are not vacuous).

use skia_core::{Sbb, SbbConfig, ShadowBranch};
use skia_isa::BranchKind;
use skia_oracle::{run_case, DiffCase, RefRas, RefSbb};
use skia_uarch::ras::ReturnAddressStack;

fn ret(pc: u64) -> ShadowBranch {
    ShadowBranch {
        pc,
        len: 1,
        kind: BranchKind::Return,
        target: None,
        line_offset: (pc % 64) as u8,
    }
}

/// Call depth beyond the RAS capacity: the circular production stack and
/// the drop-oldest reference stack must expose exactly the same readable
/// window — deep pops hit the same addresses, then underflow together.
#[test]
fn ras_overflow_exposes_the_same_readable_window() {
    const CAP: usize = 16; // FrontendConfig::test_small's ras_depth
    let mut prod = ReturnAddressStack::new(CAP);
    let mut oracle = RefRas::new(CAP);

    // 2.5× capacity of nested calls.
    for depth in 0..CAP as u64 * 5 / 2 {
        prod.push(0x7000 + depth * 5);
        oracle.push(0x7000 + depth * 5);
        assert_eq!(prod.peek(), oracle.peek(), "peek at depth {depth}");
    }
    assert_eq!(prod.depth(), CAP, "depth must saturate at capacity");

    // Unwind: CAP real returns, then both models underflow in unison.
    for pop in 0..CAP + 4 {
        assert_eq!(prod.pop(), oracle.pop(), "pop {pop}");
    }
    assert_eq!(prod.peek(), None);

    // And the stack keeps working after a full overflow+underflow cycle.
    prod.push(0xABCD);
    oracle.push(0xABCD);
    assert_eq!(prod.pop(), Some(0xABCD));
    assert_eq!(oracle.pop(), Some(0xABCD));
}

/// Interleaved call/return traffic (the shape an actual trace produces)
/// across an overflowing stack: every intermediate observation matches.
#[test]
fn ras_interleaved_traffic_matches_production() {
    let mut prod = ReturnAddressStack::new(4);
    let mut oracle = RefRas::new(4);
    // Deterministic call/return pattern: bursts of calls deeper than the
    // stack, partially unwound, repeatedly.
    let mut addr = 0x1000u64;
    for burst in 1..8u64 {
        for _ in 0..burst + 3 {
            addr += 17;
            prod.push(addr);
            oracle.push(addr);
        }
        for _ in 0..burst {
            assert_eq!(prod.pop(), oracle.pop(), "burst {burst}");
        }
        assert_eq!(prod.peek(), oracle.peek(), "burst {burst} peek");
    }
}

/// §4.3: with a single-set R-SBB at capacity, the victim must be the
/// not-yet-retired entry — the retired return survives in the production
/// structure and the reference alike, and both report the same displaced
/// PC and `evicted_unretired` accounting.
#[test]
fn retired_return_survives_rsbb_pressure_in_both_models() {
    let geometry = SbbConfig {
        u_entries: 2,
        r_entries: 2,
        ways: 2, // single set in each half: collisions guaranteed
        retired_aware: true,
    };
    let mut prod = Sbb::new(geometry);
    let mut oracle = RefSbb::new(2, 2, 2, true);

    let (a, b, c) = (0x9001, 0x9042, 0x9083);
    for sbb in [&mut prod as &mut dyn FnLike, &mut oracle] {
        sbb.insert_ret(a);
        sbb.insert_ret(b);
        sbb.retire(a); // commit touches A; B stays speculative
    }
    // A is older than B, so plain LRU would evict A. The retired bit must
    // override recency: C displaces B in both models.
    assert_eq!(prod.insert(&ret(c)), Some(b));
    assert_eq!(oracle.insert(&ret(c)), Some(b));
    for (name, probe_a, probe_b, probe_c) in [
        ("production", prod.probe(a), prod.probe(b), prod.probe(c)),
        ("oracle", oracle.probe(a), oracle.probe(b), oracle.probe(c)),
    ] {
        assert!(probe_a.is_some(), "{name}: retired A must survive");
        assert!(probe_b.is_none(), "{name}: unretired B must be the victim");
        assert!(probe_c.is_some(), "{name}: C must be resident");
    }
    assert_eq!(prod.stats(), oracle.stats());
    assert_eq!(prod.stats().evicted_unretired, 1);
}

/// Helper trait so the test above can drive both structures with one loop
/// despite their different inherent-method receivers.
trait FnLike {
    fn insert_ret(&mut self, pc: u64);
    fn retire(&mut self, pc: u64);
}
impl FnLike for Sbb {
    fn insert_ret(&mut self, pc: u64) {
        self.insert(&ret(pc));
    }
    fn retire(&mut self, pc: u64) {
        self.mark_retired(pc);
    }
}
impl FnLike for RefSbb {
    fn insert_ret(&mut self, pc: u64) {
        self.insert(&ret(pc));
    }
    fn retire(&mut self, pc: u64) {
        self.mark_retired(pc);
    }
}

/// The ablation contrast: the same traffic with `retired_aware: false`
/// falls back to plain LRU and evicts the retired entry instead — in both
/// models, which is exactly what the IgnoreRetiredBit fault knob plants
/// one-sided.
#[test]
fn lru_ablation_evicts_the_retired_return_instead() {
    let geometry = SbbConfig {
        u_entries: 2,
        r_entries: 2,
        ways: 2,
        retired_aware: false,
    };
    let mut prod = Sbb::new(geometry);
    let mut oracle = RefSbb::new(2, 2, 2, false);
    let (a, b, c) = (0x9001, 0x9042, 0x9083);
    for sbb in [&mut prod as &mut dyn FnLike, &mut oracle] {
        sbb.insert_ret(a);
        sbb.insert_ret(b);
        sbb.retire(a);
    }
    assert_eq!(prod.insert(&ret(c)), Some(a), "LRU victim is oldest");
    assert_eq!(oracle.insert(&ret(c)), Some(a));
    assert!(prod.probe(a).is_none() && oracle.probe(a).is_none());
    assert_eq!(prod.stats(), oracle.stats());
}

/// A return whose line was evicted must be re-discoverable: after losing
/// its slot, re-inserting and re-retiring it restores the §4.3 protection,
/// and once *every* way is retired the replacement degrades gracefully to
/// LRU among retired entries — identically in both models.
#[test]
fn evicted_return_reinserts_and_all_retired_set_degrades_to_lru() {
    let mut prod = Sbb::new(SbbConfig {
        u_entries: 2,
        r_entries: 2,
        ways: 2,
        retired_aware: true,
    });
    let mut oracle = RefSbb::new(2, 2, 2, true);
    let (a, b, c) = (0x9001, 0x9042, 0x9083);
    for sbb in [&mut prod as &mut dyn FnLike, &mut oracle] {
        sbb.insert_ret(a);
        sbb.insert_ret(b);
        sbb.retire(a);
    }
    // B is displaced (unretired), then returns on the re-fetched line and
    // is re-inserted and committed.
    assert_eq!(prod.insert(&ret(c)), Some(b));
    assert_eq!(oracle.insert(&ret(c)), Some(b));
    prod.mark_retired(c);
    oracle.mark_retired(c);
    assert_eq!(
        prod.insert(&ret(b)),
        Some(a),
        "all-retired set falls back to LRU"
    );
    assert_eq!(oracle.insert(&ret(b)), Some(a));
    for (name, hit_b, hit_c) in [
        ("production", prod.lookup(b), prod.lookup(c)),
        ("oracle", oracle.lookup(b), oracle.lookup(c)),
    ] {
        assert!(hit_b.is_some(), "{name}: re-inserted B resident");
        assert!(hit_c.is_some(), "{name}: retired C resident");
    }
    assert_eq!(prod.stats(), oracle.stats());
    assert_eq!(prod.stats().retirements, 2);
    assert_eq!(prod.stats().evicted_unretired, 1);
}

/// End-to-end canaries: the lockstep workloads used throughout the suite
/// really do exercise the return path — RAS mispredicts happen, return-kind
/// BTB misses happen, and the SBB rescues some of them — and the two
/// simulators still agree at every step.
#[test]
fn lockstep_return_traffic_is_live_and_divergence_free() {
    let case = DiffCase {
        spec_seed: 5,
        functions: 48,
        bolted: true,
        trace_seed: 12,
        steps: 400,
        with_skia: true,
        btb_sets: 4,
        small_sbb: true,
    };
    let outcome = run_case(&case, None).unwrap_or_else(|r| panic!("{r}"));
    assert!(
        outcome.stats.return_mispredicts > 0,
        "workload produced no RAS mispredicts — return canaries are vacuous"
    );
    let ret_misses = outcome.snapshot.counter("btb.miss_kind.return").unwrap();
    assert!(ret_misses > 0, "no return-kind BTB misses");
    let rescues = outcome.snapshot.counter("sbb.rescues").unwrap();
    assert!(rescues > 0, "SBB rescued nothing");
}
