//! Hierarchical wall-clock span profiling.
//!
//! Counters say *how often*; spans say *where the time went*. A
//! [`SpanGuard`] brackets a region of code RAII-style: construction stamps
//! a begin time, drop stamps the end and deposits one [`SpanRecord`]
//! (name, thread, nesting depth, start, duration) into a process-wide
//! collector. The experiment pipeline brackets its phases — sweep prepare
//! and simulate, per-job simulation, trace-cache record/load, workload
//! generation, oracle lockstep cases, fuzz rounds — so every run can be
//! attributed millisecond by millisecond.
//!
//! Profiling is **off by default** and the disabled path is a single
//! relaxed atomic load: no clock read, no allocation, no lock. Binaries
//! enable it from the `SKIA_SPANS` environment variable (or automatically
//! under `--emit-json`); enabling spans never changes any simulation
//! result or stdout byte — records flow only into telemetry snapshots,
//! manifests, and Chrome traces.
//!
//! Unlike the per-run [`crate::MetricRegistry`] (single-threaded by
//! design), the span collector is global and thread-aware: sweep workers
//! on any thread deposit into one bounded buffer, and each record carries
//! a small per-thread id so a Chrome trace lays the threads out as
//! separate rows. Export goes through [`crate::trace::to_chrome_trace_full`]
//! (`X` complete events) or, aggregated, through [`rollup`].

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Hard bound on buffered records: a runaway instrumentation loop costs
/// memory linearly, so the collector keeps at most this many records and
/// counts the overflow in [`spans_dropped`] instead of growing without
/// bound (~48 bytes/record → ~12 MB ceiling).
const MAX_RECORDS: usize = 1 << 18;

static ENABLED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

fn collector() -> &'static Mutex<Vec<SpanRecord>> {
    static COLLECTOR: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// Small dense per-thread id, assigned on this thread's first span.
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    /// Open-span nesting depth on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// The process-wide time origin all span timestamps are relative to.
/// First call fixes it; binaries call this at startup so `start_ns`
/// roughly equals time-since-main.
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Whether span recording is currently on.
#[inline]
#[must_use]
pub fn spans_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn span recording on or off (process-wide). Guards opened while
/// recording was on still deposit their record after it is turned off —
/// a span, once begun, is accounted.
pub fn set_spans_enabled(on: bool) {
    if on {
        epoch(); // fix the origin no later than the first enable
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Resolve the `SKIA_SPANS` environment knob against a default:
/// `1`/`on`/`true` force-enable, `0`/`off`/`false` force-disable, unset or
/// anything else yields `default_on` (binaries pass "am I emitting
/// telemetry?"). Returns the resolved state after applying it.
pub fn init_spans_from_env(default_on: bool) -> bool {
    let on = match std::env::var("SKIA_SPANS") {
        Ok(v) if v == "1" || v.eq_ignore_ascii_case("on") || v.eq_ignore_ascii_case("true") => true,
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") => {
            false
        }
        _ => default_on,
    };
    set_spans_enabled(on);
    on
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name (dot-separated hierarchy by convention, e.g.
    /// `sweep.prepare`; a `:suffix` carries an instance label, e.g.
    /// `sim.job:tpcc`).
    pub name: String,
    /// Dense id of the recording thread.
    pub thread: u64,
    /// Nesting depth at begin time (0 = top-level on its thread).
    pub depth: u32,
    /// Begin time, nanoseconds since [`epoch`].
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// RAII handle for one in-flight span. Dropping it ends the span.
#[derive(Debug)]
#[must_use = "a span measures the scope holding the guard"]
pub struct SpanGuard(Option<Active>);

#[derive(Debug)]
struct Active {
    name: Cow<'static, str>,
    thread: u64,
    depth: u32,
    start: Instant,
}

/// Open a span named by a static string. When profiling is disabled this
/// is one atomic load and returns an inert guard — no clock, no
/// allocation.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !spans_enabled() {
        return SpanGuard(None);
    }
    begin(Cow::Borrowed(name))
}

/// Open a span whose name is computed lazily — the closure (and its
/// allocation) runs only when profiling is enabled, keeping the disabled
/// path as cheap as [`span`].
#[inline]
pub fn span_with<F: FnOnce() -> String>(name: F) -> SpanGuard {
    if !spans_enabled() {
        return SpanGuard(None);
    }
    begin(Cow::Owned(name()))
}

fn begin(name: Cow<'static, str>) -> SpanGuard {
    let thread = THREAD_ID.with(|t| *t);
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    let epoch = epoch(); // resolve before stamping so start >= epoch
    let start = Instant::now();
    debug_assert!(start >= epoch);
    SpanGuard(Some(Active {
        name,
        thread,
        depth,
        start,
    }))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let dur_ns = active.start.elapsed().as_nanos() as u64;
        let start_ns = active.start.duration_since(epoch()).as_nanos() as u64;
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let record = SpanRecord {
            name: active.name.into_owned(),
            thread: active.thread,
            depth: active.depth,
            start_ns,
            dur_ns,
        };
        let mut buf = collector().lock().unwrap_or_else(|p| p.into_inner());
        if buf.len() >= MAX_RECORDS {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        } else {
            buf.push(record);
        }
    }
}

/// Take every buffered record, ordered by `(start_ns, thread)` so the
/// output is independent of lock-acquisition order across threads. The
/// buffer is left empty; the dropped count is left as is (see
/// [`spans_dropped`]).
#[must_use]
pub fn drain_spans() -> Vec<SpanRecord> {
    let mut records = {
        let mut buf = collector().lock().unwrap_or_else(|p| p.into_inner());
        std::mem::take(&mut *buf)
    };
    records.sort_by(|a, b| {
        (a.start_ns, a.thread, a.depth, &a.name).cmp(&(b.start_ns, b.thread, b.depth, &b.name))
    });
    records
}

/// Records lost to the [`MAX_RECORDS`] bound since process start.
#[must_use]
pub fn spans_dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Aggregate statistics of every span sharing one name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanRollup {
    /// Completed spans with this name.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Shortest single span, nanoseconds.
    pub min_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

impl SpanRollup {
    /// Fold one record in.
    pub fn add(&mut self, dur_ns: u64) {
        self.min_ns = if self.count == 0 {
            dur_ns
        } else {
            self.min_ns.min(dur_ns)
        };
        self.max_ns = self.max_ns.max(dur_ns);
        self.count += 1;
        self.total_ns += dur_ns;
    }

    /// Mean duration in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Aggregate records per span name: `name → {count, total, min, max}`.
/// Order-insensitive, so rollups of a parallel run are deterministic even
/// though the record interleaving is not.
#[must_use]
pub fn rollup(records: &[SpanRecord]) -> BTreeMap<String, SpanRollup> {
    let mut out: BTreeMap<String, SpanRollup> = BTreeMap::new();
    for r in records {
        out.entry(r.name.clone()).or_default().add(r.dur_ns);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The enable flag, collector, and depth counters are process-global;
    /// tests that toggle or drain them must not interleave.
    static SPAN_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        SPAN_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing_and_cost_almost_nothing() {
        let _l = locked();
        set_spans_enabled(false);
        drop(drain_spans());
        let t0 = Instant::now();
        for _ in 0..1_000_000 {
            let _g = span("noop");
        }
        let elapsed = t0.elapsed();
        assert!(drain_spans().is_empty(), "disabled guards must not record");
        // One relaxed load per span; 500 ns/span is two orders of magnitude
        // of headroom over the observed cost, so this cannot flake on a
        // loaded CI host while still catching an accidental allocation or
        // clock read on the disabled path.
        assert!(
            elapsed < Duration::from_millis(500),
            "1M disabled spans took {elapsed:?}"
        );
    }

    #[test]
    fn enabled_spans_are_recorded_with_nesting_and_bounded_cost() {
        let _l = locked();
        set_spans_enabled(true);
        drop(drain_spans());
        {
            let _outer = span("outer");
            let _inner = span_with(|| format!("inner:{}", 7));
        }
        let records = drain_spans();
        set_spans_enabled(false);
        assert_eq!(records.len(), 2);
        // Inner ends first but both are present; find by name.
        let outer = records.iter().find(|r| r.name == "outer").unwrap();
        let inner = records.iter().find(|r| r.name == "inner:7").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.thread, inner.thread);
        assert!(outer.dur_ns >= inner.dur_ns, "outer encloses inner");
        assert!(inner.start_ns >= outer.start_ns);

        // Enabled cost is bounded: 100k spans well under a second even on a
        // slow host (observed ~100 ns each; bound is 10 µs each).
        set_spans_enabled(true);
        let t0 = Instant::now();
        for _ in 0..100_000 {
            let _g = span("hot");
        }
        let elapsed = t0.elapsed();
        let n = drain_spans().len();
        set_spans_enabled(false);
        assert_eq!(n, 100_000);
        assert!(
            elapsed < Duration::from_secs(1),
            "100k enabled spans took {elapsed:?}"
        );
    }

    #[test]
    fn threads_get_distinct_ids() {
        let _l = locked();
        set_spans_enabled(true);
        drop(drain_spans());
        let _here = span("main-thread");
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _g = span("worker");
                });
            }
        });
        drop(_here);
        let records = drain_spans();
        set_spans_enabled(false);
        assert_eq!(records.len(), 3);
        let workers: Vec<u64> = records
            .iter()
            .filter(|r| r.name == "worker")
            .map(|r| r.thread)
            .collect();
        assert_eq!(workers.len(), 2);
        assert_ne!(workers[0], workers[1], "each thread has its own id");
        let main = records.iter().find(|r| r.name == "main-thread").unwrap();
        assert!(!workers.contains(&main.thread));
    }

    #[test]
    fn mid_flight_disable_still_accounts_open_spans() {
        let _l = locked();
        set_spans_enabled(true);
        drop(drain_spans());
        let g = span("crossing");
        set_spans_enabled(false);
        drop(g);
        let records = drain_spans();
        assert_eq!(records.len(), 1, "a begun span is always accounted");
        assert_eq!(records[0].name, "crossing");
    }

    #[test]
    fn rollup_aggregates_by_name() {
        let rec = |name: &str, dur: u64| SpanRecord {
            name: name.into(),
            thread: 0,
            depth: 0,
            start_ns: 0,
            dur_ns: dur,
        };
        let records = vec![rec("a", 10), rec("b", 5), rec("a", 30), rec("a", 20)];
        let roll = rollup(&records);
        assert_eq!(roll.len(), 2);
        let a = &roll["a"];
        assert_eq!(
            (a.count, a.total_ns, a.min_ns, a.max_ns, a.mean_ns()),
            (3, 60, 10, 30, 20)
        );
        assert_eq!(roll["b"].count, 1);
        assert_eq!(SpanRollup::default().mean_ns(), 0);
    }

    #[test]
    fn span_with_does_not_run_the_closure_when_disabled() {
        let _l = locked();
        set_spans_enabled(false);
        let _g = span_with(|| unreachable!("closure must be lazy"));
    }
}
