//! Owned, serializable materialization of a [`crate::MetricRegistry`].

use std::collections::BTreeMap;

use serde::{Serialize, SerializeStruct, Serializer};

use crate::histogram::HistogramSnapshot;
use crate::json::{self, JsonValue};
use crate::span::{self, SpanRecord, SpanRollup};
use crate::trace::{Event, EventKind};

/// Everything a registry knew at one instant: counters, gauges, histogram
/// contents, and the resident event-trace window.
///
/// Snapshots are plain data — comparable, mergeable, and serializable — so
/// experiment binaries can write them to `results/*.json` and tests can
/// assert on them directly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `name → value` for every registered counter.
    pub counters: BTreeMap<String, u64>,
    /// `name → value` for every registered gauge.
    pub gauges: BTreeMap<String, f64>,
    /// `name → materialized histogram` for every registered histogram.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Resident sampled events, oldest first (empty when tracing is off).
    pub events: Vec<Event>,
    /// Events offered to the trace before sampling.
    pub events_seen: u64,
    /// Sampled events displaced by the ring bound.
    pub events_dropped: u64,
    /// Completed profiling spans (empty unless the emitter drained the
    /// process-wide span collector into this snapshot; see
    /// [`crate::span`]).
    pub spans: Vec<SpanRecord>,
}

impl Snapshot {
    /// Value of a counter, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Value of a gauge, if registered.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram's materialization, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Aggregate the resident profiling spans per name (count/total/min/
    /// max) — the per-phase breakdown run manifests are built from.
    #[must_use]
    pub fn span_rollup(&self) -> BTreeMap<String, SpanRollup> {
        span::rollup(&self.spans)
    }

    /// Compress every non-zero counter into a behavioural-coverage feature:
    /// FNV-1a of the counter name mixed with the value's magnitude bucket
    /// (⌊log₂⌋, so a counter yields a new feature each time it crosses a
    /// power of two rather than on every increment). Fuzzers use the set of
    /// features seen across runs as a cheap "did this input exercise new
    /// behaviour?" signal, exactly like edge-coverage maps but over the
    /// registry the simulator already maintains. Deterministic across runs
    /// and platforms.
    #[must_use]
    pub fn counter_features(&self) -> Vec<u64> {
        self.counters
            .iter()
            .filter(|&(_, &v)| v > 0)
            .map(|(name, &v)| {
                let mut bytes = Vec::with_capacity(name.len() + 2);
                bytes.extend_from_slice(name.as_bytes());
                bytes.push(0xFE); // separator: name bytes never collide with bucket
                bytes.push(v.ilog2() as u8);
                crate::fnv1a(&bytes)
            })
            .collect()
    }

    /// Fold another snapshot into this one: counters and histogram buckets
    /// add, gauges take the other's value when present, events concatenate.
    /// This is the aggregation path a sharded multi-registry design would
    /// use; today it serves multi-run accumulation in tooling.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            let dst = self.histograms.entry(k.clone()).or_default();
            for (&lo, &c) in &h.buckets {
                *dst.buckets.entry(lo).or_insert(0) += c;
            }
            let was_empty = dst.count == 0;
            dst.count += h.count;
            dst.sum = dst.sum.wrapping_add(h.sum);
            if h.count > 0 {
                dst.min = if was_empty { h.min } else { dst.min.min(h.min) };
                dst.max = dst.max.max(h.max);
            }
        }
        self.events.extend(other.events.iter().copied());
        self.events_seen += other.events_seen;
        self.events_dropped += other.events_dropped;
        self.spans.extend(other.spans.iter().cloned());
    }

    /// Serialize to a compact JSON string.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        json::to_string(self)
    }

    /// Parse a snapshot back out of [`Snapshot::to_json_string`] output.
    pub fn from_json_str(s: &str) -> Result<Snapshot, String> {
        let v = JsonValue::parse(s)?;
        let obj = v.as_object().ok_or("snapshot must be a JSON object")?;

        let mut snap = Snapshot::default();
        if let Some(counters) = obj.get("counters").and_then(JsonValue::as_object) {
            for (k, v) in counters {
                let n = v.as_u64().ok_or_else(|| format!("counter {k} not u64"))?;
                snap.counters.insert(k.clone(), n);
            }
        }
        if let Some(gauges) = obj.get("gauges").and_then(JsonValue::as_object) {
            for (k, v) in gauges {
                let n = v.as_f64().ok_or_else(|| format!("gauge {k} not f64"))?;
                snap.gauges.insert(k.clone(), n);
            }
        }
        if let Some(hists) = obj.get("histograms").and_then(JsonValue::as_object) {
            for (k, v) in hists {
                snap.histograms.insert(k.clone(), parse_histogram(k, v)?);
            }
        }
        if let Some(events) = obj.get("events").and_then(JsonValue::as_array) {
            for (i, e) in events.iter().enumerate() {
                snap.events.push(parse_event(i, e)?);
            }
        }
        if let Some(spans) = obj.get("spans").and_then(JsonValue::as_array) {
            for (i, s) in spans.iter().enumerate() {
                snap.spans.push(parse_span(i, s)?);
            }
        }
        snap.events_seen = obj
            .get("events_seen")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        snap.events_dropped = obj
            .get("events_dropped")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        Ok(snap)
    }
}

fn parse_histogram(name: &str, v: &JsonValue) -> Result<HistogramSnapshot, String> {
    let obj = v
        .as_object()
        .ok_or_else(|| format!("histogram {name} not an object"))?;
    let mut h = HistogramSnapshot::default();
    if let Some(buckets) = obj.get("buckets").and_then(JsonValue::as_object) {
        for (lo, c) in buckets {
            let lo: u64 = lo
                .parse()
                .map_err(|e| format!("histogram {name} bucket key {lo:?}: {e}"))?;
            let c = c
                .as_u64()
                .ok_or_else(|| format!("histogram {name} bucket count not u64"))?;
            h.buckets.insert(lo, c);
        }
    }
    let field = |k: &str| obj.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
    h.count = field("count");
    h.sum = field("sum");
    h.min = field("min");
    h.max = field("max");
    Ok(h)
}

fn parse_span(i: usize, v: &JsonValue) -> Result<SpanRecord, String> {
    let obj = v
        .as_object()
        .ok_or_else(|| format!("span {i} not an object"))?;
    let name = obj
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("span {i} missing name"))?
        .to_string();
    let field = |k: &str| obj.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
    Ok(SpanRecord {
        name,
        thread: field("thread"),
        depth: field("depth") as u32,
        start_ns: field("start_ns"),
        dur_ns: field("dur_ns"),
    })
}

fn parse_event(i: usize, v: &JsonValue) -> Result<Event, String> {
    let obj = v
        .as_object()
        .ok_or_else(|| format!("event {i} not an object"))?;
    let kind_name = obj
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("event {i} missing kind"))?;
    let kind = EventKind::from_name(kind_name)
        .ok_or_else(|| format!("event {i} has unknown kind {kind_name:?}"))?;
    let field = |k: &str| obj.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
    Ok(Event {
        cycle: field("cycle"),
        kind,
        pc: field("pc"),
        arg: field("arg"),
    })
}

impl Serialize for HistogramSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("HistogramSnapshot", 5)?;
        s.serialize_field("buckets", &self.buckets)?;
        s.serialize_field("count", &self.count)?;
        s.serialize_field("sum", &self.sum)?;
        s.serialize_field("min", &self.min)?;
        s.serialize_field("max", &self.max)?;
        s.end()
    }
}

impl Serialize for Event {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("Event", 4)?;
        s.serialize_field("cycle", &self.cycle)?;
        s.serialize_field("kind", self.kind.name())?;
        s.serialize_field("pc", &self.pc)?;
        s.serialize_field("arg", &self.arg)?;
        s.end()
    }
}

impl Serialize for SpanRecord {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("SpanRecord", 5)?;
        s.serialize_field("name", &self.name)?;
        s.serialize_field("thread", &self.thread)?;
        s.serialize_field("depth", &self.depth)?;
        s.serialize_field("start_ns", &self.start_ns)?;
        s.serialize_field("dur_ns", &self.dur_ns)?;
        s.end()
    }
}

impl Serialize for Snapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("Snapshot", 7)?;
        s.serialize_field("counters", &self.counters)?;
        s.serialize_field("gauges", &self.gauges)?;
        s.serialize_field("histograms", &self.histograms)?;
        s.serialize_field("events", &self.events)?;
        s.serialize_field("events_seen", &self.events_seen)?;
        s.serialize_field("events_dropped", &self.events_dropped)?;
        s.serialize_field("spans", &self.spans)?;
        s.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::registry::MetricRegistry;
    use crate::trace::TraceConfig;

    fn sample_snapshot() -> Snapshot {
        let mut reg = MetricRegistry::new();
        reg.counter("btb.misses").add(17);
        reg.counter("blocks").add(3);
        reg.set_gauge("ipc", 1.25);
        let h = reg.histogram("ftq.occupancy");
        for v in [0u64, 4, 4, 9, 31] {
            h.record(v);
        }
        let t = reg.enable_trace(TraceConfig::default());
        t.record(10, EventKind::BtbMiss, 0x4000, 1);
        t.record(12, EventKind::SbbRescue, 0x4008, 0);
        let mut snap = reg.snapshot();
        snap.spans = vec![
            SpanRecord {
                name: "sweep.prepare".into(),
                thread: 0,
                depth: 0,
                start_ns: 1_000,
                dur_ns: 50_000,
            },
            SpanRecord {
                name: "sim.job:tpcc".into(),
                thread: 1,
                depth: 1,
                start_ns: 60_000,
                dur_ns: 30_000,
            },
            SpanRecord {
                name: "sim.job:tpcc".into(),
                thread: 2,
                depth: 1,
                start_ns: 61_000,
                dur_ns: 10_000,
            },
        ];
        snap
    }

    #[test]
    fn json_round_trip_is_identity() {
        let snap = sample_snapshot();
        let json = snap.to_json_string();
        let back = Snapshot::from_json_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn json_shape_is_stable() {
        let json = sample_snapshot().to_json_string();
        assert!(json.contains("\"counters\":{\"blocks\":3,\"btb.misses\":17}"));
        assert!(json.contains("\"kind\":\"sbb_rescue\""));
        assert!(json.contains("\"events_seen\":2"));
        assert!(json.contains(
            "{\"name\":\"sweep.prepare\",\"thread\":0,\"depth\":0,\"start_ns\":1000,\"dur_ns\":50000}"
        ));
        let v = JsonValue::parse(&json).unwrap();
        assert_eq!(
            v.get("histograms")
                .and_then(|h| h.get("ftq.occupancy"))
                .and_then(|h| h.get("count"))
                .and_then(JsonValue::as_u64),
            Some(5)
        );
    }

    #[test]
    fn accessors() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter("btb.misses"), Some(17));
        assert_eq!(snap.counter("nope"), None);
        assert_eq!(snap.gauge("ipc"), Some(1.25));
        assert_eq!(snap.histogram("ftq.occupancy").unwrap().count, 5);
        assert_eq!(snap.events.len(), 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample_snapshot();
        let b = sample_snapshot();
        a.merge(&b);
        assert_eq!(a.counter("btb.misses"), Some(34));
        let h = a.histogram("ftq.occupancy").unwrap();
        assert_eq!(h.count, 10);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 31);
        assert_eq!(a.events.len(), 4);
        assert_eq!(a.events_seen, 4);
        assert_eq!(a.spans.len(), 6, "spans concatenate");

        // Merging into an empty snapshot reproduces the source.
        let mut empty = Snapshot::default();
        empty.merge(&b);
        assert_eq!(empty, b);
    }

    #[test]
    fn span_rollup_aggregates_resident_spans() {
        let snap = sample_snapshot();
        let roll = snap.span_rollup();
        assert_eq!(roll.len(), 2);
        assert_eq!(roll["sweep.prepare"].count, 1);
        let jobs = &roll["sim.job:tpcc"];
        assert_eq!(jobs.count, 2);
        assert_eq!(jobs.total_ns, 40_000);
        assert_eq!(jobs.min_ns, 10_000);
        assert_eq!(jobs.max_ns, 30_000);
        assert!(Snapshot::default().span_rollup().is_empty());
    }

    #[test]
    fn histogram_merge_vs_snapshot_merge_agree() {
        let h1 = Histogram::new();
        let h2 = Histogram::new();
        for v in [1u64, 2, 300] {
            h1.record(v);
        }
        for v in [0u64, 2, 5000] {
            h2.record(v);
        }
        // Path A: merge live histograms, then snapshot.
        let live = Histogram::new();
        live.merge(&h1);
        live.merge(&h2);
        // Path B: snapshot separately, then merge snapshots.
        let mut reg1 = MetricRegistry::new();
        reg1.histogram("h").merge(&h1);
        let mut reg2 = MetricRegistry::new();
        reg2.histogram("h").merge(&h2);
        let mut s = reg1.snapshot();
        s.merge(&reg2.snapshot());
        assert_eq!(s.histogram("h"), Some(&live.snapshot()));
    }

    #[test]
    fn counter_features_bucket_by_magnitude() {
        let mut reg = MetricRegistry::new();
        reg.counter("a").add(3);
        reg.counter("b").add(1);
        reg.counter("zero"); // registered but never incremented
        let s = reg.snapshot();
        let f = s.counter_features();
        assert_eq!(f.len(), 2, "zero counters contribute no feature");
        assert_eq!(f, s.counter_features(), "deterministic");

        // Same counter, same power-of-two bucket: same feature. New bucket:
        // new feature. Different counter at the same value: different
        // feature.
        let mut reg2 = MetricRegistry::new();
        reg2.counter("a").add(2); // still ⌊log₂⌋ = 1
        reg2.counter("b").add(1);
        assert_eq!(f, reg2.snapshot().counter_features());
        let mut reg3 = MetricRegistry::new();
        reg3.counter("a").add(4); // bucket 2 now
        reg3.counter("b").add(1);
        let f3 = reg3.snapshot().counter_features();
        assert_ne!(f, f3);
        assert_eq!(f[1], f3[1], "counter b unchanged");
        let mut reg4 = MetricRegistry::new();
        reg4.counter("c").add(3);
        assert_ne!(f[0], reg4.snapshot().counter_features()[0]);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Snapshot::from_json_str("not json").is_err());
        assert!(Snapshot::from_json_str("[1,2]").is_err());
        assert!(
            Snapshot::from_json_str("{\"events\":[{\"kind\":\"martian\"}]}").is_err(),
            "unknown event kinds must not parse silently"
        );
        assert!(
            Snapshot::from_json_str("{\"spans\":[{\"thread\":1}]}").is_err(),
            "a span without a name must not parse silently"
        );
        assert!(Snapshot::from_json_str("{\"spans\":[7]}").is_err());
    }

    /// The feature hashes are part of the fuzz corpus' on-disk contract: a
    /// silent change to the FNV mixing (or to `ilog2` bucketing) would
    /// orphan every persisted corpus entry's coverage. Pin exact values.
    #[test]
    fn counter_features_are_pinned() {
        let mut reg = MetricRegistry::new();
        reg.counter("a").add(3);
        reg.counter("b").add(1);
        reg.counter("btb.misses").add(17);
        reg.counter("sim.steps_total").add(400_000);
        let f = reg.snapshot().counter_features();
        // BTreeMap order: a, b, btb.misses, sim.steps_total.
        assert_eq!(
            f,
            vec![
                0xe57a_9c19_03db_f5f5,
                0xfed3_ec19_1209_5893,
                0x965a_0a85_571e_b719,
                0x430c_7f35_5cba_f2b0,
            ],
            "counter_features changed — this breaks persisted fuzz-corpus coverage"
        );
    }
}
