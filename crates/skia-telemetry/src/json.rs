//! JSON backend for the serde data model, plus a small parser for
//! round-tripping snapshots in tests and tooling.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Serialize, SerializeMap, SerializeSeq, SerializeStruct, Serializer};

/// Serialize any [`serde::Serialize`] value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    value
        .serialize(JsonSerializer { out: &mut out })
        .expect("JSON serialization is infallible");
    out
}

/// Infallible error placeholder (string writing cannot fail).
#[derive(Debug)]
pub enum Never {}

/// A [`Serializer`] that renders compact JSON into a string.
pub struct JsonSerializer<'o> {
    out: &'o mut String,
}

/// In-progress JSON sequence/map/struct.
pub struct JsonCompound<'o> {
    out: &'o mut String,
    first: bool,
    close: char,
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_into(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest round-trip formatting; force a fractional marker so
        // the value parses back as a float.
        let s = format!("{v}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

impl SerializeSeq for JsonCompound<'_> {
    type Ok = ();
    type Error = Never;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Never> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        value.serialize(JsonSerializer { out: self.out })
    }

    fn end(self) -> Result<(), Never> {
        self.out.push(self.close);
        Ok(())
    }
}

impl SerializeMap for JsonCompound<'_> {
    type Ok = ();
    type Error = Never;

    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Never> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        // JSON keys must be strings: serialize the key, then string-wrap it
        // if it did not render as one.
        let mut k = String::new();
        key.serialize(JsonSerializer { out: &mut k })?;
        if k.starts_with('"') {
            self.out.push_str(&k);
        } else {
            escape_into(self.out, &k);
        }
        self.out.push(':');
        value.serialize(JsonSerializer { out: self.out })
    }

    fn end(self) -> Result<(), Never> {
        self.out.push(self.close);
        Ok(())
    }
}

impl SerializeStruct for JsonCompound<'_> {
    type Ok = ();
    type Error = Never;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Never> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        escape_into(self.out, name);
        self.out.push(':');
        value.serialize(JsonSerializer { out: self.out })
    }

    fn end(self) -> Result<(), Never> {
        self.out.push(self.close);
        Ok(())
    }
}

impl<'o> Serializer for JsonSerializer<'o> {
    type Ok = ();
    type Error = Never;
    type SerializeSeq = JsonCompound<'o>;
    type SerializeMap = JsonCompound<'o>;
    type SerializeStruct = JsonCompound<'o>;

    fn serialize_bool(self, v: bool) -> Result<(), Never> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Never> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Never> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Never> {
        float_into(self.out, v);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Never> {
        escape_into(self.out, v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Never> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), Never> {
        v.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), Never> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<JsonCompound<'o>, Never> {
        self.out.push('[');
        Ok(JsonCompound {
            out: self.out,
            first: true,
            close: ']',
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<JsonCompound<'o>, Never> {
        self.out.push('{');
        Ok(JsonCompound {
            out: self.out,
            first: true,
            close: '}',
        })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<JsonCompound<'o>, Never> {
        self.out.push('{');
        Ok(JsonCompound {
            out: self.out,
            first: true,
            close: '}',
        })
    }
}

// ---------------------------------------------------------------------------
// Parsing (for snapshot round-trips).
// ---------------------------------------------------------------------------

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any number (kept as f64; u64 counters round-trip exactly below 2^53,
    /// and integers are additionally kept verbatim in `Number::raw`).
    Number(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object (key order normalized).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parse a JSON document.
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// The object under a key, if this is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a u64 (rounded; exact for integers below 2^53).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// This value as an f64.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a str.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// This value as an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", JsonValue::Null),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-consume the run up to the next quote or escape:
                    // one UTF-8 validation per run, not per character (a
                    // per-char from_utf8 over the whole remainder made
                    // parsing quadratic — minutes on a 2 MB snapshot). The
                    // run boundary is an ASCII byte, so it is always a char
                    // boundary.
                    let rest = &self.bytes[self.pos..];
                    let run = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .unwrap_or(rest.len());
                    let chunk = std::str::from_utf8(&rest[..run]).map_err(|e| e.to_string())?;
                    s.push_str(chunk);
                    self.pos += run;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => return Err(format!("expected , or ] found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                other => return Err(format!("expected , or }} found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(to_string(&7u64), "7");
        assert_eq!(to_string(&-3i32), "-3");
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&1.5f64), "1.5");
        assert_eq!(to_string(&2.0f64), "2.0", "floats keep a marker");
        assert_eq!(to_string("a\"b\n"), "\"a\\\"b\\n\"");
        assert_eq!(to_string(&Option::<u64>::None), "null");
        assert_eq!(to_string(&vec![1u64, 2, 3]), "[1,2,3]");
    }

    #[test]
    fn maps_render_with_string_keys() {
        let mut m = BTreeMap::new();
        m.insert(64u64, 3u64);
        m.insert(128u64, 1u64);
        assert_eq!(to_string(&m), "{\"64\":3,\"128\":1}");
    }

    #[test]
    fn parse_round_trips() {
        let text = "{\"a\":[1,2.5,null,true],\"b\":\"x\\ny\",\"c\":{\"d\":-4}}";
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-4.0));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
        assert!(JsonValue::parse("{oops}").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("12 34").is_err());
    }

    #[test]
    fn large_u64_counters_round_trip() {
        // Counters live well below 2^53 in practice; check exactness there.
        let v = (1u64 << 52) + 12345;
        let parsed = JsonValue::parse(&to_string(&v)).unwrap();
        assert_eq!(parsed.as_u64(), Some(v));
    }
}
