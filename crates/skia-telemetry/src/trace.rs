//! Cycle-level event tracing: a sampled, bounded ring buffer.
//!
//! Tracing is for *looking at* a run, not aggregating it — the counters and
//! histograms carry the aggregates. The trace therefore keeps only the most
//! recent `capacity` sampled events (a flight recorder), and sampling keeps
//! the recording cost negligible: with `sample_every = N`, only every N-th
//! event is stored.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The front-end redirected fetch (any cause/stage).
    Resteer,
    /// A shadow branch entered the SBB.
    SbbInsert,
    /// An SBB entry was displaced or invalidated.
    SbbEvict,
    /// An SBB hit rescued a BTB miss (no resteer needed).
    SbbRescue,
    /// A branch missed the BTB at prediction time.
    BtbMiss,
    /// FDIP issued a line prefetch.
    PrefetchIssue,
    /// The shadow decoder examined a head/tail region.
    ShadowDecode,
}

impl EventKind {
    /// Every kind, in serialization order.
    pub const ALL: [EventKind; 7] = [
        EventKind::Resteer,
        EventKind::SbbInsert,
        EventKind::SbbEvict,
        EventKind::SbbRescue,
        EventKind::BtbMiss,
        EventKind::PrefetchIssue,
        EventKind::ShadowDecode,
    ];

    /// Stable wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Resteer => "resteer",
            EventKind::SbbInsert => "sbb_insert",
            EventKind::SbbEvict => "sbb_evict",
            EventKind::SbbRescue => "sbb_rescue",
            EventKind::BtbMiss => "btb_miss",
            EventKind::PrefetchIssue => "prefetch_issue",
            EventKind::ShadowDecode => "shadow_decode",
        }
    }

    /// Inverse of [`EventKind::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One sampled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulator cycle at which the event occurred.
    pub cycle: u64,
    /// Event class.
    pub kind: EventKind,
    /// Program counter (or line address) the event concerns.
    pub pc: u64,
    /// Kind-specific argument (resteer stage, branch-kind index, residency…).
    pub arg: u64,
}

/// Trace geometry and sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring-buffer capacity: the trace keeps at most this many events,
    /// discarding the oldest.
    pub capacity: usize,
    /// Keep one event in every `sample_every` (1 = keep all).
    pub sample_every: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 64 * 1024,
            sample_every: 1,
        }
    }
}

impl TraceConfig {
    /// A sampled configuration.
    #[must_use]
    pub fn sampled(sample_every: u64, capacity: usize) -> Self {
        TraceConfig {
            capacity,
            sample_every: sample_every.max(1),
        }
    }
}

#[derive(Debug)]
struct Inner {
    config: TraceConfig,
    buf: VecDeque<Event>,
    /// Events offered (before sampling).
    seen: u64,
    /// Sampled events displaced by the ring bound.
    dropped: u64,
}

/// The shared recording handle. Clones share the buffer.
#[derive(Debug, Clone)]
pub struct EventTrace(Rc<RefCell<Inner>>);

impl EventTrace {
    /// An empty trace.
    #[must_use]
    pub fn new(config: TraceConfig) -> Self {
        let config = TraceConfig {
            capacity: config.capacity.max(1),
            sample_every: config.sample_every.max(1),
        };
        EventTrace(Rc::new(RefCell::new(Inner {
            config,
            buf: VecDeque::with_capacity(config.capacity.min(4096)),
            seen: 0,
            dropped: 0,
        })))
    }

    /// Offer one event; it is stored if it falls on the sampling grid.
    #[inline]
    pub fn record(&self, cycle: u64, kind: EventKind, pc: u64, arg: u64) {
        let mut t = self.0.borrow_mut();
        t.seen += 1;
        if !t.seen.is_multiple_of(t.config.sample_every) {
            return;
        }
        if t.buf.len() >= t.config.capacity {
            t.buf.pop_front();
            t.dropped += 1;
        }
        t.buf.push_back(Event {
            cycle,
            kind,
            pc,
            arg,
        });
    }

    /// Events offered so far (sampled or not).
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.0.borrow().seen
    }

    /// Sampled events lost to the ring bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.0.borrow().dropped
    }

    /// Resident events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.0.borrow().buf.iter().copied().collect()
    }

    /// Resident event count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.borrow().buf.len()
    }

    /// Whether no events are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.borrow().buf.is_empty()
    }
}

/// Render events as Chrome `trace_event` JSON (load via `chrome://tracing`
/// or Perfetto). Cycles are mapped 1:1 onto microseconds.
#[must_use]
pub fn to_chrome_trace(events: &[Event]) -> String {
    to_chrome_trace_full(events, &[], "")
}

/// Render instant events **and** profiling spans as one Chrome
/// `trace_event` document: spans become `X` (complete) events laid out per
/// thread with real wall-clock timestamps (ns mapped onto the trace's µs
/// axis), instant events keep their cycle timestamps on `pid` 2 so the two
/// time domains never share a row. `process_name` labels the span process
/// (e.g. the experiment binary) via a metadata event when non-empty.
#[must_use]
pub fn to_chrome_trace_full(
    events: &[Event],
    spans: &[crate::span::SpanRecord],
    process_name: &str,
) -> String {
    let mut out = String::with_capacity(events.len() * 96 + spans.len() * 128 + 128);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };
    if !process_name.is_empty() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{{\"name\":\"{process_name}\"}}}}"
        );
    }
    for s in spans {
        sep(&mut out);
        // Chrome's ts/dur unit is microseconds; keep ns precision as a
        // fraction (trailing .000 elided when exact).
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\
             \"pid\":1,\"tid\":{},\"args\":{{\"depth\":{}}}}}",
            s.name,
            s.start_ns / 1000,
            s.start_ns % 1000,
            s.dur_ns / 1000,
            s.dur_ns % 1000,
            s.thread,
            s.depth
        );
    }
    for e in events {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":2,\"tid\":1,\"s\":\"t\",\
             \"args\":{{\"pc\":\"{:#x}\",\"arg\":{}}}}}",
            e.kind.name(),
            e.cycle,
            e.pc,
            e.arg
        );
    }
    out.push_str("]}");
    out
}

/// Render events as JSONL: one `{"cycle":…,"kind":…,"pc":…,"arg":…}` per line.
#[must_use]
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 64);
    for e in events {
        let _ = writeln!(
            out,
            "{{\"cycle\":{},\"kind\":\"{}\",\"pc\":{},\"arg\":{}}}",
            e.cycle,
            e.kind.name(),
            e.pc,
            e.arg
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bound_drops_oldest() {
        let t = EventTrace::new(TraceConfig {
            capacity: 3,
            sample_every: 1,
        });
        for c in 0..5u64 {
            t.record(c, EventKind::Resteer, 0x100 + c, 0);
        }
        let ev = t.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].cycle, 2, "oldest two displaced");
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.seen(), 5);
    }

    #[test]
    fn sampling_keeps_every_nth() {
        let t = EventTrace::new(TraceConfig {
            capacity: 1000,
            sample_every: 10,
        });
        for c in 1..=100u64 {
            t.record(c, EventKind::BtbMiss, c, 0);
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.seen(), 100);
        assert!(t.events().iter().all(|e| e.cycle % 10 == 0));
    }

    #[test]
    fn chrome_and_jsonl_render() {
        let t = EventTrace::new(TraceConfig::default());
        t.record(7, EventKind::SbbRescue, 0x40, 2);
        let chrome = to_chrome_trace(&t.events());
        assert!(chrome.contains("\"name\":\"sbb_rescue\""));
        assert!(chrome.contains("\"ts\":7"));
        assert!(chrome.starts_with('{') && chrome.ends_with('}'));
        let jsonl = to_jsonl(&t.events());
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"kind\":\"sbb_rescue\""));
    }

    #[test]
    fn chrome_trace_full_renders_spans_as_complete_events() {
        let spans = vec![
            crate::span::SpanRecord {
                name: "sweep.prepare".into(),
                thread: 0,
                depth: 0,
                start_ns: 1_500,
                dur_ns: 2_000_123,
            },
            crate::span::SpanRecord {
                name: "sim.job:tpcc".into(),
                thread: 3,
                depth: 1,
                start_ns: 5_000,
                dur_ns: 250,
            },
        ];
        let t = EventTrace::new(TraceConfig::default());
        t.record(9, EventKind::BtbMiss, 0x80, 0);
        let doc = to_chrome_trace_full(&t.events(), &spans, "fig01");
        assert!(doc.contains("\"name\":\"process_name\""));
        assert!(doc.contains("\"args\":{\"name\":\"fig01\"}"));
        assert!(
            doc.contains("\"name\":\"sweep.prepare\",\"ph\":\"X\",\"ts\":1.500,\"dur\":2000.123")
        );
        assert!(doc.contains("\"tid\":3"), "span thread becomes the tid");
        assert!(doc.contains("\"depth\":1"));
        assert!(doc.contains("\"name\":\"btb_miss\""), "instant events kept");
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        // Spans-only export (no process name) is also valid.
        let bare = to_chrome_trace_full(&[], &spans, "");
        assert!(!bare.contains("process_name"));
        assert!(bare.starts_with("{\"displayTimeUnit\""));
    }

    #[test]
    fn kind_names_round_trip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_name(k.name()), Some(k));
        }
        assert_eq!(EventKind::from_name("nope"), None);
    }
}
