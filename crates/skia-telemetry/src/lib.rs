//! # skia-telemetry — structured observability for the Skia simulator
//!
//! Every paper figure used to be reconstructed from one monolithic stats
//! struct mutated by hand. This crate is the substrate that replaces that
//! plumbing:
//!
//! * [`MetricRegistry`] — named counters and gauges. A [`Counter`] is a
//!   plain `u64` cell behind a shared handle: incrementing is one pointer
//!   dereference, no locks, no string lookups on the hot path. Components
//!   register once at construction and keep the handle.
//! * [`Histogram`] — streaming log₂-bucketed distributions (FTQ occupancy,
//!   resteer-repair latency, SBB entry lifetime, shadow-decode batch size).
//! * [`EventTrace`] — an optional bounded ring buffer of cycle-stamped
//!   events (resteers, SBB inserts/evicts/rescues, BTB misses, prefetch
//!   issues), sampled at a configurable rate, exportable as Chrome
//!   `trace_event` JSON or JSONL.
//! * [`Snapshot`] — a serde-serialized materialization of the whole
//!   registry, written by the experiment binaries' `--emit-json`.
//! * [`SpanGuard`] — RAII wall-clock span profiling ([`span`] module): a
//!   process-wide, thread-aware collector of hierarchical begin/end
//!   records bracketing pipeline phases (sweep prepare/simulate, per-job
//!   simulation, trace-cache I/O, oracle cases, fuzz rounds). Off by
//!   default; the disabled path is a single atomic load. Records export as
//!   Chrome `X` events and aggregate into per-phase rollups for run
//!   manifests.
//!
//! The simulator is single-threaded by design, so handles are `Rc<Cell<_>>`
//! — the cheapest shared-mutability primitive Rust offers. Nothing here is
//! `Send`; a sharded multi-threaded registry would aggregate per-thread
//! registries via [`Snapshot::merge`].
//!
//! ## Quick taste
//!
//! ```rust
//! use skia_telemetry::{MetricRegistry, TraceConfig, EventKind};
//!
//! let mut reg = MetricRegistry::new();
//! let misses = reg.counter("btb.misses");
//! let occ = reg.histogram("ftq.occupancy");
//! let trace = reg.enable_trace(TraceConfig::default());
//!
//! // Hot path: no registry involvement, just the handles.
//! misses.inc();
//! occ.record(17);
//! trace.record(1234, EventKind::BtbMiss, 0x4010, 0);
//!
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("btb.misses"), Some(1));
//! let json = snap.to_json_string();
//! let back = skia_telemetry::Snapshot::from_json_str(&json).unwrap();
//! assert_eq!(back, snap);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod json;
pub mod registry;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot, LocalHistogram};
pub use registry::{Counter, Gauge, MetricRegistry};
pub use snapshot::Snapshot;
pub use span::{
    drain_spans, init_spans_from_env, set_spans_enabled, span, span_with, spans_enabled, SpanGuard,
    SpanRecord, SpanRollup,
};
pub use trace::{to_chrome_trace, to_chrome_trace_full, Event, EventKind, EventTrace, TraceConfig};

/// FNV-1a hash of a byte slice — the repo's standing content fingerprint.
///
/// The same constants back [`Snapshot::counter_features`] (whose outputs are
/// pinned by the fuzz-corpus contract) and the sampling-plan provenance
/// fingerprints recorded in sampled-run snapshots. Deterministic across
/// runs and platforms.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
