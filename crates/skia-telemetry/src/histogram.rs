//! Streaming log₂-bucketed histograms.
//!
//! Values are `u64` measurements (cycle counts, queue depths, batch sizes).
//! Bucket `0` holds exactly the value `0`; bucket `i ≥ 1` holds the range
//! `[2^(i-1), 2^i - 1]`. That gives full precision for 0/1/2 and ~2× relative
//! error beyond, in 65 fixed slots — the classic HdrHistogram-lite shape,
//! cheap enough to record on every simulated block.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Number of buckets: the zero bucket plus one per possible `ilog2`.
pub const BUCKETS: usize = 65;

/// Inclusive `(low, high)` value bounds of bucket `i`.
#[must_use]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        (0, 0)
    } else if i == BUCKETS - 1 {
        (1u64 << (i - 1), u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

/// Bucket index of a value.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    match v {
        0 => 0,
        _ => 1 + v.ilog2() as usize,
    }
}

#[derive(Debug, Clone)]
struct Inner {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// A shared-handle streaming histogram (see the module docs for the bucket
/// scheme). Clones share state, like [`crate::Counter`].
#[derive(Debug, Clone, Default)]
pub struct Histogram(Rc<RefCell<Inner>>);

impl Histogram {
    /// A fresh, unregistered histogram (components under test use this;
    /// simulation code gets handles from [`crate::MetricRegistry`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one measurement.
    #[inline]
    pub fn record(&self, v: u64) {
        let mut h = self.0.borrow_mut();
        h.buckets[bucket_index(v)] += 1;
        h.count += 1;
        h.sum = h.sum.wrapping_add(v);
        h.min = h.min.min(v);
        h.max = h.max.max(v);
    }

    /// Total recorded measurements.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.borrow().count
    }

    /// Wrapping sum of every recorded value. Together with
    /// [`Histogram::count`] this lets a caller compute the mean of a *window*
    /// of records by differencing two observations — sampled replay uses
    /// this for per-slice FTQ occupancy.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.0.borrow().sum
    }

    /// Fold another histogram's contents into this one.
    pub fn merge(&self, other: &Histogram) {
        if Rc::ptr_eq(&self.0, &other.0) {
            return; // merging a histogram into itself is a no-op
        }
        let o = other.0.borrow();
        let mut h = self.0.borrow_mut();
        for (dst, src) in h.buckets.iter_mut().zip(o.buckets.iter()) {
            *dst += src;
        }
        h.count += o.count;
        h.sum = h.sum.wrapping_add(o.sum);
        h.min = h.min.min(o.min);
        h.max = h.max.max(o.max);
    }

    /// Drain a [`LocalHistogram`]'s contents into this one and reset it.
    ///
    /// Byte-exact: the result equals having called [`Histogram::record`]
    /// directly for every value the local one saw (bucket counts, count, and
    /// wrapping sum add; min/max fold, with an empty local's `u64::MAX` min
    /// leaving ours untouched).
    pub fn absorb(&self, local: &mut LocalHistogram) {
        if local.count == 0 {
            return;
        }
        let mut h = self.0.borrow_mut();
        for (dst, src) in h.buckets.iter_mut().zip(local.buckets.iter()) {
            *dst += src;
        }
        h.count += local.count;
        h.sum = h.sum.wrapping_add(local.sum);
        h.min = h.min.min(local.min);
        h.max = h.max.max(local.max);
        *local = LocalHistogram::new();
    }

    /// Materialize into an owned, serializable form.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = self.0.borrow();
        let buckets = h
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bounds(i).0, c))
            .collect();
        HistogramSnapshot {
            buckets,
            count: h.count,
            sum: h.sum,
            min: if h.count == 0 { 0 } else { h.min },
            max: h.max,
        }
    }
}

/// An unshared histogram accumulator: the same bucket scheme as
/// [`Histogram`] but plain fields — no `Rc`, no `RefCell` borrow per
/// record. Hot loops record into one of these and periodically drain it
/// into a shared [`Histogram`] via [`Histogram::absorb`]; the drain is
/// exact, so batching records this way is unobservable in any snapshot.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LocalHistogram {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one measurement.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total recorded measurements since the last drain.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// An owned histogram materialization: only non-empty buckets, keyed by
/// their low bound.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `bucket low bound → count`, non-empty buckets only.
    pub buckets: BTreeMap<u64, u64>,
    /// Total measurements.
    pub count: u64,
    /// Sum of all measurements (wrapping).
    pub sum: u64,
    /// Smallest measurement (0 when empty).
    pub min: u64,
    /// Largest measurement.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded measurements.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the low bound of the bucket
    /// containing the `q`-th ordered measurement.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&lo, &c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return lo;
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(3), (4, 7));
        assert_eq!(bucket_bounds(64), (1u64 << 63, u64::MAX));
        // Every value lands in the bucket whose bounds contain it.
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 1023, 1024, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "v={v} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 8, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 115);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100);
        assert_eq!(s.buckets.get(&0), Some(&1)); // the 0
        assert_eq!(s.buckets.get(&1), Some(&2)); // the two 1s
        assert_eq!(s.buckets.get(&2), Some(&2)); // 2 and 3
        assert_eq!(s.buckets.get(&8), Some(&1)); // 8
        assert_eq!(s.buckets.get(&64), Some(&1)); // 100 in [64,127]
    }

    #[test]
    fn merge_adds_contents() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(1);
        a.record(5);
        b.record(5);
        b.record(1000);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets.get(&4), Some(&2)); // both 5s in [4,7]
                                                 // Self-merge must not double-count.
        a.merge(&a);
        assert_eq!(a.snapshot().count, 4);
    }

    #[test]
    fn absorb_equals_direct_records() {
        let direct = Histogram::new();
        let batched = Histogram::new();
        let mut local = LocalHistogram::new();
        let values = [0u64, 1, 1, 5, 64, 1000, u64::MAX];
        for (i, &v) in values.iter().enumerate() {
            direct.record(v);
            local.record(v);
            if i % 3 == 2 {
                batched.absorb(&mut local);
            }
        }
        batched.absorb(&mut local);
        assert_eq!(direct.snapshot(), batched.snapshot());
        // Drained local is empty again; absorbing it is a no-op.
        assert_eq!(local.count(), 0);
        batched.absorb(&mut local);
        assert_eq!(direct.snapshot(), batched.snapshot());
    }

    #[test]
    fn quantiles_are_bucket_resolution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 1);
        // The 50th of 100 ordered values is 50, whose bucket starts at 32.
        assert_eq!(s.quantile(0.5), 32);
        assert_eq!(s.quantile(1.0), 64);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0);
        assert!(s.buckets.is_empty());
    }
}
