//! The metric registry: named counters and gauges behind cheap handles.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::histogram::Histogram;
use crate::snapshot::Snapshot;
use crate::trace::{EventTrace, TraceConfig};

/// A monotonically increasing `u64` metric.
///
/// The handle is a shared pointer to a plain cell: incrementing costs one
/// dereference and one store. Clones share the same cell, so a component can
/// keep its handle while the registry retains another for snapshotting.
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.set(self.0.get().wrapping_add(1));
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().wrapping_add(n));
    }

    /// Overwrite the value (used when materializing pull-model component
    /// stats into the registry at snapshot time).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.set(v);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A floating-point level metric (means, fractions, ratios).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// Owner of every named metric of one simulation run.
///
/// Registration is idempotent: asking for an existing name returns a handle
/// to the same cell, so independent components can share a metric without
/// coordinating.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    trace: Option<EventTrace>,
}

impl MetricRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a counter.
    pub fn counter(&mut self, name: &str) -> Counter {
        self.counters.entry(name.to_string()).or_default().clone()
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&mut self, name: &str) -> Gauge {
        self.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Register (or look up) a histogram.
    pub fn histogram(&mut self, name: &str) -> Histogram {
        self.histograms.entry(name.to_string()).or_default().clone()
    }

    /// Upsert a counter by name and set its value — the pull-model bridge
    /// for components that keep internal stats structs and are exported at
    /// snapshot time.
    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.counter(name).set(v);
    }

    /// Upsert a gauge by name and set its value.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauge(name).set(v);
    }

    /// Turn on event tracing; returns the recording handle. Calling again
    /// returns the existing trace.
    pub fn enable_trace(&mut self, config: TraceConfig) -> EventTrace {
        self.trace
            .get_or_insert_with(|| EventTrace::new(config))
            .clone()
    }

    /// The event trace, if enabled.
    #[must_use]
    pub fn trace(&self) -> Option<EventTrace> {
        self.trace.clone()
    }

    /// Number of registered counters.
    #[must_use]
    pub fn counter_count(&self) -> usize {
        self.counters.len()
    }

    /// Materialize every metric (and the trace contents, if any) into an
    /// owned, serializable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let (events, events_seen, events_dropped) = match &self.trace {
            Some(t) => (t.events(), t.seen(), t.dropped()),
            None => (Vec::new(), 0, 0),
        };
        Snapshot {
            counters,
            gauges,
            histograms,
            events,
            events_seen,
            events_dropped,
            // Spans are process-wide, not per-registry: the emitter drains
            // them into its merged snapshot at finish time.
            spans: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells() {
        let mut reg = MetricRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.snapshot().counter("x"), Some(5));
        assert_eq!(reg.counter_count(), 1);
    }

    #[test]
    fn gauges_and_upserts() {
        let mut reg = MetricRegistry::new();
        reg.set_gauge("ipc", 1.75);
        reg.set_counter("l1i.hits", 42);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges.get("ipc"), Some(&1.75));
        assert_eq!(snap.counter("l1i.hits"), Some(42));
    }

    #[test]
    fn snapshot_orders_names() {
        let mut reg = MetricRegistry::new();
        reg.counter("zeta");
        reg.counter("alpha");
        let names: Vec<_> = reg.snapshot().counters.keys().cloned().collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
