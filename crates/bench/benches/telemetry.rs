//! Telemetry overhead benchmarks.
//!
//! The acceptance bar for the registry design is that an instrumented-but-
//! untraced simulation stays within a few percent of the pre-registry
//! throughput. Since every counter now *is* a registry cell, the honest
//! comparison is the simulator as-is (counters only, tracing off) against
//! the simulator with the sampled event trace enabled, plus
//! microbenchmarks of the primitives themselves (counter increment,
//! histogram record, sampled event record).

use criterion::{criterion_group, criterion_main, Criterion};
use skia_bench::{bench_workload, run_sim};
use skia_frontend::{FrontendConfig, Simulator};
use skia_telemetry::{EventKind, MetricRegistry, TraceConfig};
use skia_workloads::Walker;

const STEPS: usize = 20_000;

fn sim_telemetry_off_vs_on(c: &mut Criterion) {
    let (program, seed, trip) = bench_workload();

    c.bench_function("sim_counters_only", |b| {
        b.iter(|| {
            run_sim(
                &program,
                seed,
                trip,
                FrontendConfig::alder_lake_with_skia(),
                STEPS,
            )
            .cycles
        })
    });

    c.bench_function("sim_with_event_trace", |b| {
        b.iter(|| {
            let trace = Walker::new(&program, seed, trip).take(STEPS);
            let mut sim = Simulator::new(&program, FrontendConfig::alder_lake_with_skia());
            sim.enable_trace(TraceConfig::sampled(64, 16 * 1024));
            sim.run(trace).cycles
        })
    });

    c.bench_function("sim_with_full_trace", |b| {
        b.iter(|| {
            let trace = Walker::new(&program, seed, trip).take(STEPS);
            let mut sim = Simulator::new(&program, FrontendConfig::alder_lake_with_skia());
            sim.enable_trace(TraceConfig::default());
            sim.run(trace).cycles
        })
    });
}

fn primitives(c: &mut Criterion) {
    let mut reg = MetricRegistry::new();
    let counter = reg.counter("bench.counter");
    let hist = reg.histogram("bench.hist");

    c.bench_function("counter_inc", |b| {
        b.iter(|| {
            counter.inc();
            counter.get()
        })
    });

    c.bench_function("histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(0x9E37_79B9);
            hist.record(v & 0xFFFF);
            v
        })
    });

    let trace = reg.enable_trace(TraceConfig::sampled(64, 4096));
    c.bench_function("event_record_sampled_1_in_64", |b| {
        let mut cy = 0u64;
        b.iter(|| {
            cy += 1;
            trace.record(cy, EventKind::BtbMiss, 0x40_0000 + cy, 0);
            cy
        })
    });

    c.bench_function("registry_snapshot", |b| {
        b.iter(|| reg.snapshot().counters.len())
    });
}

criterion_group!(benches, sim_telemetry_off_vs_on, primitives);
criterion_main!(benches);
