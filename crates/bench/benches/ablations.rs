//! Ablation studies of Skia's design choices (the set DESIGN.md calls out):
//! head-decode index policy, valid-path bound, retired-bit replacement,
//! BTB-resident insertion filter, split-vs-shared SBB budget, FTQ depth.
//! Each bench returns the metric the ablation trades, so `cargo bench`
//! doubles as the ablation table generator (values land in Criterion's
//! reports; EXPERIMENTS.md summarizes a full-size run).

use criterion::{criterion_group, criterion_main, Criterion};
use skia_bench::{bench_workload, run_sim};
use skia_core::{IndexPolicy, SbbConfig, SkiaConfig};
use skia_frontend::FrontendConfig;

const STEPS: usize = 30_000;

fn cfg_with(skia: SkiaConfig) -> FrontendConfig {
    FrontendConfig::alder_lake_like()
        .with_btb_entries(2048)
        .with_skia(skia)
}

/// First vs Zero vs Merge index policy: rescues and bogus uses.
fn index_policy(c: &mut Criterion) {
    let (program, seed, trip) = bench_workload();
    let mut group = c.benchmark_group("ablation_index_policy");
    for policy in IndexPolicy::ALL {
        group.bench_function(policy.label(), |b| {
            b.iter(|| {
                let s = run_sim(
                    &program,
                    seed,
                    trip,
                    cfg_with(SkiaConfig {
                        index_policy: policy,
                        ..SkiaConfig::default()
                    }),
                    STEPS,
                );
                let sk = s.skia.unwrap();
                (s.sbb_rescues, sk.bogus_uses, s.cycles)
            })
        });
    }
    group.finish();
}

/// Valid-path (family) bound sweep: 1..8.
fn valid_path_bound(c: &mut Criterion) {
    let (program, seed, trip) = bench_workload();
    let mut group = c.benchmark_group("ablation_valid_paths");
    for bound in [1usize, 2, 4, 6, 8] {
        group.bench_function(format!("max{bound}"), |b| {
            b.iter(|| {
                let s = run_sim(
                    &program,
                    seed,
                    trip,
                    cfg_with(SkiaConfig {
                        max_valid_paths: bound,
                        ..SkiaConfig::default()
                    }),
                    STEPS,
                );
                let sk = s.skia.unwrap();
                (s.sbb_rescues, sk.sbd.head_regions_discarded)
            })
        });
    }
    group.finish();
}

/// Retired-bit-aware replacement vs plain LRU in the SBB.
///
/// The flag routes through `SkiaConfig`; plain LRU treats every entry as
/// equally evictable, so bogus entries survive longer (§4.3's motivation).
fn retired_bit(c: &mut Criterion) {
    let (program, seed, trip) = bench_workload();
    let mut group = c.benchmark_group("ablation_retired_bit");
    for (name, enabled) in [("retired_lru", true), ("plain_lru", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let s = run_sim(
                    &program,
                    seed,
                    trip,
                    cfg_with(SkiaConfig {
                        retired_bit_replacement: enabled,
                        ..SkiaConfig::default()
                    }),
                    STEPS,
                );
                (s.sbb_rescues, s.cycles)
            })
        });
    }
    group.finish();
}

/// Insert-filtering on BTB residency: on vs off.
fn btb_filter(c: &mut Criterion) {
    let (program, seed, trip) = bench_workload();
    let mut group = c.benchmark_group("ablation_btb_filter");
    for (name, filter) in [("unfiltered", false), ("filtered", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let s = run_sim(
                    &program,
                    seed,
                    trip,
                    cfg_with(SkiaConfig {
                        filter_btb_resident: filter,
                        ..SkiaConfig::default()
                    }),
                    STEPS,
                );
                let sk = s.skia.unwrap();
                (s.sbb_rescues, sk.filtered_known)
            })
        });
    }
    group.finish();
}

/// The U/R split against a single shared budget skewed entirely one way.
fn sbb_split(c: &mut Criterion) {
    let (program, seed, trip) = bench_workload();
    let mut group = c.benchmark_group("ablation_sbb_split");
    let configs = [
        ("paper_split", SbbConfig::default()),
        ("all_u", SbbConfig::with_budget(12.25, 0.97, 4)),
        ("all_r", SbbConfig::with_budget(12.25, 0.03, 4)),
    ];
    for (name, sbb) in configs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let s = run_sim(
                    &program,
                    seed,
                    trip,
                    cfg_with(SkiaConfig {
                        sbb,
                        ..SkiaConfig::default()
                    }),
                    STEPS,
                );
                (s.sbb_rescues, s.cycles)
            })
        });
    }
    group.finish();
}

/// FTQ depth sweep: deeper queues buy prefetch lead time.
fn ftq_depth(c: &mut Criterion) {
    let (program, seed, trip) = bench_workload();
    let mut group = c.benchmark_group("ablation_ftq_depth");
    for depth in [4usize, 12, 24, 48] {
        group.bench_function(format!("ftq{depth}"), |b| {
            b.iter(|| {
                let mut cfg = FrontendConfig::alder_lake_like().with_btb_entries(2048);
                cfg.ftq_depth = depth;
                let s = run_sim(&program, seed, trip, cfg, STEPS);
                (s.cycles, s.idle_icache_cycles)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = index_policy, valid_path_bound, retired_bit, btb_filter, sbb_split, ftq_depth
}
criterion_main!(ablations);
