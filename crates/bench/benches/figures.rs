//! One Criterion group per paper table/figure: scaled-down runs of the same
//! pipelines the `skia-experiments` binaries execute at full size. Each
//! bench asserts the *shape* invariant its figure reports, so a regression
//! in the reproduction shows up as a bench failure, not just a number.

use criterion::{criterion_group, criterion_main, Criterion};
use skia_bench::{bench_workload, run_sim};
use skia_core::SkiaConfig;
use skia_frontend::{BtbMode, FrontendConfig};
use skia_uarch::btb::BtbConfig;

const STEPS: usize = 30_000;

fn btb_cfg(entries: usize) -> FrontendConfig {
    FrontendConfig::alder_lake_like().with_btb_entries(entries)
}

/// Fig. 1: BTB MPKI falls with BTB size; most misses are L1-I-resident.
fn fig01(c: &mut Criterion) {
    let (program, seed, trip) = bench_workload();
    c.bench_function("fig01_btb_size_sweep", |b| {
        b.iter(|| {
            let small = run_sim(&program, seed, trip, btb_cfg(1024), STEPS);
            let large = run_sim(&program, seed, trip, btb_cfg(8192), STEPS);
            assert!(small.btb_misses >= large.btb_misses);
            assert!(small.btb_miss_l1i_resident_fraction() > 0.2);
            (small.btb_mpki(), large.btb_mpki())
        })
    });
}

/// Fig. 3: Skia's SBB beats spending the same storage on BTB entries.
fn fig03(c: &mut Criterion) {
    let (program, seed, trip) = bench_workload();
    let extra = BtbConfig::entries_for_budget_kb(12.25, 4);
    c.bench_function("fig03_iso_storage", |b| {
        b.iter(|| {
            let base = run_sim(&program, seed, trip, btb_cfg(2048), STEPS);
            let grown = run_sim(&program, seed, trip, btb_cfg(2048 + extra), STEPS);
            let skia = run_sim(
                &program,
                seed,
                trip,
                btb_cfg(2048).with_skia(SkiaConfig::default()),
                STEPS,
            );
            (base.cycles, grown.cycles, skia.cycles, skia.sbb_rescues)
        })
    });
}

/// Fig. 6: per-kind BTB miss classification stays populated.
fn fig06(c: &mut Criterion) {
    let (program, seed, trip) = bench_workload();
    c.bench_function("fig06_miss_by_kind", |b| {
        b.iter(|| {
            let s = run_sim(&program, seed, trip, btb_cfg(4096), STEPS);
            let total: u64 = s.btb_misses_by_kind.iter().sum();
            assert_eq!(total, s.btb_misses);
            s.btb_misses_by_kind
        })
    });
}

/// Fig. 13: windowed and longer-horizon MPKI agree within a loose band.
fn fig13(c: &mut Criterion) {
    let (program, seed, trip) = bench_workload();
    c.bench_function("fig13_window_agreement", |b| {
        b.iter(|| {
            let short = run_sim(&program, seed, trip, btb_cfg(8192), STEPS);
            let long = run_sim(&program, seed, trip, btb_cfg(8192), STEPS * 2);
            (short.l1i_mpki(), long.l1i_mpki())
        })
    });
}

/// Fig. 14: head-only, tail-only, combined variants all run; combined
/// rescues at least as many misses as the weakest single variant.
fn fig14(c: &mut Criterion) {
    let (program, seed, trip) = bench_workload();
    c.bench_function("fig14_head_tail_variants", |b| {
        b.iter(|| {
            let head = run_sim(
                &program,
                seed,
                trip,
                btb_cfg(2048).with_skia(SkiaConfig::head_only()),
                STEPS,
            );
            let tail = run_sim(
                &program,
                seed,
                trip,
                btb_cfg(2048).with_skia(SkiaConfig::tail_only()),
                STEPS,
            );
            let both = run_sim(
                &program,
                seed,
                trip,
                btb_cfg(2048).with_skia(SkiaConfig::default()),
                STEPS,
            );
            assert!(both.sbb_rescues >= head.sbb_rescues.min(tail.sbb_rescues));
            (head.sbb_rescues, tail.sbb_rescues, both.sbb_rescues)
        })
    });
}

/// Figs. 15/16: resident-miss accounting and effective-miss reduction.
fn fig15_16(c: &mut Criterion) {
    let (program, seed, trip) = bench_workload();
    c.bench_function("fig15_16_miss_accounting", |b| {
        b.iter(|| {
            let base = run_sim(&program, seed, trip, btb_cfg(2048), STEPS);
            let skia = run_sim(
                &program,
                seed,
                trip,
                btb_cfg(2048).with_skia(SkiaConfig::default()),
                STEPS,
            );
            assert!(base.btb_miss_l1i_resident <= base.btb_misses);
            assert!(skia.sbb_rescues <= skia.btb_misses);
            (base.btb_mpki(), skia.btb_misses - skia.sbb_rescues)
        })
    });
}

/// Fig. 17: SBB split/scale sweep stays runnable.
fn fig17(c: &mut Criterion) {
    let (program, seed, trip) = bench_workload();
    c.bench_function("fig17_sbb_sensitivity", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            for factor in [0.5, 1.0, 2.0] {
                let skia = SkiaConfig {
                    sbb: skia_core::SbbConfig::default().scaled(factor),
                    ..SkiaConfig::default()
                };
                let s = run_sim(&program, seed, trip, btb_cfg(2048).with_skia(skia), STEPS);
                out.push(s.sbb_rescues);
            }
            out
        })
    });
}

/// Fig. 18: decoder idle cycles split by cause and shrink with Skia.
fn fig18(c: &mut Criterion) {
    let (program, seed, trip) = bench_workload();
    c.bench_function("fig18_decoder_idle", |b| {
        b.iter(|| {
            let base = run_sim(&program, seed, trip, btb_cfg(2048), STEPS);
            let skia = run_sim(
                &program,
                seed,
                trip,
                btb_cfg(2048).with_skia(SkiaConfig::default()),
                STEPS,
            );
            (base.decoder_idle_cycles(), skia.decoder_idle_cycles())
        })
    });
}

/// Table 1/2 equivalents: config construction and workload generation.
fn tables(c: &mut Criterion) {
    c.bench_function("table1_config_construction", |b| {
        b.iter(|| {
            let cfg = FrontendConfig::alder_lake_like();
            match cfg.btb {
                BtbMode::Finite(btb) => btb.storage_kb(),
                BtbMode::Infinite => 0.0,
            }
        })
    });
    c.bench_function("table2_workload_generation", |b| {
        b.iter(|| {
            let mut p = skia_workloads::profile("noop").unwrap();
            p.spec.functions = 400;
            let prog = skia_workloads::Program::generate(&p.spec);
            prog.code_bytes()
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig01, fig03, fig06, fig13, fig14, fig15_16, fig17, fig18, tables
}
criterion_main!(figures);
