//! Microbenchmarks of the hot primitives.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use skia_bench::{bench_workload, run_sim};
use skia_core::{IndexPolicy, ShadowDecoder};
use skia_frontend::FrontendConfig;
use skia_isa::BranchKind;
use skia_isa::{decode, encode};
use skia_uarch::btb::{Btb, BtbConfig};
use skia_uarch::tage::{Tage, TageConfig};

fn isa_decode(c: &mut Criterion) {
    // A realistic instruction mix.
    let mut bytes = Vec::new();
    let mut offsets = vec![0usize];
    for sel in 0..4096u64 {
        encode::emit_nonbranch(&mut bytes, sel.wrapping_mul(0x9E37_79B9));
        offsets.push(bytes.len());
    }
    c.bench_function("isa_decode_throughput", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let off = offsets[i % (offsets.len() - 1)];
            i += 1;
            decode::decode(&bytes[off..]).unwrap().len
        })
    });
}

fn shadow_decoding(c: &mut Criterion) {
    // A line with a mid-line entry and a tail region.
    let mut line = Vec::new();
    encode::emit_nonbranch(&mut line, 7);
    encode::jmp_rel32(&mut line, 0x40);
    let exit = line.len();
    encode::emit_nonbranch(&mut line, 3);
    encode::call_rel32(&mut line, 0x100);
    encode::ret(&mut line);
    while line.len() < 64 {
        encode::nop_exact(&mut line, 1);
    }
    let entry = 24usize;

    c.bench_function("sbd_head_decode", |b| {
        b.iter_batched(
            || ShadowDecoder::new(IndexPolicy::Merge, 6),
            |mut sbd| sbd.decode_head(&line, 0x1000, entry).branches.len(),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("sbd_tail_decode", |b| {
        b.iter_batched(
            ShadowDecoder::default,
            |mut sbd| sbd.decode_tail(&line, 0x1000, exit).len(),
            BatchSize::SmallInput,
        )
    });
}

fn btb_ops(c: &mut Criterion) {
    c.bench_function("btb_insert_lookup", |b| {
        b.iter_batched(
            || Btb::new(BtbConfig::with_entries(8192)),
            |mut btb| {
                for pc in (0u64..4096).map(|i| 0x40_0000 + i * 7) {
                    btb.insert(pc, BranchKind::Call, pc ^ 0xFF, 5);
                }
                let mut hits = 0;
                for pc in (0u64..4096).map(|i| 0x40_0000 + i * 7) {
                    if btb.lookup(pc).is_some() {
                        hits += 1;
                    }
                }
                hits
            },
            BatchSize::SmallInput,
        )
    });
}

fn tage_ops(c: &mut Criterion) {
    c.bench_function("tage_predict_update", |b| {
        b.iter_batched(
            || Tage::new(TageConfig::small()),
            |mut tage| {
                let mut wrong = 0u32;
                for i in 0..512u64 {
                    let pc = 0x1000 + (i % 16) * 6;
                    let taken = (i / 16) % 3 != 0;
                    let p = tage.predict(pc);
                    if p.taken != taken {
                        wrong += 1;
                    }
                    tage.push_history(taken);
                    tage.update(pc, &p, taken);
                }
                wrong
            },
            BatchSize::SmallInput,
        )
    });
}

fn simulator_step_rate(c: &mut Criterion) {
    let (program, seed, trip) = bench_workload();
    c.bench_function("simulator_10k_steps_baseline", |b| {
        b.iter(|| {
            run_sim(
                &program,
                seed,
                trip,
                FrontendConfig::alder_lake_like(),
                10_000,
            )
            .cycles
        })
    });
    c.bench_function("simulator_10k_steps_skia", |b| {
        b.iter(|| {
            run_sim(
                &program,
                seed,
                trip,
                FrontendConfig::alder_lake_with_skia(),
                10_000,
            )
            .cycles
        })
    });
}

fn workload_generation(c: &mut Criterion) {
    c.bench_function("program_generation_1500_fns", |b| {
        b.iter(|| {
            let mut p = skia_workloads::profile("kafka").unwrap();
            p.spec.functions = 1500;
            skia_workloads::Program::generate(&p.spec).code_bytes()
        })
    });
}

criterion_group! {
    name = components;
    config = Criterion::default().sample_size(20);
    targets = isa_decode, shadow_decoding, btb_ops, tage_ops, simulator_step_rate, workload_generation
}
criterion_main!(components);
