//! Simulate-phase throughput and span-layer overhead.
//!
//! `sim_batched_20k` is the raw number behind the manifest's
//! `sim.steps_per_sec`: one `Simulator::run_batched` over a pre-recorded
//! trace (the sweep simulate-phase hot path — no walker, no RNG, no cache).
//! `sim_per_step_20k` drives the same trace through the per-step kernel
//! (`Simulator::run` over a replay iterator, formerly `replay_simulate_20k`)
//! — the pair quantifies what batching buys, and the equivalence suites pin
//! the two to identical results. The span benchmarks bound the
//! observability tax: a disabled span must cost about one atomic load (no
//! allocation, no clock read), an enabled span one clock pair plus a
//! bounded collector push. `BENCH_sim.json` records the measured numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use skia_bench::bench_workload;
use skia_frontend::{FrontendConfig, Simulator};
use skia_telemetry::{drain_spans, set_spans_enabled, span, span_with};
use skia_workloads::RecordedTrace;

const STEPS: usize = 20_000;

fn replay_simulate(c: &mut Criterion) {
    let (program, seed, trip) = bench_workload();
    let trace = RecordedTrace::record(&program, seed, trip, STEPS);

    c.bench_function("sim_per_step_20k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&program, FrontendConfig::alder_lake_with_skia());
            sim.run(trace.replay().take(STEPS)).cycles
        })
    });

    c.bench_function("sim_batched_20k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&program, FrontendConfig::alder_lake_with_skia());
            sim.run_batched(&trace, STEPS, skia_runner::DEFAULT_CHUNK)
                .cycles
        })
    });

    // The production path bracketed by a span per run: the delta against
    // the row above is the per-span cost at simulation granularity
    // (invisible).
    set_spans_enabled(true);
    c.bench_function("sim_batched_20k_spanned", |b| {
        b.iter(|| {
            let _g = span("bench.sim");
            let mut sim = Simulator::new(&program, FrontendConfig::alder_lake_with_skia());
            sim.run_batched(&trace, STEPS, skia_runner::DEFAULT_CHUNK)
                .cycles
        })
    });
    set_spans_enabled(false);
    drop(drain_spans());
}

fn span_primitives(c: &mut Criterion) {
    set_spans_enabled(false);
    c.bench_function("span_disabled", |b| {
        b.iter(|| {
            let _g = span("bench.disabled");
        })
    });
    c.bench_function("span_disabled_lazy_name", |b| {
        b.iter(|| {
            // The closure must not run when spans are off.
            let _g = span_with(|| format!("bench.lazy:{}", 42));
        })
    });

    set_spans_enabled(true);
    c.bench_function("span_enabled", |b| {
        b.iter(|| {
            let _g = span("bench.enabled");
        });
        // Keep the bounded collector from saturating mid-measurement (a
        // full collector would make later iterations artificially cheap).
        drop(drain_spans());
    });
    set_spans_enabled(false);
    drop(drain_spans());
}

criterion_group!(benches, replay_simulate, span_primitives);
criterion_main!(benches);
