//! Sweep-engine throughput: runs/sec for the same job list on 1 thread vs
//! all cores, plus a micro-benchmark of the allocation-free block-formation
//! path (the per-block `LineSet` that replaced a heap `Vec` in the fetch
//! loop). Small step counts keep the wall time tractable; the relative
//! numbers are what matter. Measured numbers are recorded in
//! `BENCH_sweep.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use skia_bench::{bench_workload, run_sim};
use skia_experiments::{workload, StandingConfig, Sweep};
use skia_frontend::FrontendConfig;
use skia_runner::thread_count;

const BENCHES: [&str; 3] = ["tpcc", "voter", "kafka"];
const STEPS: usize = 2_000;

fn sweep_jobs(threads: usize) -> usize {
    let mut sweep = Sweep::new(threads).quiet();
    for name in BENCHES {
        for config in [
            StandingConfig::Btb(8192).frontend(),
            StandingConfig::BtbPlusBudget(8192).frontend(),
            StandingConfig::BtbPlusSkia(8192).frontend(),
            StandingConfig::Infinite.frontend(),
        ] {
            sweep.add(name, config, STEPS);
        }
    }
    sweep.run_collect().len()
}

fn sweep_throughput(c: &mut Criterion) {
    // Warm the in-process workload memo so the benchmark measures sweep
    // execution, not first-touch program generation.
    for name in BENCHES {
        let _ = workload(name);
    }
    c.bench_function("sweep_12_jobs_1_thread", |b| b.iter(|| sweep_jobs(1)));
    let n = thread_count(None);
    c.bench_function("sweep_12_jobs_all_threads", |b| b.iter(|| sweep_jobs(n)));
}

fn block_formation(c: &mut Criterion) {
    // Short simulation dominated by fetch/block formation; exercises the
    // inline LineSet on every predicted block.
    let (program, seed, trip) = bench_workload();
    c.bench_function("block_formation_2k_steps", |b| {
        b.iter(|| {
            run_sim(
                &program,
                seed,
                trip,
                FrontendConfig::alder_lake_like(),
                STEPS,
            )
            .cycles
        })
    });
}

criterion_group! {
    name = sweep;
    config = Criterion::default().sample_size(20);
    targets = sweep_throughput, block_formation
}
criterion_main!(sweep);
