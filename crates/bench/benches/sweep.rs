//! Sweep-engine throughput: runs/sec for the same job list on 1 thread vs
//! all cores, plus a micro-benchmark of the allocation-free block-formation
//! path (the per-block `LineSet` that replaced a heap `Vec` in the fetch
//! loop). Small step counts keep the wall time tractable; the relative
//! numbers are what matter. Measured numbers are recorded in
//! `BENCH_sweep.json` at the repo root.
//!
//! The record/replay additions (`walk_vs_replay`, `trace_cache`) quantify the
//! record-once/replay-many pipeline: how much cheaper feeding a simulator
//! from a materialized trace is than running the live walker, and what a
//! warm on-disk trace-cache hit costs versus a cold re-record. Their numbers
//! are recorded in `BENCH_replay.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use skia_bench::{bench_workload, run_sim};
use skia_experiments::{workload, StandingConfig, Sweep};
use skia_frontend::{FrontendConfig, Simulator};
use skia_runner::thread_count;
use skia_workloads::{load_or_record_trace, profile, Program, RecordedTrace};

const BENCHES: [&str; 3] = ["tpcc", "voter", "kafka"];
const STEPS: usize = 2_000;

fn sweep_jobs(threads: usize) -> usize {
    let mut sweep = Sweep::new(threads).quiet();
    for name in BENCHES {
        for config in [
            StandingConfig::Btb(8192).frontend(),
            StandingConfig::BtbPlusBudget(8192).frontend(),
            StandingConfig::BtbPlusSkia(8192).frontend(),
            StandingConfig::Infinite.frontend(),
        ] {
            sweep.add(name, config, STEPS);
        }
    }
    sweep.run_collect().len()
}

fn sweep_throughput(c: &mut Criterion) {
    // Warm the in-process workload memo so the benchmark measures sweep
    // execution, not first-touch program generation.
    for name in BENCHES {
        let _ = workload(name);
    }
    c.bench_function("sweep_12_jobs_1_thread", |b| b.iter(|| sweep_jobs(1)));
    let n = thread_count(None);
    c.bench_function("sweep_12_jobs_all_threads", |b| b.iter(|| sweep_jobs(n)));
}

fn block_formation(c: &mut Criterion) {
    // Short simulation dominated by fetch/block formation; exercises the
    // inline LineSet on every predicted block.
    let (program, seed, trip) = bench_workload();
    c.bench_function("block_formation_2k_steps", |b| {
        b.iter(|| {
            run_sim(
                &program,
                seed,
                trip,
                FrontendConfig::alder_lake_like(),
                STEPS,
            )
            .cycles
        })
    });
}

fn walk_vs_replay(c: &mut Criterion) {
    // Same simulation twice: once fed by the live walker (RNG, stack, trip
    // bookkeeping per step) and once by replaying a materialized trace
    // (pure column reads). The gap is what every sweep job after the first
    // saves per workload.
    let (program, seed, trip) = bench_workload();
    let trace = RecordedTrace::record(&program, seed, trip, STEPS);
    c.bench_function("walk_2k_steps", |b| {
        b.iter(|| {
            run_sim(
                &program,
                seed,
                trip,
                FrontendConfig::alder_lake_like(),
                STEPS,
            )
            .cycles
        })
    });
    c.bench_function("replay_2k_steps", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&program, FrontendConfig::alder_lake_like());
            sim.run(trace.replay().take(STEPS)).cycles
        })
    });
}

fn trace_cache(c: &mut Criterion) {
    // Cold = what a first-ever run pays (record the walk); warm = what every
    // later process pays (deserialize the stored columns). Uses a private
    // cache dir so the benchmark never races the default target/skia-cache.
    let dir = std::env::temp_dir().join(format!("skia-bench-trace-cache-{}", std::process::id()));
    std::env::set_var("SKIA_CACHE", &dir);
    let p = profile("tpcc").expect("tpcc profile");
    let program = Program::generate(&p.spec);
    let trip = p.spec.mean_trip_count;
    // Populate the cache once so the warm case is a guaranteed disk hit.
    let _ = load_or_record_trace(&program, &p.spec, p.trace_seed, trip, STEPS);
    c.bench_function("trace_cache_cold_record_2k", |b| {
        b.iter(|| RecordedTrace::record(&program, p.trace_seed, trip, STEPS).len())
    });
    c.bench_function("trace_cache_warm_hit_2k", |b| {
        b.iter(|| {
            load_or_record_trace(&program, &p.spec, p.trace_seed, trip, STEPS)
                .0
                .len()
        })
    });
    std::env::remove_var("SKIA_CACHE");
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = sweep;
    config = Criterion::default().sample_size(20);
    targets = sweep_throughput, block_formation, walk_vs_replay, trace_cache
}
criterion_main!(sweep);
