//! Shared fixtures for the Criterion benchmark harness.
//!
//! The `benches/` targets measure two things:
//!
//! * `figures` — scaled-down versions of every paper table/figure runner
//!   (the full-size regenerators live in `skia-experiments`); useful both
//!   as throughput benchmarks of the simulator and as smoke tests that the
//!   experiment pipelines stay runnable.
//! * `components` — microbenchmarks of the hot primitives: the x86 length
//!   decoder, head/tail shadow decoding, BTB/SBB/TAGE operations, and the
//!   end-to-end simulator step rate.
//! * `ablations` — the design-choice studies DESIGN.md calls out (index
//!   policy, valid-path bound, retired-bit replacement, BTB-resident
//!   filter, FTQ depth).

use skia_frontend::{FrontendConfig, SimStats, Simulator};
use skia_workloads::{profile, Program, Walker};

/// A small but non-trivial benchmark workload (kafka profile shrunk).
pub fn bench_workload() -> (Program, u64, u32) {
    let mut p = profile("kafka").expect("kafka profile");
    p.spec.functions = 1500;
    let program = Program::generate(&p.spec);
    (program, p.trace_seed, p.spec.mean_trip_count)
}

/// Run `steps` of a simulation on the given program.
pub fn run_sim(
    program: &Program,
    seed: u64,
    trip: u32,
    config: FrontendConfig,
    steps: usize,
) -> SimStats {
    let trace = Walker::new(program, seed, trip).take(steps);
    let mut sim = Simulator::new(program, config);
    sim.run(trace)
}
