//! Parallel sweeps must be numerically indistinguishable from serial runs:
//! every field of every `SimStats` — including the f64 IPC-weighting
//! bookkeeping — must match bitwise regardless of thread count.

use skia_experiments::{StandingConfig, Sweep};

const BENCHES: [&str; 3] = ["tpcc", "voter", "kafka"];
const STEPS: usize = 2_000;

fn sweep_stats(threads: usize) -> Vec<skia_frontend::SimStats> {
    let mut sweep = Sweep::new(threads).quiet();
    for name in BENCHES {
        for config in [
            StandingConfig::Btb(8192).frontend(),
            StandingConfig::BtbPlusSkia(8192).frontend(),
        ] {
            sweep.add(name, config, STEPS);
        }
    }
    sweep.run_collect()
}

#[test]
fn parallel_sweep_matches_serial_field_for_field() {
    let serial = sweep_stats(1);
    let parallel = sweep_stats(4);
    assert_eq!(serial.len(), BENCHES.len() * 2);
    assert_eq!(parallel.len(), serial.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        // SimStats derives PartialEq over every field, so this is a
        // field-for-field comparison (f64 fields compare bitwise-equal
        // values; NaN would fail, and no stat should ever be NaN).
        assert_eq!(s, p, "job {i} diverged between 1 and 4 threads");
    }
}

/// A sweep (which replays shared recorded traces) must produce exactly the
/// stats of driving each simulator from a live walker — the record/replay
/// pipeline is an implementation detail, never a results change.
#[test]
fn sweep_replay_matches_direct_live_walk() {
    let direct: Vec<_> = BENCHES
        .iter()
        .flat_map(|name| {
            let w = skia_experiments::workload(name);
            [
                w.run(StandingConfig::Btb(8192).frontend(), STEPS),
                w.run(StandingConfig::BtbPlusSkia(8192).frontend(), STEPS),
            ]
        })
        .collect();
    let swept = sweep_stats(1);
    assert_eq!(direct, swept, "replayed sweep diverged from live walks");
}

/// The process-wide trace memo hands every caller the same recording, and
/// upgrades in place when a longer walk is requested.
#[test]
fn recorded_trace_memo_shares_and_upgrades() {
    let short = skia_experiments::recorded_trace("tatp", 500);
    assert!(short.len() >= 500);
    let again = skia_experiments::recorded_trace("tatp", 200);
    assert!(
        std::sync::Arc::ptr_eq(&short, &again),
        "shorter request must reuse the stored recording"
    );
    let long = skia_experiments::recorded_trace("tatp", short.len() + 100);
    assert!(long.len() >= short.len() + 100);
    // The upgrade preserves the walk: the old recording is a prefix.
    assert_eq!(long.prefix(short.len()), (*short).clone());
}
