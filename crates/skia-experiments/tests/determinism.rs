//! Parallel sweeps must be numerically indistinguishable from serial runs:
//! every field of every `SimStats` — including the f64 IPC-weighting
//! bookkeeping — must match bitwise regardless of thread count.

use skia_experiments::{SamplingEnv, StandingConfig, Sweep};
use skia_workloads::SamplingPlan;

const BENCHES: [&str; 3] = ["tpcc", "voter", "kafka"];
const STEPS: usize = 2_000;

fn sweep_stats(threads: usize) -> Vec<skia_frontend::SimStats> {
    let mut sweep = Sweep::new(threads).quiet();
    for name in BENCHES {
        for config in [
            StandingConfig::Btb(8192).frontend(),
            StandingConfig::BtbPlusSkia(8192).frontend(),
        ] {
            sweep.add(name, config, STEPS);
        }
    }
    sweep.run_collect()
}

/// A sampling environment exercising explicit overrides (not the
/// `for_steps` defaults), so this also covers the knob-resolution path.
fn sampling_env() -> SamplingEnv {
    SamplingEnv {
        enabled: true,
        interval: Some(400),
        k: Some(3),
        warmup: Some(100),
        seed: None,
    }
}

fn sampled_sweep_stats(threads: usize) -> Vec<skia_frontend::SimStats> {
    let mut sweep = Sweep::new(threads).quiet().sampled(sampling_env());
    for name in BENCHES {
        for config in [
            StandingConfig::Btb(8192).frontend(),
            StandingConfig::BtbPlusSkia(8192).frontend(),
        ] {
            sweep.add(name, config, STEPS);
        }
    }
    sweep.run_collect()
}

#[test]
fn parallel_sweep_matches_serial_field_for_field() {
    let serial = sweep_stats(1);
    let parallel = sweep_stats(4);
    assert_eq!(serial.len(), BENCHES.len() * 2);
    assert_eq!(parallel.len(), serial.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        // SimStats derives PartialEq over every field, so this is a
        // field-for-field comparison (f64 fields compare bitwise-equal
        // values; NaN would fail, and no stat should ever be NaN).
        assert_eq!(s, p, "job {i} diverged between 1 and 4 threads");
    }
}

/// A sweep (which replays shared recorded traces) must produce exactly the
/// stats of driving each simulator from a live walker — the record/replay
/// pipeline is an implementation detail, never a results change.
#[test]
fn sweep_replay_matches_direct_live_walk() {
    let direct: Vec<_> = BENCHES
        .iter()
        .flat_map(|name| {
            let w = skia_experiments::workload(name);
            [
                w.run(StandingConfig::Btb(8192).frontend(), STEPS),
                w.run(StandingConfig::BtbPlusSkia(8192).frontend(), STEPS),
            ]
        })
        .collect();
    let swept = sweep_stats(1);
    assert_eq!(direct, swept, "replayed sweep diverged from live walks");
}

/// Sampled sweeps carry the same determinism contract as full sweeps:
/// plans are pure functions of `(trace, config)` — k-means runs serially
/// inside each job with a seeded RNG — so the estimates must match
/// bitwise across thread counts *and* across repeated runs in the same
/// process.
#[test]
fn sampled_sweep_is_thread_count_invariant_and_repeatable() {
    let serial = sampled_sweep_stats(1);
    let parallel = sampled_sweep_stats(4);
    let repeated = sampled_sweep_stats(4);
    assert_eq!(serial.len(), BENCHES.len() * 2);
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "sampled job {i} diverged between 1 and 4 threads");
    }
    for (i, (p, r)) in parallel.iter().zip(&repeated).enumerate() {
        assert_eq!(p, r, "sampled job {i} diverged between repeated runs");
    }
}

/// Rebuilding a plan from the same shared recording and environment must
/// reproduce it exactly — slices, weights and fingerprint.
#[test]
fn sampling_plan_rebuild_is_exact() {
    let trace = skia_experiments::recorded_trace("tpcc", STEPS);
    let cfg = skia_experiments::sampling_config_for(STEPS, &sampling_env());
    let a = SamplingPlan::build(&trace, STEPS, &cfg);
    let b = SamplingPlan::build(&trace, STEPS, &cfg);
    assert_eq!(a, b, "plan rebuild diverged");
    assert_eq!(a.fingerprint(), b.fingerprint());
    // And a different clustering seed is actually a different plan — the
    // fingerprint is sensitive, not a constant.
    let reseeded = SamplingPlan::build(
        &trace,
        STEPS,
        &skia_workloads::SamplingConfig {
            seed: cfg.seed ^ 1,
            ..cfg
        },
    );
    assert_ne!(a.fingerprint(), reseeded.fingerprint());
}

/// The process-wide trace memo hands every caller the same recording, and
/// upgrades in place when a longer walk is requested.
#[test]
fn recorded_trace_memo_shares_and_upgrades() {
    let short = skia_experiments::recorded_trace("tatp", 500);
    assert!(short.len() >= 500);
    let again = skia_experiments::recorded_trace("tatp", 200);
    assert!(
        std::sync::Arc::ptr_eq(&short, &again),
        "shorter request must reuse the stored recording"
    );
    let long = skia_experiments::recorded_trace("tatp", short.len() + 100);
    assert!(long.len() >= short.len() + 100);
    // The upgrade preserves the walk: the old recording is a prefix.
    assert_eq!(long.prefix(short.len()), (*short).clone());
}
