//! Parallel sweeps must be numerically indistinguishable from serial runs:
//! every field of every `SimStats` — including the f64 IPC-weighting
//! bookkeeping — must match bitwise regardless of thread count.

use skia_experiments::{StandingConfig, Sweep};

const BENCHES: [&str; 3] = ["tpcc", "voter", "kafka"];
const STEPS: usize = 2_000;

fn sweep_stats(threads: usize) -> Vec<skia_frontend::SimStats> {
    let mut sweep = Sweep::new(threads).quiet();
    for name in BENCHES {
        for config in [
            StandingConfig::Btb(8192).frontend(),
            StandingConfig::BtbPlusSkia(8192).frontend(),
        ] {
            sweep.add(name, config, STEPS);
        }
    }
    sweep.run_collect()
}

#[test]
fn parallel_sweep_matches_serial_field_for_field() {
    let serial = sweep_stats(1);
    let parallel = sweep_stats(4);
    assert_eq!(serial.len(), BENCHES.len() * 2);
    assert_eq!(parallel.len(), serial.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        // SimStats derives PartialEq over every field, so this is a
        // field-for-field comparison (f64 fields compare bitwise-equal
        // values; NaN would fail, and no stat should ever be NaN).
        assert_eq!(s, p, "job {i} diverged between 1 and 4 threads");
    }
}
