//! End-to-end manifest pipeline: an experiment binary's `--emit-json`
//! snapshots flow through `skia-report collect` into a manifest whose
//! self-diff is clean, and a doctored throughput collapse is flagged.

use std::path::{Path, PathBuf};
use std::process::Command;

use skia_experiments::report::Manifest;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skia-report-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run fig01 small with telemetry into `path`.
fn emit_snapshot(dir: &Path, name: &str) -> PathBuf {
    let path = dir.join(format!("{name}.telemetry.json"));
    let out = Command::new(env!("CARGO_BIN_EXE_fig01"))
        .args(["--bench", "tpcc", "--emit-json"])
        .arg(&path)
        .env("SKIA_STEPS", "2000")
        .env("SKIA_CACHE", dir.join("cache"))
        .output()
        .expect("fig01 runs");
    assert!(
        out.status.success(),
        "fig01 failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

fn collect(dir: &Path, out_name: &str, inputs: &[PathBuf]) -> PathBuf {
    let manifest = dir.join(out_name);
    let md = dir.join(format!("{out_name}.md"));
    let chrome = dir.join(format!("{out_name}.trace.json"));
    let out = Command::new(env!("CARGO_BIN_EXE_skia-report"))
        .arg("collect")
        .args(["--out".as_ref(), manifest.as_os_str()])
        .args(["--md".as_ref(), md.as_os_str()])
        .args(["--chrome".as_ref(), chrome.as_os_str()])
        .args(inputs)
        .output()
        .expect("skia-report runs");
    assert!(
        out.status.success(),
        "collect failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(md.exists() && chrome.exists());
    manifest
}

fn diff_status(baseline: &Path, new: &Path, extra: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_skia-report"))
        .arg("diff")
        .arg(baseline)
        .arg(new)
        .args(extra)
        .output()
        .expect("skia-report runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn collect_then_diff_consecutive_runs_is_clean() {
    let dir = tmp_dir("clean");

    // Two consecutive runs of the same experiment (second is cache-warm).
    let first = emit_snapshot(&dir, "fig01-a");
    let second = emit_snapshot(&dir, "fig01-b");
    // Same logical experiment name in both manifests: rename via copies.
    std::fs::copy(&first, dir.join("fig01.telemetry.json")).unwrap();
    let m1 = collect(&dir, "m1.json", &[dir.join("fig01.telemetry.json")]);
    std::fs::copy(&second, dir.join("fig01.telemetry.json")).unwrap();
    let m2 = collect(&dir, "m2.json", &[dir.join("fig01.telemetry.json")]);

    // The manifest is a faithful, round-trippable document covering the run.
    let manifest = Manifest::from_json_str(&std::fs::read_to_string(&m1).unwrap()).unwrap();
    assert_eq!(manifest.experiments.len(), 1);
    let e = &manifest.experiments[0];
    assert_eq!(e.name, "fig01");
    assert!(e.runs_merged > 0, "snapshots merged");
    assert!(e.steps_total > 0, "steps counted");
    assert!(e.steps_per_sec > 0, "throughput computed");
    assert!(e.wall_ns > 0, "wall time recorded");
    assert!(
        e.phases.iter().any(|p| p.name == "sweep.simulate"),
        "span rollups present: {:?}",
        e.phases
    );
    assert!(
        e.phases.iter().any(|p| p.name.starts_with("sim.job:")),
        "per-job spans present: {:?}",
        e.phases
    );
    assert_eq!(
        Manifest::from_json_str(&manifest.to_json_string()).unwrap(),
        manifest,
        "manifest round-trips"
    );

    // Consecutive runs on the same host: diff exits clean.
    let (ok, stdout) = diff_status(&m1, &m2, &[]);
    assert!(ok, "consecutive-run diff must be clean:\n{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn doctored_throughput_collapse_is_flagged() {
    let dir = tmp_dir("doctored");
    let snap = emit_snapshot(&dir, "fig01");
    let m1 = collect(&dir, "base.json", &[snap]);

    // Doctor a 2x steps/sec drop into a copy of the manifest.
    let mut doctored = Manifest::from_json_str(&std::fs::read_to_string(&m1).unwrap()).unwrap();
    doctored.experiments[0].steps_per_sec /= 2;
    let m2 = dir.join("doctored.json");
    std::fs::write(&m2, doctored.to_json_string()).unwrap();

    let (ok, stdout) = diff_status(&m1, &m2, &[]);
    assert!(!ok, "a 2x steps/sec drop must fail the diff:\n{stdout}");
    assert!(stdout.contains("REGRESSION"), "labelled as such:\n{stdout}");

    // --warn-only downgrades the exit code but still prints the finding.
    let (ok, stdout) = diff_status(&m1, &m2, &["--warn-only"]);
    assert!(ok, "--warn-only must exit 0");
    assert!(stdout.contains("REGRESSION"), "finding still printed");

    // A doctored determinism break (different simulated step count) also
    // fails, regardless of throughput.
    let mut broken = Manifest::from_json_str(&std::fs::read_to_string(&m1).unwrap()).unwrap();
    broken.experiments[0].steps_total += 1;
    let m3 = dir.join("broken.json");
    std::fs::write(&m3, broken.to_json_string()).unwrap();
    let (ok, stdout) = diff_status(&m1, &m3, &[]);
    assert!(!ok, "steps_total change must fail the diff:\n{stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}
