//! Span profiling must be observationally free: the paper tables an
//! experiment binary prints to stdout are byte-identical whether spans are
//! enabled or disabled, serially or on a thread pool. Spans write only to
//! the in-process collector (drained into `--emit-json` files), never to
//! stdout.

use std::process::Command;

/// Run the fig01 binary with the given env and return its stdout bytes.
fn fig01_stdout(spans: &str, threads: &str) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_fig01"))
        .args(["--bench", "tpcc"])
        .env("SKIA_STEPS", "2000")
        .env("SKIA_SPANS", spans)
        .env("SKIA_THREADS", threads)
        // Isolate from any ambient cache so every variant does identical
        // work (first variant records, later ones disk-hit — outcome
        // differences only touch stderr/telemetry, but keep it hermetic).
        .env("SKIA_CACHE", "0")
        .output()
        .expect("fig01 runs");
    assert!(
        out.status.success(),
        "fig01 failed (SKIA_SPANS={spans}, SKIA_THREADS={threads}): {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!out.stdout.is_empty(), "fig01 prints its table");
    out.stdout
}

#[test]
fn stdout_is_byte_identical_with_spans_on_or_off() {
    let base = fig01_stdout("0", "1");
    for (spans, threads) in [("1", "1"), ("0", "4"), ("1", "4")] {
        let variant = fig01_stdout(spans, threads);
        assert_eq!(
            base, variant,
            "stdout diverged with SKIA_SPANS={spans}, SKIA_THREADS={threads}"
        );
    }
}
