//! Figure-binary stdout is frozen: every paper table and figure prints
//! byte-identical output to the goldens captured from the per-step kernel
//! before the batched replay kernel landed.
//!
//! `SimStats` equality (see `batched_equivalence.rs`) covers the simulator
//! core; this suite covers everything between the simulator and the paper —
//! sweep drivers, averaging, table formatting — at the 2000-step CI scale,
//! serially and on a thread pool with a deliberately odd chunk size. To
//! re-bless after an *intentional* results change, rerun each binary with
//! `SKIA_STEPS=2000 SKIA_CACHE=0 SKIA_THREADS=1` and overwrite
//! `tests/golden_stdout/<name>.stdout`.

use std::path::Path;
use std::process::Command;

/// The twelve paper binaries and their compiled paths. `env!` needs a
/// literal per binary, hence the table.
const FIGURES: [(&str, &str); 12] = [
    ("table1", env!("CARGO_BIN_EXE_table1")),
    ("table2", env!("CARGO_BIN_EXE_table2")),
    ("fig01", env!("CARGO_BIN_EXE_fig01")),
    ("fig03", env!("CARGO_BIN_EXE_fig03")),
    ("fig06", env!("CARGO_BIN_EXE_fig06")),
    ("fig13", env!("CARGO_BIN_EXE_fig13")),
    ("fig14", env!("CARGO_BIN_EXE_fig14")),
    ("fig15", env!("CARGO_BIN_EXE_fig15")),
    ("fig16", env!("CARGO_BIN_EXE_fig16")),
    ("fig17", env!("CARGO_BIN_EXE_fig17")),
    ("fig18", env!("CARGO_BIN_EXE_fig18")),
    ("ablations", env!("CARGO_BIN_EXE_ablations")),
];

fn golden(name: &str) -> Vec<u8> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden_stdout")
        .join(format!("{name}.stdout"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()))
}

/// Run one figure binary at CI scale and return its stdout bytes.
/// `chunk` of `None` leaves the batched kernel at its default chunk size.
fn run(name: &str, exe: &str, threads: &str, chunk: Option<&str>) -> Vec<u8> {
    let mut cmd = Command::new(exe);
    cmd.env("SKIA_STEPS", "2000")
        .env("SKIA_CACHE", "0")
        .env("SKIA_THREADS", threads);
    match chunk {
        Some(c) => cmd.env("SKIA_CHUNK", c),
        None => cmd.env_remove("SKIA_CHUNK"),
    };
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("{name} failed to spawn: {e}"));
    assert!(
        out.status.success(),
        "{name} exited nonzero: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn assert_matches_golden(threads: &str, chunk: Option<&str>) {
    let mut diverged = Vec::new();
    for (name, exe) in FIGURES {
        let got = run(name, exe, threads, chunk);
        if got != golden(name) {
            diverged.push(name);
        }
    }
    assert!(
        diverged.is_empty(),
        "stdout diverged from golden (threads={threads}, chunk={chunk:?}): {diverged:?}\n\
         If the results change is intentional, re-bless per the module docs."
    );
}

/// Serial, default chunk size: the exact configuration the goldens were
/// captured under, now flowing through the batched kernel.
#[test]
fn figures_match_golden_serial() {
    assert_matches_golden("1", None);
}

/// Thread pool plus a deliberately odd chunk size: neither parallel sweep
/// scheduling nor chunk-boundary placement may leak into the tables.
#[test]
fn figures_match_golden_threaded_odd_chunk() {
    assert_matches_golden("4", Some("257"));
}
