//! Error-bound regression pins: the committed `ci/sampling-error-pins.json`
//! must stay valid, and (under `SKIA_PIN_FULL=1`) a full recomputation must
//! not be worse than it on any counter.
//!
//! Two tiers, matching how expensive they are:
//!
//! * [`committed_pins_are_valid`] runs always: the committed file parses,
//!   covers every figure workload and counter, keeps every pinned counter
//!   within the 2% threshold, and records at least the 5× compression the
//!   acceptance criteria demand. This is what makes hand-editing the file
//!   to paper over a regression fail in CI.
//! * [`recomputed_pins_do_not_worsen`] runs only with `SKIA_PIN_FULL=1`
//!   (the release CI job sets it): recompute all 24 simulations at paper
//!   scale and require every counter's error to be at most the committed
//!   value. Both sides are deterministic and the file stores rounded-up
//!   ceilings, so any genuine worsening — pinned *or* informational —
//!   fails; improvements keep passing until the file is regenerated with
//!   `sampling_probe --write-pins`.

use skia_experiments::pins::{PinReport, PIN_COUNTERS, PIN_STEPS, PIN_WORKLOADS};

#[test]
fn committed_pins_are_valid() {
    let report = PinReport::load_committed().expect("committed pins must load");
    assert_eq!(
        report.steps, PIN_STEPS,
        "pins must be recorded at paper scale"
    );
    report.validate().expect("committed pins must hold");
}

#[test]
fn recomputed_pins_do_not_worsen() {
    if std::env::var("SKIA_PIN_FULL").is_err() {
        eprintln!("skipping full pin recomputation; set SKIA_PIN_FULL=1 to run");
        return;
    }
    let committed = PinReport::load_committed().expect("committed pins must load");
    let fresh = PinReport::compute(PIN_STEPS);
    fresh.validate().expect("recomputed pins must hold");
    assert!(
        fresh.min_compression >= committed.min_compression,
        "plan compression regressed: {} < committed {}",
        fresh.min_compression,
        committed.min_compression
    );
    for name in PIN_WORKLOADS {
        for &(counter, _) in PIN_COUNTERS {
            let now = fresh.workloads[name][counter];
            let pinned = committed.workloads[name][counter];
            assert!(
                now <= pinned + 1e-9,
                "{name}: {counter} error worsened to {now} (committed {pinned}); \
                 if intentional, regenerate with `sampling_probe --write-pins`"
            );
        }
    }
}
