//! Sampled-vs-full validation: the error-bound contract of phase sampling.
//!
//! Phase sampling ([`skia_workloads::sampling`], `skia_frontend::sampling`)
//! replaces a full replay with weighted representative slices. This suite is
//! the contract that makes sampled numbers usable:
//!
//! 1. **Identity**: the degenerate plan (one zero-warmup slice covering the
//!    whole trace, weight 1) reproduces the full batched run's [`SimStats`]
//!    **byte-exactly** — across random layouts, seeds and lengths
//!    (proptest) and across every standing processor configuration. The
//!    estimator's integer scaling, the warmup baseline subtraction and the
//!    slice replay must all collapse to no-ops; any bias in the machinery
//!    shows up here as a hard inequality, not a tolerance.
//! 2. **Error bounds**: a real multi-slice plan reproduces every key
//!    counter of a full run within an explicit relative-error bound, for
//!    every standing configuration.
//! 3. **Teeth**: a planted [`SampleFault::SkipWarmup`] (measured windows
//!    run cold, exactly the bias warmup exists to remove) must push
//!    miss-class counters past those same bounds — the harness is only
//!    trustworthy if it fails when sampling is broken.
//!
//! The committed per-workload error pins at paper scale live in
//! `ci/sampling-error-pins.json` (see the `sampling_error_pins` test).

use proptest::prelude::*;
use skia_experiments::StandingConfig;
use skia_frontend::{FrontendConfig, SampleFault, SimStats, Simulator};
use skia_workloads::{Layout, Program, ProgramSpec, RecordedTrace, SamplingConfig, SamplingPlan};

/// A small program with both layouts' feature mix — the
/// `batched_equivalence` substrate, reused so failures reduce to the same
/// `(spec, config, steps)` triples.
fn small_spec(seed: u64, bolted: bool) -> ProgramSpec {
    ProgramSpec {
        seed,
        functions: 60,
        dispatch_blocks: 8,
        dispatch_callees: 8,
        burst_pool: 4,
        layout: if bolted {
            Layout::Bolted
        } else {
            Layout::Interleaved
        },
        ..ProgramSpec::default()
    }
}

/// A program whose branch working set *exceeds* a 128-entry BTB, so BTB
/// misses (and the cycles they cost) are a steady-state phenomenon the
/// sampler must reproduce — not a startup transient. Sampling estimates
/// steady-state behavior by construction; a config whose misses are purely
/// compulsory (e.g. an infinite BTB on a small program) has no steady state
/// to estimate and is validated by the degenerate-identity tests and the
/// paper-scale pins instead.
fn steady_state_spec() -> ProgramSpec {
    ProgramSpec {
        seed: 5,
        functions: 400,
        dispatch_blocks: 8,
        dispatch_callees: 8,
        burst_pool: 4,
        layout: Layout::Interleaved,
        ..ProgramSpec::default()
    }
}

/// The bounded-error scenario shared by the bounds test and the planted
/// fault proof: a 120k-step trace sampled at ~6.7× compression (three
/// 2000-step measured windows, each preceded by 4000 steps of warmup).
fn bounded_scenario() -> (Program, RecordedTrace, SamplingPlan) {
    let steps = 120_000;
    let program = Program::generate(&steady_state_spec());
    let recorded = RecordedTrace::record(&program, 42, 6, steps);
    let cfg = SamplingConfig {
        interval: 2000,
        warmup: 4000,
        ..SamplingConfig::for_steps(steps)
    };
    let plan = SamplingPlan::build(&recorded, steps, &cfg);
    (program, recorded, plan)
}

/// Full-replay reference through the batched kernel (the production path).
fn full(
    program: &Program,
    config: &FrontendConfig,
    trace: &RecordedTrace,
    steps: usize,
) -> SimStats {
    let mut sim = Simulator::new(program, config.clone());
    sim.run_batched(trace, steps, 512)
}

/// Sampled estimate through the plan runner.
fn sampled(
    program: &Program,
    config: &FrontendConfig,
    trace: &RecordedTrace,
    plan: &SamplingPlan,
    fault: Option<SampleFault>,
) -> SimStats {
    skia_frontend::run_plan(program, config, trace, plan, 512, fault)
}

/// Relative error of an estimate against the full-run truth. Exact-zero
/// truth demands an exact-zero estimate (a counter the full run never
/// touched must not be invented by scaling).
fn rel_err(est: u64, truth: u64) -> f64 {
    if truth == 0 {
        if est == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (est.abs_diff(truth)) as f64 / truth as f64
    }
}

/// The key counters the harness bounds, with an accessor each. The order
/// matches `SimStats` field order; errors are reported per name.
const KEY_COUNTERS: &[skia_experiments::pins::CounterAccessor] = &[
    ("instructions", |s| s.instructions),
    ("cycles", |s| s.cycles),
    ("branches", |s| s.branches),
    ("taken_branches", |s| s.taken_branches),
    ("btb_misses", |s| s.btb_misses),
    ("cond_branches", |s| s.cond_branches),
    ("cond_mispredicts", |s| s.cond_mispredicts),
    ("decode_busy_cycles", |s| s.decode_busy_cycles),
];

/// Per-counter relative errors of `est` against `truth`.
fn errors(est: &SimStats, truth: &SimStats) -> Vec<(&'static str, f64)> {
    KEY_COUNTERS
        .iter()
        .map(|&(name, get)| (name, rel_err(get(est), get(truth))))
        .collect()
}

/// Relative-error bound for the small synthetic harness scale (120k steps,
/// three slices). Measured clean errors peak at ~6.3% (`cond_mispredicts`
/// under Btb(128)); the planted cold-start fault's smallest violation is
/// ~14% (`cond_mispredicts`), with `btb_misses` at ~18% and `cycles` at
/// ~24% — the bound sits between with margin on both sides. The committed
/// paper-scale pins are far tighter (see `ci/sampling-error-pins.json`).
const BOUND: f64 = 0.09;

#[test]
fn degenerate_plan_is_byte_exact_for_standing_configs() {
    let program = Program::generate(&small_spec(9, true));
    let recorded = RecordedTrace::record(&program, 7, 6, 2000);
    let plan = SamplingPlan::degenerate(2000);
    for sc in [
        StandingConfig::Btb(1024),
        StandingConfig::BtbPlusBudget(1024),
        StandingConfig::BtbPlusSkia(1024),
        StandingConfig::Infinite,
    ] {
        let config = sc.frontend();
        let reference = full(&program, &config, &recorded, 2000);
        let got = sampled(&program, &config, &recorded, &plan, None);
        assert_eq!(got, reference, "{sc:?}: degenerate plan must be exact");
    }
}

#[test]
fn sampled_errors_within_bounds_for_standing_configs() {
    let (program, recorded, plan) = bounded_scenario();
    let steps = plan.total_steps;
    assert!(
        plan.compression() >= 4.5,
        "plan must actually compress (got {:.2}×)",
        plan.compression()
    );
    // Capacity-pressured standing configs only: BtbPlusBudget(128)
    // normalizes to a budget-equivalent BTB large enough to swallow the
    // synthetic working set, which turns its misses back into a compulsory
    // transient (see `steady_state_spec`).
    for sc in [StandingConfig::Btb(128), StandingConfig::BtbPlusSkia(128)] {
        let config = sc.frontend();
        let truth = full(&program, &config, &recorded, steps);
        let est = sampled(&program, &config, &recorded, &plan, None);
        for (name, err) in errors(&est, &truth) {
            assert!(
                err <= BOUND,
                "{sc:?}: {name} off by {:.2}% (bound {:.1}%)",
                err * 100.0,
                BOUND * 100.0
            );
        }
    }
}

/// The headline teeth test: skipping warmup (measured windows run cold)
/// must be *caught* — the clean pipeline passes the bounds, the faulty one
/// violates them, on the same plan, trace and configuration.
#[test]
fn planted_skip_warmup_fault_is_caught() {
    let (program, recorded, plan) = bounded_scenario();
    let steps = plan.total_steps;
    assert!(
        plan.slices.iter().any(|s| s.warmup > 0),
        "fault proof needs real warmup windows to skip"
    );
    let config = StandingConfig::Btb(128).frontend();
    let truth = full(&program, &config, &recorded, steps);

    let clean = sampled(&program, &config, &recorded, &plan, None);
    let clean_errors = errors(&clean, &truth);
    for &(name, err) in &clean_errors {
        assert!(
            err <= BOUND,
            "clean run must pass: {name} {:.2}%",
            err * 100.0
        );
    }

    let faulty = sampled(
        &program,
        &config,
        &recorded,
        &plan,
        Some(SampleFault::SkipWarmup),
    );
    let faulty_errors = errors(&faulty, &truth);
    let violations: Vec<&(&str, f64)> = faulty_errors.iter().filter(|(_, e)| *e > BOUND).collect();
    assert!(
        !violations.is_empty(),
        "SkipWarmup fault was NOT caught: every counter stayed within {:.0}% \
         (clean {clean_errors:?}, faulty {faulty_errors:?})",
        BOUND * 100.0
    );
    // The violation must be the cold-start signature — a miss-class
    // counter, inflated (cold predictors miss more, not less).
    let (_, btb_fault_err) = faulty_errors
        .iter()
        .find(|(n, _)| *n == "btb_misses")
        .expect("btb_misses is a key counter");
    let (_, btb_clean_err) = clean_errors
        .iter()
        .find(|(n, _)| *n == "btb_misses")
        .expect("btb_misses is a key counter");
    assert!(
        btb_fault_err > btb_clean_err,
        "cold measure windows must inflate BTB-miss error \
         (clean {btb_clean_err:.4}, faulty {btb_fault_err:.4})"
    );
}

/// Retirement counters (pure per-step accounting) are *identical* between
/// the faulty and clean pipelines — SkipWarmup changes predictor/cache
/// state, not which steps are measured. This pins the fault's blast
/// radius, so the teeth test above cannot pass by measuring wrong windows.
#[test]
fn skip_warmup_fault_keeps_measure_windows() {
    let steps = 12_000;
    let program = Program::generate(&small_spec(3, true));
    let recorded = RecordedTrace::record(&program, 11, 6, steps);
    let plan = SamplingPlan::build(&recorded, steps, &SamplingConfig::for_steps(steps));
    let config = StandingConfig::Btb(512).frontend();
    let clean = sampled(&program, &config, &recorded, &plan, None);
    let faulty = sampled(
        &program,
        &config,
        &recorded,
        &plan,
        Some(SampleFault::SkipWarmup),
    );
    assert_eq!(clean.instructions, faulty.instructions);
    assert_eq!(clean.branches, faulty.branches);
    assert_eq!(clean.taken_branches, faulty.taken_branches);
    assert_eq!(clean.cond_branches, faulty.cond_branches);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite 1: the degenerate plan reproduces the full run's SimStats
    /// byte-exactly across random layouts, seeds and lengths — with and
    /// without Skia attached.
    #[test]
    fn degenerate_plan_reproduces_full_run(
        prog_seed in any::<u64>(),
        walk_seed in any::<u64>(),
        bolted in any::<bool>(),
        with_skia in any::<bool>(),
        steps in 1usize..1200,
        chunk in 1usize..1500,
    ) {
        let program = Program::generate(&small_spec(prog_seed, bolted));
        let recorded = RecordedTrace::record(&program, walk_seed, 6, steps);
        let mut config = FrontendConfig::test_small();
        if with_skia {
            config.skia = Some(skia_core::SkiaConfig::default());
        }
        let mut sim = Simulator::new(&program, config.clone());
        let reference = sim.run_batched(&recorded, steps, chunk);
        let plan = SamplingPlan::degenerate(steps);
        prop_assert!(plan.is_degenerate());
        let got = skia_frontend::run_plan(&program, &config, &recorded, &plan, chunk, None);
        prop_assert_eq!(got, reference, "steps={} chunk={}", steps, chunk);
    }
}
