//! Byte-exact equivalence of the batched replay kernel.
//!
//! [`Simulator::run_batched`] consumes a [`RecordedTrace`]'s columns in
//! chunks and drains the telemetry accumulator once per chunk; the per-step
//! [`Simulator::run`] consumes a step iterator and drains at finalization.
//! Everything downstream — every figure, every sweep — assumes the two are
//! *indistinguishable*: identical [`SimStats`], identical registry
//! [`Snapshot`], at any chunk size, any trace length, any configuration,
//! serial or threaded. This suite is that contract, plus the proof that it
//! has teeth: a planted accumulator double-flush must be caught.
//!
//! Divergences found here reduce to an `(spec, config, steps, chunk)`
//! quadruple that is printed on failure; the oracle lockstep harness covers
//! the same property per corpus case with full replay tokens.

use proptest::prelude::*;
use skia_experiments::StandingConfig;
use skia_frontend::{BatchFault, FrontendConfig, SimStats, Simulator};
use skia_workloads::{Layout, Program, ProgramSpec, RecordedTrace};

/// A small program with both layouts' feature mix (dispatch, loops,
/// bursts) — big enough to exercise BTB misses, SBB traffic and resteers,
/// small enough to generate per test case.
fn small_spec(seed: u64, bolted: bool) -> ProgramSpec {
    ProgramSpec {
        seed,
        functions: 60,
        dispatch_blocks: 8,
        dispatch_callees: 8,
        burst_pool: 4,
        layout: if bolted {
            Layout::Bolted
        } else {
            Layout::Interleaved
        },
        ..ProgramSpec::default()
    }
}

/// Per-step reference result: `run` over `replay().take(steps)`.
fn per_step(
    program: &Program,
    config: &FrontendConfig,
    trace: &RecordedTrace,
    steps: usize,
) -> SimStats {
    let mut sim = Simulator::new(program, config.clone());
    sim.run(trace.replay().take(steps))
}

/// Batched result at one chunk size.
fn batched(
    program: &Program,
    config: &FrontendConfig,
    trace: &RecordedTrace,
    steps: usize,
    chunk: usize,
) -> SimStats {
    let mut sim = Simulator::new(program, config.clone());
    sim.run_batched(trace, steps, chunk)
}

/// The chunk-size × trace-length edge matrix: chunk sizes {1, 7, 4096,
/// oversized} against lengths {0, 1, chunk−1, chunk, chunk+1}, clamped
/// to the recording. Every cell must match the per-step kernel exactly.
#[test]
fn chunk_size_and_length_matrix() {
    let program = Program::generate(&small_spec(5, false));
    let recorded = RecordedTrace::record(&program, 42, 6, 4097 + 1);
    let config = FrontendConfig::test_small();
    for &chunk in &[1usize, 7, 4096] {
        for &steps in &[0usize, 1, chunk - 1, chunk, chunk + 1] {
            let steps = steps.min(recorded.len());
            let reference = per_step(&program, &config, &recorded, steps);
            let got = batched(&program, &config, &recorded, steps, chunk);
            assert_eq!(got, reference, "chunk={chunk} steps={steps}");
            // Chunk larger than the whole replay: one chunk, one flush.
            let oversized = batched(&program, &config, &recorded, steps, steps.max(1) + 1);
            assert_eq!(oversized, reference, "oversized chunk, steps={steps}");
        }
    }
}

/// The standing processor configurations (Table 1's machine under the
/// Fig. 3 / Fig. 16 BTB variants, with and without Skia) all replay
/// identically through the batched kernel.
#[test]
fn standing_configs_match_per_step() {
    let program = Program::generate(&small_spec(9, true));
    let recorded = RecordedTrace::record(&program, 7, 6, 2000);
    for sc in [
        StandingConfig::Btb(1024),
        StandingConfig::BtbPlusBudget(1024),
        StandingConfig::BtbPlusSkia(1024),
        StandingConfig::Infinite,
    ] {
        let config = sc.frontend();
        let reference = per_step(&program, &config, &recorded, 2000);
        for chunk in [64usize, 1000, 4096] {
            let got = batched(&program, &config, &recorded, 2000, chunk);
            assert_eq!(got, reference, "{sc:?} chunk={chunk}");
        }
    }
}

/// The full registry snapshot — every counter, gauge and histogram, not
/// just the `SimStats` projection — is identical through the batched
/// kernel, including with event tracing enabled.
#[test]
fn instrumented_snapshot_matches() {
    let program = Program::generate(&small_spec(3, false));
    let recorded = RecordedTrace::record(&program, 11, 6, 1500);
    let config = StandingConfig::BtbPlusSkia(512).frontend();
    let tc = Some(skia_telemetry::TraceConfig {
        capacity: 1 << 18,
        sample_every: 1,
    });
    let (ref_stats, ref_snap) =
        skia_frontend::run_instrumented(&program, config.clone(), tc, recorded.replay().take(1500));
    for chunk in [1usize, 333, 4096] {
        let (stats, snap) = skia_frontend::run_instrumented_batched(
            &program,
            config.clone(),
            tc,
            &recorded,
            1500,
            chunk,
        );
        assert_eq!(stats, ref_stats, "chunk={chunk}");
        assert_eq!(snap, ref_snap, "chunk={chunk}");
    }
}

/// The parallel sweep driver returns the same batched results in the same
/// order at any thread count (the `SKIA_THREADS=4` gate, expressed through
/// the runner's explicit thread parameter so tests don't mutate the
/// process environment).
#[test]
fn threaded_sweep_matches_serial() {
    let program = Program::generate(&small_spec(21, false));
    let recorded = RecordedTrace::record(&program, 13, 6, 1200);
    let jobs: Vec<(StandingConfig, usize)> = vec![
        (StandingConfig::Btb(512), 64),
        (StandingConfig::BtbPlusSkia(512), 128),
        (StandingConfig::Btb(2048), 4096),
        (StandingConfig::BtbPlusSkia(2048), 1000),
        (StandingConfig::Infinite, 1),
    ];
    let run = |threads: usize| -> Vec<SimStats> {
        skia_runner::run_indexed(&jobs, threads, |_, &(sc, chunk)| {
            batched(&program, &sc.frontend(), &recorded, 1200, chunk)
        })
    };
    let serial = run(1);
    let four = run(4);
    assert_eq!(serial, four);
    // And each equals the per-step kernel.
    for (got, &(sc, _)) in serial.iter().zip(&jobs) {
        assert_eq!(
            got,
            &per_step(&program, &sc.frontend(), &recorded, 1200),
            "{sc:?}"
        );
    }
}

/// Sensitivity: a planted accumulator double-flush at chunk boundaries
/// must produce stats that differ from the per-step kernel — the gate is
/// only trustworthy if it fails when batching is wrong.
#[test]
fn planted_double_flush_is_detected() {
    let program = Program::generate(&small_spec(5, false));
    let recorded = RecordedTrace::record(&program, 42, 6, 500);
    let config = FrontendConfig::test_small();
    let reference = per_step(&program, &config, &recorded, 500);
    let mut sim = Simulator::new(&program, config.clone());
    sim.plant_batch_fault(BatchFault::DoubleFlush);
    let faulty = sim.run_batched(&recorded, 500, 100);
    assert_ne!(
        faulty, reference,
        "the equivalence gate failed to detect a planted double-flush"
    );
    // The damage is what a double drain predicts: retirement counters
    // doubled (every step's delta flushed twice).
    assert_eq!(faulty.branches, 2 * reference.branches);
    assert_eq!(faulty.instructions, 2 * reference.instructions);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Equivalence holds for any (layout, seeds, length, chunk size) —
    /// including chunk sizes around the trace length and the Skia-attached
    /// configuration.
    #[test]
    fn batched_equals_per_step_for_random_cases(
        prog_seed in any::<u64>(),
        walk_seed in any::<u64>(),
        bolted in any::<bool>(),
        with_skia in any::<bool>(),
        steps in 1usize..1200,
        chunk in 1usize..1500,
    ) {
        let program = Program::generate(&small_spec(prog_seed, bolted));
        let recorded = RecordedTrace::record(&program, walk_seed, 6, steps);
        let mut config = FrontendConfig::test_small();
        if with_skia {
            config.skia = Some(skia_core::SkiaConfig::default());
        }
        let reference = per_step(&program, &config, &recorded, steps);
        let got = batched(&program, &config, &recorded, steps, chunk);
        prop_assert_eq!(got, reference, "steps={} chunk={}", steps, chunk);
    }
}
