//! Run manifests: aggregate the suite's `--emit-json` snapshots into one
//! comparable document.
//!
//! `run_experiments.sh` leaves one telemetry snapshot per experiment under
//! `results/`. The `skia-report` binary folds them into a [`Manifest`] —
//! per-experiment wall time, simulate throughput, trace-cache traffic, span
//! rollups and the dominant counters — written as JSON (machine diffing)
//! and Markdown (humans). [`diff`] compares two manifests from consecutive
//! runs: deterministic fields (runs merged, steps simulated, simulator
//! counters) must match exactly, throughput may drift within a threshold,
//! and cache-warmth fields (disk hits vs. recordings, bytes moved) are
//! informational — a warm second run legitimately differs there.
//!
//! Every timing field is integer nanoseconds, not float seconds: `u64`
//! values below 2^53 round-trip exactly through the JSON parser, so
//! `Manifest::from_json_str(m.to_json_string())` reproduces `m` bit-for-bit
//! (property-tested in the crate's round-trip tests).

use std::collections::BTreeMap;

use serde::{Serialize, SerializeStruct, Serializer};
use skia_telemetry::json::{self, JsonValue};
use skia_telemetry::Snapshot;

/// Counter prefixes whose values depend on cache warmth, host speed or the
/// span layer rather than on the simulation itself. They are excluded from
/// [`ExperimentReport::top_counters`] (and therefore from the exact-match
/// diff) and surfaced through the dedicated cache/throughput fields instead.
const ENV_COUNTER_PREFIXES: [&str; 4] = ["trace_cache.", "trace.", "spans.", "emit."];

/// How many of the largest simulator counters each experiment keeps.
const TOP_COUNTERS: usize = 8;

/// Manifest format version, bumped on any field change.
const MANIFEST_VERSION: u64 = 1;

/// Aggregated wall-time statistics of one named span across a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Span name (e.g. `sweep.simulate`, `sim.job:tpcc`).
    pub name: String,
    /// Completed spans with this name.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Shortest span, nanoseconds.
    pub min_ns: u64,
    /// Longest span, nanoseconds.
    pub max_ns: u64,
}

impl PhaseStat {
    /// Mean duration in nanoseconds (0 when no spans).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// One experiment's aggregated run facts.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Experiment name (the telemetry file stem, e.g. `fig01`).
    pub name: String,
    /// Process wall time, nanoseconds (`run.wall_seconds` gauge).
    pub wall_ns: u64,
    /// Telemetry snapshots merged into the file (`emit.runs_merged`).
    pub runs_merged: u64,
    /// Simulate-phase steps executed (`sim.steps_total`).
    pub steps_total: u64,
    /// Summed per-job simulate busy time, nanoseconds (`sim.busy_seconds`).
    pub busy_ns: u64,
    /// Replay-simulate throughput, steps per second of busy time, rounded
    /// to an integer (`sim.steps_per_sec`).
    pub steps_per_sec: u64,
    /// Traces served from the on-disk cache (`trace_cache.disk_hits`).
    pub cache_disk_hits: u64,
    /// Traces recorded live (`trace_cache.recorded`).
    pub cache_recorded: u64,
    /// Cache bytes read (`trace_cache.bytes_read`).
    pub cache_bytes_read: u64,
    /// Cache bytes written (`trace_cache.bytes_written`).
    pub cache_bytes_written: u64,
    /// Per-column cache seeks (`trace_cache.seeks`).
    pub cache_seeks: u64,
    /// Per-phase span rollups, name-sorted.
    pub phases: Vec<PhaseStat>,
    /// The largest simulator counters (name, value), value-descending —
    /// environment-dependent counters excluded, so these compare exactly
    /// between identical runs.
    pub top_counters: Vec<(String, u64)>,
}

impl ExperimentReport {
    /// Trace-cache hit rate over disk lookups (0 when none happened).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_disk_hits + self.cache_recorded;
        if total == 0 {
            0.0
        } else {
            self.cache_disk_hits as f64 / total as f64
        }
    }

    /// Build one experiment's report from its merged telemetry snapshot.
    #[must_use]
    pub fn from_snapshot(name: &str, snap: &Snapshot) -> ExperimentReport {
        let counter = |k: &str| snap.counter(k).unwrap_or(0);
        let gauge_ns = |k: &str| {
            snap.gauges
                .get(k)
                .map(|s| (s * 1e9).round().max(0.0) as u64)
                .unwrap_or(0)
        };
        let phases = snap
            .span_rollup()
            .into_iter()
            .map(|(name, r)| PhaseStat {
                name,
                count: r.count,
                total_ns: r.total_ns,
                min_ns: r.min_ns,
                max_ns: r.max_ns,
            })
            .collect();
        let mut top: Vec<(String, u64)> = snap
            .counters
            .iter()
            .filter(|(k, _)| !ENV_COUNTER_PREFIXES.iter().any(|p| k.starts_with(p)))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        // Value-descending, name-ascending tiebreak: deterministic order.
        top.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        top.truncate(TOP_COUNTERS);
        ExperimentReport {
            name: name.to_string(),
            wall_ns: gauge_ns("run.wall_seconds"),
            runs_merged: counter("emit.runs_merged"),
            steps_total: counter("sim.steps_total"),
            busy_ns: gauge_ns("sim.busy_seconds"),
            steps_per_sec: snap
                .gauges
                .get("sim.steps_per_sec")
                .map(|s| s.round().max(0.0) as u64)
                .unwrap_or(0),
            cache_disk_hits: counter("trace_cache.disk_hits"),
            cache_recorded: counter("trace_cache.recorded"),
            cache_bytes_read: counter("trace_cache.bytes_read"),
            cache_bytes_written: counter("trace_cache.bytes_written"),
            cache_seeks: counter("trace_cache.seeks"),
            phases,
            top_counters: top,
        }
    }
}

/// The aggregated run manifest: one [`ExperimentReport`] per suite
/// experiment, name-sorted.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Manifest {
    /// The per-experiment reports, sorted by name.
    pub experiments: Vec<ExperimentReport>,
}

impl Manifest {
    /// Fold named snapshots into a manifest (sorted by experiment name).
    #[must_use]
    pub fn from_snapshots(snaps: &[(String, Snapshot)]) -> Manifest {
        let mut experiments: Vec<ExperimentReport> = snaps
            .iter()
            .map(|(name, s)| ExperimentReport::from_snapshot(name, s))
            .collect();
        experiments.sort_by(|a, b| a.name.cmp(&b.name));
        Manifest { experiments }
    }

    /// Total wall nanoseconds across experiments.
    #[must_use]
    pub fn total_wall_ns(&self) -> u64 {
        self.experiments.iter().map(|e| e.wall_ns).sum()
    }

    /// Total simulate steps across experiments.
    #[must_use]
    pub fn total_steps(&self) -> u64 {
        self.experiments.iter().map(|e| e.steps_total).sum()
    }

    /// Serialize as JSON.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        json::to_string(self)
    }

    /// Parse a manifest produced by [`Manifest::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns a message when the document is not valid JSON, is not a
    /// manifest object, or has a version this build does not understand.
    pub fn from_json_str(s: &str) -> Result<Manifest, String> {
        let v = JsonValue::parse(s)?;
        let version = v
            .get("version")
            .and_then(JsonValue::as_u64)
            .ok_or("manifest: missing version")?;
        if version != MANIFEST_VERSION {
            return Err(format!(
                "manifest: version {version} unsupported (expected {MANIFEST_VERSION})"
            ));
        }
        let exps = v
            .get("experiments")
            .and_then(JsonValue::as_array)
            .ok_or("manifest: missing experiments array")?;
        let mut experiments = Vec::with_capacity(exps.len());
        for e in exps {
            experiments.push(parse_experiment(e)?);
        }
        Ok(Manifest { experiments })
    }

    /// Render a human-readable Markdown summary.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("# Skia experiment run manifest\n\n");
        let _ = writeln!(
            out,
            "{} experiment(s), {:.2}s total wall, {} steps simulated.\n",
            self.experiments.len(),
            self.total_wall_ns() as f64 / 1e9,
            self.total_steps(),
        );
        out.push_str(
            "| experiment | wall s | runs | steps | steps/s | cache hit rate | cache MB r/w |\n\
             |---|---|---|---|---|---|---|\n",
        );
        for e in &self.experiments {
            let _ = writeln!(
                out,
                "| {} | {:.2} | {} | {} | {} | {:.0}% | {:.1}/{:.1} |",
                e.name,
                e.wall_ns as f64 / 1e9,
                e.runs_merged,
                e.steps_total,
                e.steps_per_sec,
                e.cache_hit_rate() * 100.0,
                e.cache_bytes_read as f64 / 1e6,
                e.cache_bytes_written as f64 / 1e6,
            );
        }
        for e in &self.experiments {
            if e.phases.is_empty() {
                continue;
            }
            let _ = writeln!(out, "\n## {} phases\n", e.name);
            out.push_str("| span | count | total ms | mean µs | max µs |\n|---|---|---|---|---|\n");
            let mut phases: Vec<&PhaseStat> = e.phases.iter().collect();
            phases.sort_by(|a, b| {
                b.total_ns
                    .cmp(&a.total_ns)
                    .then_with(|| a.name.cmp(&b.name))
            });
            for p in phases {
                let _ = writeln!(
                    out,
                    "| {} | {} | {:.2} | {:.1} | {:.1} |",
                    p.name,
                    p.count,
                    p.total_ns as f64 / 1e6,
                    p.mean_ns() as f64 / 1e3,
                    p.max_ns as f64 / 1e3,
                );
            }
        }
        out
    }
}

fn parse_experiment(v: &JsonValue) -> Result<ExperimentReport, String> {
    let name = v
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or("experiment: missing name")?
        .to_string();
    let u = |k: &str| v.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
    let mut phases = Vec::new();
    if let Some(arr) = v.get("phases").and_then(JsonValue::as_array) {
        for p in arr {
            let pu = |k: &str| p.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
            phases.push(PhaseStat {
                name: p
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("phase: missing name")?
                    .to_string(),
                count: pu("count"),
                total_ns: pu("total_ns"),
                min_ns: pu("min_ns"),
                max_ns: pu("max_ns"),
            });
        }
    }
    let mut top_counters = Vec::new();
    if let Some(obj) = v.get("top_counters").and_then(JsonValue::as_object) {
        // BTreeMap iteration loses the value ordering; restore it.
        for (k, val) in obj {
            top_counters.push((
                k.clone(),
                val.as_u64().ok_or("top_counters: non-integer value")?,
            ));
        }
        top_counters.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    }
    Ok(ExperimentReport {
        name,
        wall_ns: u("wall_ns"),
        runs_merged: u("runs_merged"),
        steps_total: u("steps_total"),
        busy_ns: u("busy_ns"),
        steps_per_sec: u("steps_per_sec"),
        cache_disk_hits: u("cache_disk_hits"),
        cache_recorded: u("cache_recorded"),
        cache_bytes_read: u("cache_bytes_read"),
        cache_bytes_written: u("cache_bytes_written"),
        cache_seeks: u("cache_seeks"),
        phases,
        top_counters,
    })
}

impl Serialize for PhaseStat {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("PhaseStat", 5)?;
        s.serialize_field("name", self.name.as_str())?;
        s.serialize_field("count", &self.count)?;
        s.serialize_field("total_ns", &self.total_ns)?;
        s.serialize_field("min_ns", &self.min_ns)?;
        s.serialize_field("max_ns", &self.max_ns)?;
        s.end()
    }
}

impl Serialize for ExperimentReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("ExperimentReport", 13)?;
        s.serialize_field("name", self.name.as_str())?;
        s.serialize_field("wall_ns", &self.wall_ns)?;
        s.serialize_field("runs_merged", &self.runs_merged)?;
        s.serialize_field("steps_total", &self.steps_total)?;
        s.serialize_field("busy_ns", &self.busy_ns)?;
        s.serialize_field("steps_per_sec", &self.steps_per_sec)?;
        s.serialize_field("cache_disk_hits", &self.cache_disk_hits)?;
        s.serialize_field("cache_recorded", &self.cache_recorded)?;
        s.serialize_field("cache_bytes_read", &self.cache_bytes_read)?;
        s.serialize_field("cache_bytes_written", &self.cache_bytes_written)?;
        s.serialize_field("cache_seeks", &self.cache_seeks)?;
        s.serialize_field("phases", &self.phases)?;
        // Counter names are unique, so a map keeps the JSON flat; the value
        // ordering is restored at parse time.
        let top: BTreeMap<&str, u64> = self
            .top_counters
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        s.serialize_field("top_counters", &top)?;
        s.end()
    }
}

impl Serialize for Manifest {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("Manifest", 2)?;
        s.serialize_field("version", &MANIFEST_VERSION)?;
        s.serialize_field("experiments", &self.experiments)?;
        s.end()
    }
}

// ---------------------------------------------------------------------------
// Diff
// ---------------------------------------------------------------------------

/// Fractional steps-per-second drop tolerated before [`diff`] reports a
/// regression (0.4 = anything slower than 60% of the baseline flags; a 2×
/// drop always does, same-host consecutive runs never should).
pub const DEFAULT_THRESHOLD: f64 = 0.4;

/// Severity of one diff finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Expected variation (cache warmth, improvements, added experiments).
    Info,
    /// Determinism break or throughput collapse — fails the diff.
    Regression,
}

/// One difference between two manifests.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Experiment the finding concerns.
    pub experiment: String,
    /// Finding severity.
    pub severity: Severity,
    /// Human-readable description.
    pub detail: String,
}

/// Compare a new manifest against a baseline.
///
/// Deterministic facts — the set of experiments, runs merged, steps
/// simulated, and the top simulator counters — must match exactly; any
/// mismatch is a [`Severity::Regression`]. Throughput (`steps_per_sec`) may
/// drop by up to `threshold` (fractional); larger drops regress, and
/// improvements or cache-warmth differences are [`Severity::Info`].
#[must_use]
pub fn diff(baseline: &Manifest, new: &Manifest, threshold: f64) -> Vec<Finding> {
    let mut findings = Vec::new();
    let new_by_name: BTreeMap<&str, &ExperimentReport> = new
        .experiments
        .iter()
        .map(|e| (e.name.as_str(), e))
        .collect();
    let old_names: std::collections::BTreeSet<&str> = baseline
        .experiments
        .iter()
        .map(|e| e.name.as_str())
        .collect();
    for e in &new.experiments {
        if !old_names.contains(e.name.as_str()) {
            findings.push(Finding {
                experiment: e.name.clone(),
                severity: Severity::Info,
                detail: "new experiment (absent from baseline)".into(),
            });
        }
    }
    for old in &baseline.experiments {
        let Some(new) = new_by_name.get(old.name.as_str()) else {
            findings.push(Finding {
                experiment: old.name.clone(),
                severity: Severity::Regression,
                detail: "experiment missing from new run".into(),
            });
            continue;
        };
        if new.runs_merged != old.runs_merged {
            findings.push(Finding {
                experiment: old.name.clone(),
                severity: Severity::Regression,
                detail: format!(
                    "runs_merged changed: {} -> {}",
                    old.runs_merged, new.runs_merged
                ),
            });
        }
        if new.steps_total != old.steps_total {
            findings.push(Finding {
                experiment: old.name.clone(),
                severity: Severity::Regression,
                detail: format!(
                    "steps_total changed: {} -> {}",
                    old.steps_total, new.steps_total
                ),
            });
        }
        if new.top_counters != old.top_counters {
            findings.push(Finding {
                experiment: old.name.clone(),
                severity: Severity::Regression,
                detail: format!(
                    "simulator counters diverged: {:?} -> {:?}",
                    old.top_counters, new.top_counters
                ),
            });
        }
        if old.steps_per_sec > 0 && new.steps_per_sec > 0 {
            let ratio = new.steps_per_sec as f64 / old.steps_per_sec as f64;
            if ratio < 1.0 - threshold {
                findings.push(Finding {
                    experiment: old.name.clone(),
                    severity: Severity::Regression,
                    detail: format!(
                        "steps/sec dropped {:.0}%: {} -> {}",
                        (1.0 - ratio) * 100.0,
                        old.steps_per_sec,
                        new.steps_per_sec
                    ),
                });
            } else if ratio > 1.0 + threshold {
                findings.push(Finding {
                    experiment: old.name.clone(),
                    severity: Severity::Info,
                    detail: format!(
                        "steps/sec improved {:.0}%: {} -> {}",
                        (ratio - 1.0) * 100.0,
                        old.steps_per_sec,
                        new.steps_per_sec
                    ),
                });
            }
        }
        if (new.cache_disk_hits, new.cache_recorded) != (old.cache_disk_hits, old.cache_recorded) {
            findings.push(Finding {
                experiment: old.name.clone(),
                severity: Severity::Info,
                detail: format!(
                    "cache warmth: hits/recorded {}/{} -> {}/{}",
                    old.cache_disk_hits,
                    old.cache_recorded,
                    new.cache_disk_hits,
                    new.cache_recorded
                ),
            });
        }
    }
    findings
}

/// Render all experiments' spans and sampled events as one Chrome
/// `trace_event` document. Each experiment ran as its own process with its
/// own time origin, so thread ids are remapped to `experiment_index * 64 +
/// thread` to give every experiment a distinct row band.
#[must_use]
pub fn chrome_trace(snaps: &[(String, Snapshot)]) -> String {
    let mut spans = Vec::new();
    let mut events = Vec::new();
    for (i, (_, snap)) in snaps.iter().enumerate() {
        for s in &snap.spans {
            let mut s = s.clone();
            s.thread = (i as u64) * 64 + s.thread.min(63);
            spans.push(s);
        }
        events.extend(snap.events.iter().copied());
    }
    skia_telemetry::to_chrome_trace_full(&events, &spans, "skia-suite")
}

#[cfg(test)]
mod tests {
    use super::*;
    use skia_telemetry::SpanRecord;

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("emit.runs_merged".into(), 16);
        snap.counters.insert("sim.steps_total".into(), 400_000);
        snap.counters.insert("btb.misses".into(), 1234);
        snap.counters.insert("resteers".into(), 99);
        snap.counters.insert("trace_cache.disk_hits".into(), 3);
        snap.counters.insert("trace_cache.recorded".into(), 1);
        snap.counters.insert("trace_cache.bytes_read".into(), 9000);
        snap.counters
            .insert("trace_cache.bytes_written".into(), 500);
        snap.counters.insert("trace_cache.seeks".into(), 18);
        snap.gauges.insert("run.wall_seconds".into(), 1.25);
        snap.gauges.insert("sim.busy_seconds".into(), 0.5);
        snap.gauges.insert("sim.steps_per_sec".into(), 800_000.0);
        snap.spans.push(SpanRecord {
            name: "sweep.simulate".into(),
            thread: 0,
            depth: 0,
            start_ns: 100,
            dur_ns: 500_000,
        });
        snap.spans.push(SpanRecord {
            name: "sim.job:tpcc".into(),
            thread: 1,
            depth: 1,
            start_ns: 200,
            dur_ns: 30_000,
        });
        snap
    }

    fn sample_manifest() -> Manifest {
        Manifest::from_snapshots(&[
            ("fig01".to_string(), sample_snapshot()),
            ("table1".to_string(), sample_snapshot()),
        ])
    }

    #[test]
    fn experiment_report_extracts_snapshot_facts() {
        let e = ExperimentReport::from_snapshot("fig01", &sample_snapshot());
        assert_eq!(e.name, "fig01");
        assert_eq!(e.wall_ns, 1_250_000_000);
        assert_eq!(e.runs_merged, 16);
        assert_eq!(e.steps_total, 400_000);
        assert_eq!(e.busy_ns, 500_000_000);
        assert_eq!(e.steps_per_sec, 800_000);
        assert_eq!(e.cache_disk_hits, 3);
        assert_eq!(e.cache_seeks, 18);
        assert!((e.cache_hit_rate() - 0.75).abs() < 1e-12);
        // Environment counters never reach top_counters; values descend.
        assert!(e
            .top_counters
            .iter()
            .all(|(k, _)| !k.starts_with("trace_cache.") && !k.starts_with("emit.")));
        assert_eq!(e.top_counters[0].0, "sim.steps_total");
        assert!(e.top_counters.windows(2).all(|w| w[0].1 >= w[1].1));
        // Span rollups became phases.
        assert_eq!(e.phases.len(), 2);
        let sim = e.phases.iter().find(|p| p.name == "sim.job:tpcc").unwrap();
        assert_eq!(sim.count, 1);
        assert_eq!(sim.total_ns, 30_000);
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = sample_manifest();
        let json = m.to_json_string();
        let back = Manifest::from_json_str(&json).expect("round trip");
        assert_eq!(m, back);
        assert_eq!(m.total_steps(), 800_000);
        assert_eq!(m.total_wall_ns(), 2_500_000_000);
    }

    #[test]
    fn manifest_rejects_garbage_and_wrong_version() {
        assert!(Manifest::from_json_str("nope").is_err());
        assert!(Manifest::from_json_str("{}").is_err());
        assert!(Manifest::from_json_str("{\"version\":999,\"experiments\":[]}").is_err());
        assert!(Manifest::from_json_str("{\"version\":1,\"experiments\":[{}]}").is_err());
    }

    #[test]
    fn identical_manifests_diff_clean() {
        let m = sample_manifest();
        let findings = diff(&m, &m, DEFAULT_THRESHOLD);
        assert!(
            findings.iter().all(|f| f.severity != Severity::Regression),
            "self-diff must not regress: {findings:?}"
        );
        assert!(findings.is_empty(), "self-diff is silent: {findings:?}");
    }

    #[test]
    fn throughput_collapse_is_flagged() {
        let base = sample_manifest();
        let mut slow = base.clone();
        // A 2× steps/sec drop on one experiment.
        slow.experiments[0].steps_per_sec /= 2;
        let findings = diff(&base, &slow, DEFAULT_THRESHOLD);
        assert!(
            findings.iter().any(|f| f.severity == Severity::Regression
                && f.experiment == "fig01"
                && f.detail.contains("steps/sec dropped")),
            "2x drop must regress: {findings:?}"
        );
        // A drop within the threshold stays silent.
        let mut mild = base.clone();
        mild.experiments[0].steps_per_sec = (mild.experiments[0].steps_per_sec as f64 * 0.8) as u64;
        assert!(diff(&base, &mild, DEFAULT_THRESHOLD).is_empty());
        // An improvement is informational, never a regression.
        let mut fast = base.clone();
        fast.experiments[0].steps_per_sec *= 3;
        let findings = diff(&base, &fast, DEFAULT_THRESHOLD);
        assert!(findings.iter().all(|f| f.severity == Severity::Info));
    }

    #[test]
    fn determinism_breaks_are_regressions() {
        let base = sample_manifest();

        let mut changed = base.clone();
        changed.experiments[1].steps_total += 1;
        assert!(diff(&base, &changed, DEFAULT_THRESHOLD)
            .iter()
            .any(|f| f.severity == Severity::Regression && f.detail.contains("steps_total")));

        let mut counters = base.clone();
        counters.experiments[0].top_counters[1].1 += 7;
        assert!(diff(&base, &counters, DEFAULT_THRESHOLD)
            .iter()
            .any(|f| f.severity == Severity::Regression && f.detail.contains("counters")));

        let mut missing = base.clone();
        missing.experiments.pop();
        assert!(diff(&base, &missing, DEFAULT_THRESHOLD)
            .iter()
            .any(|f| f.severity == Severity::Regression && f.detail.contains("missing")));

        // Cache warmth shifts are informational.
        let mut warm = base.clone();
        warm.experiments[0].cache_disk_hits += 1;
        warm.experiments[0].cache_recorded -= 1;
        assert!(diff(&base, &warm, DEFAULT_THRESHOLD)
            .iter()
            .all(|f| f.severity == Severity::Info));
    }

    #[test]
    fn markdown_and_chrome_render() {
        let m = sample_manifest();
        let md = m.to_markdown();
        assert!(md.contains("| fig01 |"));
        assert!(md.contains("## fig01 phases"));
        assert!(md.contains("sweep.simulate"));

        let snaps = vec![
            ("fig01".to_string(), sample_snapshot()),
            ("table1".to_string(), sample_snapshot()),
        ];
        let chrome = chrome_trace(&snaps);
        assert!(chrome.contains("\"ph\":\"X\""));
        // Second experiment's threads land in its own tid band.
        assert!(chrome.contains("\"tid\":65"));
    }
}
