//! Figure 17 — SBB sensitivity.
//!
//! Top: geomean speedup for different U-SBB/R-SBB storage splits at a
//! constant 12.25 KB total. Bottom: scaling the total SBB budget at the
//! paper's preferred U:R entry ratio, to find the saturation point.

use skia_core::{SbbConfig, SkiaConfig};
use skia_experiments::{geomean, row, steps_from_env, Args, StandingConfig, Sweep};
use skia_frontend::FrontendConfig;

fn main() {
    let steps = steps_from_env();
    let args = Args::parse();
    let mut em = args.emitter();
    let benches = args.benchmarks();

    // Per SBB configuration: (base, skia) job ids per benchmark, enumerated
    // in the fixed serial order (base then skia, benchmark by benchmark).
    let mut sweep = Sweep::from_args(&args);
    let add_config = |sweep: &mut Sweep, sbb: SbbConfig| -> Vec<(usize, usize)> {
        benches
            .iter()
            .map(|name| {
                let base = sweep.add(name, StandingConfig::Btb(8192).frontend(), steps);
                let cfg = FrontendConfig::alder_lake_like()
                    .with_btb_entries(8192)
                    .with_skia(SkiaConfig {
                        sbb,
                        ..SkiaConfig::default()
                    });
                (base, sweep.add(name, cfg, steps))
            })
            .collect()
    };

    let shares = [0.2, 0.4, 7.3125 / 12.25, 0.8];
    let share_ids: Vec<(SbbConfig, Vec<(usize, usize)>)> = shares
        .iter()
        .map(|&share| {
            let sbb = SbbConfig::with_budget(12.25, share, 4);
            let ids = add_config(&mut sweep, sbb);
            (sbb, ids)
        })
        .collect();
    let factors = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    let factor_ids: Vec<(SbbConfig, Vec<(usize, usize)>)> = factors
        .iter()
        .map(|&factor| {
            let sbb = SbbConfig::default().scaled(factor);
            let ids = add_config(&mut sweep, sbb);
            (sbb, ids)
        })
        .collect();
    let stats = sweep.run(&mut em);

    let geo_pct = |ids: &[(usize, usize)]| -> f64 {
        (geomean(ids.iter().map(|&(b, s)| stats[s].speedup_over(&stats[b]))) - 1.0) * 100.0
    };

    println!("# Figure 17 (top): U-SBB/R-SBB split at constant 12.25 KB\n");
    row(&[
        "U-SBB share".into(),
        "U entries".into(),
        "R entries".into(),
        "geomean speedup".into(),
    ]);
    row(&vec!["---".to_string(); 4]);
    for (share, (sbb, ids)) in shares.iter().zip(&share_ids) {
        row(&[
            format!("{:.0}%", share * 100.0),
            format!("{}", sbb.u_entries),
            format!("{}", sbb.r_entries),
            format!("{:+.2}%", geo_pct(ids)),
        ]);
    }

    println!("\n# Figure 17 (bottom): total budget at constant U:R entry ratio\n");
    row(&[
        "scale".into(),
        "storage KB".into(),
        "geomean speedup".into(),
    ]);
    row(&vec!["---".to_string(); 3]);
    for (factor, (sbb, ids)) in factors.iter().zip(&factor_ids) {
        row(&[
            format!("{factor}x"),
            format!("{:.2}", sbb.storage_kb()),
            format!("{:+.2}%", geo_pct(ids)),
        ]);
    }
    em.finish();
}
