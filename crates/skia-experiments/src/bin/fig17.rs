//! Figure 17 — SBB sensitivity.
//!
//! Top: geomean speedup for different U-SBB/R-SBB storage splits at a
//! constant 12.25 KB total. Bottom: scaling the total SBB budget at the
//! paper's preferred U:R entry ratio, to find the saturation point.

use skia_core::{SbbConfig, SkiaConfig};
use skia_experiments::{geomean, row, steps_from_env, JsonEmitter, StandingConfig, Workload};
use skia_frontend::FrontendConfig;
use skia_workloads::profiles::PAPER_BENCHMARKS;

fn geo_speedup(sbb: SbbConfig, steps: usize, em: &mut JsonEmitter) -> f64 {
    let mut ratios = Vec::new();
    for name in PAPER_BENCHMARKS {
        let w = Workload::by_name(name);
        let base = w.run_emit(StandingConfig::Btb(8192).frontend(), steps, em);
        let cfg = FrontendConfig::alder_lake_like()
            .with_btb_entries(8192)
            .with_skia(SkiaConfig {
                sbb,
                ..SkiaConfig::default()
            });
        let s = w.run_emit(cfg, steps, em);
        ratios.push(s.speedup_over(&base));
    }
    (geomean(ratios) - 1.0) * 100.0
}

fn main() {
    let steps = steps_from_env();
    let mut em = JsonEmitter::from_args();

    println!("# Figure 17 (top): U-SBB/R-SBB split at constant 12.25 KB\n");
    row(&[
        "U-SBB share".into(),
        "U entries".into(),
        "R entries".into(),
        "geomean speedup".into(),
    ]);
    row(&vec!["---".to_string(); 4]);
    for share in [0.2, 0.4, 7.3125 / 12.25, 0.8] {
        let sbb = SbbConfig::with_budget(12.25, share, 4);
        let s = geo_speedup(sbb, steps, &mut em);
        row(&[
            format!("{:.0}%", share * 100.0),
            format!("{}", sbb.u_entries),
            format!("{}", sbb.r_entries),
            format!("{s:+.2}%"),
        ]);
    }

    println!("\n# Figure 17 (bottom): total budget at constant U:R entry ratio\n");
    row(&[
        "scale".into(),
        "storage KB".into(),
        "geomean speedup".into(),
    ]);
    row(&vec!["---".to_string(); 3]);
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let sbb = SbbConfig::default().scaled(factor);
        let s = geo_speedup(sbb, steps, &mut em);
        row(&[
            format!("{factor}x"),
            format!("{:.2}", sbb.storage_kb()),
            format!("{s:+.2}%"),
        ]);
    }
    em.finish();
}
