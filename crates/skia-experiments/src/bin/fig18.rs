//! Figure 18: reduction in decoder idle cycles with Skia, per benchmark
//! (8K-entry BTB).
//!
//! Paper's shape: voter and sibench show the largest reductions thanks to
//! their high direct-call/return frequency (§6.3).

use skia_experiments::{row, steps_from_env, Args, StandingConfig, Sweep};

fn main() {
    let steps = steps_from_env();
    let args = Args::parse();
    let mut em = args.emitter();
    let benches = args.benchmarks();

    let mut sweep = Sweep::from_args(&args);
    let ids: Vec<(usize, usize)> = benches
        .iter()
        .map(|name| {
            (
                sweep.add(name, StandingConfig::Btb(8192).frontend(), steps),
                sweep.add(name, StandingConfig::BtbPlusSkia(8192).frontend(), steps),
            )
        })
        .collect();
    let stats = sweep.run(&mut em);

    println!("# Figure 18: decoder idle-cycle reduction with Skia (8K BTB)\n");
    row(&[
        "benchmark".into(),
        "idle/KI baseline".into(),
        "idle/KI Skia".into(),
        "reduction".into(),
    ]);
    row(&vec!["---".to_string(); 4]);

    for (name, &(base_id, skia_id)) in benches.iter().zip(&ids) {
        let base = &stats[base_id];
        let skia = &stats[skia_id];
        let b = base.decoder_idle_cycles() as f64 * 1000.0 / base.instructions as f64;
        let s = skia.decoder_idle_cycles() as f64 * 1000.0 / skia.instructions as f64;
        row(&[
            name.to_string(),
            format!("{b:.1}"),
            format!("{s:.1}"),
            format!("{:+.2}%", (1.0 - s / b.max(1e-9)) * 100.0),
        ]);
    }
    em.finish();
}
