//! Figure 18: reduction in decoder idle cycles with Skia, per benchmark
//! (8K-entry BTB).
//!
//! Paper's shape: voter and sibench show the largest reductions thanks to
//! their high direct-call/return frequency (§6.3).

use skia_experiments::{row, steps_from_env, JsonEmitter, StandingConfig, Workload};
use skia_workloads::profiles::PAPER_BENCHMARKS;

fn main() {
    let steps = steps_from_env();
    let mut em = JsonEmitter::from_args();

    println!("# Figure 18: decoder idle-cycle reduction with Skia (8K BTB)\n");
    row(&[
        "benchmark".into(),
        "idle/KI baseline".into(),
        "idle/KI Skia".into(),
        "reduction".into(),
    ]);
    row(&vec!["---".to_string(); 4]);

    for name in PAPER_BENCHMARKS {
        let w = Workload::by_name(name);
        let base = w.run_emit(StandingConfig::Btb(8192).frontend(), steps, &mut em);
        let skia = w.run_emit(StandingConfig::BtbPlusSkia(8192).frontend(), steps, &mut em);
        let b = base.decoder_idle_cycles() as f64 * 1000.0 / base.instructions as f64;
        let s = skia.decoder_idle_cycles() as f64 * 1000.0 / skia.instructions as f64;
        row(&[
            name.to_string(),
            format!("{b:.1}"),
            format!("{s:.1}"),
            format!("{:+.2}%", (1.0 - s / b.max(1e-9)) * 100.0),
        ]);
    }
    em.finish();
}
