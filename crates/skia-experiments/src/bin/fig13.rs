//! Figure 13: L1-I MPKI agreement between the "real system" and the
//! simulation.
//!
//! The paper validates its gem5 checkpoints against VTune measurements on a
//! real Alder Lake machine, reporting under-18% total divergence. Neither a
//! real machine nor VTune exists here, so the reproduction validates the
//! same arithmetic on the substitute pair (DESIGN.md §2): a **long-horizon
//! reference run** (standing in for the real machine's long execution) vs.
//! the **windowed measurement run** every other experiment uses (standing
//! in for the checkpointed gem5 window). Divergence between the two shows
//! how representative the measurement window is.

use skia_experiments::{f2, row, steps_from_env, Args, StandingConfig, Sweep};

fn main() {
    let steps = steps_from_env();
    let args = Args::parse();
    let mut em = args.emitter();
    let benches = args.benchmarks();
    let long_steps = steps * 4;

    let mut sweep = Sweep::from_args(&args);
    let ids: Vec<(usize, usize)> = benches
        .iter()
        .map(|name| {
            (
                sweep.add(name, StandingConfig::Btb(8192).frontend(), long_steps),
                sweep.add(name, StandingConfig::Btb(8192).frontend(), steps),
            )
        })
        .collect();
    let stats = sweep.run(&mut em);

    println!("# Figure 13: L1-I MPKI, reference (long-horizon) vs measured (window)\n");
    row(&[
        "benchmark".into(),
        "reference MPKI".into(),
        "measured MPKI".into(),
        "divergence".into(),
    ]);
    row(&vec!["---".to_string(); 4]);

    let mut ref_total = 0.0;
    let mut meas_total = 0.0;
    for (name, &(long_id, short_id)) in benches.iter().zip(&ids) {
        let r = stats[long_id].l1i_mpki();
        let m = stats[short_id].l1i_mpki();
        ref_total += r;
        meas_total += m;
        let div = if r > 0.0 { (m - r).abs() / r } else { 0.0 };
        row(&[
            name.to_string(),
            f2(r),
            f2(m),
            format!("{:.1}%", div * 100.0),
        ]);
    }
    let total_div = (meas_total - ref_total).abs() / ref_total.max(1e-9);
    println!(
        "\nTotal divergence across benchmarks: {:.1}% (paper reports <18%)",
        total_div * 100.0
    );
    em.finish();
}
