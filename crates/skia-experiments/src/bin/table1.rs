//! Table 1: the simulated processor configuration, printed from the live
//! configuration objects (so the table cannot drift from the code).

use skia_core::SkiaConfig;
use skia_experiments::{row, Args};
use skia_frontend::{BtbMode, FrontendConfig};

fn main() {
    // No simulations here; parsing still validates flags (and rejects
    // unknown ones) so all figure binaries share one CLI surface.
    let args = Args::parse();
    let mut em = args.emitter();
    // The only phase here is rendering the table itself; the span keeps
    // table1 from being the one experiment with an empty phase rollup.
    let render_span = skia_telemetry::span("table.render");
    let c = FrontendConfig::alder_lake_like();
    let skia = SkiaConfig::default();

    println!("# Table 1: processor configuration (Alder-Lake/Golden-Cove-like)\n");
    row(&["Field / Model".into(), "Value".into()]);
    row(&["---".into(), "---".into()]);
    row(&["ISA".into(), "x86-64 subset (skia-isa)".into()]);
    let h = c.hierarchy;
    row(&[
        "Private L1-I Cache".into(),
        format!(
            "{}KB ({}-way, {}B)",
            h.l1i.size_bytes / 1024,
            h.l1i.ways,
            h.l1i.line_bytes
        ),
    ]);
    row(&[
        "Private L2 Cache".into(),
        format!(
            "{}KB ({}-way, {}B)",
            h.l2.size_bytes / 1024,
            h.l2.ways,
            h.l2.line_bytes
        ),
    ]);
    row(&[
        "Shared L3 Cache".into(),
        format!(
            "{}KB ({}-way, {}B)",
            h.l3.size_bytes / 1024,
            h.l3.ways,
            h.l3.line_bytes
        ),
    ]);
    row(&[
        "Branch Predictor".into(),
        format!("TAGE-class ({:.1}KB) + ITTAGE", c.tage.storage_kb()),
    ]);
    match c.btb {
        BtbMode::Finite(b) => row(&[
            "BTB Size".into(),
            format!(
                "{}-entry / {:.0}KB ({}-way)",
                b.entries,
                b.storage_kb(),
                b.ways
            ),
        ]),
        BtbMode::Infinite => row(&["BTB Size".into(), "infinite".into()]),
    }
    row(&[
        "U-SBB Size".into(),
        format!(
            "{:.4}KB ({} entries, {}-way)",
            skia.sbb.u_entries as f64 * 78.0 / 8.0 / 1024.0,
            skia.sbb.u_entries,
            skia.sbb.ways
        ),
    ]);
    row(&[
        "R-SBB Size".into(),
        format!(
            "{:.4}KB ({} entries, {}-way)",
            skia.sbb.r_entries as f64 * 20.0 / 8.0 / 1024.0,
            skia.sbb.r_entries,
            skia.sbb.ways
        ),
    ]);
    row(&["FTQ".into(), format!("{} entries", c.ftq_depth)]);
    row(&[
        "Decode / Retire".into(),
        format!("{} / {} wide", c.decode_width, c.retire_width),
    ]);
    row(&[
        "Resteer penalties".into(),
        format!(
            "decode-detect +1, execute-detect +{}, repair {}",
            c.exec_detect, c.decode_repair
        ),
    ]);
    drop(render_span);
    em.finish();
}
