//! Calibration probe: per-benchmark headline metrics under the baseline and
//! Skia configurations. Not a paper figure — a development tool to check
//! that the synthetic workloads land in the paper's qualitative regime
//! (L1-I MPKI > 10, high BTB miss L1-I residency, Skia speedups).

use skia_experiments::{steps_from_env, JsonEmitter, StandingConfig, Workload};
use skia_workloads::profiles::PAPER_BENCHMARKS;

fn main() {
    let steps = steps_from_env();
    let mut em = JsonEmitter::from_args();
    let names: Vec<&str> = std::env::args()
        .skip(1)
        .map(|s| &*s.leak())
        .collect::<Vec<_>>();
    let names = if names.is_empty() {
        PAPER_BENCHMARKS.to_vec()
    } else {
        names
    };

    println!(
        "{:<16} {:>7} {:>8} {:>8} {:>7} {:>8} {:>8} {:>9} {:>8} {:>8}",
        "bench",
        "ipc",
        "ipcSkia",
        "speedup",
        "l1iMPKI",
        "btbMPKI",
        "l1iRes%",
        "rescues/KI",
        "bogus",
        "condMPKI"
    );
    for name in names {
        let w = Workload::by_name(name);
        let base = w.run_emit(StandingConfig::Btb(8192).frontend(), steps, &mut em);
        let mut skia_cfg = skia_core::SkiaConfig::default();
        if let Ok(p) = std::env::var("SKIA_POLICY") {
            skia_cfg.index_policy = match p.as_str() {
                "zero" => skia_core::IndexPolicy::Zero,
                "merge" => skia_core::IndexPolicy::Merge,
                _ => skia_core::IndexPolicy::First,
            };
        }
        let skia = w.run_emit(
            skia_frontend::FrontendConfig::alder_lake_like()
                .with_btb_entries(8192)
                .with_skia(skia_cfg),
            steps,
            &mut em,
        );
        let sk = skia.skia.as_ref().expect("skia stats");
        println!(
            "{:<16} {:>7.3} {:>8.3} {:>7.2}% {:>7.1} {:>8.2} {:>7.1}% {:>9.2} {:>8} {:>8.2}",
            name,
            base.ipc(),
            skia.ipc(),
            (skia.speedup_over(&base) - 1.0) * 100.0,
            base.l1i_mpki(),
            base.btb_mpki(),
            base.btb_miss_l1i_resident_fraction() * 100.0,
            skia.sbb_rescues as f64 * 1000.0 / skia.instructions as f64,
            sk.bogus_uses,
            base.cond_mpki(),
        );
        if std::env::var("SKIA_VERBOSE").is_ok() {
            println!(
                "    sbd: headReg={} headValid={} headDisc={} headBr={} tailReg={} tailBr={}",
                sk.sbd.head_regions,
                sk.sbd.head_regions_valid,
                sk.sbd.head_regions_discarded,
                sk.sbd.head_branches,
                sk.sbd.tail_regions,
                sk.sbd.tail_branches
            );
            println!(
                "    sbb: uIns={} rIns={} uHits={} rHits={} filtered={} | miss breakdown: {:?}",
                sk.sbb.u_inserts,
                sk.sbb.r_inserts,
                sk.sbb.u_hits,
                sk.sbb.r_hits,
                sk.filtered_known,
                base.btb_misses_by_kind
            );
            println!(
                "    resteers: dec={} exec={} bogus={} | missTaken={} rescuable={} wrongPathBlocks={}",
                base.decode_resteers,
                base.exec_resteers,
                base.bogus_resteers,
                base.btb_miss_taken,
                base.btb_miss_rescuable,
                base.wrong_path_blocks
            );
            // Rescue ceiling: a 100× SBB shows whether the limit is SBB
            // capacity or shadow-decode opportunity.
            let mut huge = skia_core::SkiaConfig::default();
            huge.sbb = huge.sbb.scaled(100.0);
            let ceiling = w.run_emit(
                skia_frontend::FrontendConfig::alder_lake_like()
                    .with_btb_entries(8192)
                    .with_skia(huge),
                steps,
                &mut em,
            );
            println!(
                "    ceiling: rescues/KI={:.2} (rescuable/KI={:.2}, seenBefore/KI={:.2})",
                ceiling.sbb_rescues as f64 * 1000.0 / ceiling.instructions as f64,
                ceiling.btb_miss_rescuable as f64 * 1000.0 / ceiling.instructions as f64,
                ceiling.rescuable_seen_before as f64 * 1000.0 / ceiling.instructions as f64,
            );
        }
    }
    em.finish();
}
