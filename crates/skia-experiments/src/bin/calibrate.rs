//! Calibration probe: per-benchmark headline metrics under the baseline and
//! Skia configurations. Not a paper figure — a development tool to check
//! that the synthetic workloads land in the paper's qualitative regime
//! (L1-I MPKI > 10, high BTB miss L1-I residency, Skia speedups).

use skia_experiments::{steps_from_env, Args, StandingConfig, Sweep};
use skia_frontend::FrontendConfig;

fn main() {
    let steps = steps_from_env();
    let args = Args::parse_with_names();
    let mut em = args.emitter();
    let names: Vec<String> = if args.names.is_empty() {
        args.benchmarks().iter().map(|s| s.to_string()).collect()
    } else {
        args.names.clone()
    };

    let mut skia_cfg = skia_core::SkiaConfig::default();
    if let Ok(p) = std::env::var("SKIA_POLICY") {
        skia_cfg.index_policy = match p.as_str() {
            "zero" => skia_core::IndexPolicy::Zero,
            "merge" => skia_core::IndexPolicy::Merge,
            _ => skia_core::IndexPolicy::First,
        };
    }
    let verbose = std::env::var("SKIA_VERBOSE").is_ok();

    // Per benchmark: base, skia, and (verbose only) the 100× SBB ceiling
    // run, in the original serial order.
    let mut sweep = Sweep::from_args(&args);
    let ids: Vec<(usize, usize, Option<usize>)> = names
        .iter()
        .map(|name| {
            let base = sweep.add(name, StandingConfig::Btb(8192).frontend(), steps);
            let skia = sweep.add(
                name,
                FrontendConfig::alder_lake_like()
                    .with_btb_entries(8192)
                    .with_skia(skia_cfg),
                steps,
            );
            let ceiling = verbose.then(|| {
                // Rescue ceiling: a 100× SBB shows whether the limit is SBB
                // capacity or shadow-decode opportunity.
                let huge = skia_core::SkiaConfig {
                    sbb: skia_core::SkiaConfig::default().sbb.scaled(100.0),
                    ..skia_core::SkiaConfig::default()
                };
                sweep.add(
                    name,
                    FrontendConfig::alder_lake_like()
                        .with_btb_entries(8192)
                        .with_skia(huge),
                    steps,
                )
            });
            (base, skia, ceiling)
        })
        .collect();
    let stats = sweep.run(&mut em);

    println!(
        "{:<16} {:>7} {:>8} {:>8} {:>7} {:>8} {:>8} {:>9} {:>8} {:>8}",
        "bench",
        "ipc",
        "ipcSkia",
        "speedup",
        "l1iMPKI",
        "btbMPKI",
        "l1iRes%",
        "rescues/KI",
        "bogus",
        "condMPKI"
    );
    for (name, &(base_id, skia_id, ceiling_id)) in names.iter().zip(&ids) {
        let base = &stats[base_id];
        let skia = &stats[skia_id];
        let sk = skia.skia.as_ref().expect("skia stats");
        println!(
            "{:<16} {:>7.3} {:>8.3} {:>7.2}% {:>7.1} {:>8.2} {:>7.1}% {:>9.2} {:>8} {:>8.2}",
            name,
            base.ipc(),
            skia.ipc(),
            (skia.speedup_over(base) - 1.0) * 100.0,
            base.l1i_mpki(),
            base.btb_mpki(),
            base.btb_miss_l1i_resident_fraction() * 100.0,
            skia.sbb_rescues as f64 * 1000.0 / skia.instructions as f64,
            sk.bogus_uses,
            base.cond_mpki(),
        );
        if let Some(ceiling_id) = ceiling_id {
            println!(
                "    sbd: headReg={} headValid={} headDisc={} headBr={} tailReg={} tailBr={}",
                sk.sbd.head_regions,
                sk.sbd.head_regions_valid,
                sk.sbd.head_regions_discarded,
                sk.sbd.head_branches,
                sk.sbd.tail_regions,
                sk.sbd.tail_branches
            );
            println!(
                "    sbb: uIns={} rIns={} uHits={} rHits={} filtered={} | miss breakdown: {:?}",
                sk.sbb.u_inserts,
                sk.sbb.r_inserts,
                sk.sbb.u_hits,
                sk.sbb.r_hits,
                sk.filtered_known,
                base.btb_misses_by_kind
            );
            println!(
                "    resteers: dec={} exec={} bogus={} | missTaken={} rescuable={} wrongPathBlocks={}",
                base.decode_resteers,
                base.exec_resteers,
                base.bogus_resteers,
                base.btb_miss_taken,
                base.btb_miss_rescuable,
                base.wrong_path_blocks
            );
            let ceiling = &stats[ceiling_id];
            println!(
                "    ceiling: rescues/KI={:.2} (rescuable/KI={:.2}, seenBefore/KI={:.2})",
                ceiling.sbb_rescues as f64 * 1000.0 / ceiling.instructions as f64,
                ceiling.btb_miss_rescuable as f64 * 1000.0 / ceiling.instructions as f64,
                ceiling.rescuable_seen_before as f64 * 1000.0 / ceiling.instructions as f64,
            );
        }
    }
    em.finish();
}
