//! Figure 16: per-benchmark BTB miss MPKI under three configurations —
//! the 8K-entry baseline BTB, the same BTB grown by 12.25 KB, and the
//! baseline plus Skia's 12.25 KB SBB.
//!
//! Paper's shape: Skia reduces BTB MPKI far more than giving the same
//! storage to the BTB (§6.1.3). An SBB rescue removes the miss penalty even
//! though the BTB still missed, so the Skia column reports *effective*
//! misses (misses that actually disturbed the front-end).

use skia_experiments::{f2, row, steps_from_env, Args, StandingConfig, Sweep};

fn main() {
    let steps = steps_from_env();
    let args = Args::parse();
    let mut em = args.emitter();
    let benches = args.benchmarks();

    let mut sweep = Sweep::from_args(&args);
    let ids: Vec<[usize; 3]> = benches
        .iter()
        .map(|name| {
            [
                sweep.add(name, StandingConfig::Btb(8192).frontend(), steps),
                sweep.add(name, StandingConfig::BtbPlusBudget(8192).frontend(), steps),
                sweep.add(name, StandingConfig::BtbPlusSkia(8192).frontend(), steps),
            ]
        })
        .collect();
    let stats = sweep.run(&mut em);

    println!("# Figure 16: BTB miss MPKI per benchmark (8K baseline)\n");
    row(&[
        "benchmark".into(),
        "baseline BTB".into(),
        "BTB+12.25KB".into(),
        "BTB+SBB (effective)".into(),
    ]);
    row(&vec!["---".to_string(); 4]);

    let mut sums = [0.0f64; 3];
    for (name, &[base_id, grown_id, skia_id]) in benches.iter().zip(&ids) {
        let base = &stats[base_id];
        let grown = &stats[grown_id];
        let skia = &stats[skia_id];
        let effective =
            (skia.btb_misses - skia.sbb_rescues) as f64 * 1000.0 / skia.instructions as f64;
        sums[0] += base.btb_mpki();
        sums[1] += grown.btb_mpki();
        sums[2] += effective;
        row(&[
            name.to_string(),
            f2(base.btb_mpki()),
            f2(grown.btb_mpki()),
            f2(effective),
        ]);
    }
    let n = benches.len().max(1) as f64;
    row(&[
        "**mean**".into(),
        f2(sums[0] / n),
        f2(sums[1] / n),
        f2(sums[2] / n),
    ]);
    println!(
        "\nMean reduction: BTB+12.25KB {:.1}%, Skia {:.1}% \
         (paper: ~35% vs ~115% expressed as relative ratios)",
        (1.0 - sums[1] / sums[0]) * 100.0,
        (1.0 - sums[2] / sums[0]) * 100.0
    );
    em.finish();
}
