//! Figure 6: BTB misses by branch type for the 8K-entry (78 KB) BTB, per
//! benchmark.
//!
//! Paper's shape: indirect branches are a vanishing fraction everywhere;
//! OLTP workloads (voter, sibench) are call/return heavy; kafka is
//! conditional-heavy.

use skia_experiments::{row, steps_from_env, Args, StandingConfig, Sweep};
use skia_isa::BranchKind;

fn main() {
    let steps = steps_from_env();
    let args = Args::parse();
    let mut em = args.emitter();
    let benches = args.benchmarks();

    let mut sweep = Sweep::from_args(&args);
    let ids: Vec<usize> = benches
        .iter()
        .map(|name| sweep.add(name, StandingConfig::Btb(8192).frontend(), steps))
        .collect();
    let stats = sweep.run(&mut em);

    println!("# Figure 6: BTB misses by type (8K-entry BTB), % of each benchmark's misses\n");
    let mut header = vec!["benchmark".to_string(), "MPKI".to_string()];
    header.extend(BranchKind::ALL.iter().map(|k| k.label().to_string()));
    row(&header);
    row(&vec!["---".to_string(); header.len()]);

    for (name, &id) in benches.iter().zip(&ids) {
        let s = &stats[id];
        let total = s.btb_misses.max(1) as f64;
        let mut cells = vec![name.to_string(), format!("{:.2}", s.btb_mpki())];
        for kind in BranchKind::ALL {
            cells.push(format!(
                "{:.1}%",
                s.btb_misses_of(kind) as f64 * 100.0 / total
            ));
        }
        row(&cells);
    }
    em.finish();
}
