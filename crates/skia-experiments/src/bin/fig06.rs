//! Figure 6: BTB misses by branch type for the 8K-entry (78 KB) BTB, per
//! benchmark.
//!
//! Paper's shape: indirect branches are a vanishing fraction everywhere;
//! OLTP workloads (voter, sibench) are call/return heavy; kafka is
//! conditional-heavy.

use skia_experiments::{row, steps_from_env, JsonEmitter, StandingConfig, Workload};
use skia_isa::BranchKind;
use skia_workloads::profiles::PAPER_BENCHMARKS;

fn main() {
    let steps = steps_from_env();
    let mut em = JsonEmitter::from_args();

    println!("# Figure 6: BTB misses by type (8K-entry BTB), % of each benchmark's misses\n");
    let mut header = vec!["benchmark".to_string(), "MPKI".to_string()];
    header.extend(BranchKind::ALL.iter().map(|k| k.label().to_string()));
    row(&header);
    row(&vec!["---".to_string(); header.len()]);

    for name in PAPER_BENCHMARKS {
        let w = Workload::by_name(name);
        let stats = w.run_emit(StandingConfig::Btb(8192).frontend(), steps, &mut em);
        let total = stats.btb_misses.max(1) as f64;
        let mut cells = vec![name.to_string(), format!("{:.2}", stats.btb_mpki())];
        for kind in BranchKind::ALL {
            cells.push(format!(
                "{:.1}%",
                stats.btb_misses_of(kind) as f64 * 100.0 / total
            ));
        }
        row(&cells);
    }
    em.finish();
}
