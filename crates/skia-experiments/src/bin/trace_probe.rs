//! Diagnostic: trace-concentration statistics for one workload (development
//! tool; not a paper figure). Usage: `trace_probe <benchmark>`.
use skia_experiments::{steps_from_env, Workload};
use skia_workloads::Walker;
use std::collections::HashMap;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "sibench".into());
    let steps = steps_from_env();
    let w = Workload::by_name(&name);
    let mut blocks: HashMap<u64, u64> = HashMap::new();
    let mut fns: HashMap<u32, u64> = HashMap::new();
    let mut insns = 0u64;
    let mut kinds = [0u64; 6];
    for s in Walker::new(
        &w.program,
        w.profile.trace_seed,
        w.profile.spec.mean_trip_count,
    )
    .take(steps)
    {
        *blocks.entry(s.block_start).or_default() += 1;
        if let Some((fi, _)) = w.program.locate_block(s.block_start) {
            *fns.entry(fi).or_default() += 1;
        }
        insns += u64::from(s.insns);
        let idx = skia_isa::BranchKind::ALL
            .iter()
            .position(|&k| k == s.kind)
            .unwrap();
        kinds[idx] += 1;
    }
    let mut counts: Vec<u64> = blocks.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = counts.iter().sum();
    let top100: u64 = counts.iter().take(100).sum();
    println!(
        "{name}: {} steps, {} insns, {} distinct blocks ({} static), {} distinct fns ({} static)",
        steps,
        insns,
        blocks.len(),
        w.program
            .functions()
            .iter()
            .map(|f| f.blocks.len())
            .sum::<usize>(),
        fns.len(),
        w.program.functions().len()
    );
    println!(
        "top-100 blocks cover {:.1}% of steps",
        top100 as f64 * 100.0 / total as f64
    );
    println!("kind mix: {:?} (cond,uncond,call,ret,ijmp,icall)", kinds);
}
