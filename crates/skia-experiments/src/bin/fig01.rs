//! Figure 1: average BTB miss MPKI across the 16 workloads, and the portion
//! of those misses whose cache line is already L1-I-resident, for BTB sizes
//! 1K–16K entries.
//!
//! Paper's headline observation: at 8K entries ~75% of BTB misses are
//! resident in the L1-I.

use skia_experiments::{f2, pct, row, steps_from_env, Args, StandingConfig, Sweep};

fn main() {
    let steps = steps_from_env();
    let args = Args::parse();
    let mut em = args.emitter();
    let benches = args.benchmarks();
    let sizes = [1024usize, 2048, 4096, 8192, 16384];

    let mut sweep = Sweep::from_args(&args);
    let ids: Vec<Vec<usize>> = sizes
        .iter()
        .map(|&entries| {
            benches
                .iter()
                .map(|name| sweep.add(name, StandingConfig::Btb(entries).frontend(), steps))
                .collect()
        })
        .collect();
    let stats = sweep.run(&mut em);

    println!("# Figure 1: BTB MPKI and L1-I-resident fraction vs BTB size\n");
    row(&[
        "BTB entries".into(),
        "BTB MPKI (avg)".into(),
        "L1-I-resident MPKI (avg)".into(),
        "resident fraction".into(),
    ]);
    row(&["---".into(), "---".into(), "---".into(), "---".into()]);

    for (si, entries) in sizes.iter().enumerate() {
        let mut mpki_sum = 0.0;
        let mut res_sum = 0.0;
        for &id in &ids[si] {
            mpki_sum += stats[id].btb_mpki();
            res_sum += stats[id].btb_miss_l1i_resident_mpki();
        }
        let n = benches.len().max(1) as f64;
        let mpki = mpki_sum / n;
        let res = res_sum / n;
        row(&[
            format!("{entries}"),
            f2(mpki),
            f2(res),
            pct(if mpki > 0.0 { res / mpki } else { 0.0 }),
        ]);
    }
    em.finish();
}
