//! Figure 3: geomean speedup (relative to a 4K-entry BTB) across BTB sizes
//! for four configurations: plain BTB, BTB+12.25KB, BTB+SBB (Skia), and an
//! infinite fully-associative BTB.
//!
//! Paper's shape: Skia beats spending the same 12.25 KB on BTB entries at
//! every size until saturation near the infinite-BTB ceiling.

use skia_experiments::{f2, geomean, row, steps_from_env, JsonEmitter, StandingConfig, Workload};
use skia_frontend::SimStats;
use skia_workloads::profiles::PAPER_BENCHMARKS;

fn main() {
    let steps = steps_from_env();
    let mut em = JsonEmitter::from_args();
    let sizes = [4096usize, 8192, 16384, 32768];

    // Reference: 4K-entry plain BTB per benchmark.
    let workloads: Vec<Workload> = PAPER_BENCHMARKS
        .iter()
        .map(|n| Workload::by_name(n))
        .collect();
    let reference: Vec<SimStats> = workloads
        .iter()
        .map(|w| w.run_emit(StandingConfig::Btb(4096).frontend(), steps, &mut em))
        .collect();

    let geo_speedup = |configs: &[SimStats]| -> f64 {
        geomean(
            configs
                .iter()
                .zip(&reference)
                .map(|(c, r)| c.speedup_over(r)),
        )
    };

    let infinite: Vec<SimStats> = workloads
        .iter()
        .map(|w| w.run_emit(StandingConfig::Infinite.frontend(), steps, &mut em))
        .collect();
    let inf_speedup = geo_speedup(&infinite);

    println!("# Figure 3: geomean speedup over 4K-entry BTB\n");
    row(&[
        "BTB entries".into(),
        "BTB".into(),
        "BTB+12.25KB".into(),
        "BTB+SBB (Skia)".into(),
        "Infinite BTB".into(),
    ]);
    row(&vec!["---".to_string(); 5]);

    for entries in sizes {
        let btb: Vec<SimStats> = workloads
            .iter()
            .map(|w| w.run_emit(StandingConfig::Btb(entries).frontend(), steps, &mut em))
            .collect();
        let grown: Vec<SimStats> = workloads
            .iter()
            .map(|w| {
                w.run_emit(
                    StandingConfig::BtbPlusBudget(entries).frontend(),
                    steps,
                    &mut em,
                )
            })
            .collect();
        let skia: Vec<SimStats> = workloads
            .iter()
            .map(|w| {
                w.run_emit(
                    StandingConfig::BtbPlusSkia(entries).frontend(),
                    steps,
                    &mut em,
                )
            })
            .collect();
        row(&[
            format!("{entries}"),
            f2(geo_speedup(&btb)),
            f2(geo_speedup(&grown)),
            f2(geo_speedup(&skia)),
            f2(inf_speedup),
        ]);
    }
    em.finish();
}
