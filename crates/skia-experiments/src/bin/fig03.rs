//! Figure 3: geomean speedup (relative to a 4K-entry BTB) across BTB sizes
//! for four configurations: plain BTB, BTB+12.25KB, BTB+SBB (Skia), and an
//! infinite fully-associative BTB.
//!
//! Paper's shape: Skia beats spending the same 12.25 KB on BTB entries at
//! every size until saturation near the infinite-BTB ceiling.

use skia_experiments::{f2, geomean, row, steps_from_env, Args, StandingConfig, Sweep};

fn main() {
    let steps = steps_from_env();
    let args = Args::parse();
    let mut em = args.emitter();
    let benches = args.benchmarks();
    let sizes = [4096usize, 8192, 16384, 32768];

    let mut sweep = Sweep::from_args(&args);
    // Reference: 4K-entry plain BTB per benchmark.
    let ref_ids: Vec<usize> = benches
        .iter()
        .map(|n| sweep.add(n, StandingConfig::Btb(4096).frontend(), steps))
        .collect();
    let inf_ids: Vec<usize> = benches
        .iter()
        .map(|n| sweep.add(n, StandingConfig::Infinite.frontend(), steps))
        .collect();
    let size_ids: Vec<[Vec<usize>; 3]> = sizes
        .iter()
        .map(|&entries| {
            let btb = benches
                .iter()
                .map(|n| sweep.add(n, StandingConfig::Btb(entries).frontend(), steps))
                .collect();
            let grown = benches
                .iter()
                .map(|n| sweep.add(n, StandingConfig::BtbPlusBudget(entries).frontend(), steps))
                .collect();
            let skia = benches
                .iter()
                .map(|n| sweep.add(n, StandingConfig::BtbPlusSkia(entries).frontend(), steps))
                .collect();
            [btb, grown, skia]
        })
        .collect();
    let stats = sweep.run(&mut em);

    let geo_speedup = |ids: &[usize]| -> f64 {
        geomean(
            ids.iter()
                .zip(&ref_ids)
                .map(|(&c, &r)| stats[c].speedup_over(&stats[r])),
        )
    };
    let inf_speedup = geo_speedup(&inf_ids);

    println!("# Figure 3: geomean speedup over 4K-entry BTB\n");
    row(&[
        "BTB entries".into(),
        "BTB".into(),
        "BTB+12.25KB".into(),
        "BTB+SBB (Skia)".into(),
        "Infinite BTB".into(),
    ]);
    row(&vec!["---".to_string(); 5]);

    for (entries, [btb, grown, skia]) in sizes.iter().zip(&size_ids) {
        row(&[
            format!("{entries}"),
            f2(geo_speedup(btb)),
            f2(geo_speedup(grown)),
            f2(geo_speedup(skia)),
            f2(inf_speedup),
        ]);
    }
    em.finish();
}
