//! Table 2: the benchmark suite, with the generated-programs' footprints.

use skia_experiments::row;
use skia_workloads::profiles::{profile, PAPER_BENCHMARKS};
use skia_workloads::Program;

fn main() {
    println!("# Table 2: benchmarks (synthetic profiles standing in for the paper's suite)\n");
    row(&[
        "benchmark".into(),
        "suite".into(),
        "functions".into(),
        "code KB".into(),
        "static branches".into(),
        "layout".into(),
    ]);
    row(&vec!["---".to_string(); 6]);

    let mut names: Vec<&str> = PAPER_BENCHMARKS.to_vec();
    names.push("verilator_prebolt");
    for name in names {
        let p = profile(name).expect("known benchmark");
        let prog = Program::generate(&p.spec);
        row(&[
            p.name.to_string(),
            p.suite.to_string(),
            format!("{}", p.spec.functions),
            format!("{}", prog.code_bytes() / 1024),
            format!("{}", prog.branch_count()),
            format!("{:?}", p.spec.layout),
        ]);
    }
}
