//! Table 2: the benchmark suite, with the generated-programs' footprints.

use skia_experiments::{row, Args};
use skia_workloads::profiles::{profile, PAPER_BENCHMARKS};

fn main() {
    let args = Args::parse();
    let mut em = args.emitter();
    let mut all: Vec<&str> = PAPER_BENCHMARKS.to_vec();
    all.push("verilator_prebolt");
    let names = args.filter_names(&all);

    println!("# Table 2: benchmarks (synthetic profiles standing in for the paper's suite)\n");
    row(&[
        "benchmark".into(),
        "suite".into(),
        "functions".into(),
        "code KB".into(),
        "static branches".into(),
        "layout".into(),
    ]);
    row(&vec!["---".to_string(); 6]);

    for name in names {
        let p = profile(name).expect("known benchmark");
        let prog = skia_workloads::load_or_generate(&p.spec);
        row(&[
            p.name.to_string(),
            p.suite.to_string(),
            format!("{}", p.spec.functions),
            format!("{}", prog.code_bytes() / 1024),
            format!("{}", prog.branch_count()),
            format!("{:?}", p.spec.layout),
        ]);
    }
    em.finish();
}
