//! Ablation table: the design choices DESIGN.md calls out, measured at
//! full experiment scale on a representative subset of benchmarks.
//! (The Criterion `ablations` bench measures the same knobs at small scale
//! with timing; this binary prints the metric table.)

use skia_core::{IndexPolicy, SbbConfig, SkiaConfig};
use skia_experiments::{geomean, row, steps_from_env, JsonEmitter, StandingConfig, Workload};
use skia_frontend::FrontendConfig;

const BENCHES: [&str; 5] = ["tpcc", "voter", "kafka", "dotty", "ycsb"];

fn measure(skia: SkiaConfig, steps: usize, em: &mut JsonEmitter) -> (f64, f64, f64) {
    let mut speedups = Vec::new();
    let mut rescues = 0u64;
    let mut bogus = 0u64;
    let mut insns = 0u64;
    for name in BENCHES {
        let w = Workload::by_name(name);
        let base = w.run_emit(StandingConfig::Btb(8192).frontend(), steps, em);
        let s = w.run_emit(
            FrontendConfig::alder_lake_like()
                .with_btb_entries(8192)
                .with_skia(skia),
            steps,
            em,
        );
        speedups.push(s.speedup_over(&base));
        rescues += s.sbb_rescues;
        insns += s.instructions;
        if let Some(sk) = &s.skia {
            bogus += sk.bogus_uses;
        }
    }
    (
        (geomean(speedups) - 1.0) * 100.0,
        rescues as f64 * 1000.0 / insns as f64,
        bogus as f64 * 1000.0 / insns as f64,
    )
}

fn print_row(name: &str, skia: SkiaConfig, steps: usize, em: &mut JsonEmitter) {
    let (speedup, rescues, bogus) = measure(skia, steps, em);
    row(&[
        name.to_string(),
        format!("{speedup:+.2}%"),
        format!("{rescues:.2}"),
        format!("{bogus:.3}"),
    ]);
}

fn main() {
    let steps = steps_from_env();
    let mut em = JsonEmitter::from_args();

    println!("# Ablations (geomean over {:?})\n", BENCHES);
    row(&[
        "configuration".into(),
        "speedup".into(),
        "rescues/KI".into(),
        "bogus-uses/KI".into(),
    ]);
    row(&vec!["---".to_string(); 4]);

    print_row(
        "default (merge, ≤6 families, retired-LRU)",
        SkiaConfig::default(),
        steps,
        &mut em,
    );
    for policy in IndexPolicy::ALL {
        print_row(
            &format!("index policy = {}", policy.label()),
            SkiaConfig {
                index_policy: policy,
                ..SkiaConfig::default()
            },
            steps,
            &mut em,
        );
    }
    for bound in [1usize, 2, 8] {
        print_row(
            &format!("max valid families = {bound}"),
            SkiaConfig {
                max_valid_paths: bound,
                ..SkiaConfig::default()
            },
            steps,
            &mut em,
        );
    }
    print_row(
        "plain LRU (no retired bit)",
        SkiaConfig {
            retired_bit_replacement: false,
            ..SkiaConfig::default()
        },
        steps,
        &mut em,
    );
    print_row(
        "filter BTB-resident inserts",
        SkiaConfig {
            filter_btb_resident: true,
            ..SkiaConfig::default()
        },
        steps,
        &mut em,
    );
    print_row(
        "all-U split (~12.25KB)",
        SkiaConfig {
            sbb: SbbConfig::with_budget(12.25, 0.97, 4),
            ..SkiaConfig::default()
        },
        steps,
        &mut em,
    );
    print_row(
        "all-R split (~12.25KB)",
        SkiaConfig {
            sbb: SbbConfig::with_budget(12.25, 0.03, 4),
            ..SkiaConfig::default()
        },
        steps,
        &mut em,
    );
    em.finish();
}
