//! Ablation table: the design choices DESIGN.md calls out, measured at
//! full experiment scale on a representative subset of benchmarks.
//! (The Criterion `ablations` bench measures the same knobs at small scale
//! with timing; this binary prints the metric table.)

use skia_core::{IndexPolicy, SbbConfig, SkiaConfig};
use skia_experiments::{geomean, row, steps_from_env, Args, StandingConfig, Sweep};
use skia_frontend::FrontendConfig;

const BENCHES: [&str; 5] = ["tpcc", "voter", "kafka", "dotty", "ycsb"];

fn main() {
    let steps = steps_from_env();
    let args = Args::parse();
    let mut em = args.emitter();
    let benches = args.filter_names(&BENCHES);

    // Enumerate every configuration row up front: (label, skia config).
    let mut configs: Vec<(String, SkiaConfig)> = vec![(
        "default (merge, ≤6 families, retired-LRU)".to_string(),
        SkiaConfig::default(),
    )];
    for policy in IndexPolicy::ALL {
        configs.push((
            format!("index policy = {}", policy.label()),
            SkiaConfig {
                index_policy: policy,
                ..SkiaConfig::default()
            },
        ));
    }
    for bound in [1usize, 2, 8] {
        configs.push((
            format!("max valid families = {bound}"),
            SkiaConfig {
                max_valid_paths: bound,
                ..SkiaConfig::default()
            },
        ));
    }
    configs.push((
        "plain LRU (no retired bit)".to_string(),
        SkiaConfig {
            retired_bit_replacement: false,
            ..SkiaConfig::default()
        },
    ));
    configs.push((
        "filter BTB-resident inserts".to_string(),
        SkiaConfig {
            filter_btb_resident: true,
            ..SkiaConfig::default()
        },
    ));
    configs.push((
        "all-U split (~12.25KB)".to_string(),
        SkiaConfig {
            sbb: SbbConfig::with_budget(12.25, 0.97, 4),
            ..SkiaConfig::default()
        },
    ));
    configs.push((
        "all-R split (~12.25KB)".to_string(),
        SkiaConfig {
            sbb: SbbConfig::with_budget(12.25, 0.03, 4),
            ..SkiaConfig::default()
        },
    ));

    // Per configuration: (base, skia) ids per benchmark in serial order.
    let mut sweep = Sweep::from_args(&args);
    let config_ids: Vec<Vec<(usize, usize)>> = configs
        .iter()
        .map(|(_, skia)| {
            benches
                .iter()
                .map(|name| {
                    let base = sweep.add(name, StandingConfig::Btb(8192).frontend(), steps);
                    let cfg = FrontendConfig::alder_lake_like()
                        .with_btb_entries(8192)
                        .with_skia(*skia);
                    (base, sweep.add(name, cfg, steps))
                })
                .collect()
        })
        .collect();
    let stats = sweep.run(&mut em);

    println!("# Ablations (geomean over {benches:?})\n");
    row(&[
        "configuration".into(),
        "speedup".into(),
        "rescues/KI".into(),
        "bogus-uses/KI".into(),
    ]);
    row(&vec!["---".to_string(); 4]);

    for ((label, _), ids) in configs.iter().zip(&config_ids) {
        let mut speedups = Vec::new();
        let mut rescues = 0u64;
        let mut bogus = 0u64;
        let mut insns = 0u64;
        for &(base_id, skia_id) in ids {
            let s = &stats[skia_id];
            speedups.push(s.speedup_over(&stats[base_id]));
            rescues += s.sbb_rescues;
            insns += s.instructions;
            if let Some(sk) = &s.skia {
                bogus += sk.bogus_uses;
            }
        }
        row(&[
            label.clone(),
            format!("{:+.2}%", (geomean(speedups) - 1.0) * 100.0),
            format!("{:.2}", rescues as f64 * 1000.0 / insns as f64),
            format!("{:.3}", bogus as f64 * 1000.0 / insns as f64),
        ]);
    }
    em.finish();
}
