//! Sampling probe: measure the sampled-vs-full speedup and error profile at
//! paper scale, and (re)generate the committed error pins.
//!
//! Not a paper figure — the development/CI tool behind the phase-sampling
//! acceptance criteria. For each figure workload it replays the recorded
//! trace twice — full batched replay, then the default sampling plan — and
//! prints per-workload wall times, the realized compression, and the
//! relative error of every pinned and informational counter. With
//! `--write-pins` it rewrites `ci/sampling-error-pins.json` from the same
//! runs (the file the `sampling_error_pins` test enforces).
//!
//! `SKIA_STEPS` scales the run; the committed pins are only meaningful at
//! the default 400k, so `--write-pins` refuses other step counts.

use std::time::Instant;

use skia_experiments::pins::{PinReport, PIN_COUNTERS, PIN_STEPS, PIN_WORKLOADS};
use skia_experiments::{f2, pct, recorded_trace, row, steps_from_env, workload};
use skia_workloads::{SamplingConfig, SamplingPlan};

fn main() {
    let write_pins = {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match argv.iter().map(String::as_str).collect::<Vec<_>>()[..] {
            [] => false,
            ["--write-pins"] => true,
            _ => {
                eprintln!("usage: sampling_probe [--write-pins]");
                std::process::exit(2);
            }
        }
    };
    let steps = steps_from_env();
    if write_pins && steps != PIN_STEPS {
        eprintln!("--write-pins requires the default {PIN_STEPS} steps (got SKIA_STEPS={steps})");
        std::process::exit(2);
    }

    let config = skia_experiments::pins::pin_config();
    let mut header = vec!["benchmark".into(), "full s".into(), "sampled s".into()];
    header.extend(["speedup".into(), "compress".into()]);
    header.extend(PIN_COUNTERS.iter().map(|&(n, _)| n.to_string()));
    row(&header);

    let (mut tot_full, mut tot_sampled) = (0.0f64, 0.0f64);
    for name in PIN_WORKLOADS {
        let w = workload(name);
        let trace = recorded_trace(name, steps);

        let t0 = Instant::now();
        let truth = w.run_trace(config.clone(), &trace, steps);
        let full_s = t0.elapsed().as_secs_f64();

        // The sampled side pays plan construction too — that cost is part
        // of the speedup claim, not overhead to hide.
        let t1 = Instant::now();
        let plan = SamplingPlan::build(&trace, steps, &SamplingConfig::for_steps(steps));
        let est = w.run_sampled_trace(config.clone(), &trace, &plan, None);
        let sampled_s = t1.elapsed().as_secs_f64();

        tot_full += full_s;
        tot_sampled += sampled_s;
        let mut cells = vec![
            name.to_string(),
            format!("{full_s:.3}"),
            format!("{sampled_s:.3}"),
            f2(full_s / sampled_s),
            f2(plan.compression()),
        ];
        cells.extend(
            PIN_COUNTERS
                .iter()
                .map(|&(_, get)| pct(skia_experiments::pins::rel_err(get(&est), get(&truth)))),
        );
        row(&cells);
    }
    println!();
    println!(
        "total: full {:.2}s, sampled {:.2}s, speedup {:.2}x",
        tot_full,
        tot_sampled,
        tot_full / tot_sampled
    );

    if write_pins {
        // Recompute through the shared pins path (workload + trace memos
        // make the extra replays cheap relative to clarity: the committed
        // file comes from exactly the code the test recomputes with).
        let report = PinReport::compute(steps);
        report
            .validate()
            .unwrap_or_else(|e| panic!("refusing to write failing pins: {e}"));
        let path = PinReport::committed_path();
        std::fs::write(&path, report.to_json())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("pins written to {}", path.display());
    }
}
