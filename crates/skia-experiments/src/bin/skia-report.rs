//! Aggregate the experiment suite's telemetry snapshots into a run
//! manifest, and diff manifests across runs.
//!
//! ```text
//! skia-report collect --out manifest.json [--md manifest.md] \
//!     [--chrome trace.json] results/*.telemetry.json
//! skia-report diff baseline.json new.json [--threshold 0.4] [--warn-only]
//! ```
//!
//! `collect` reads each `--emit-json` snapshot (the experiment name is the
//! file stem, minus a `.telemetry` suffix when present), writes the JSON
//! manifest to `--out`, and optionally a Markdown rendering and a merged
//! Chrome trace of every experiment's profiling spans. `diff` compares two
//! manifests: exit 0 when clean, 1 on regressions (0 with `--warn-only`),
//! 2 on usage errors.

use std::path::Path;
use std::process::ExitCode;

use skia_experiments::report::{chrome_trace, diff, Manifest, Severity, DEFAULT_THRESHOLD};
use skia_telemetry::Snapshot;

fn usage() -> ExitCode {
    eprintln!(
        "usage: skia-report collect --out <manifest.json> [--md <path>] [--chrome <path>] \
         <telemetry.json>...\n       skia-report diff <baseline.json> <new.json> \
         [--threshold <frac>] [--warn-only]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("collect") => collect(&argv[1..]),
        Some("diff") => run_diff(&argv[1..]),
        _ => usage(),
    }
}

/// The experiment name of a snapshot path: file stem minus `.telemetry`.
fn experiment_name(path: &Path) -> String {
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    stem.strip_suffix(".telemetry").unwrap_or(&stem).to_string()
}

fn collect(argv: &[String]) -> ExitCode {
    let mut out = None;
    let mut md = None;
    let mut chrome = None;
    let mut inputs = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().cloned(),
            "--md" => md = it.next().cloned(),
            "--chrome" => chrome = it.next().cloned(),
            _ if a.starts_with('-') => {
                eprintln!("error: unknown flag {a}");
                return usage();
            }
            _ => inputs.push(a.clone()),
        }
    }
    let Some(out) = out else {
        eprintln!("error: collect requires --out");
        return usage();
    };
    if inputs.is_empty() {
        eprintln!("error: collect requires at least one telemetry snapshot");
        return usage();
    }

    let mut snaps = Vec::with_capacity(inputs.len());
    for input in &inputs {
        let path = Path::new(input);
        let body = match std::fs::read_to_string(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: reading {input}: {e}");
                return ExitCode::from(2);
            }
        };
        let snap = match Snapshot::from_json_str(&body) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: parsing {input}: {e}");
                return ExitCode::from(2);
            }
        };
        snaps.push((experiment_name(path), snap));
    }

    let manifest = Manifest::from_snapshots(&snaps);
    if let Err(e) = write_file(&out, &manifest.to_json_string()) {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    if let Some(md) = md {
        if let Err(e) = write_file(&md, &manifest.to_markdown()) {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(chrome_path) = chrome {
        if let Err(e) = write_file(&chrome_path, &chrome_trace(&snaps)) {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    eprintln!(
        "manifest: {} experiment(s), {:.2}s total wall, {} steps -> {out}",
        manifest.experiments.len(),
        manifest.total_wall_ns() as f64 / 1e9,
        manifest.total_steps(),
    );
    ExitCode::SUCCESS
}

fn write_file(path: &str, body: &str) -> Result<(), String> {
    if let Some(dir) = Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))
}

fn run_diff(argv: &[String]) -> ExitCode {
    let mut threshold = DEFAULT_THRESHOLD;
    let mut warn_only = false;
    let mut paths = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if (0.0..1.0).contains(&t) => threshold = t,
                _ => {
                    eprintln!("error: --threshold requires a fraction in [0, 1)");
                    return usage();
                }
            },
            "--warn-only" => warn_only = true,
            _ if a.starts_with('-') => {
                eprintln!("error: unknown flag {a}");
                return usage();
            }
            _ => paths.push(a.clone()),
        }
    }
    let [baseline_path, new_path] = paths.as_slice() else {
        eprintln!("error: diff requires exactly two manifest paths");
        return usage();
    };
    let load = |p: &String| -> Result<Manifest, String> {
        let body = std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?;
        Manifest::from_json_str(&body).map_err(|e| format!("parsing {p}: {e}"))
    };
    let (baseline, new) = match (load(baseline_path), load(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let findings = diff(&baseline, &new, threshold);
    let regressions = findings
        .iter()
        .filter(|f| f.severity == Severity::Regression)
        .count();
    for f in &findings {
        let tag = match f.severity {
            Severity::Regression => "REGRESSION",
            Severity::Info => "info",
        };
        println!("{tag}: {}: {}", f.experiment, f.detail);
    }
    println!(
        "diff: {} experiment(s) compared, {} finding(s), {} regression(s)",
        baseline.experiments.len(),
        findings.len(),
        regressions,
    );
    if regressions > 0 && !warn_only {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
