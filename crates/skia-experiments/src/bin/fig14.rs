//! Figure 14: per-benchmark IPC gain over the 8K-entry BTB baseline for
//! head-only, tail-only, and combined shadow decoding; plus the §6.1.4
//! verilator pre-BOLT comparison and the §3.2.2 bogus-branch rate.
//!
//! Paper's shape: geomean ~5.6% combined, tail-only (~4.4%) above head-only
//! (~3.7%); low-BTB-miss benchmarks (finagle-chirper, kafka,
//! speedometer2.0) gain least; voter and sibench gain most.

use skia_core::SkiaConfig;
use skia_experiments::{geomean, row, steps_from_env, JsonEmitter, StandingConfig, Workload};
use skia_workloads::profiles::PAPER_BENCHMARKS;

fn main() {
    let steps = steps_from_env();
    let mut em = JsonEmitter::from_args();

    println!("# Figure 14: IPC gain over 8K-entry (78KB) BTB\n");
    row(&[
        "benchmark".into(),
        "head-only".into(),
        "tail-only".into(),
        "head+tail".into(),
    ]);
    row(&vec!["---".to_string(); 4]);

    let mut speedups: Vec<[f64; 3]> = Vec::new();
    let mut bogus_uses = 0u64;
    let mut inserts = 0u64;
    let run_variants = |w: &Workload, em: &mut JsonEmitter| -> [f64; 3] {
        let base = w.run_emit(StandingConfig::Btb(8192).frontend(), steps, em);
        let variants = [
            SkiaConfig::head_only(),
            SkiaConfig::tail_only(),
            SkiaConfig::default(),
        ];
        let mut out = [0.0; 3];
        for (i, v) in variants.into_iter().enumerate() {
            let s = w.run_emit(
                skia_frontend::FrontendConfig::alder_lake_like()
                    .with_btb_entries(8192)
                    .with_skia(v),
                steps,
                em,
            );
            out[i] = s.speedup_over(&base);
        }
        out
    };

    for name in PAPER_BENCHMARKS {
        let w = Workload::by_name(name);
        let s = run_variants(&w, &mut em);
        // Bogus-rate bookkeeping from the combined run.
        let combined = w.run_emit(StandingConfig::BtbPlusSkia(8192).frontend(), steps, &mut em);
        if let Some(sk) = &combined.skia {
            bogus_uses += sk.bogus_uses;
            inserts += sk.sbb.u_inserts + sk.sbb.r_inserts;
        }
        speedups.push(s);
        row(&[
            name.to_string(),
            format!("{:+.2}%", (s[0] - 1.0) * 100.0),
            format!("{:+.2}%", (s[1] - 1.0) * 100.0),
            format!("{:+.2}%", (s[2] - 1.0) * 100.0),
        ]);
    }
    let geo = |i: usize| (geomean(speedups.iter().map(|s| s[i])) - 1.0) * 100.0;
    row(&[
        "**geomean**".into(),
        format!("{:+.2}%", geo(0)),
        format!("{:+.2}%", geo(1)),
        format!("{:+.2}%", geo(2)),
    ]);

    println!(
        "\nBogus branches used / SBB insertions: {:.5}% (paper §3.2.2: ~0.0002%)",
        bogus_uses as f64 * 100.0 / inserts.max(1) as f64
    );

    // §6.1.4: verilator pre-BOLT vs bolted.
    println!("\n## §6.1.4: verilator BOLT sensitivity");
    for name in ["verilator", "verilator_prebolt"] {
        let w = Workload::by_name(name);
        let s = run_variants(&w, &mut em);
        println!(
            "{name:<20} combined Skia speedup {:+.2}%",
            (s[2] - 1.0) * 100.0
        );
    }
    em.finish();
}
