//! Figure 14: per-benchmark IPC gain over the 8K-entry BTB baseline for
//! head-only, tail-only, and combined shadow decoding; plus the §6.1.4
//! verilator pre-BOLT comparison and the §3.2.2 bogus-branch rate.
//!
//! Paper's shape: geomean ~5.6% combined, tail-only (~4.4%) above head-only
//! (~3.7%); low-BTB-miss benchmarks (finagle-chirper, kafka,
//! speedometer2.0) gain least; voter and sibench gain most.

use skia_core::SkiaConfig;
use skia_experiments::{geomean, row, steps_from_env, Args, StandingConfig, Sweep};
use skia_frontend::FrontendConfig;

fn main() {
    let steps = steps_from_env();
    let args = Args::parse();
    let mut em = args.emitter();
    let benches = args.benchmarks();

    let variant_cfg = |v: SkiaConfig| {
        FrontendConfig::alder_lake_like()
            .with_btb_entries(8192)
            .with_skia(v)
    };
    // Base + head-only + tail-only + combined, in the fixed serial order.
    let add_variants = |sweep: &mut Sweep, name: &str| -> [usize; 4] {
        [
            sweep.add(name, StandingConfig::Btb(8192).frontend(), steps),
            sweep.add(name, variant_cfg(SkiaConfig::head_only()), steps),
            sweep.add(name, variant_cfg(SkiaConfig::tail_only()), steps),
            sweep.add(name, variant_cfg(SkiaConfig::default()), steps),
        ]
    };

    let mut sweep = Sweep::from_args(&args);
    let main_ids: Vec<([usize; 4], usize)> = benches
        .iter()
        .map(|name| {
            let variants = add_variants(&mut sweep, name);
            // Bogus-rate bookkeeping comes from a separate combined run with
            // full telemetry, matching the original serial sequence.
            let combined = sweep.add(name, StandingConfig::BtbPlusSkia(8192).frontend(), steps);
            (variants, combined)
        })
        .collect();
    let bolt_names = args.filter_names(&["verilator", "verilator_prebolt"]);
    let bolt_ids: Vec<[usize; 4]> = bolt_names
        .iter()
        .map(|name| add_variants(&mut sweep, name))
        .collect();
    let stats = sweep.run(&mut em);

    let speedups_of = |ids: &[usize; 4]| -> [f64; 3] {
        let base = &stats[ids[0]];
        [
            stats[ids[1]].speedup_over(base),
            stats[ids[2]].speedup_over(base),
            stats[ids[3]].speedup_over(base),
        ]
    };

    println!("# Figure 14: IPC gain over 8K-entry (78KB) BTB\n");
    row(&[
        "benchmark".into(),
        "head-only".into(),
        "tail-only".into(),
        "head+tail".into(),
    ]);
    row(&vec!["---".to_string(); 4]);

    let mut speedups: Vec<[f64; 3]> = Vec::new();
    let mut bogus_uses = 0u64;
    let mut inserts = 0u64;
    for (name, &(variant_ids, combined_id)) in benches.iter().zip(&main_ids) {
        let s = speedups_of(&variant_ids);
        if let Some(sk) = &stats[combined_id].skia {
            bogus_uses += sk.bogus_uses;
            inserts += sk.sbb.u_inserts + sk.sbb.r_inserts;
        }
        speedups.push(s);
        row(&[
            name.to_string(),
            format!("{:+.2}%", (s[0] - 1.0) * 100.0),
            format!("{:+.2}%", (s[1] - 1.0) * 100.0),
            format!("{:+.2}%", (s[2] - 1.0) * 100.0),
        ]);
    }
    let geo = |i: usize| (geomean(speedups.iter().map(|s| s[i])) - 1.0) * 100.0;
    row(&[
        "**geomean**".into(),
        format!("{:+.2}%", geo(0)),
        format!("{:+.2}%", geo(1)),
        format!("{:+.2}%", geo(2)),
    ]);

    println!(
        "\nBogus branches used / SBB insertions: {:.5}% (paper §3.2.2: ~0.0002%)",
        bogus_uses as f64 * 100.0 / inserts.max(1) as f64
    );

    // §6.1.4: verilator pre-BOLT vs bolted.
    println!("\n## §6.1.4: verilator BOLT sensitivity");
    for (name, ids) in bolt_names.iter().zip(&bolt_ids) {
        let s = speedups_of(ids);
        println!(
            "{name:<20} combined Skia speedup {:+.2}%",
            (s[2] - 1.0) * 100.0
        );
    }
    em.finish();
}
