//! Figure 15: per-benchmark stacked breakdown of BTB misses by whether the
//! missing branch's cache line was L1-I-resident at prediction time
//! (8K-entry BTB).

use skia_experiments::{f2, row, steps_from_env, Args, StandingConfig, Sweep};

fn main() {
    let steps = steps_from_env();
    let args = Args::parse();
    let mut em = args.emitter();
    let benches = args.benchmarks();

    let mut sweep = Sweep::from_args(&args);
    let ids: Vec<usize> = benches
        .iter()
        .map(|name| sweep.add(name, StandingConfig::Btb(8192).frontend(), steps))
        .collect();
    let stats = sweep.run(&mut em);

    println!("# Figure 15: BTB misses with L1-I-resident lines (8K BTB)\n");
    row(&[
        "benchmark".into(),
        "BTB miss MPKI".into(),
        "resident MPKI".into(),
        "not-resident MPKI".into(),
        "resident %".into(),
    ]);
    row(&vec!["---".to_string(); 5]);

    let mut res_total = 0u64;
    let mut miss_total = 0u64;
    for (name, &id) in benches.iter().zip(&ids) {
        let s = &stats[id];
        res_total += s.btb_miss_l1i_resident;
        miss_total += s.btb_misses;
        row(&[
            name.to_string(),
            f2(s.btb_mpki()),
            f2(s.btb_miss_l1i_resident_mpki()),
            f2(s.btb_mpki() - s.btb_miss_l1i_resident_mpki()),
            format!("{:.1}%", s.btb_miss_l1i_resident_fraction() * 100.0),
        ]);
    }
    println!(
        "\nOverall: {:.1}% of BTB misses had their line already in the L1-I \
         (paper: ~75% at 8K entries)",
        res_total as f64 * 100.0 / miss_total.max(1) as f64
    );
    em.finish();
}
