//! Diagnostic: where do rescuable BTB misses live relative to shadow-decode
//! coverage? Walks the trace once with an oracle view to classify every
//! rescuable missing branch by its *static* position: inside the same cache
//! line as a hotter block's exit (tail-coverable), directly before a hotter
//! entry point (head-coverable), or interior (uncoverable by design).
//!
//! Development tool, not a paper figure.

use std::collections::{HashMap, HashSet};

use skia_experiments::{steps_from_env, workload, Args};
use skia_frontend::FrontendConfig;
use skia_workloads::Walker;

fn main() {
    let args = Args::parse_with_names();
    let name = args.names.first().cloned().unwrap_or_else(|| "tpcc".into());
    let steps = steps_from_env();
    let mut em = args.emitter();
    let w = workload(&name);
    let program = &w.program;

    // Pass 1: execution frequency of every block (oracle trace walk).
    let mut exec_count: HashMap<u64, u64> = HashMap::new();
    let mut taken_exits: HashMap<u64, u64> = HashMap::new(); // branch end pc -> count
    let mut entries: HashMap<u64, u64> = HashMap::new(); // block entered by taken branch
    let walker = Walker::new(
        program,
        w.profile.trace_seed,
        w.profile.spec.mean_trip_count,
    );
    for step in walker.take(steps) {
        *exec_count.entry(step.block_start).or_default() += 1;
        if step.taken {
            *taken_exits
                .entry(step.branch_pc + u64::from(step.branch_len))
                .or_default() += 1;
            *entries.entry(step.next_pc).or_default() += 1;
        }
    }

    // Pass 2: simulate baseline, recording distinct rescuable missing PCs.
    let mut sim_cfg = FrontendConfig::alder_lake_like().with_btb_entries(8192);
    sim_cfg.skia = Some(skia_core::SkiaConfig::default());
    let stats = w.run_emit(sim_cfg, steps, &mut em);

    // Index hot exits/entries by cache line for O(1) classification.
    let hot_n = 8;
    let mut hot_exits_by_line: HashMap<u64, Vec<u64>> = HashMap::new();
    for (&exit, &n) in &taken_exits {
        if n >= hot_n {
            hot_exits_by_line.entry(exit & !63).or_default().push(exit);
        }
    }
    let mut hot_entries_by_line: HashMap<u64, Vec<u64>> = HashMap::new();
    for (&entry, &n) in &entries {
        if n >= hot_n {
            hot_entries_by_line
                .entry(entry & !63)
                .or_default()
                .push(entry);
        }
    }

    // Static classification of every rescuable-kind branch in the program.
    let mut tail_coverable = 0usize;
    let mut head_coverable = 0usize;
    let mut interior = 0usize;
    let mut total = 0usize;
    for f in program.functions() {
        for b in &f.blocks {
            let t = &b.terminator;
            if !t.kind.sbb_eligible() {
                continue;
            }
            total += 1;
            let line = t.pc & !63;
            // Tail-coverable: some frequently-taken exit lands in this line
            // at or before the branch.
            let tail = hot_exits_by_line
                .get(&line)
                .is_some_and(|v| v.iter().any(|&exit| exit <= t.pc));
            // Head-coverable: some frequently-entered entry point in this
            // line strictly after the branch end.
            let head = hot_entries_by_line
                .get(&line)
                .is_some_and(|v| v.iter().any(|&e| e >= t.pc + u64::from(t.len)));
            if tail {
                tail_coverable += 1;
            } else if head {
                head_coverable += 1;
            } else {
                interior += 1;
            }
        }
    }

    let seen = stats.skia.as_ref().map(|_| 0).unwrap_or(0);
    let _ = seen;
    let _: HashSet<u64> = HashSet::new();

    println!("workload {name}: {} static SBB-eligible branches", total);
    println!(
        "  statically tail-coverable by hot exits:  {} ({:.1}%)",
        tail_coverable,
        tail_coverable as f64 * 100.0 / total as f64
    );
    println!(
        "  statically head-coverable by hot entries:{} ({:.1}%)",
        head_coverable,
        head_coverable as f64 * 100.0 / total as f64
    );
    println!(
        "  interior (uncoverable):                  {} ({:.1}%)",
        interior,
        interior as f64 * 100.0 / total as f64
    );
    println!(
        "dynamic: rescuable misses/KI {:.2}, seen-before/KI {:.2}, rescues/KI {:.2}",
        stats.btb_miss_rescuable as f64 * 1000.0 / stats.instructions as f64,
        stats.rescuable_seen_before as f64 * 1000.0 / stats.instructions as f64,
        stats.sbb_rescues as f64 * 1000.0 / stats.instructions as f64,
    );
    em.finish();
}
