//! Shared harness for the per-figure experiment binaries.
//!
//! Each binary regenerates one table or figure of *"Exposing Shadow
//! Branches"* by sweeping simulator configurations over the 16 benchmark
//! profiles and printing the paper's rows/series. This crate holds the
//! common machinery: workload caching, configuration construction, and
//! report formatting.

use skia_core::SkiaConfig;
use skia_frontend::{FrontendConfig, SimStats, Simulator};
use skia_workloads::{profile, Profile, Program, Walker};

pub use skia_frontend::stats::geomean;

/// Default trace length (true-path basic blocks) per benchmark run.
///
/// One step averages ~7 instructions, so 400K steps ≈ 2.8M instructions —
/// enough for MPKIs and IPC ratios to stabilize on these synthetic
/// workloads (the paper warms 10M and measures 100M on real ones).
pub const DEFAULT_STEPS: usize = 400_000;

/// Resolve the step budget: `SKIA_STEPS` env var overrides the default so
/// quick sanity runs and long calibration runs use the same binaries.
#[must_use]
pub fn steps_from_env() -> usize {
    std::env::var("SKIA_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_STEPS)
}

/// A materialized benchmark: profile + generated program.
pub struct Workload {
    /// The profile this workload was built from.
    pub profile: Profile,
    /// The generated program image.
    pub program: Program,
}

impl Workload {
    /// Build a named benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the paper's benchmarks (or
    /// `verilator_prebolt`).
    #[must_use]
    pub fn by_name(name: &str) -> Workload {
        let profile = profile(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
        let program = Program::generate(&profile.spec);
        Workload { profile, program }
    }

    /// Run one simulation over this workload.
    #[must_use]
    pub fn run(&self, config: FrontendConfig, steps: usize) -> SimStats {
        let trace = Walker::new(
            &self.program,
            self.profile.trace_seed,
            self.profile.spec.mean_trip_count,
        )
        .take(steps);
        let mut sim = Simulator::new(&self.program, config);
        sim.run(trace)
    }
}

/// The four standing configurations of Fig. 3 / Fig. 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StandingConfig {
    /// Plain BTB of the given entry count.
    Btb(usize),
    /// BTB grown by the SBB's 12.25 KB storage budget.
    BtbPlusBudget(usize),
    /// BTB plus the default Skia SBB.
    BtbPlusSkia(usize),
    /// Infinite fully-associative BTB.
    Infinite,
}

impl StandingConfig {
    /// Materialize the frontend configuration.
    #[must_use]
    pub fn frontend(self) -> FrontendConfig {
        match self {
            StandingConfig::Btb(entries) => {
                FrontendConfig::alder_lake_like().with_btb_entries(entries)
            }
            StandingConfig::BtbPlusBudget(entries) => {
                let extra = skia_uarch::btb::BtbConfig::entries_for_budget_kb(12.25, 4);
                FrontendConfig::alder_lake_like().with_btb_entries(entries + extra)
            }
            StandingConfig::BtbPlusSkia(entries) => FrontendConfig::alder_lake_like()
                .with_btb_entries(entries)
                .with_skia(SkiaConfig::default()),
            StandingConfig::Infinite => FrontendConfig {
                btb: skia_frontend::BtbMode::Infinite,
                ..FrontendConfig::alder_lake_like()
            },
        }
    }
}

/// Print a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Format a float with 2 decimals.
#[must_use]
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a percentage with 2 decimals.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}
