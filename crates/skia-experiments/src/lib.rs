//! Shared harness for the per-figure experiment binaries.
//!
//! Each binary regenerates one table or figure of *"Exposing Shadow
//! Branches"* by sweeping simulator configurations over the 16 benchmark
//! profiles and printing the paper's rows/series. This crate holds the
//! common machinery: workload caching, configuration construction, and
//! report formatting.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use skia_core::SkiaConfig;
use skia_frontend::{FrontendConfig, SampleFault, SimStats, Simulator};
use skia_telemetry::{Snapshot, TraceConfig};
use skia_workloads::profiles::PAPER_BENCHMARKS;
use skia_workloads::{
    load_or_record_trace, profile, Profile, Program, RecordedTrace, SamplingConfig, SamplingPlan,
    TraceCacheOutcome, Walker,
};

pub mod pins;
pub mod report;

pub use skia_frontend::stats::geomean;
pub use skia_runner::{sampling_env, thread_count, SamplingEnv, SweepReport};

/// Default trace length (true-path basic blocks) per benchmark run.
///
/// One step averages ~7 instructions, so 400K steps ≈ 2.8M instructions —
/// enough for MPKIs and IPC ratios to stabilize on these synthetic
/// workloads (the paper warms 10M and measures 100M on real ones).
pub const DEFAULT_STEPS: usize = 400_000;

/// Resolve the step budget: `SKIA_STEPS` env var overrides the default so
/// quick sanity runs and long calibration runs use the same binaries.
#[must_use]
pub fn steps_from_env() -> usize {
    std::env::var("SKIA_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_STEPS)
}

/// Materialize the [`SamplingConfig`] for a `steps`-long run from resolved
/// `SKIA_SAMPLE*` knobs: the scaled [`SamplingConfig::for_steps`] default,
/// with each explicitly-set knob overriding its field. An explicit interval
/// rescales the default warmup (one tenth of the interval, matching
/// [`SamplingConfig::for_steps`]) unless warmup was itself set.
#[must_use]
pub fn sampling_config_for(steps: usize, env: &SamplingEnv) -> SamplingConfig {
    let mut cfg = SamplingConfig::for_steps(steps);
    if let Some(i) = env.interval {
        cfg.interval = i;
        cfg.warmup = i / 10;
    }
    if let Some(k) = env.k {
        cfg.k = k;
    }
    if let Some(w) = env.warmup {
        cfg.warmup = w;
    }
    if let Some(s) = env.seed {
        cfg.seed = s;
    }
    cfg
}

/// A materialized benchmark: profile + generated program.
pub struct Workload {
    /// The profile this workload was built from.
    pub profile: Profile,
    /// The generated program image.
    pub program: Program,
}

impl Workload {
    /// Build a named benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the paper's benchmarks (or
    /// `verilator_prebolt`).
    #[must_use]
    pub fn by_name(name: &str) -> Workload {
        let profile = profile(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
        let program = skia_workloads::load_or_generate(&profile.spec);
        Workload { profile, program }
    }

    /// Run one simulation over this workload.
    #[must_use]
    pub fn run(&self, config: FrontendConfig, steps: usize) -> SimStats {
        let trace = Walker::new(
            &self.program,
            self.profile.trace_seed,
            self.profile.spec.mean_trip_count,
        )
        .take(steps);
        let mut sim = Simulator::new(&self.program, config);
        sim.run(trace)
    }

    /// Run one simulation and also export the full telemetry [`Snapshot`]
    /// (every registry counter, histograms, and — when `trace_config` is
    /// `Some` — the sampled event trace).
    #[must_use]
    pub fn run_instrumented(
        &self,
        config: FrontendConfig,
        steps: usize,
        trace_config: Option<TraceConfig>,
    ) -> (SimStats, Snapshot) {
        let trace = Walker::new(
            &self.program,
            self.profile.trace_seed,
            self.profile.spec.mean_trip_count,
        )
        .take(steps);
        skia_frontend::run_instrumented(&self.program, config, trace_config, trace)
    }

    /// Record (or load from the disk trace cache) `steps` walker steps for
    /// this workload. The cache key is the workload's program spec plus its
    /// walker parameters, so a cached trace can never be replayed against
    /// the wrong program.
    #[must_use]
    pub fn record_trace(&self, steps: usize) -> (RecordedTrace, TraceCacheOutcome) {
        load_or_record_trace(
            &self.program,
            &self.profile.spec,
            self.profile.trace_seed,
            self.profile.spec.mean_trip_count,
            steps,
        )
    }

    /// Run one simulation over a pre-recorded trace. Bit-identical to
    /// [`Workload::run`] with the same `steps` (the replay stream equals
    /// the live walk), but RNG- and allocation-free on the trace side.
    ///
    /// # Panics
    ///
    /// Panics if the recording is shorter than `steps` — a silent short run
    /// would skew every derived metric.
    #[must_use]
    pub fn run_trace(
        &self,
        config: FrontendConfig,
        trace: &RecordedTrace,
        steps: usize,
    ) -> SimStats {
        assert!(trace.len() >= steps, "recorded trace shorter than request");
        let mut sim = Simulator::new(&self.program, config);
        sim.run_batched(trace, steps, skia_runner::chunk_size())
    }

    /// [`Workload::run_trace`] with full telemetry export (the replay
    /// counterpart of [`Workload::run_instrumented`]).
    #[must_use]
    pub fn run_instrumented_trace(
        &self,
        config: FrontendConfig,
        trace: &RecordedTrace,
        steps: usize,
        trace_config: Option<TraceConfig>,
    ) -> (SimStats, Snapshot) {
        assert!(trace.len() >= steps, "recorded trace shorter than request");
        skia_frontend::run_instrumented_batched(
            &self.program,
            config,
            trace_config,
            trace,
            steps,
            skia_runner::chunk_size(),
        )
    }

    /// Run one *sampled* simulation over a pre-recorded trace: every slice
    /// of `plan` is replayed warmup-then-measure and the returned stats are
    /// the weighted whole-trace estimate (see `skia_frontend::sampling`).
    /// With the degenerate plan this equals [`Workload::run_trace`] byte
    /// for byte.
    ///
    /// `fault` plants a deliberate sampling bug for harness validation;
    /// production callers pass `None`.
    #[must_use]
    pub fn run_sampled_trace(
        &self,
        config: FrontendConfig,
        trace: &RecordedTrace,
        plan: &SamplingPlan,
        fault: Option<SampleFault>,
    ) -> SimStats {
        SAMPLING_TOTALS.note_plan(plan);
        skia_frontend::run_plan(
            &self.program,
            &config,
            trace,
            plan,
            skia_runner::chunk_size(),
            fault,
        )
    }

    /// [`Workload::run_sampled_trace`] plus the synthetic estimate
    /// [`Snapshot`] carrying `sampling.*` plan provenance.
    #[must_use]
    pub fn run_sampled_instrumented_trace(
        &self,
        config: FrontendConfig,
        trace: &RecordedTrace,
        plan: &SamplingPlan,
        fault: Option<SampleFault>,
    ) -> (SimStats, Snapshot) {
        SAMPLING_TOTALS.note_plan(plan);
        skia_frontend::run_plan_instrumented(
            &self.program,
            &config,
            trace,
            plan,
            skia_runner::chunk_size(),
            fault,
        )
    }

    /// Run one simulation, recording its telemetry into `emitter` when the
    /// binary was invoked with `--emit-json <path>` (a plain [`Workload::run`]
    /// otherwise).
    #[must_use]
    pub fn run_emit(
        &self,
        config: FrontendConfig,
        steps: usize,
        emitter: &mut JsonEmitter,
    ) -> SimStats {
        match emitter.trace_config() {
            None => self.run(config, steps),
            tc => {
                let (stats, snapshot) = self.run_instrumented(config, steps, tc);
                emitter.record(&snapshot);
                stats
            }
        }
    }
}

/// Process-wide [`Workload`] memo keyed by benchmark name.
///
/// Figure binaries sweep many configurations over the same 16 benchmarks;
/// the workload (profile + generated program image) is identical across
/// configurations and across sweep worker threads, so it is materialized
/// once per process and shared by `Arc`. Each name gets its own cell so
/// distinct benchmarks can generate concurrently while a second request for
/// the *same* name blocks on the first instead of duplicating the work.
#[must_use]
pub fn workload(name: &str) -> Arc<Workload> {
    type Cell = Arc<OnceLock<Arc<Workload>>>;
    static MEMO: OnceLock<Mutex<HashMap<String, Cell>>> = OnceLock::new();
    let cell = {
        let mut map = MEMO
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("workload memo poisoned");
        map.entry(name.to_string()).or_default().clone()
    };
    cell.get_or_init(|| Arc::new(Workload::by_name(name)))
        .clone()
}

/// Process-wide trace-pipeline counters, surfaced by
/// [`JsonEmitter::finish`] so `--emit-json` output proves whether the
/// replay fast path ran (the CI perf-smoke step asserts on them).
#[derive(Debug)]
struct TraceStats {
    /// Traces served from the on-disk cache.
    disk_hits: AtomicU64,
    /// Traces recorded live (cold cache or longer request).
    recorded: AtomicU64,
    /// Column bytes of live recordings.
    recorded_bytes: AtomicU64,
    /// Requests satisfied by the in-process memo without touching disk.
    memo_hits: AtomicU64,
    /// Sweep jobs that replayed an already-prepared trace instead of
    /// walking (jobs − unique workloads, summed over sweeps).
    replay_reuses: AtomicU64,
    /// Accumulated prepare-phase wall time, microseconds.
    prepare_micros: AtomicU64,
}

static TRACE_STATS: TraceStats = TraceStats {
    disk_hits: AtomicU64::new(0),
    recorded: AtomicU64::new(0),
    recorded_bytes: AtomicU64::new(0),
    memo_hits: AtomicU64::new(0),
    replay_reuses: AtomicU64::new(0),
    prepare_micros: AtomicU64::new(0),
};

/// Process-wide simulate-phase totals, surfaced by [`JsonEmitter::finish`]
/// as `sim.steps_total` / `sim.busy_seconds` / `sim.steps_per_sec` — the
/// raw-throughput numbers the run manifest and `BENCH_sim.json` track.
/// Busy time is summed per-job wall time (not elapsed), so it is
/// thread-count-independent up to scheduling noise.
struct SimTotals {
    steps: AtomicU64,
    busy_micros: AtomicU64,
}

static SIM_TOTALS: SimTotals = SimTotals {
    steps: AtomicU64::new(0),
    busy_micros: AtomicU64::new(0),
};

/// Process-wide sampled-run totals, surfaced by [`JsonEmitter::finish`] as
/// `sampling.*` counters so an emitted payload proves whether (and how
/// much) phase sampling ran: jobs sampled, steps actually replayed, and
/// steps the estimates stand for. `represented / replayed` is the realized
/// compression factor the CI sampling-smoke job asserts on.
struct SamplingTotals {
    jobs: AtomicU64,
    replayed_steps: AtomicU64,
    represented_steps: AtomicU64,
}

impl SamplingTotals {
    fn note_plan(&self, plan: &SamplingPlan) {
        self.jobs.fetch_add(1, Ordering::Relaxed);
        self.replayed_steps
            .fetch_add(plan.replayed_steps() as u64, Ordering::Relaxed);
        self.represented_steps
            .fetch_add(plan.total_steps as u64, Ordering::Relaxed);
    }
}

static SAMPLING_TOTALS: SamplingTotals = SamplingTotals {
    jobs: AtomicU64::new(0),
    replayed_steps: AtomicU64::new(0),
    represented_steps: AtomicU64::new(0),
};

/// Process-wide [`RecordedTrace`] memo keyed by benchmark name, holding the
/// longest trace requested so far for each workload (a longer request
/// replaces the entry; shorter requests are served as exact prefixes by
/// `Replay::take`, which walker determinism makes equal to a shorter walk).
#[must_use]
pub fn recorded_trace(name: &str, steps: usize) -> Arc<RecordedTrace> {
    static MEMO: OnceLock<Mutex<HashMap<String, Arc<RecordedTrace>>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(t) = memo.lock().expect("trace memo poisoned").get(name) {
        if t.len() >= steps {
            TRACE_STATS.memo_hits.fetch_add(1, Ordering::Relaxed);
            return t.clone();
        }
    }
    // Record (or disk-load) outside the lock so distinct benchmarks prepare
    // concurrently; the sweep prepare phase dedupes names, so duplicated
    // same-name work is not a steady-state concern.
    let w = workload(name);
    let (trace, outcome) = w.record_trace(steps);
    match outcome {
        TraceCacheOutcome::DiskHit => {
            TRACE_STATS.disk_hits.fetch_add(1, Ordering::Relaxed);
        }
        TraceCacheOutcome::Recorded => {
            TRACE_STATS.recorded.fetch_add(1, Ordering::Relaxed);
            TRACE_STATS
                .recorded_bytes
                .fetch_add(trace.byte_size() as u64, Ordering::Relaxed);
        }
    }
    let trace = Arc::new(trace);
    let mut map = memo.lock().expect("trace memo poisoned");
    let entry = map.entry(name.to_string()).or_insert_with(|| trace.clone());
    if entry.len() < trace.len() {
        *entry = trace.clone();
    }
    entry.clone()
}

/// Parsed command line of an experiment binary.
///
/// Every binary accepts the same flags; unknown flags are fatal (a typo'd
/// `--emit-jsonn` used to silently run uninstrumented):
///
/// * `--emit-json <path>` — write the merged telemetry snapshot to `path`.
/// * `--bench <name>` — restrict the sweep to one benchmark.
/// * `--threads <n>` — worker threads (overrides `SKIA_THREADS`; default
///   [`std::thread::available_parallelism`]).
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// `--emit-json` target, if given.
    pub emit_json: Option<PathBuf>,
    /// `--bench` filter, if given (validated against the known profiles).
    pub bench: Option<String>,
    /// `--threads` override, if given.
    pub threads: Option<usize>,
    /// Positional benchmark names (only binaries using
    /// [`Args::parse_with_names`] accept these).
    pub names: Vec<String>,
}

impl Args {
    /// Parse the process arguments; positional arguments are rejected.
    #[must_use]
    pub fn parse() -> Args {
        Self::parse_impl(false)
    }

    /// Parse the process arguments, collecting positional benchmark names
    /// into [`Args::names`] (used by `calibrate` and the probes).
    #[must_use]
    pub fn parse_with_names() -> Args {
        Self::parse_impl(true)
    }

    fn parse_impl(allow_names: bool) -> Args {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse_from(&argv, allow_names) {
            Ok(args) => {
                // Anchor the process time origin for `run.wall_seconds`,
                // then arm the span layer: `--emit-json` turns profiling
                // spans on by default, `SKIA_SPANS=1/0` forces either way.
                // Spans never write to stdout, so tables stay byte-identical.
                let _ = skia_telemetry::span::epoch();
                skia_telemetry::init_spans_from_env(args.emit_json.is_some());
                args
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: {} [--emit-json <path>] [--bench <name>] [--threads <n>]{}",
                    std::env::args()
                        .next()
                        .unwrap_or_else(|| "experiment".into()),
                    if allow_names { " [benchmark...]" } else { "" },
                );
                std::process::exit(2);
            }
        }
    }

    /// The testable core: parse an argument list, returning a message for
    /// the first unknown flag, missing value, or invalid benchmark.
    fn parse_from(argv: &[String], allow_names: bool) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = argv.iter();
        let take = |flag: &str,
                    inline: Option<&str>,
                    it: &mut std::slice::Iter<String>|
         -> Result<String, String> {
            match inline {
                Some(v) if !v.is_empty() => Ok(v.to_string()),
                Some(_) => Err(format!("{flag} given an empty value")),
                None => it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} requires a value")),
            }
        };
        while let Some(a) = it.next() {
            if a == "--emit-json" || a.starts_with("--emit-json=") {
                let v = take("--emit-json", a.strip_prefix("--emit-json="), &mut it)?;
                args.emit_json = Some(PathBuf::from(v));
            } else if a == "--bench" || a.starts_with("--bench=") {
                let v = take("--bench", a.strip_prefix("--bench="), &mut it)?;
                if profile(&v).is_none() {
                    return Err(format!(
                        "--bench {v}: unknown benchmark (known: {})",
                        skia_workloads::profile_names().join(", ")
                    ));
                }
                args.bench = Some(v);
            } else if a == "--threads" || a.starts_with("--threads=") {
                let v = take("--threads", a.strip_prefix("--threads="), &mut it)?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads {v}: not a positive integer"))?;
                if n == 0 {
                    return Err("--threads 0: need at least one thread".into());
                }
                args.threads = Some(n);
            } else if a.starts_with('-') {
                return Err(format!("unknown flag {a}"));
            } else if allow_names {
                args.names.push(a.clone());
            } else {
                return Err(format!("unexpected argument {a}"));
            }
        }
        Ok(args)
    }

    /// The paper's 16 benchmarks, restricted by `--bench` when given.
    #[must_use]
    pub fn benchmarks(&self) -> Vec<&'static str> {
        self.filter_names(&PAPER_BENCHMARKS)
    }

    /// Restrict an arbitrary benchmark list by the `--bench` filter.
    #[must_use]
    pub fn filter_names(&self, all: &[&'static str]) -> Vec<&'static str> {
        match &self.bench {
            None => all.to_vec(),
            Some(b) => all.iter().copied().filter(|n| n == b).collect(),
        }
    }

    /// Resolved worker-thread count (`--threads` > `SKIA_THREADS` > cores).
    #[must_use]
    pub fn thread_count(&self) -> usize {
        skia_runner::thread_count(self.threads)
    }

    /// Build the [`JsonEmitter`] for this invocation.
    #[must_use]
    pub fn emitter(&self) -> JsonEmitter {
        JsonEmitter {
            path: self.emit_json.clone(),
            merged: Snapshot::default(),
            runs: 0,
        }
    }
}

/// One queued simulation of a [`Sweep`].
#[derive(Debug, Clone)]
struct SweepJob {
    bench: String,
    config: FrontendConfig,
    steps: usize,
}

/// A deferred (benchmark × config) sweep executed on the [`skia_runner`]
/// thread pool.
///
/// Usage contract for byte-identical output: `add` jobs in exactly the
/// order a serial binary would run them, then call [`Sweep::run`] once and
/// index the returned stats by the job ids `add` handed back. Results are
/// collected and telemetry snapshots are merged in job order, so stdout
/// tables and `--emit-json` payloads are independent of the thread count.
#[derive(Debug)]
pub struct Sweep {
    threads: usize,
    quiet: bool,
    sampling: Option<SamplingEnv>,
    jobs: Vec<SweepJob>,
}

impl Sweep {
    /// An empty sweep that will run on `threads` workers.
    #[must_use]
    pub fn new(threads: usize) -> Sweep {
        Sweep {
            threads,
            quiet: false,
            sampling: None,
            jobs: Vec::new(),
        }
    }

    /// An empty sweep sized by the parsed [`Args`], with phase sampling
    /// armed when `SKIA_SAMPLE=1` is set (every experiment binary gets the
    /// sampled fast path through the same env contract as `SKIA_STEPS`).
    #[must_use]
    pub fn from_args(args: &Args) -> Sweep {
        let env = sampling_env();
        let mut sweep = Sweep::new(args.thread_count());
        if env.enabled {
            sweep.sampling = Some(env);
        }
        sweep
    }

    /// Force sampled simulation with the given knobs (harnesses and the
    /// sampling probe; experiment binaries get this from `SKIA_SAMPLE*`
    /// via [`Sweep::from_args`]).
    #[must_use]
    pub fn sampled(mut self, env: SamplingEnv) -> Sweep {
        self.sampling = Some(env);
        self
    }

    /// Suppress the stderr timing summary (benches and tests).
    #[must_use]
    pub fn quiet(mut self) -> Sweep {
        self.quiet = true;
        self
    }

    /// Queue one run; the returned id indexes [`Sweep::run`]'s result
    /// vector.
    pub fn add(&mut self, bench: &str, config: FrontendConfig, steps: usize) -> usize {
        self.jobs.push(SweepJob {
            bench: bench.to_string(),
            config,
            steps,
        });
        self.jobs.len() - 1
    }

    /// Number of queued jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Execute every queued job and return their stats in job order,
    /// merging telemetry into `emitter` (also in job order) when it is
    /// enabled. Prints a runs/sec summary — and per-run wall times under
    /// `SKIA_VERBOSE` — to stderr, never stdout.
    ///
    /// Runs in two phases. **Prepare**: the distinct workloads among the
    /// queued jobs are identified (folding each to its longest requested
    /// step count — a recorded trace serves any prefix) and their traces
    /// are recorded once each, in parallel, through the trace cache and
    /// process memo. **Simulate**: every job replays its workload's shared
    /// `Arc<RecordedTrace>` — an N-config sweep walks each trace once, not
    /// N times, and the simulate phase is RNG- and walker-free. Replay is
    /// bit-identical to the live walk, so results are unchanged.
    pub fn run(self, emitter: &mut JsonEmitter) -> Vec<SimStats> {
        // -- prepare phase ---------------------------------------------------
        let prepare_span = skia_telemetry::span("sweep.prepare");
        let t0 = Instant::now();
        let mut uniq: Vec<(String, usize)> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        for job in &self.jobs {
            match index.get(job.bench.as_str()) {
                Some(&i) => uniq[i].1 = uniq[i].1.max(job.steps),
                None => {
                    // First appearance fixes the recording order.
                    index.insert(job.bench.clone(), uniq.len());
                    uniq.push((job.bench.clone(), job.steps));
                }
            }
        }
        let traces: Vec<Arc<RecordedTrace>> =
            skia_runner::run_indexed(&uniq, self.threads, |_, (name, steps)| {
                let _g = skia_telemetry::span_with(|| format!("prepare.trace:{name}"));
                recorded_trace(name, *steps)
            });
        let reuses = (self.jobs.len() - uniq.len()) as u64;
        TRACE_STATS
            .replay_reuses
            .fetch_add(reuses, Ordering::Relaxed);
        let prepare = t0.elapsed();
        TRACE_STATS
            .prepare_micros
            .fetch_add(prepare.as_micros() as u64, Ordering::Relaxed);
        if !self.quiet && !self.jobs.is_empty() {
            eprintln!(
                "prepare: {} trace(s) for {} job(s) in {:.2}s ({} replay reuse(s))",
                uniq.len(),
                self.jobs.len(),
                prepare.as_secs_f64(),
                reuses
            );
        }

        drop(prepare_span);

        // -- simulate phase --------------------------------------------------
        let _simulate_span = skia_telemetry::span("sweep.simulate");
        let tc = emitter.trace_config();
        let sampling = &self.sampling;
        let (timed, report) = skia_runner::run_timed(&self.jobs, self.threads, |_, job| {
            let _g = skia_telemetry::span_with(|| format!("sim.job:{}", job.bench));
            let w = workload(&job.bench);
            let trace = &traces[index[job.bench.as_str()]];
            // Sampled path: build the plan (a pure function of trace +
            // knobs, so thread- and order-invariant) and replay only its
            // slices. Returns the steps actually replayed so the
            // throughput totals report real work, not represented work.
            if let Some(env) = sampling {
                let cfg = sampling_config_for(job.steps, env);
                let plan = SamplingPlan::build(trace, job.steps, &cfg);
                let replayed = plan.replayed_steps() as u64;
                let (stats, snapshot) = match tc {
                    None => (
                        w.run_sampled_trace(job.config.clone(), trace, &plan, None),
                        None,
                    ),
                    Some(_) => {
                        let (stats, snap) = w.run_sampled_instrumented_trace(
                            job.config.clone(),
                            trace,
                            &plan,
                            None,
                        );
                        (stats, Some(snap))
                    }
                };
                return (stats, snapshot, replayed);
            }
            match tc {
                None => (
                    w.run_trace(job.config.clone(), trace, job.steps),
                    None,
                    job.steps as u64,
                ),
                Some(tc) => {
                    let (stats, snapshot) =
                        w.run_instrumented_trace(job.config.clone(), trace, job.steps, Some(tc));
                    (stats, Some(snapshot), job.steps as u64)
                }
            }
        });
        if !self.quiet && std::env::var("SKIA_VERBOSE").is_ok() {
            for (i, (t, job)) in timed.iter().zip(&self.jobs).enumerate() {
                eprintln!(
                    "sweep[{i}]: {} {} steps in {:.3}s",
                    job.bench,
                    job.steps,
                    t.wall.as_secs_f64()
                );
            }
        }
        SIM_TOTALS.steps.fetch_add(
            timed.iter().map(|t| t.value.2).sum::<u64>(),
            Ordering::Relaxed,
        );
        SIM_TOTALS.busy_micros.fetch_add(
            timed.iter().map(|t| t.wall.as_micros() as u64).sum::<u64>(),
            Ordering::Relaxed,
        );
        let mut out = Vec::with_capacity(timed.len());
        for t in timed {
            let (stats, snapshot, _) = t.value;
            if let Some(snapshot) = &snapshot {
                emitter.record(snapshot);
            }
            out.push(stats);
        }
        if !self.quiet && report.runs > 0 {
            eprintln!("sweep: {}", report.summary());
        }
        out
    }

    /// [`Sweep::run`] without telemetry (tests and benches).
    #[must_use]
    pub fn run_collect(self) -> Vec<SimStats> {
        self.run(&mut JsonEmitter::default())
    }
}

/// `--emit-json <path>` handling for the experiment binaries.
///
/// When the flag is present, every [`Workload::run_emit`] call runs
/// instrumented (with a sampled event trace) and its snapshot is merged into
/// an aggregate; [`JsonEmitter::finish`] serializes the aggregate through
/// serde to `<path>` (conventionally under `results/`). Without the flag the
/// emitter is inert and `run_emit` degrades to a plain run.
#[derive(Debug, Default)]
pub struct JsonEmitter {
    path: Option<PathBuf>,
    merged: Snapshot,
    runs: u64,
}

impl JsonEmitter {
    /// Event-trace sampling used by instrumented experiment runs: keep one
    /// event in 64, up to 16K events — enough to characterize the run
    /// without letting the ring dominate memory or the output file.
    pub const TRACE: TraceConfig = TraceConfig {
        capacity: 16 * 1024,
        sample_every: 64,
    };

    /// Build an emitter from the process arguments via the strict [`Args`]
    /// parser: `--emit-json <path>` (or `=`-joined) enables emission, and
    /// any unknown flag or stray positional exits with a usage message.
    #[must_use]
    pub fn from_args() -> JsonEmitter {
        Args::parse().emitter()
    }

    /// Whether `--emit-json` was given.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// The trace configuration instrumented runs should use (`None` when
    /// emission is disabled).
    #[must_use]
    pub fn trace_config(&self) -> Option<TraceConfig> {
        self.enabled().then_some(Self::TRACE)
    }

    /// Merge one run's snapshot into the aggregate.
    pub fn record(&mut self, snapshot: &Snapshot) {
        self.merged.merge(snapshot);
        self.runs += 1;
    }

    /// Write the aggregate snapshot as JSON. No-op when disabled; panics on
    /// I/O errors (an experiment asked for a file it cannot have).
    pub fn finish(&mut self) {
        let Some(path) = &self.path else { return };
        self.merged
            .counters
            .insert("emit.runs_merged".into(), self.runs);
        // Trace-pipeline counters: how the record-once/replay-many machinery
        // behaved for this process (disk cache hits vs. fresh recordings, and
        // how many sweep jobs replayed an already-recorded trace).
        let c = &mut self.merged.counters;
        c.insert(
            "trace_cache.disk_hits".into(),
            TRACE_STATS.disk_hits.load(Ordering::Relaxed),
        );
        c.insert(
            "trace_cache.recorded".into(),
            TRACE_STATS.recorded.load(Ordering::Relaxed),
        );
        c.insert(
            "trace_cache.recorded_bytes".into(),
            TRACE_STATS.recorded_bytes.load(Ordering::Relaxed),
        );
        c.insert(
            "trace.memo_hits".into(),
            TRACE_STATS.memo_hits.load(Ordering::Relaxed),
        );
        c.insert(
            "trace.replay_reuses".into(),
            TRACE_STATS.replay_reuses.load(Ordering::Relaxed),
        );
        self.merged.gauges.insert(
            "trace.prepare_seconds".into(),
            TRACE_STATS.prepare_micros.load(Ordering::Relaxed) as f64 / 1e6,
        );
        // Simulate-phase throughput: raw replay-simulate steps per second of
        // summed per-job busy time (thread-count-independent).
        let sim_steps = SIM_TOTALS.steps.load(Ordering::Relaxed);
        let busy = SIM_TOTALS.busy_micros.load(Ordering::Relaxed) as f64 / 1e6;
        c.insert("sim.steps_total".into(), sim_steps);
        self.merged.gauges.insert("sim.busy_seconds".into(), busy);
        if busy > 0.0 {
            self.merged
                .gauges
                .insert("sim.steps_per_sec".into(), sim_steps as f64 / busy);
        }
        // Phase-sampling totals: whether sampled simulation ran, how many
        // steps it replayed, and how many whole-trace steps the estimates
        // stand for (represented / replayed = realized compression).
        let sampled_jobs = SAMPLING_TOTALS.jobs.load(Ordering::Relaxed);
        c.insert("sampling.jobs".into(), sampled_jobs);
        if sampled_jobs > 0 {
            let replayed = SAMPLING_TOTALS.replayed_steps.load(Ordering::Relaxed);
            let represented = SAMPLING_TOTALS.represented_steps.load(Ordering::Relaxed);
            c.insert("sampling.replayed_steps".into(), replayed);
            c.insert("sampling.represented_steps".into(), represented);
            if replayed > 0 {
                self.merged.gauges.insert(
                    "sampling.compression".into(),
                    represented as f64 / replayed as f64,
                );
            }
        }
        // Cache I/O totals: bytes actually moved and per-column seeks issued
        // by the program/trace caches (skia-workloads process-wide meters).
        let io = skia_workloads::trace_cache_io();
        c.insert("trace_cache.bytes_read".into(), io.bytes_read);
        c.insert("trace_cache.bytes_written".into(), io.bytes_written);
        c.insert("trace_cache.seeks".into(), io.seeks);
        c.insert("trace_cache.full_loads".into(), io.full_loads);
        c.insert("trace_cache.prefix_loads".into(), io.prefix_loads);
        // Profiling spans: drain the process-wide collector into the merged
        // snapshot (spans are per-process, not per-run, so they ride on the
        // merged snapshot rather than individual run snapshots).
        let spans = skia_telemetry::drain_spans();
        c.insert("spans.recorded".into(), spans.len() as u64);
        c.insert(
            "spans.dropped".into(),
            skia_telemetry::span::spans_dropped(),
        );
        self.merged.spans.extend(spans);
        self.merged.gauges.insert(
            "run.wall_seconds".into(),
            skia_telemetry::span::epoch().elapsed().as_secs_f64(),
        );
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
            }
        }
        let json = self.merged.to_json_string();
        std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!(
            "telemetry: merged snapshot of {} run(s) written to {}",
            self.runs,
            path.display()
        );
    }
}

/// The four standing configurations of Fig. 3 / Fig. 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StandingConfig {
    /// Plain BTB of the given entry count.
    Btb(usize),
    /// BTB grown by the SBB's 12.25 KB storage budget.
    BtbPlusBudget(usize),
    /// BTB plus the default Skia SBB.
    BtbPlusSkia(usize),
    /// Infinite fully-associative BTB.
    Infinite,
}

impl StandingConfig {
    /// Materialize the frontend configuration.
    #[must_use]
    pub fn frontend(self) -> FrontendConfig {
        match self {
            StandingConfig::Btb(entries) => {
                FrontendConfig::alder_lake_like().with_btb_entries(entries)
            }
            StandingConfig::BtbPlusBudget(entries) => {
                let extra = skia_uarch::btb::BtbConfig::entries_for_budget_kb(12.25, 4);
                FrontendConfig::alder_lake_like().with_btb_entries(entries + extra)
            }
            StandingConfig::BtbPlusSkia(entries) => FrontendConfig::alder_lake_like()
                .with_btb_entries(entries)
                .with_skia(SkiaConfig::default()),
            StandingConfig::Infinite => FrontendConfig {
                btb: skia_frontend::BtbMode::Infinite,
                ..FrontendConfig::alder_lake_like()
            },
        }
    }
}

/// Print a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Format a float with 2 decimals.
#[must_use]
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a percentage with 2 decimals.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Result<Args, String> {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        Args::parse_from(&argv, false)
    }

    #[test]
    fn args_parse_all_flags() {
        let a = parse(&[
            "--emit-json",
            "out.json",
            "--bench",
            "tpcc",
            "--threads",
            "3",
        ])
        .unwrap();
        assert_eq!(
            a.emit_json.as_deref(),
            Some(std::path::Path::new("out.json"))
        );
        assert_eq!(a.bench.as_deref(), Some("tpcc"));
        assert_eq!(a.threads, Some(3));
        let a = parse(&["--emit-json=o.json", "--bench=kafka", "--threads=2"]).unwrap();
        assert_eq!(a.bench.as_deref(), Some("kafka"));
        assert_eq!(a.threads, Some(2));
    }

    #[test]
    fn args_reject_unknown_flags_and_bad_values() {
        assert!(
            parse(&["--emit-jsonn", "x"]).is_err(),
            "typo'd flag is fatal"
        );
        assert!(
            parse(&["--bench", "nonesuch"]).is_err(),
            "unknown benchmark"
        );
        assert!(parse(&["--threads", "zero"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--emit-json"]).is_err(), "missing value");
        assert!(parse(&["--emit-json="]).is_err(), "empty value");
        assert!(parse(&["stray"]).is_err(), "positional without names mode");
    }

    #[test]
    fn args_names_mode_collects_positionals() {
        let argv: Vec<String> = vec!["tpcc".into(), "voter".into()];
        let a = Args::parse_from(&argv, true).unwrap();
        assert_eq!(a.names, vec!["tpcc", "voter"]);
    }

    #[test]
    fn bench_filter_restricts_lists() {
        let a = parse(&["--bench", "tpcc"]).unwrap();
        assert_eq!(a.benchmarks(), vec!["tpcc"]);
        assert_eq!(a.filter_names(&["kafka", "dotty"]), Vec::<&str>::new());
        let none = parse(&[]).unwrap();
        assert_eq!(none.benchmarks().len(), PAPER_BENCHMARKS.len());
    }

    #[test]
    fn workload_memo_returns_shared_instance() {
        let a = workload("tpcc");
        let b = workload("tpcc");
        assert!(Arc::ptr_eq(&a, &b), "same name, same materialization");
    }

    #[test]
    fn sweep_matches_direct_runs_and_is_thread_invariant() {
        let config = FrontendConfig::test_small();
        let steps = 2_000;
        let direct = workload("tpcc").run(config.clone(), steps);

        for threads in [1, 4] {
            let mut sweep = Sweep::new(threads).quiet();
            let a = sweep.add("tpcc", config.clone(), steps);
            let b = sweep.add("voter", config.clone(), steps);
            let c = sweep.add("tpcc", config.clone(), steps);
            let stats = sweep.run_collect();
            assert_eq!(stats.len(), 3);
            assert_eq!(stats[a], direct, "threads={threads}");
            assert_eq!(stats[a], stats[c], "identical jobs, identical stats");
            assert_ne!(stats[a], stats[b], "different benchmarks differ");
        }
    }
}
