//! Shared harness for the per-figure experiment binaries.
//!
//! Each binary regenerates one table or figure of *"Exposing Shadow
//! Branches"* by sweeping simulator configurations over the 16 benchmark
//! profiles and printing the paper's rows/series. This crate holds the
//! common machinery: workload caching, configuration construction, and
//! report formatting.

use std::path::PathBuf;

use skia_core::SkiaConfig;
use skia_frontend::{FrontendConfig, SimStats, Simulator};
use skia_telemetry::{Snapshot, TraceConfig};
use skia_workloads::{profile, Profile, Program, Walker};

pub use skia_frontend::stats::geomean;

/// Default trace length (true-path basic blocks) per benchmark run.
///
/// One step averages ~7 instructions, so 400K steps ≈ 2.8M instructions —
/// enough for MPKIs and IPC ratios to stabilize on these synthetic
/// workloads (the paper warms 10M and measures 100M on real ones).
pub const DEFAULT_STEPS: usize = 400_000;

/// Resolve the step budget: `SKIA_STEPS` env var overrides the default so
/// quick sanity runs and long calibration runs use the same binaries.
#[must_use]
pub fn steps_from_env() -> usize {
    std::env::var("SKIA_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_STEPS)
}

/// A materialized benchmark: profile + generated program.
pub struct Workload {
    /// The profile this workload was built from.
    pub profile: Profile,
    /// The generated program image.
    pub program: Program,
}

impl Workload {
    /// Build a named benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the paper's benchmarks (or
    /// `verilator_prebolt`).
    #[must_use]
    pub fn by_name(name: &str) -> Workload {
        let profile = profile(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
        let program = Program::generate(&profile.spec);
        Workload { profile, program }
    }

    /// Run one simulation over this workload.
    #[must_use]
    pub fn run(&self, config: FrontendConfig, steps: usize) -> SimStats {
        let trace = Walker::new(
            &self.program,
            self.profile.trace_seed,
            self.profile.spec.mean_trip_count,
        )
        .take(steps);
        let mut sim = Simulator::new(&self.program, config);
        sim.run(trace)
    }

    /// Run one simulation and also export the full telemetry [`Snapshot`]
    /// (every registry counter, histograms, and — when `trace_config` is
    /// `Some` — the sampled event trace).
    #[must_use]
    pub fn run_instrumented(
        &self,
        config: FrontendConfig,
        steps: usize,
        trace_config: Option<TraceConfig>,
    ) -> (SimStats, Snapshot) {
        let trace = Walker::new(
            &self.program,
            self.profile.trace_seed,
            self.profile.spec.mean_trip_count,
        )
        .take(steps);
        skia_frontend::run_instrumented(&self.program, config, trace_config, trace)
    }

    /// Run one simulation, recording its telemetry into `emitter` when the
    /// binary was invoked with `--emit-json <path>` (a plain [`Workload::run`]
    /// otherwise).
    #[must_use]
    pub fn run_emit(
        &self,
        config: FrontendConfig,
        steps: usize,
        emitter: &mut JsonEmitter,
    ) -> SimStats {
        match emitter.trace_config() {
            None => self.run(config, steps),
            tc => {
                let (stats, snapshot) = self.run_instrumented(config, steps, tc);
                emitter.record(&snapshot);
                stats
            }
        }
    }
}

/// `--emit-json <path>` handling for the experiment binaries.
///
/// When the flag is present, every [`Workload::run_emit`] call runs
/// instrumented (with a sampled event trace) and its snapshot is merged into
/// an aggregate; [`JsonEmitter::finish`] serializes the aggregate through
/// serde to `<path>` (conventionally under `results/`). Without the flag the
/// emitter is inert and `run_emit` degrades to a plain run.
#[derive(Debug, Default)]
pub struct JsonEmitter {
    path: Option<PathBuf>,
    merged: Snapshot,
    runs: u64,
}

impl JsonEmitter {
    /// Event-trace sampling used by instrumented experiment runs: keep one
    /// event in 64, up to 16K events — enough to characterize the run
    /// without letting the ring dominate memory or the output file.
    pub const TRACE: TraceConfig = TraceConfig {
        capacity: 16 * 1024,
        sample_every: 64,
    };

    /// Build an emitter from the process arguments (`--emit-json <path>` or
    /// `--emit-json=<path>`). Unknown arguments are ignored — figure
    /// binaries have no other flags.
    #[must_use]
    pub fn from_args() -> JsonEmitter {
        let mut args = std::env::args().skip(1);
        let mut path = None;
        while let Some(a) = args.next() {
            if a == "--emit-json" {
                path = args.next().map(PathBuf::from);
                if path.is_none() {
                    eprintln!("warning: --emit-json given without a path; telemetry disabled");
                }
            } else if let Some(p) = a.strip_prefix("--emit-json=") {
                path = Some(PathBuf::from(p));
            }
        }
        if path.as_ref().is_some_and(|p| p.as_os_str().is_empty()) {
            eprintln!("warning: --emit-json= with an empty path; telemetry disabled");
            path = None;
        }
        JsonEmitter {
            path,
            merged: Snapshot::default(),
            runs: 0,
        }
    }

    /// Whether `--emit-json` was given.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// The trace configuration instrumented runs should use (`None` when
    /// emission is disabled).
    #[must_use]
    pub fn trace_config(&self) -> Option<TraceConfig> {
        self.enabled().then_some(Self::TRACE)
    }

    /// Merge one run's snapshot into the aggregate.
    pub fn record(&mut self, snapshot: &Snapshot) {
        self.merged.merge(snapshot);
        self.runs += 1;
    }

    /// Write the aggregate snapshot as JSON. No-op when disabled; panics on
    /// I/O errors (an experiment asked for a file it cannot have).
    pub fn finish(&mut self) {
        let Some(path) = &self.path else { return };
        self.merged
            .counters
            .insert("emit.runs_merged".into(), self.runs);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
            }
        }
        let json = self.merged.to_json_string();
        std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!(
            "telemetry: merged snapshot of {} run(s) written to {}",
            self.runs,
            path.display()
        );
    }
}

/// The four standing configurations of Fig. 3 / Fig. 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StandingConfig {
    /// Plain BTB of the given entry count.
    Btb(usize),
    /// BTB grown by the SBB's 12.25 KB storage budget.
    BtbPlusBudget(usize),
    /// BTB plus the default Skia SBB.
    BtbPlusSkia(usize),
    /// Infinite fully-associative BTB.
    Infinite,
}

impl StandingConfig {
    /// Materialize the frontend configuration.
    #[must_use]
    pub fn frontend(self) -> FrontendConfig {
        match self {
            StandingConfig::Btb(entries) => {
                FrontendConfig::alder_lake_like().with_btb_entries(entries)
            }
            StandingConfig::BtbPlusBudget(entries) => {
                let extra = skia_uarch::btb::BtbConfig::entries_for_budget_kb(12.25, 4);
                FrontendConfig::alder_lake_like().with_btb_entries(entries + extra)
            }
            StandingConfig::BtbPlusSkia(entries) => FrontendConfig::alder_lake_like()
                .with_btb_entries(entries)
                .with_skia(SkiaConfig::default()),
            StandingConfig::Infinite => FrontendConfig {
                btb: skia_frontend::BtbMode::Infinite,
                ..FrontendConfig::alder_lake_like()
            },
        }
    }
}

/// Print a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Format a float with 2 decimals.
#[must_use]
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a percentage with 2 decimals.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}
