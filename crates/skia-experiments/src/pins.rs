//! Paper-scale sampled-vs-full error pins.
//!
//! The committed file `ci/sampling-error-pins.json` records the relative
//! error of sampled simulation against full replay — per key counter, per
//! figure workload — at the paper-scale operating point (400k steps,
//! `BtbPlusSkia(8192)`, the default [`SamplingConfig::for_steps`] plan).
//! The **pinned** counters ([`PINNED`]) must stay within
//! [`PINNED_THRESHOLD`]; the rest are recorded informationally so any
//! regression is visible in the diff. Everything here is deterministic —
//! the simulator, the plan builder and the error rounding — so recomputing
//! the pins on unchanged code reproduces the committed file exactly, and
//! the `sampling_error_pins` test can fail on *any* worsening, not just
//! threshold crossings.
//!
//! Why only three counters are pinned at 2%: warm sampled slices estimate
//! *steady-state* behavior, but a 400k-step full run still contains its own
//! structure-fill transient (compulsory BTB misses, cold TAGE), which at an
//! 8192-entry BTB is a large fraction of the whole-run miss counts. The
//! retirement-path counters (instructions, branches, taken branches) are
//! transient-free and pin tightly; the miss-class and cycle counters carry
//! the transient mismatch and are tracked informationally until runs long
//! enough to amortize the fill are practical.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

use skia_frontend::{FrontendConfig, SimStats};
use skia_telemetry::json::JsonValue;
use skia_workloads::{SamplingConfig, SamplingPlan};

use crate::{recorded_trace, workload, StandingConfig};

/// The 12 figure workloads the pins cover: [`PAPER_BENCHMARKS`] minus the
/// four that the figures exclude (`sibench`, `noop`, `verilator`,
/// `speedometer2.0`).
///
/// [`PAPER_BENCHMARKS`]: skia_workloads::profiles::PAPER_BENCHMARKS
pub const PIN_WORKLOADS: [&str; 12] = [
    "cassandra",
    "kafka",
    "tomcat",
    "finagle-chirper",
    "finagle-http",
    "dotty",
    "tpcc",
    "ycsb",
    "twitter",
    "voter",
    "smallbank",
    "tatp",
];

/// Trace length the pins are computed at.
pub const PIN_STEPS: usize = 400_000;

/// Counters pinned to [`PINNED_THRESHOLD`] (see the module docs for why
/// only the retirement path pins this tight).
pub const PINNED: [&str; 3] = ["instructions", "branches", "taken_branches"];

/// Hard bound on every [`PINNED`] counter's relative error.
pub const PINNED_THRESHOLD: f64 = 0.02;

/// A named [`SimStats`] counter accessor (the row type of
/// [`PIN_COUNTERS`]).
pub type CounterAccessor = (&'static str, fn(&SimStats) -> u64);

/// Every counter the pins record, with an accessor each ([`PINNED`] first,
/// informational after).
pub const PIN_COUNTERS: &[CounterAccessor] = &[
    ("instructions", |s| s.instructions),
    ("branches", |s| s.branches),
    ("taken_branches", |s| s.taken_branches),
    ("cond_branches", |s| s.cond_branches),
    ("decode_busy_cycles", |s| s.decode_busy_cycles),
    ("cycles", |s| s.cycles),
    ("cond_mispredicts", |s| s.cond_mispredicts),
    ("btb_misses", |s| s.btb_misses),
];

/// The standing configuration the pins are computed under.
#[must_use]
pub fn pin_config() -> FrontendConfig {
    StandingConfig::BtbPlusSkia(8192).frontend()
}

/// Relative error of an estimate against truth; exact-zero truth demands an
/// exact-zero estimate.
#[must_use]
pub fn rel_err(est: u64, truth: u64) -> f64 {
    if truth == 0 {
        if est == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        est.abs_diff(truth) as f64 / truth as f64
    }
}

/// Round an error *up* to 4 decimal places (0.01% resolution). Recording
/// the ceiling keeps the committed pin conservative: the true error is
/// never larger than the file says.
#[must_use]
pub fn round_up4(v: f64) -> f64 {
    (v * 1e4).ceil() / 1e4
}

/// One recomputation (or one parse) of the pins file.
#[derive(Debug, Clone, PartialEq)]
pub struct PinReport {
    /// Trace length the errors were measured at.
    pub steps: usize,
    /// Smallest per-workload plan compression factor
    /// (represented steps / replayed steps).
    pub min_compression: f64,
    /// `workload → counter → relative error` (rounded up, 1e-4 resolution).
    pub workloads: BTreeMap<String, BTreeMap<String, f64>>,
}

impl PinReport {
    /// Recompute the pins: every [`PIN_WORKLOADS`] entry simulated both
    /// ways at [`pin_config`] and `steps`, errors rounded via
    /// [`round_up4`]. Deterministic — identical inputs reproduce the
    /// committed file byte for byte.
    #[must_use]
    pub fn compute(steps: usize) -> PinReport {
        let config = pin_config();
        let mut workloads = BTreeMap::new();
        let mut min_compression = f64::INFINITY;
        for name in PIN_WORKLOADS {
            let w = workload(name);
            let trace = recorded_trace(name, steps);
            let truth = w.run_trace(config.clone(), &trace, steps);
            let plan = SamplingPlan::build(&trace, steps, &SamplingConfig::for_steps(steps));
            min_compression = min_compression.min(plan.compression());
            let est = w.run_sampled_trace(config.clone(), &trace, &plan, None);
            let errors: BTreeMap<String, f64> = PIN_COUNTERS
                .iter()
                .map(|&(counter, get)| {
                    let e = rel_err(get(&est), get(&truth));
                    assert!(e.is_finite(), "{name}: {counter} error is not finite");
                    (counter.to_string(), round_up4(e))
                })
                .collect();
            workloads.insert(name.to_string(), errors);
        }
        PinReport {
            steps,
            min_compression: (min_compression * 100.0).floor() / 100.0,
            workloads,
        }
    }

    /// Serialize to the committed JSON shape (sorted keys, fixed float
    /// formatting — byte-stable across recomputations).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"steps\": {},", self.steps);
        let _ = writeln!(out, "  \"min_compression\": {:.2},", self.min_compression);
        let _ = writeln!(out, "  \"pinned_threshold\": {PINNED_THRESHOLD},");
        out.push_str("  \"workloads\": {\n");
        let n = self.workloads.len();
        for (i, (name, errors)) in self.workloads.iter().enumerate() {
            let _ = write!(out, "    \"{name}\": {{");
            let m = errors.len();
            for (j, (counter, err)) in errors.iter().enumerate() {
                let _ = write!(
                    out,
                    "\"{counter}\": {:.4}{}",
                    err,
                    if j + 1 < m { ", " } else { "" }
                );
            }
            let _ = writeln!(out, "}}{}", if i + 1 < n { "," } else { "" });
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parse a pins file (the inverse of [`PinReport::to_json`]).
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or a missing/ill-typed field.
    pub fn parse(s: &str) -> Result<PinReport, String> {
        let v = JsonValue::parse(s)?;
        let steps = v
            .get("steps")
            .and_then(JsonValue::as_u64)
            .ok_or("pins: missing steps")? as usize;
        let min_compression = v
            .get("min_compression")
            .and_then(JsonValue::as_f64)
            .ok_or("pins: missing min_compression")?;
        let mut workloads = BTreeMap::new();
        let obj = v
            .get("workloads")
            .and_then(JsonValue::as_object)
            .ok_or("pins: missing workloads")?;
        for (name, errors) in obj {
            let errors = errors
                .as_object()
                .ok_or_else(|| format!("pins: {name} is not an object"))?;
            let mut map = BTreeMap::new();
            for (counter, err) in errors {
                let err = err
                    .as_f64()
                    .ok_or_else(|| format!("pins: {name}.{counter} is not a number"))?;
                map.insert(counter.clone(), err);
            }
            workloads.insert(name.clone(), map);
        }
        Ok(PinReport {
            steps,
            min_compression,
            workloads,
        })
    }

    /// Structural + threshold validation: all 12 workloads present, every
    /// [`PIN_COUNTERS`] entry present and finite, every [`PINNED`] counter
    /// within [`PINNED_THRESHOLD`], and the plan compressing at least the
    /// acceptance floor of 5×.
    ///
    /// # Errors
    ///
    /// Returns the first violation as a message.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_compression < 5.0 {
            return Err(format!(
                "min_compression {:.2} below the 5x acceptance floor",
                self.min_compression
            ));
        }
        for name in PIN_WORKLOADS {
            let errors = self
                .workloads
                .get(name)
                .ok_or_else(|| format!("workload {name} missing from pins"))?;
            for &(counter, _) in PIN_COUNTERS {
                let err = *errors
                    .get(counter)
                    .ok_or_else(|| format!("{name}: counter {counter} missing from pins"))?;
                if !err.is_finite() || err < 0.0 {
                    return Err(format!("{name}: {counter} error {err} is not sane"));
                }
            }
            for counter in PINNED {
                let err = errors[counter];
                if err > PINNED_THRESHOLD {
                    return Err(format!(
                        "{name}: pinned counter {counter} error {err} exceeds {PINNED_THRESHOLD}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Path of the committed pins file (repo-root `ci/`), anchored at this
    /// crate's manifest so tests and binaries agree regardless of cwd.
    #[must_use]
    pub fn committed_path() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../ci/sampling-error-pins.json")
    }

    /// Load and parse the committed pins file.
    ///
    /// # Errors
    ///
    /// Returns a message when the file is unreadable or malformed.
    pub fn load_committed() -> Result<PinReport, String> {
        let path = Self::committed_path();
        let s = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Self::parse(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> PinReport {
        let mut workloads = BTreeMap::new();
        for name in PIN_WORKLOADS {
            let errors: BTreeMap<String, f64> = PIN_COUNTERS
                .iter()
                .map(|&(c, _)| (c.to_string(), 0.0123))
                .collect();
            workloads.insert(name.to_string(), errors);
        }
        PinReport {
            steps: PIN_STEPS,
            min_compression: 7.5,
            workloads,
        }
    }

    #[test]
    fn json_round_trips() {
        let r = sample_report();
        let parsed = PinReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        // And the serialization is a fixed point.
        assert_eq!(parsed.to_json(), r.to_json());
    }

    #[test]
    fn validate_catches_violations() {
        let ok = sample_report();
        ok.validate().unwrap();

        let mut thin = ok.clone();
        thin.min_compression = 4.9;
        assert!(thin.validate().unwrap_err().contains("acceptance floor"));

        let mut over = ok.clone();
        *over
            .workloads
            .get_mut("tpcc")
            .unwrap()
            .get_mut("instructions")
            .unwrap() = 0.03;
        assert!(over.validate().unwrap_err().contains("instructions"));

        let mut missing = ok.clone();
        missing.workloads.remove("voter");
        assert!(missing.validate().unwrap_err().contains("voter"));

        // An informational counter over the pinned threshold is fine.
        let mut info = ok;
        *info
            .workloads
            .get_mut("tpcc")
            .unwrap()
            .get_mut("btb_misses")
            .unwrap() = 0.9;
        info.validate().unwrap();
    }

    #[test]
    fn rounding_is_conservative() {
        assert_eq!(round_up4(0.012301), 0.0124);
        assert_eq!(round_up4(0.0), 0.0);
        assert_eq!(round_up4(0.02), 0.02);
        assert!(round_up4(1e-9) > 0.0, "nonzero error never rounds to zero");
    }
}
