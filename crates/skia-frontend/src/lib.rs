//! # skia-frontend — a cycle-accounting decoupled FDIP front-end simulator
//!
//! The evaluation substrate of the Skia reproduction: a trace-replay
//! simulator of the front-end in Fig. 4 of the paper — Instruction Address
//! Generator (BPU: BTB ∥ SBB, TAGE, ITTAGE, RAS), Fetch Target Queue, FDIP
//! prefetching into an L1-I/L2/L3 hierarchy, an instruction fetch/decode
//! stage with idle-cycle accounting, and early-vs-late resteer modeling with
//! execution-driven wrong-path prefetching (wrong-path blocks walk the real
//! program image, so L1-I pollution is mechanistic, not statistical).
//!
//! ## Model summary (and honest boundaries)
//!
//! The simulator replays the *retired* branch trace from
//! [`skia_workloads::Walker`] in lockstep: each predicted basic block is
//! verified immediately against the true path, penalties are charged on a
//! cycle ledger (IAG rate, FTQ occupancy, prefetch latency, decode
//! throughput, resteer bubbles), and predictors train at commit. Compared to
//! a full out-of-order model this:
//!
//! * **keeps** everything the paper's effects depend on — BTB/SBB reach and
//!   replacement, shadow decode timing-off-critical-path, wrong-path cache
//!   pollution, early (decode) vs. late (execute) resteer cost, decoder idle
//!   cycles, CACTI-style BTB scaling latency;
//! * **approximates** the back-end as a retire-width bound plus fixed
//!   resolution latencies, and excludes residual wrong-path *history*
//!   corruption (repairs are exact — the checkpoint machinery in
//!   `skia-uarch` supports inexact repair studies, but the lockstep replay
//!   here does not need it).
//!
//! These boundaries are those of a front-end study; DESIGN.md §2 documents
//! the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bpu;
pub mod config;
pub mod sampling;
pub mod sim;
pub mod stats;
pub mod telemetry;

pub use bpu::{Bpu, PredictedBlock, PredictedBranch};
pub use config::{BtbMode, FrontendConfig};
pub use sampling::{run_plan, run_plan_instrumented};
pub use sim::{BatchFault, SampleFault, Simulator};
pub use stats::SimStats;
pub use telemetry::{FrontendTelemetry, SimCounters};

/// Run a complete simulation: generate nothing, just wire a program, a trace
/// and a configuration together.
///
/// # Example
///
/// ```rust
/// use skia_frontend::{run, FrontendConfig};
/// use skia_workloads::{Program, ProgramSpec, Walker};
///
/// let spec = ProgramSpec { functions: 60, ..ProgramSpec::default() };
/// let program = Program::generate(&spec);
/// let trace = Walker::new(&program, 1, 8).take(2_000);
/// let stats = run(&program, FrontendConfig::test_small(), trace);
/// assert!(stats.instructions > 0);
/// assert!(stats.ipc() > 0.0);
/// ```
pub fn run(
    program: &skia_workloads::Program,
    config: FrontendConfig,
    trace: impl Iterator<Item = skia_workloads::TraceStep>,
) -> SimStats {
    let mut sim = Simulator::new(program, config);
    sim.run(trace)
}

/// Like [`run`], but also export the full telemetry [`Snapshot`] — every
/// registry counter, the standing histograms, and (when `trace_config` is
/// `Some`) the sampled event trace.
///
/// The returned [`SimStats`] and the snapshot's counters are materialized
/// from the same registry cells, so they agree by construction.
///
/// [`Snapshot`]: skia_telemetry::Snapshot
pub fn run_instrumented(
    program: &skia_workloads::Program,
    config: FrontendConfig,
    trace_config: Option<skia_telemetry::TraceConfig>,
    trace: impl Iterator<Item = skia_workloads::TraceStep>,
) -> (SimStats, skia_telemetry::Snapshot) {
    let mut sim = Simulator::new(program, config);
    if let Some(tc) = trace_config {
        sim.enable_trace(tc);
    }
    let stats = sim.run(trace);
    let snapshot = sim.snapshot();
    (stats, snapshot)
}

/// [`run_instrumented`] over the batched replay kernel
/// ([`Simulator::run_batched`]): byte-identical stats and snapshot, chunked
/// column consumption. Sweep drivers use this for recorded traces.
///
/// # Panics
///
/// Panics if `chunk_size` is 0 or the recording is shorter than `steps`.
pub fn run_instrumented_batched(
    program: &skia_workloads::Program,
    config: FrontendConfig,
    trace_config: Option<skia_telemetry::TraceConfig>,
    trace: &skia_workloads::RecordedTrace,
    steps: usize,
    chunk_size: usize,
) -> (SimStats, skia_telemetry::Snapshot) {
    let mut sim = Simulator::new(program, config);
    if let Some(tc) = trace_config {
        sim.enable_trace(tc);
    }
    let stats = sim.run_batched(trace, steps, chunk_size);
    let snapshot = sim.snapshot();
    (stats, snapshot)
}
