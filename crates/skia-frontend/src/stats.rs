//! Simulation statistics and derived metrics for every paper figure.

use skia_core::SkiaStats;
use skia_isa::BranchKind;
use skia_uarch::cache::CacheStats;

/// Why the front-end resteered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResteerCause {
    /// A taken branch the BPU did not know about (BTB and SBB both missed).
    UnknownBranch,
    /// Conditional direction mispredicted.
    Direction,
    /// Indirect or return target mispredicted.
    Target,
    /// The SBB supplied a branch that does not exist on the true path.
    BogusShadow,
}

/// Where the resteer was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResteerStage {
    /// Detected by the decoder (early resteer, §2.6).
    Decode,
    /// Detected at execute (late resteer).
    Execute,
}

/// Complete counters from one simulation run.
///
/// `PartialEq` compares every field (including the float
/// `mean_ftq_occupancy` exactly): two runs of the same (workload, config,
/// steps) must produce bitwise-identical stats regardless of sweep
/// parallelism, and the determinism test asserts exactly that.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Retired instructions.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Retired branches (= trace steps).
    pub branches: u64,
    /// Retired taken branches.
    pub taken_branches: u64,

    /// Branches that missed the BTB at prediction time.
    pub btb_misses: u64,
    /// BTB misses broken down by branch kind (paper Fig. 6).
    pub btb_misses_by_kind: [u64; 6],
    /// BTB misses whose cache line was already L1-I-resident at prediction
    /// time (paper Figs. 1 and 15).
    pub btb_miss_l1i_resident: u64,
    /// BTB misses on taken branches (the harmful class).
    pub btb_miss_taken: u64,
    /// BTB misses on taken, SBB-eligible branches (direct unconditional,
    /// call, return) — the class Skia can rescue.
    pub btb_miss_rescuable: u64,
    /// BTB misses rescued by an SBB hit (no resteer needed).
    pub sbb_rescues: u64,
    /// Rescuable misses whose branch had been shadow-decoded at least once
    /// earlier in the run (diagnostic: separates SBB-capacity losses from
    /// never-decoded coverage gaps).
    pub rescuable_seen_before: u64,

    /// Resteers by (cause, stage).
    pub decode_resteers: u64,
    /// Execute-stage resteers.
    pub exec_resteers: u64,
    /// Resteers caused by bogus shadow branches.
    pub bogus_resteers: u64,

    /// Conditional branches retired / mispredicted.
    pub cond_branches: u64,
    /// Conditional direction mispredictions.
    pub cond_mispredicts: u64,
    /// Indirect branches retired.
    pub indirect_branches: u64,
    /// Indirect target mispredictions.
    pub indirect_mispredicts: u64,
    /// Return target mispredictions (RAS misses).
    pub return_mispredicts: u64,

    /// Cycles the decoder spent waiting on instruction-cache fills.
    pub idle_icache_cycles: u64,
    /// Cycles the decoder spent idle during resteer repair + pipe refill.
    pub idle_resteer_cycles: u64,
    /// Cycles the decoder spent decoding.
    pub decode_busy_cycles: u64,

    /// Wrong-path blocks fetched during resteer shadows.
    pub wrong_path_blocks: u64,
    /// Wrong-path line prefetches issued (L1-I pollution pressure).
    pub wrong_path_prefetches: u64,

    /// L1-I cache counters.
    pub l1i: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// L3 counters.
    pub l3: CacheStats,
    /// Skia counters when enabled.
    pub skia: Option<SkiaStats>,
    /// Mean FTQ occupancy sampled per formed block.
    pub mean_ftq_occupancy: f64,
}

impl SimStats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Misses per kilo-instruction helper.
    fn mpki(&self, misses: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// BTB misses per kilo-instruction (Figs. 1 and 16).
    #[must_use]
    pub fn btb_mpki(&self) -> f64 {
        self.mpki(self.btb_misses)
    }

    /// BTB-miss MPKI restricted to misses whose line was L1-I resident.
    #[must_use]
    pub fn btb_miss_l1i_resident_mpki(&self) -> f64 {
        self.mpki(self.btb_miss_l1i_resident)
    }

    /// L1-I misses per kilo-instruction: lines the front-end needed that
    /// were not resident (demand + prefetch fills), the footprint measure of
    /// Fig. 13.
    #[must_use]
    pub fn l1i_mpki(&self) -> f64 {
        self.mpki(self.l1i.misses())
    }

    /// Conditional mispredicts per kilo-instruction.
    #[must_use]
    pub fn cond_mpki(&self) -> f64 {
        self.mpki(self.cond_mispredicts)
    }

    /// Fraction of BTB misses with the branch line already in the L1-I
    /// (the paper's headline 75% observation).
    #[must_use]
    pub fn btb_miss_l1i_resident_fraction(&self) -> f64 {
        if self.btb_misses == 0 {
            0.0
        } else {
            self.btb_miss_l1i_resident as f64 / self.btb_misses as f64
        }
    }

    /// Decoder idle cycles (icache + resteer).
    #[must_use]
    pub fn decoder_idle_cycles(&self) -> u64 {
        self.idle_icache_cycles + self.idle_resteer_cycles
    }

    /// BTB misses for one branch kind. Returns 0 for a kind that is absent
    /// from [`BranchKind::ALL`] (impossible today, but a table/enum skew
    /// should read as "no misses", not a panic).
    #[must_use]
    pub fn btb_misses_of(&self, kind: BranchKind) -> u64 {
        BranchKind::ALL
            .iter()
            .position(|&k| k == kind)
            .and_then(|idx| self.btb_misses_by_kind.get(idx).copied())
            .unwrap_or(0)
    }

    /// Speedup of `self` over a `baseline` run of the same trace.
    #[must_use]
    pub fn speedup_over(&self, baseline: &SimStats) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        baseline.cycles as f64 / self.cycles as f64
    }
}

/// Geometric mean of an iterator of positive ratios.
///
/// Non-positive or non-finite values cannot contribute to a geometric mean
/// (their logarithm is undefined/-∞); they are skipped in release builds —
/// rather than poisoning the whole mean with a NaN — and trip a
/// `debug_assert` in debug builds so the bad input is caught in tests.
#[must_use]
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        debug_assert!(
            v.is_finite() && v > 0.0,
            "geomean needs positive finite values, got {v}"
        );
        if !(v.is_finite() && v > 0.0) {
            continue;
        }
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_mpki_arithmetic() {
        let s = SimStats {
            instructions: 10_000,
            cycles: 5_000,
            btb_misses: 50,
            btb_miss_l1i_resident: 40,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.btb_mpki() - 5.0).abs() < 1e-12);
        assert!((s.btb_miss_l1i_resident_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.btb_mpki(), 0.0);
        assert_eq!(s.btb_miss_l1i_resident_fraction(), 0.0);
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let fast = SimStats {
            instructions: 1000,
            cycles: 800,
            ..SimStats::default()
        };
        let slow = SimStats {
            instructions: 1000,
            cycles: 1000,
            ..SimStats::default()
        };
        assert!((fast.speedup_over(&slow) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_known_values() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }

    #[test]
    fn per_kind_miss_lookup() {
        let mut s = SimStats::default();
        s.btb_misses_by_kind[1] = 7; // DirectUncond is index 1 in ALL
        assert_eq!(s.btb_misses_of(BranchKind::DirectUncond), 7);
        assert_eq!(s.btb_misses_of(BranchKind::Call), 0);
    }
}
