//! The lockstep trace-replay simulator.
//!
//! Each true-path [`TraceStep`] (one executed basic block) is verified
//! against the blocks the BPU forms. The cycle ledger charges: one block per
//! cycle of IAG bandwidth, FTQ occupancy back-pressure, FDIP prefetch
//! latency, decode throughput, and resteer bubbles (decode-detected early
//! resteers vs. execute-detected late resteers, §2.6). On every resteer the
//! wrong-path blocks the IAG would have formed in the detection shadow are
//! actually formed and their lines actually prefetched, so L1-I pollution by
//! wrong-path FDIP traffic is mechanistic.
//!
//! Every counter lives in a [`MetricRegistry`] owned by the simulator; the
//! hot path increments plain-cell [`skia_telemetry::Counter`] handles (see
//! [`crate::telemetry`]) and [`SimStats`] is materialized from the registry
//! on demand, so the legacy stats struct and the exported snapshot are the
//! same numbers by construction.

use std::collections::VecDeque;

use skia_isa::BranchKind;
use skia_telemetry::{EventKind, EventTrace, MetricRegistry, Snapshot, TraceConfig};
use skia_uarch::cache::Hierarchy;
use skia_workloads::{Program, RecordedTrace, SliceJob, TraceStep};

use crate::bpu::{Bpu, PredictedBlock};
use crate::config::FrontendConfig;
use crate::stats::{ResteerCause, ResteerStage, SimStats};
use crate::telemetry::{FrontendTelemetry, SimAccum};

/// Deliberate batched-kernel bugs, plantable via
/// [`Simulator::plant_batch_fault`] to prove the byte-exact equivalence
/// gates actually detect batching mistakes (the same discipline as
/// `skia-oracle`'s `OracleFault` knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchFault {
    /// Drain the per-chunk telemetry accumulator twice at every chunk
    /// boundary, double-counting every pending delta — the classic
    /// accumulator-lifecycle bug a batched kernel can introduce.
    DoubleFlush,
}

/// Deliberate sampled-replay bugs, passable to
/// [`Simulator::run_slice`] to prove the sampled-vs-full error-bound
/// harness actually detects a broken sampling pipeline (the [`BatchFault`]
/// discipline applied to phase sampling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleFault {
    /// Skip the warmup replay entirely: every measured window starts from
    /// cold predictors and caches — the exact bias warmup exists to remove.
    /// The measure window itself is unchanged, so retirement counters stay
    /// right while miss-class counters inflate past the harness bounds.
    SkipWarmup,
}

/// Cumulative state captured at the warmup/measure boundary of a sampled
/// slice. A plan's slices replay through **one** simulator in trace order
/// (state carryover — see [`crate::sampling::run_plan`]), so at a boundary
/// every counter — registry cells, cache hierarchy, Skia — already holds
/// the earlier slices' measured work plus this slice's (muted-but-state-
/// changing) warmup. The whole cumulative picture is baselined here and
/// subtracted after the measure, leaving exactly the measured window.
#[derive(Debug, Clone)]
struct MeasureBase {
    /// `decode_free` at measure start (the slice-local cycle origin).
    cycle_base: u64,
    /// `ftq.occupancy` histogram sum at measure start.
    ftq_sum: u64,
    /// `ftq.occupancy` histogram count at measure start.
    ftq_count: u64,
    /// Full cumulative stats at measure start. `cycles` and
    /// `mean_ftq_occupancy` are computed quantities with their own bases
    /// above; every other field is subtracted verbatim.
    prior: SimStats,
}

/// Average x86 instruction length assumed when estimating decode occupancy
/// of a byte range (retirement counts are exact; this only shapes decode
/// throughput).
const AVG_INSN_BYTES: u64 = 4;

/// Most cache lines one predicted block can span: `max_block_bytes` of scan
/// window plus a ≤15-byte terminator straddling one more line boundary —
/// 3 lines at the standing 64-byte window, with one spare.
const MAX_BLOCK_LINES: usize = 4;

/// The (line address, pre-fetch L1-I residency) pairs of one block, stored
/// inline. Blocks are formed once per IAG cycle — including on every
/// wrong-path cycle — so the previous per-block `Vec<(u64, bool)>` was the
/// simulator's hottest allocation; an inline array eliminates it.
#[derive(Debug, Clone, Copy, Default)]
struct LineSet {
    len: u8,
    lines: [(u64, bool); MAX_BLOCK_LINES],
}

impl LineSet {
    fn push(&mut self, addr: u64, resident: bool) {
        let i = usize::from(self.len);
        assert!(
            i < MAX_BLOCK_LINES,
            "block spans more than {MAX_BLOCK_LINES} lines; raise MAX_BLOCK_LINES \
             alongside FrontendConfig::max_block_bytes"
        );
        self.lines[i] = (addr, resident);
        self.len += 1;
    }

    fn len(&self) -> usize {
        usize::from(self.len)
    }

    fn iter(&self) -> impl Iterator<Item = &(u64, bool)> {
        self.lines[..self.len()].iter()
    }
}

/// A formed block plus its timing and pre-fetch L1-I residency snapshot.
#[derive(Debug, Clone)]
struct InFlight {
    block: PredictedBlock,
    iag_cycle: u64,
    decode_start: u64,
    /// (line address, was L1-I resident before this block's prefetches).
    lines: LineSet,
}

/// The front-end simulator.
#[derive(Debug)]
pub struct Simulator<'p> {
    program: &'p Program,
    config: FrontendConfig,
    bpu: Bpu<'p>,
    hier: Hierarchy,
    registry: MetricRegistry,
    tel: FrontendTelemetry,
    /// Hot-path metric deltas, drained into `tel` whenever stats are
    /// observed (finalize/stats/snapshot) and at batch boundaries.
    acc: SimAccum,
    /// Planted batched-kernel bug, if any (test harness only).
    batch_fault: Option<BatchFault>,
    iag_cycle: u64,
    decode_free: u64,
    /// Decode-completion times of in-flight FTQ entries.
    ftq: VecDeque<u64>,
    pending: Option<InFlight>,
    /// Fill-completion cycle of the most recent `prefetch_lines` call.
    last_fill_done: u64,
}

impl<'p> Simulator<'p> {
    /// Build a simulator over `program` with the given configuration. The
    /// BPU starts at the program's dispatcher entry.
    #[must_use]
    pub fn new(program: &'p Program, config: FrontendConfig) -> Self {
        let start = program.functions()[0].entry;
        let mut registry = MetricRegistry::new();
        let tel = FrontendTelemetry::register(&mut registry);
        let mut bpu = Bpu::new(&config, start, program.branch_table());
        if let Some(skia) = &mut bpu.skia {
            skia.attach_telemetry(tel.sbb_lifetime.clone(), None);
        }
        Simulator {
            bpu,
            hier: Hierarchy::new(config.hierarchy),
            program,
            config,
            registry,
            tel,
            acc: SimAccum::default(),
            batch_fault: None,
            iag_cycle: 0,
            decode_free: 0,
            ftq: VecDeque::new(),
            pending: None,
            last_fill_done: 0,
        }
    }

    /// Turn on event tracing (resteers, SBB traffic, BTB misses, prefetch
    /// issues, shadow decodes) and return the trace handle. Idempotent: a
    /// second call returns the existing trace.
    pub fn enable_trace(&mut self, config: TraceConfig) -> EventTrace {
        let trace = self.registry.enable_trace(config);
        self.tel.trace = Some(trace.clone());
        if let Some(skia) = &mut self.bpu.skia {
            skia.attach_telemetry(self.tel.sbb_lifetime.clone(), Some(trace.clone()));
        }
        trace
    }

    /// Replay a trace to completion and return the statistics.
    pub fn run(&mut self, trace: impl Iterator<Item = TraceStep>) -> SimStats {
        for step in trace {
            self.replay_step(&step);
        }
        self.finalize()
    }

    /// Replay the first `steps` steps of a recorded trace through the
    /// batched kernel and return the statistics.
    ///
    /// Steps are consumed chunk-by-chunk straight from the trace's columns
    /// ([`RecordedTrace::chunks`]); the per-step telemetry accumulator is
    /// drained once per chunk boundary instead of once at finalization.
    /// Both differences are exact — the chunk concatenation is bit-identical
    /// to `replay().take(steps)` and the accumulator drain commutes — so
    /// the result equals [`Simulator::run`] over the same stream byte for
    /// byte. The `batched_equivalence` suite and the oracle lockstep
    /// harness enforce that equality; [`Simulator::plant_batch_fault`]
    /// proves they can tell when it breaks.
    ///
    /// The per-step [`Simulator::run`] stays the entry point for
    /// oracle-lockstep (which compares full stats after every step) and
    /// live-walk iterators; sweeps over recorded traces use this path.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is 0 or the recording is shorter than
    /// `steps`.
    pub fn run_batched(
        &mut self,
        trace: &RecordedTrace,
        steps: usize,
        chunk_size: usize,
    ) -> SimStats {
        for chunk in trace.chunks(steps, chunk_size) {
            for step in chunk {
                self.replay_step(&step);
            }
            self.flush_chunk();
        }
        self.finalize()
    }

    /// Replay one sampling slice — warmup-then-measure — and return the
    /// statistics of the *measured window only*.
    ///
    /// The warmup window `[skip, skip+warmup)` replays through the normal
    /// per-step path but is **muted**: its telemetry deltas are discarded
    /// (never flushed) while its architectural effect — trained predictors,
    /// filled caches, a populated SBB — persists into the measured window,
    /// which is the whole point of warmup.
    ///
    /// Slices of one plan run through **one** simulator in trace order
    /// (state carryover): the working set a slice accumulates in the BTB,
    /// caches and SBB stays live for the next slice, and the short warmup
    /// only re-syncs recent-phase state (TAGE histories, RAS, replacement
    /// recency). Without carryover each slice would pay the full structure
    /// fill from cold, which at realistic structure sizes takes far longer
    /// than any affordable warmup and biases every miss-class counter
    /// upward. Everything cumulative is baselined at the warmup/measure
    /// boundary and subtracted from the result, so the returned stats cover
    /// exactly the measured window no matter how much history precedes it;
    /// the cycle ledger is re-originated at the boundary the same way.
    ///
    /// Called with the degenerate slice (`skip = warmup = 0`, `simulate =
    /// steps`) on a fresh simulator this is [`Simulator::run_batched`] byte
    /// for byte: same chunk cadence, same finalization arithmetic against
    /// an all-zero baseline. The `sampled_vs_full` proptest pins that
    /// equality.
    ///
    /// `fault` plants a deliberate sampling bug (see [`SampleFault`]);
    /// production runners pass `None`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is 0 or the slice's measure window extends
    /// past the recording.
    pub fn run_slice(
        &mut self,
        trace: &RecordedTrace,
        slice: &SliceJob,
        chunk_size: usize,
        fault: Option<SampleFault>,
    ) -> SimStats {
        let measure_start = slice.measure_start();
        let warm_lo = if fault == Some(SampleFault::SkipWarmup) {
            measure_start // cold start: the bias the harness must catch
        } else {
            slice.skip
        };
        if warm_lo < slice.measure_end() {
            // Re-sync the IAG to the slice's entry point. With state
            // carryover the BPU is still positioned at the previous slice's
            // end, and lockstep requires predicted blocks to align with the
            // true path. This is a pure position redirect — the in-flight
            // block from before the gap is dropped and no resteer penalty
            // is charged (the measure baseline is captured after warmup
            // anyway). On a fresh simulator at `lo == 0` the redirect
            // rewrites the BPU's start state with identical values, so the
            // degenerate byte-exactness contract is untouched.
            let (entry_pc, entered_by_branch) = trace.entry_at(warm_lo);
            self.pending = None;
            self.ftq.clear();
            self.bpu.resteer(entry_pc, entered_by_branch);
        }
        for step in trace.window(warm_lo, measure_start) {
            self.replay_step(&step);
        }
        // Mute the warmup: drop its pending deltas instead of flushing.
        self.acc = SimAccum::default();
        let base = MeasureBase {
            cycle_base: self.decode_free,
            ftq_sum: self.tel.ftq_occupancy.sum(),
            ftq_count: self.tel.ftq_occupancy.count(),
            prior: self.stats(),
        };
        for chunk in trace.chunks_range(measure_start, slice.measure_end(), chunk_size) {
            for step in chunk {
                self.replay_step(&step);
            }
            self.flush_chunk();
        }
        self.finalize_measured(&base)
    }

    /// [`Simulator::finalize`] against a measure-boundary baseline: every
    /// cumulative counter has the prior history subtracted, the cycle
    /// ledger is re-originated at the boundary, and the FTQ mean comes from
    /// the histogram's windowed (sum, count) difference. With an all-zero
    /// baseline this is `finalize` exactly.
    fn finalize_measured(&mut self, base: &MeasureBase) -> SimStats {
        let now = self.stats(); // flushes pending deltas first
        let mut stats = crate::sampling::sim_stats_delta(&now, &base.prior);
        let retire_floor = stats
            .instructions
            .div_ceil(u64::from(self.config.retire_width));
        // `decode_free` is monotone, so the subtraction cannot underflow.
        let measured_frontier = self.decode_free - base.cycle_base;
        stats.cycles = measured_frontier.max(retire_floor) + u64::from(self.config.backend_depth);
        let d_sum = self.tel.ftq_occupancy.sum().wrapping_sub(base.ftq_sum);
        let d_count = self.tel.ftq_occupancy.count() - base.ftq_count;
        // Same arithmetic as `HistogramSnapshot::mean`, so the degenerate
        // slice (zero base) reproduces the full run's mean bit for bit.
        stats.mean_ftq_occupancy = if d_count == 0 {
            0.0
        } else {
            d_sum as f64 / d_count as f64
        };
        stats
    }

    /// The shared per-step body of [`Simulator::run`] and
    /// [`Simulator::run_batched`]: retirement accounting plus lockstep
    /// verification of one trace step.
    #[inline]
    fn replay_step(&mut self, step: &TraceStep) {
        self.acc.branches += 1;
        self.acc.instructions += u64::from(step.insns);
        if step.taken {
            self.acc.taken_branches += 1;
        }
        self.verify_step(step);
    }

    /// Drain the telemetry accumulator at a batch boundary — and, when a
    /// [`BatchFault`] is planted, misbehave on purpose first.
    fn flush_chunk(&mut self) {
        if self.batch_fault == Some(BatchFault::DoubleFlush) {
            // Flush a ghost copy of the pending deltas before the real
            // drain: every pending counter lands twice.
            let mut ghost = self.acc.clone();
            ghost.flush_into(&self.tel);
        }
        self.acc.flush_into(&self.tel);
    }

    /// Plant a deliberate batching bug (see [`BatchFault`]). Test-harness
    /// API: the equivalence and lockstep suites use this to prove they
    /// detect batched-kernel regressions; production runners never call it.
    pub fn plant_batch_fault(&mut self, fault: BatchFault) {
        self.batch_fault = Some(fault);
    }

    fn finalize(&mut self) -> SimStats {
        self.acc.flush_into(&self.tel);
        let retire_floor = self
            .tel
            .c
            .instructions
            .get()
            .div_ceil(u64::from(self.config.retire_width));
        let cycles = self.decode_free.max(retire_floor) + u64::from(self.config.backend_depth);
        self.tel.c.cycles.set(cycles);
        self.stats()
    }

    /// Materialize the current counters into a [`SimStats`]. `cycles` is 0
    /// until the run finalizes (as before the registry existed).
    #[must_use]
    pub fn stats(&mut self) -> SimStats {
        self.acc.flush_into(&self.tel);
        let mut stats = SimStats::default();
        self.tel.c.materialize_into(&mut stats);
        for (i, c) in self.tel.btb_miss_by_kind.iter().enumerate() {
            stats.btb_misses_by_kind[i] = c.get();
        }
        stats.l1i = self.hier.l1i_stats();
        stats.l2 = self.hier.l2_stats();
        stats.l3 = self.hier.l3_stats();
        stats.skia = self.bpu.skia.as_ref().map(|s| s.stats());
        stats.mean_ftq_occupancy = self.tel.ftq_occupancy.snapshot().mean();
        stats
    }

    /// Export the pull-model component stats (cache levels, predictors,
    /// Skia) into the registry and materialize everything into a
    /// [`Snapshot`] — the `--emit-json` payload.
    #[must_use]
    pub fn snapshot(&mut self) -> Snapshot {
        self.hier
            .l1i_stats()
            .register_into(&mut self.registry, "l1i");
        self.hier.l2_stats().register_into(&mut self.registry, "l2");
        self.hier.l3_stats().register_into(&mut self.registry, "l3");
        let (tage_preds, tage_miss) = self.bpu.tage_stats();
        self.registry.set_counter("tage.predictions", tage_preds);
        self.registry.set_counter("tage.mispredictions", tage_miss);
        if let Some(skia) = &self.bpu.skia {
            skia.stats().register_into(&mut self.registry);
        }
        let stats = self.stats();
        self.registry
            .set_gauge("sim.mean_ftq_occupancy", stats.mean_ftq_occupancy);
        self.registry.set_gauge("sim.ipc", stats.ipc());
        self.registry.snapshot()
    }

    /// The metric registry (e.g. to register experiment-level metrics into
    /// the same snapshot).
    pub fn registry_mut(&mut self) -> &mut MetricRegistry {
        &mut self.registry
    }

    // -- block formation & timing ------------------------------------------

    fn form_block(&mut self) -> InFlight {
        // Retire FTQ entries whose decode has completed by now.
        while self.ftq.front().is_some_and(|&t| t <= self.iag_cycle) {
            self.ftq.pop_front();
        }
        // Back-pressure: a full FTQ stalls the IAG until the head drains.
        if self.ftq.len() >= self.config.ftq_depth {
            let head = self.ftq.pop_front().expect("non-empty");
            self.iag_cycle = self.iag_cycle.max(head);
        }
        self.iag_cycle += 1;
        self.acc.ftq_occupancy.record(self.ftq.len() as u64);

        let block = self.bpu.predict_block();
        self.issue_block(block)
    }

    /// Prefetch a block's lines, charge decode timing, run shadow decoding.
    fn issue_block(&mut self, block: PredictedBlock) -> InFlight {
        let lines = self.prefetch_lines(&block);
        let fill_done = self.last_fill_done;
        let frontier =
            (self.iag_cycle + u64::from(self.config.fetch_to_decode)).max(self.decode_free);
        if frontier > self.decode_free {
            self.acc.idle_resteer_cycles += frontier - self.decode_free;
        }
        let decode_start = frontier.max(fill_done);
        if decode_start > frontier {
            self.acc.idle_icache_cycles += decode_start - frontier;
        }
        let bytes = block.end.saturating_sub(block.start).max(1);
        let decode_cycles = bytes
            .div_ceil(u64::from(self.config.decode_width) * AVG_INSN_BYTES)
            .max(1);
        self.acc.decode_busy_cycles += decode_cycles;
        self.decode_free = decode_start + decode_cycles;
        self.ftq.push_back(self.decode_free);

        // Shadow decoding runs off the critical path once lines are present.
        self.shadow_decode(&block);

        InFlight {
            block,
            iag_cycle: self.iag_cycle,
            decode_start,
            lines,
        }
    }

    /// Drive the Skia shadow-decode hooks for a formed block and record the
    /// batch-size histogram + event.
    fn shadow_decode(&mut self, block: &PredictedBlock) {
        if self.bpu.skia.is_none() {
            return;
        }
        if let Some(skia) = &mut self.bpu.skia {
            skia.set_cycle(self.iag_cycle);
        }
        let inserted = self.bpu.shadow_decode(self.program, block) as u64;
        self.acc.shadow_batch.record(inserted);
        self.tel.event(
            self.iag_cycle,
            EventKind::ShadowDecode,
            block.start,
            inserted,
        );
    }

    /// Issue the FDIP prefetches for a block's line range. Returns the
    /// per-line pre-fetch L1-I residency and records the fill-completion
    /// cycle in `last_fill_done`.
    fn prefetch_lines(&mut self, block: &PredictedBlock) -> LineSet {
        let first = block.start & !63;
        let last = block.end.saturating_sub(1).max(block.start) & !63;
        let mut lines = LineSet::default();
        let mut max_latency = 0u32;
        let mut la = first;
        loop {
            let (resident, lat) = self.hier.fetch_line_tracking(la, true);
            max_latency = max_latency.max(lat);
            lines.push(la, resident);
            self.tel
                .event(self.iag_cycle, EventKind::PrefetchIssue, la, u64::from(lat));
            if la >= last {
                break;
            }
            la += 64;
        }
        self.last_fill_done = self.iag_cycle + u64::from(max_latency);
        lines
    }

    // -- verification -------------------------------------------------------

    fn verify_step(&mut self, step: &TraceStep) {
        loop {
            let pending = match self.pending.take() {
                Some(p) => p,
                None => self.form_block(),
            };
            let branch = pending.block.branch;
            match branch {
                None => {
                    if step.branch_pc >= pending.block.end {
                        // Sequential block fully consumed before the branch.
                        continue;
                    }
                    // A branch the BPU did not know about sits in this block.
                    self.count_btb_miss(step, &pending);
                    if step.taken {
                        self.resteer_missed_taken(step, pending);
                    } else {
                        self.commit_unpredicted(step);
                        if step.block_end() < pending.block.end {
                            self.pending = Some(pending);
                        }
                    }
                    return;
                }
                Some(b) => {
                    if b.pc > step.branch_pc {
                        // True branch comes first and the BPU missed it.
                        self.count_btb_miss(step, &pending);
                        if step.taken {
                            self.resteer_missed_taken(step, pending);
                        } else {
                            self.commit_unpredicted(step);
                            self.pending = Some(pending);
                        }
                        return;
                    }
                    if b.pc < step.branch_pc {
                        // A predicted branch where the true path has none:
                        // a bogus shadow branch (§3.4). Real-BTB entries
                        // cannot land mid-path in a static program.
                        debug_assert!(b.from_sbb, "only the SBB can be bogus here");
                        self.resteer_bogus(&pending, b.pc);
                        continue; // retry the same true step
                    }
                    // Aligned: predicted branch is the true branch.
                    if b.from_sbb {
                        self.count_btb_miss(step, &pending);
                    }
                    let target_ok = !step.taken || b.target == step.next_pc;
                    let correct = b.taken == step.taken && target_ok;
                    self.commit_aligned(step, &b);
                    if correct {
                        if b.from_sbb {
                            self.acc.sbb_rescues += 1;
                            self.tel
                                .event(self.iag_cycle, EventKind::SbbRescue, step.branch_pc, 0);
                        }
                        return;
                    }
                    // Wrong direction or wrong target: late resteer.
                    let cause = if b.taken != step.taken {
                        ResteerCause::Direction
                    } else {
                        ResteerCause::Target
                    };
                    match step.kind {
                        BranchKind::DirectCond => self.acc.cond_mispredicts += 1,
                        BranchKind::Return => self.acc.return_mispredicts += 1,
                        BranchKind::IndirectJmp | BranchKind::IndirectCall => {
                            self.acc.indirect_mispredicts += 1;
                        }
                        _ => {}
                    }
                    self.do_resteer(
                        &pending,
                        ResteerStage::Execute,
                        cause,
                        step.next_pc,
                        step.taken,
                    );
                    return;
                }
            }
        }
    }

    // -- commit paths --------------------------------------------------------

    fn static_target(&self, pc: u64) -> Option<u64> {
        // Dense side-table lookup (O(1) line index) instead of the
        // program's HashMap-of-metadata path — this runs once per commit.
        self.program.branch_table().target_of(pc)
    }

    fn kind_counters(&mut self, kind: BranchKind) {
        match kind {
            BranchKind::DirectCond => self.acc.cond_branches += 1,
            BranchKind::IndirectJmp | BranchKind::IndirectCall => {
                self.acc.indirect_branches += 1;
            }
            _ => {}
        }
    }

    /// Commit a branch the BPU never predicted (BTB+SBB miss).
    fn commit_unpredicted(&mut self, step: &TraceStep) {
        self.kind_counters(step.kind);
        let st = self.static_target(step.branch_pc);
        self.bpu.commit_branch(
            step.branch_pc,
            step.kind,
            step.taken,
            step.next_pc,
            st,
            step.branch_len,
            None,
        );
    }

    /// Commit a branch that was predicted at the right PC.
    fn commit_aligned(&mut self, step: &TraceStep, b: &crate::bpu::PredictedBranch) {
        self.kind_counters(step.kind);
        let st = self.static_target(step.branch_pc);
        self.bpu.commit_branch(
            step.branch_pc,
            step.kind,
            step.taken,
            step.next_pc,
            st,
            step.branch_len,
            Some(b),
        );
    }

    // -- miss/resteer machinery ----------------------------------------------

    fn count_btb_miss(&mut self, step: &TraceStep, pending: &InFlight) {
        // Only count misses where the branch genuinely was not in the BTB at
        // prediction time (SBB-supplied predictions count: the BTB missed).
        if self.bpu.btb_resident(step.branch_pc) {
            return;
        }
        self.acc.btb_misses += 1;
        let idx = BranchKind::ALL
            .iter()
            .position(|&k| k == step.kind)
            .expect("kind in table");
        self.acc.btb_miss_by_kind[idx] += 1;
        self.tel.event(
            self.iag_cycle,
            EventKind::BtbMiss,
            step.branch_pc,
            idx as u64,
        );
        if step.taken {
            self.acc.btb_miss_taken += 1;
            if step.kind.sbb_eligible() {
                self.acc.btb_miss_rescuable += 1;
                if self
                    .bpu
                    .skia
                    .as_ref()
                    .is_some_and(|s| s.ever_inserted(step.branch_pc))
                {
                    self.acc.rescuable_seen_before += 1;
                }
            }
        }
        let la = step.branch_pc & !63;
        let resident_before = pending
            .lines
            .iter()
            .find(|&&(a, _)| a == la)
            .map_or_else(|| self.hier.l1i_contains(step.branch_pc), |&(_, r)| r);
        if resident_before {
            self.acc.btb_miss_l1i_resident += 1;
        }
    }

    /// A taken branch the BPU did not know about: classify the detection
    /// stage, commit, and resteer.
    fn resteer_missed_taken(&mut self, step: &TraceStep, pending: InFlight) {
        let stage = match step.kind {
            // Direct unconditional targets are in the bytes: the decoder
            // resteers early. This is exactly the class Skia rescues.
            BranchKind::DirectUncond | BranchKind::Call => ResteerStage::Decode,
            // The decoder identifies a return; if the RAS top is right the
            // early resteer lands on the correct path.
            BranchKind::Return => {
                if self.bpu.ras_top_is(step.next_pc) {
                    ResteerStage::Decode
                } else {
                    self.acc.return_mispredicts += 1;
                    ResteerStage::Execute
                }
            }
            // The decoder identifies a conditional; a decode-time late
            // predict rescues it only if TAGE agrees it is taken.
            BranchKind::DirectCond => {
                self.acc.cond_mispredicts += 1;
                if self.bpu.tage_would_predict(step.branch_pc, true) {
                    ResteerStage::Decode
                } else {
                    ResteerStage::Execute
                }
            }
            // Indirect targets need execution unless ITTAGE already knows.
            BranchKind::IndirectJmp | BranchKind::IndirectCall => {
                if self.bpu.ittage_would_predict(step.branch_pc, step.next_pc) {
                    ResteerStage::Decode
                } else {
                    self.acc.indirect_mispredicts += 1;
                    ResteerStage::Execute
                }
            }
        };
        // Wrong path first (the shadow between mispredict and detection),
        // then repair, then commit on the corrected state.
        self.do_resteer(
            &pending,
            stage,
            ResteerCause::UnknownBranch,
            step.next_pc,
            true,
        );
        self.commit_unpredicted(step);
    }

    /// The decoder found no branch where the SBB said there was one.
    fn resteer_bogus(&mut self, pending: &InFlight, bogus_pc: u64) {
        self.acc.bogus_resteers += 1;
        if let Some(skia) = &mut self.bpu.skia {
            skia.set_cycle(self.iag_cycle);
            skia.note_bogus(bogus_pc);
        }
        // Fetch continues sequentially past the phantom branch. Resuming
        // strictly after it guarantees forward progress even if wrong-path
        // shadow decoding re-inserts the same bogus entry (the decoder has
        // established there is no branch *at* this address).
        self.do_resteer(
            pending,
            ResteerStage::Decode,
            ResteerCause::BogusShadow,
            bogus_pc + 1,
            false,
        );
    }

    /// Simulate the wrong-path shadow, repair the IAG, charge the bubble.
    fn do_resteer(
        &mut self,
        pending: &InFlight,
        stage: ResteerStage,
        cause: ResteerCause,
        resume_pc: u64,
        entered_by_branch: bool,
    ) {
        let _ = cause;
        let detect = match stage {
            ResteerStage::Decode => {
                self.acc.decode_resteers += 1;
                pending.decode_start + 1
            }
            ResteerStage::Execute => {
                self.acc.exec_resteers += 1;
                pending.decode_start + u64::from(self.config.exec_detect)
            }
        };

        // Wrong-path fetch: the IAG kept forming blocks (one per cycle,
        // bounded by the FTQ) until the resteer signal arrived. These blocks
        // prefetch real lines — the pollution FDIP mis-speculation causes.
        let shadow_cycles = detect.saturating_sub(pending.iag_cycle);
        let wp_blocks = shadow_cycles.min(self.config.ftq_depth as u64);
        for _ in 0..wp_blocks {
            let blk = self.bpu.predict_block();
            let lines = self.prefetch_lines(&blk);
            self.acc.wrong_path_prefetches += lines.len() as u64;
            self.acc.wrong_path_blocks += 1;
            self.shadow_decode(&blk);
        }

        // Repair: the IAG restarts after the signal plus the repair cycles
        // (plus the CACTI surcharge for oversized BTBs).
        self.iag_cycle = detect
            + u64::from(self.config.decode_repair)
            + u64::from(self.config.btb_extra_latency);
        self.ftq.clear();
        self.bpu.resteer(resume_pc, entered_by_branch);
        self.pending = None;

        // The repair bubble: from the mispredicted block's formation to the
        // IAG restart.
        let repair_latency = self.iag_cycle.saturating_sub(pending.iag_cycle);
        self.acc.resteer_latency.record(repair_latency);
        let stage_arg = match stage {
            ResteerStage::Decode => 0,
            ResteerStage::Execute => 1,
        };
        self.tel
            .event(detect, EventKind::Resteer, resume_pc, stage_arg);
    }
}

impl<'p> Simulator<'p> {
    /// Mutable access to the BPU (testing and fault-injection aid).
    pub fn bpu_mut(&mut self) -> &mut Bpu<'p> {
        &mut self.bpu
    }
}
