//! The lockstep trace-replay simulator.
//!
//! Each true-path [`TraceStep`] (one executed basic block) is verified
//! against the blocks the BPU forms. The cycle ledger charges: one block per
//! cycle of IAG bandwidth, FTQ occupancy back-pressure, FDIP prefetch
//! latency, decode throughput, and resteer bubbles (decode-detected early
//! resteers vs. execute-detected late resteers, §2.6). On every resteer the
//! wrong-path blocks the IAG would have formed in the detection shadow are
//! actually formed and their lines actually prefetched, so L1-I pollution by
//! wrong-path FDIP traffic is mechanistic.

use std::collections::VecDeque;

use skia_isa::BranchKind;
use skia_uarch::cache::Hierarchy;
use skia_workloads::{Program, TraceStep};

use crate::bpu::{Bpu, PredictedBlock};
use crate::config::FrontendConfig;
use crate::stats::{ResteerCause, ResteerStage, SimStats};

/// Average x86 instruction length assumed when estimating decode occupancy
/// of a byte range (retirement counts are exact; this only shapes decode
/// throughput).
const AVG_INSN_BYTES: u64 = 4;

/// A formed block plus its timing and pre-fetch L1-I residency snapshot.
#[derive(Debug, Clone)]
struct InFlight {
    block: PredictedBlock,
    iag_cycle: u64,
    decode_start: u64,
    /// (line address, was L1-I resident before this block's prefetches).
    lines: Vec<(u64, bool)>,
}

/// The front-end simulator.
#[derive(Debug)]
pub struct Simulator<'p> {
    program: &'p Program,
    config: FrontendConfig,
    bpu: Bpu,
    hier: Hierarchy,
    stats: SimStats,
    iag_cycle: u64,
    decode_free: u64,
    /// Decode-completion times of in-flight FTQ entries.
    ftq: VecDeque<u64>,
    ftq_occupancy_sum: u64,
    ftq_samples: u64,
    pending: Option<InFlight>,
    /// Fill-completion cycle of the most recent `prefetch_lines` call.
    last_fill_done: u64,
}

impl<'p> Simulator<'p> {
    /// Build a simulator over `program` with the given configuration. The
    /// BPU starts at the program's dispatcher entry.
    #[must_use]
    pub fn new(program: &'p Program, config: FrontendConfig) -> Self {
        let start = program.functions()[0].entry;
        Simulator {
            bpu: Bpu::new(&config, start),
            hier: Hierarchy::new(config.hierarchy),
            program,
            config,
            stats: SimStats::default(),
            iag_cycle: 0,
            decode_free: 0,
            ftq: VecDeque::new(),
            ftq_occupancy_sum: 0,
            ftq_samples: 0,
            pending: None,
            last_fill_done: 0,
        }
    }

    /// Replay a trace to completion and return the statistics.
    pub fn run(&mut self, trace: impl Iterator<Item = TraceStep>) -> SimStats {
        for step in trace {
            self.stats.branches += 1;
            self.stats.instructions += u64::from(step.insns);
            if step.taken {
                self.stats.taken_branches += 1;
            }
            self.verify_step(&step);
        }
        self.finalize()
    }

    fn finalize(&mut self) -> SimStats {
        let retire_floor =
            self.stats.instructions.div_ceil(u64::from(self.config.retire_width));
        self.stats.cycles =
            self.decode_free.max(retire_floor) + u64::from(self.config.backend_depth);
        self.stats.l1i = self.hier.l1i_stats();
        self.stats.l2 = self.hier.l2_stats();
        self.stats.l3 = self.hier.l3_stats();
        self.stats.skia = self.bpu.skia.as_ref().map(|s| s.stats());
        self.stats.mean_ftq_occupancy = if self.ftq_samples == 0 {
            0.0
        } else {
            self.ftq_occupancy_sum as f64 / self.ftq_samples as f64
        };
        self.stats.clone()
    }

    // -- block formation & timing ------------------------------------------

    fn form_block(&mut self) -> InFlight {
        // Retire FTQ entries whose decode has completed by now.
        while self.ftq.front().is_some_and(|&t| t <= self.iag_cycle) {
            self.ftq.pop_front();
        }
        // Back-pressure: a full FTQ stalls the IAG until the head drains.
        if self.ftq.len() >= self.config.ftq_depth {
            let head = self.ftq.pop_front().expect("non-empty");
            self.iag_cycle = self.iag_cycle.max(head);
        }
        self.iag_cycle += 1;
        self.ftq_occupancy_sum += self.ftq.len() as u64;
        self.ftq_samples += 1;

        let block = self.bpu.predict_block();
        self.issue_block(block)
    }

    /// Prefetch a block's lines, charge decode timing, run shadow decoding.
    fn issue_block(&mut self, block: PredictedBlock) -> InFlight {
        let lines = self.prefetch_lines(&block);
        let fill_done = self.last_fill_done;
        let frontier = (self.iag_cycle + u64::from(self.config.fetch_to_decode))
            .max(self.decode_free);
        if frontier > self.decode_free {
            self.stats.idle_resteer_cycles += frontier - self.decode_free;
        }
        let decode_start = frontier.max(fill_done);
        if decode_start > frontier {
            self.stats.idle_icache_cycles += decode_start - frontier;
        }
        let bytes = block.end.saturating_sub(block.start).max(1);
        let decode_cycles =
            bytes.div_ceil(u64::from(self.config.decode_width) * AVG_INSN_BYTES).max(1);
        self.stats.decode_busy_cycles += decode_cycles;
        self.decode_free = decode_start + decode_cycles;
        self.ftq.push_back(self.decode_free);

        // Shadow decoding runs off the critical path once lines are present.
        self.bpu.shadow_decode(self.program, &block);

        InFlight {
            block,
            iag_cycle: self.iag_cycle,
            decode_start,
            lines,
        }
    }

    /// Issue the FDIP prefetches for a block's line range. Returns the
    /// per-line pre-fetch L1-I residency and records the fill-completion
    /// cycle in `last_fill_done`.
    fn prefetch_lines(&mut self, block: &PredictedBlock) -> Vec<(u64, bool)> {
        let first = block.start & !63;
        let last = block.end.saturating_sub(1).max(block.start) & !63;
        let mut lines = Vec::with_capacity(2);
        let mut max_latency = 0u32;
        let mut la = first;
        loop {
            let resident = self.hier.l1i_contains(la);
            let lat = self.hier.fetch_line(la, true);
            max_latency = max_latency.max(lat);
            lines.push((la, resident));
            if la >= last {
                break;
            }
            la += 64;
        }
        self.last_fill_done = self.iag_cycle + u64::from(max_latency);
        lines
    }

    // -- verification -------------------------------------------------------

    fn verify_step(&mut self, step: &TraceStep) {
        loop {
            let pending = match self.pending.take() {
                Some(p) => p,
                None => self.form_block(),
            };
            let branch = pending.block.branch.clone();
            match branch {
                None => {
                    if step.branch_pc >= pending.block.end {
                        // Sequential block fully consumed before the branch.
                        continue;
                    }
                    // A branch the BPU did not know about sits in this block.
                    self.count_btb_miss(step, &pending);
                    if step.taken {
                        self.resteer_missed_taken(step, pending);
                    } else {
                        self.commit_unpredicted(step);
                        if step.block_end() < pending.block.end {
                            self.pending = Some(pending);
                        }
                    }
                    return;
                }
                Some(b) => {
                    if b.pc > step.branch_pc {
                        // True branch comes first and the BPU missed it.
                        self.count_btb_miss(step, &pending);
                        if step.taken {
                            self.resteer_missed_taken(step, pending);
                        } else {
                            self.commit_unpredicted(step);
                            self.pending = Some(pending);
                        }
                        return;
                    }
                    if b.pc < step.branch_pc {
                        // A predicted branch where the true path has none:
                        // a bogus shadow branch (§3.4). Real-BTB entries
                        // cannot land mid-path in a static program.
                        debug_assert!(b.from_sbb, "only the SBB can be bogus here");
                        self.resteer_bogus(&pending, b.pc);
                        continue; // retry the same true step
                    }
                    // Aligned: predicted branch is the true branch.
                    if b.from_sbb {
                        self.count_btb_miss(step, &pending);
                    }
                    let target_ok = !step.taken || b.target == step.next_pc;
                    let correct = b.taken == step.taken && target_ok;
                    self.commit_aligned(step, &b);
                    if correct {
                        if b.from_sbb {
                            self.stats.sbb_rescues += 1;
                        }
                        return;
                    }
                    // Wrong direction or wrong target: late resteer.
                    let cause = if b.taken != step.taken {
                        ResteerCause::Direction
                    } else {
                        ResteerCause::Target
                    };
                    match step.kind {
                        BranchKind::DirectCond => self.stats.cond_mispredicts += 1,
                        BranchKind::Return => self.stats.return_mispredicts += 1,
                        BranchKind::IndirectJmp | BranchKind::IndirectCall => {
                            self.stats.indirect_mispredicts += 1;
                        }
                        _ => {}
                    }
                    self.do_resteer(
                        &pending,
                        ResteerStage::Execute,
                        cause,
                        step.next_pc,
                        step.taken,
                    );
                    return;
                }
            }
        }
    }

    // -- commit paths --------------------------------------------------------

    fn static_target(&self, pc: u64) -> Option<u64> {
        self.program.branch_at(pc).and_then(|m| m.target)
    }

    fn kind_counters(&mut self, kind: BranchKind) {
        match kind {
            BranchKind::DirectCond => self.stats.cond_branches += 1,
            BranchKind::IndirectJmp | BranchKind::IndirectCall => {
                self.stats.indirect_branches += 1;
            }
            _ => {}
        }
    }

    /// Commit a branch the BPU never predicted (BTB+SBB miss).
    fn commit_unpredicted(&mut self, step: &TraceStep) {
        self.kind_counters(step.kind);
        let st = self.static_target(step.branch_pc);
        self.bpu.commit_branch(
            step.branch_pc,
            step.kind,
            step.taken,
            step.next_pc,
            st,
            step.branch_len,
            None,
        );
    }

    /// Commit a branch that was predicted at the right PC.
    fn commit_aligned(&mut self, step: &TraceStep, b: &crate::bpu::PredictedBranch) {
        self.kind_counters(step.kind);
        let st = self.static_target(step.branch_pc);
        self.bpu.commit_branch(
            step.branch_pc,
            step.kind,
            step.taken,
            step.next_pc,
            st,
            step.branch_len,
            Some(b),
        );
    }

    // -- miss/resteer machinery ----------------------------------------------

    fn count_btb_miss(&mut self, step: &TraceStep, pending: &InFlight) {
        // Only count misses where the branch genuinely was not in the BTB at
        // prediction time (SBB-supplied predictions count: the BTB missed).
        if self.bpu.btb_resident(step.branch_pc) {
            return;
        }
        self.stats.btb_misses += 1;
        let idx = BranchKind::ALL
            .iter()
            .position(|&k| k == step.kind)
            .expect("kind in table");
        self.stats.btb_misses_by_kind[idx] += 1;
        if step.taken {
            self.stats.btb_miss_taken += 1;
            if step.kind.sbb_eligible() {
                self.stats.btb_miss_rescuable += 1;
                if self
                    .bpu
                    .skia
                    .as_ref()
                    .is_some_and(|s| s.ever_inserted(step.branch_pc))
                {
                    self.stats.rescuable_seen_before += 1;
                }
            }
        }
        let la = step.branch_pc & !63;
        let resident_before = pending
            .lines
            .iter()
            .find(|&&(a, _)| a == la)
            .map_or_else(|| self.hier.l1i_contains(step.branch_pc), |&(_, r)| r);
        if resident_before {
            self.stats.btb_miss_l1i_resident += 1;
        }
    }

    /// A taken branch the BPU did not know about: classify the detection
    /// stage, commit, and resteer.
    fn resteer_missed_taken(&mut self, step: &TraceStep, pending: InFlight) {
        let stage = match step.kind {
            // Direct unconditional targets are in the bytes: the decoder
            // resteers early. This is exactly the class Skia rescues.
            BranchKind::DirectUncond | BranchKind::Call => ResteerStage::Decode,
            // The decoder identifies a return; if the RAS top is right the
            // early resteer lands on the correct path.
            BranchKind::Return => {
                if self.bpu.ras_top_is(step.next_pc) {
                    ResteerStage::Decode
                } else {
                    self.stats.return_mispredicts += 1;
                    ResteerStage::Execute
                }
            }
            // The decoder identifies a conditional; a decode-time late
            // predict rescues it only if TAGE agrees it is taken.
            BranchKind::DirectCond => {
                self.stats.cond_mispredicts += 1;
                if self.bpu.tage_would_predict(step.branch_pc, true) {
                    ResteerStage::Decode
                } else {
                    ResteerStage::Execute
                }
            }
            // Indirect targets need execution unless ITTAGE already knows.
            BranchKind::IndirectJmp | BranchKind::IndirectCall => {
                if self.bpu.ittage_would_predict(step.branch_pc, step.next_pc) {
                    ResteerStage::Decode
                } else {
                    self.stats.indirect_mispredicts += 1;
                    ResteerStage::Execute
                }
            }
        };
        // Wrong path first (the shadow between mispredict and detection),
        // then repair, then commit on the corrected state.
        self.do_resteer(
            &pending,
            stage,
            ResteerCause::UnknownBranch,
            step.next_pc,
            true,
        );
        self.commit_unpredicted(step);
    }

    /// The decoder found no branch where the SBB said there was one.
    fn resteer_bogus(&mut self, pending: &InFlight, bogus_pc: u64) {
        self.stats.bogus_resteers += 1;
        if let Some(skia) = &mut self.bpu.skia {
            skia.note_bogus(bogus_pc);
        }
        // Fetch continues sequentially past the phantom branch. Resuming
        // strictly after it guarantees forward progress even if wrong-path
        // shadow decoding re-inserts the same bogus entry (the decoder has
        // established there is no branch *at* this address).
        self.do_resteer(
            pending,
            ResteerStage::Decode,
            ResteerCause::BogusShadow,
            bogus_pc + 1,
            false,
        );
    }

    /// Simulate the wrong-path shadow, repair the IAG, charge the bubble.
    fn do_resteer(
        &mut self,
        pending: &InFlight,
        stage: ResteerStage,
        cause: ResteerCause,
        resume_pc: u64,
        entered_by_branch: bool,
    ) {
        let _ = cause;
        let detect = match stage {
            ResteerStage::Decode => {
                self.stats.decode_resteers += 1;
                pending.decode_start + 1
            }
            ResteerStage::Execute => {
                self.stats.exec_resteers += 1;
                pending.decode_start + u64::from(self.config.exec_detect)
            }
        };

        // Wrong-path fetch: the IAG kept forming blocks (one per cycle,
        // bounded by the FTQ) until the resteer signal arrived. These blocks
        // prefetch real lines — the pollution FDIP mis-speculation causes.
        let shadow_cycles = detect.saturating_sub(pending.iag_cycle);
        let wp_blocks = shadow_cycles.min(self.config.ftq_depth as u64);
        for _ in 0..wp_blocks {
            let blk = self.bpu.predict_block();
            let lines = self.prefetch_lines(&blk);
            self.stats.wrong_path_prefetches += lines.len() as u64;
            self.stats.wrong_path_blocks += 1;
            self.bpu.shadow_decode(self.program, &blk);
        }

        // Repair: the IAG restarts after the signal plus the repair cycles
        // (plus the CACTI surcharge for oversized BTBs).
        self.iag_cycle = detect
            + u64::from(self.config.decode_repair)
            + u64::from(self.config.btb_extra_latency);
        self.ftq.clear();
        self.bpu.resteer(resume_pc, entered_by_branch);
        self.pending = None;
    }
}

impl<'p> Simulator<'p> {
    /// Read-only access to accumulated statistics mid-run.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Mutable access to the BPU (testing and fault-injection aid).
    pub fn bpu_mut(&mut self) -> &mut Bpu {
        &mut self.bpu
    }
}
