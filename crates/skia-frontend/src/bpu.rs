//! The Branch Prediction Unit: BTB ∥ SBB, TAGE, ITTAGE and RAS behind one
//! block-forming interface (the IAG of the paper's Fig. 4, with Skia's
//! Fig. 11 attachment).
//!
//! [`Bpu::predict_block`] forms one predicted basic block from the current
//! speculative PC: it scans for the next branch the BPU *knows about* (a BTB
//! or SBB resident entry — exactly the knowledge horizon of real hardware;
//! branches absent from both are invisible until decode), predicts its
//! outcome, and advances the speculative PC. Prediction is read-only on
//! predictor state; training happens at commit ([`Bpu::commit_branch`]),
//! which the lockstep replay makes equivalent to speculative-update with
//! exact repair (see the crate docs for the modeling note).

use skia_core::Skia;
use skia_isa::BranchKind;
use skia_uarch::btb::{Btb, IdealBtb};
use skia_uarch::ittage::Ittage;
use skia_uarch::ras::ReturnAddressStack;
use skia_uarch::tage::{Tage, TagePrediction};
use skia_workloads::{BranchTable, Program};

use crate::config::{BtbMode, FrontendConfig};

/// Finite or infinite BTB behind one interface.
#[derive(Debug, Clone)]
enum BtbStore {
    Finite(Btb),
    Infinite(IdealBtb),
}

impl BtbStore {
    fn lookup(&mut self, pc: u64) -> Option<skia_uarch::btb::BtbEntry> {
        match self {
            BtbStore::Finite(b) => b.lookup(pc),
            BtbStore::Infinite(b) => b.lookup(pc),
        }
    }

    fn probe(&self, pc: u64) -> Option<skia_uarch::btb::BtbEntry> {
        match self {
            BtbStore::Finite(b) => b.probe(pc),
            BtbStore::Infinite(b) => b.lookup(pc),
        }
    }

    fn insert(&mut self, pc: u64, kind: BranchKind, target: u64, len: u8) {
        match self {
            BtbStore::Finite(b) => {
                b.insert(pc, kind, target, len);
            }
            BtbStore::Infinite(b) => b.insert(pc, kind, target, len),
        }
    }

    /// The first BTB-resident branch pc in `[start, limit)`.
    ///
    /// Every pc the BTB can hold is a static branch of the program (the only
    /// insert site is `commit_branch`, fed by retired true-path branches),
    /// so the program's dense side table enumerates the candidates in the
    /// window — O(1) per window — and a stats-neutral probe checks residency.
    /// Replaces the old ordered key mirror (`BTreeSet::range`) with identical
    /// results and no per-insert maintenance.
    fn first_resident_in(&self, table: &BranchTable, start: u64, limit: u64) -> Option<u64> {
        table.first_matching_in(start, limit, |pc| self.probe(pc).is_some())
    }
}

/// A branch the BPU predicted inside a block.
#[derive(Debug, Clone, Copy)]
pub struct PredictedBranch {
    /// Branch address.
    pub pc: u64,
    /// Encoded length (from BTB/SBB predecode metadata).
    pub len: u8,
    /// Kind as recorded in the providing structure.
    pub kind: BranchKind,
    /// Predicted direction (`true` for unconditional kinds).
    pub taken: bool,
    /// Predicted next PC when taken.
    pub target: u64,
    /// Whether the SBB (not the BTB) supplied this branch.
    pub from_sbb: bool,
    /// TAGE prediction record for conditional branches.
    pub tage: Option<TagePrediction>,
    /// ITTAGE prediction record for indirect branches.
    pub ittage: Option<skia_uarch::ittage::IttagePrediction>,
}

/// One predicted basic block (an FTQ entry).
#[derive(Debug, Clone)]
pub struct PredictedBlock {
    /// First instruction address.
    pub start: u64,
    /// First byte past the block (branch end, or scan-window end).
    pub end: u64,
    /// The terminating branch the BPU knows about, if any.
    pub branch: Option<PredictedBranch>,
    /// Predicted successor address.
    pub next_pc: u64,
    /// Whether this block was entered through a predicted-taken branch
    /// (controls head shadow decoding eligibility).
    pub entered_by_branch: bool,
}

/// The BPU.
#[derive(Debug, Clone)]
pub struct Bpu<'p> {
    btb: BtbStore,
    /// The program's dense static-branch side table (window-scan candidates).
    table: &'p BranchTable,
    /// Skia mechanism, when configured.
    pub skia: Option<Skia>,
    tage: Tage,
    ittage: Ittage,
    ras: ReturnAddressStack,
    spec_pc: u64,
    entered_by_branch: bool,
    max_block_bytes: u64,
}

impl<'p> Bpu<'p> {
    /// Build the BPU from the front-end configuration. `table` is the
    /// program's precomputed branch side table (see
    /// [`Program::branch_table`](skia_workloads::Program::branch_table)).
    #[must_use]
    pub fn new(config: &FrontendConfig, start_pc: u64, table: &'p BranchTable) -> Self {
        let btb = match config.btb {
            BtbMode::Finite(c) => BtbStore::Finite(Btb::new(c)),
            BtbMode::Infinite => BtbStore::Infinite(IdealBtb::new()),
        };
        Bpu {
            btb,
            table,
            skia: config.skia.map(Skia::new),
            tage: Tage::new(config.tage.clone()),
            ittage: Ittage::new(
                config.ittage.tables,
                config.ittage.index_bits,
                config.ittage.max_history,
            ),
            ras: ReturnAddressStack::new(config.ras_depth),
            spec_pc: start_pc,
            entered_by_branch: true,
            max_block_bytes: config.max_block_bytes,
        }
    }

    /// Current speculative PC.
    #[must_use]
    pub fn spec_pc(&self) -> u64 {
        self.spec_pc
    }

    /// Redirect the IAG (resteer).
    pub fn resteer(&mut self, pc: u64, entered_by_branch: bool) {
        self.spec_pc = pc;
        self.entered_by_branch = entered_by_branch;
    }

    /// Was the branch at `pc` resident in the BTB (no state change)?
    #[must_use]
    pub fn btb_resident(&self, pc: u64) -> bool {
        self.btb.probe(pc).is_some()
    }

    /// Was the branch at `pc` resident in the SBB (no state change)?
    #[must_use]
    pub fn sbb_resident(&self, pc: u64) -> bool {
        self.skia.as_ref().is_some_and(|s| s.probe(pc).is_some())
    }

    /// Form one predicted basic block from the speculative PC and advance it.
    pub fn predict_block(&mut self) -> PredictedBlock {
        let start = self.spec_pc;
        let limit = start.saturating_add(self.max_block_bytes);
        let entered_by_branch = self.entered_by_branch;

        // Where is the next branch the BPU knows about? BTB and SBB are
        // scanned in parallel (Fig. 11); the BTB wins ties. The BTB side
        // enumerates static branches in the window via the side table (BTB
        // keys are always real branches); the SBB side keeps its own key
        // scan because shadow decoding can install mis-decoded pcs that are
        // not static branches at all.
        let cand_btb = self.btb.first_resident_in(self.table, start, limit);
        let cand_sbb = self.skia.as_ref().and_then(|s| s.next_key_in(start, limit));
        let branch_pc = match (cand_btb, cand_sbb) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };

        let Some(bpc) = branch_pc else {
            // No known branch in the window: sequential block to the end of
            // the scan window, aligned to the line grid.
            let end = (start | 63) + 1;
            self.spec_pc = end;
            self.entered_by_branch = false;
            return PredictedBlock {
                start,
                end,
                branch: None,
                next_pc: end,
                entered_by_branch,
            };
        };

        // Retrieve the entry: BTB first, SBB as the miss fallback.
        let (kind, target0, len, from_sbb) = match self.btb.lookup(bpc) {
            Some(e) => (e.kind, e.target, e.len, false),
            None => {
                let hit = self
                    .skia
                    .as_mut()
                    .and_then(|s| s.lookup(bpc))
                    .expect("scan found a key, so one structure must hit");
                (hit.kind, hit.target.unwrap_or(bpc), hit.len, true)
            }
        };
        let fallthrough = bpc + u64::from(len);

        let mut tage_pred = None;
        let mut it_pred = None;
        let (taken, target) = match kind {
            BranchKind::DirectCond => {
                let p = self.tage.predict(bpc);
                let t = (p.taken, target0);
                tage_pred = Some(p);
                t
            }
            BranchKind::DirectUncond | BranchKind::Call => (true, target0),
            BranchKind::Return => {
                // RAS supplies the target; BTB target is the stale fallback.
                let t = self.ras.peek().unwrap_or(target0);
                (true, t)
            }
            BranchKind::IndirectJmp | BranchKind::IndirectCall => {
                let p = self.ittage.predict(bpc);
                let t = p.target.unwrap_or(target0);
                it_pred = Some(p);
                (true, t)
            }
        };

        let next_pc = if taken { target } else { fallthrough };
        self.spec_pc = next_pc;
        self.entered_by_branch = taken;
        PredictedBlock {
            start,
            end: fallthrough,
            branch: Some(PredictedBranch {
                pc: bpc,
                len,
                kind,
                taken,
                target,
                from_sbb,
                tage: tage_pred,
                ittage: it_pred,
            }),
            next_pc,
            entered_by_branch,
        }
    }

    /// Commit a retired branch: train every predictor, maintain the RAS,
    /// install/refresh the BTB entry, and push global history.
    ///
    /// `recorded` carries the prediction records when this branch was
    /// actually predicted (case C); for branches the BPU never saw, fresh
    /// prediction records are computed at the (identical) history point.
    #[allow(clippy::too_many_arguments)] // one argument per retired-branch attribute
    pub fn commit_branch(
        &mut self,
        pc: u64,
        kind: BranchKind,
        taken: bool,
        actual_target: u64,
        static_target: Option<u64>,
        len: u8,
        recorded: Option<&PredictedBranch>,
    ) {
        match kind {
            BranchKind::DirectCond => {
                let pred = match recorded.and_then(|r| r.tage) {
                    Some(p) => p,
                    None => self.tage.predict(pc),
                };
                self.tage.update(pc, &pred, taken);
                self.tage.push_history(taken);
                self.ittage.push_history(taken);
            }
            BranchKind::IndirectJmp | BranchKind::IndirectCall => {
                let pred = match recorded.and_then(|r| r.ittage) {
                    Some(p) => p,
                    None => self.ittage.predict(pc),
                };
                self.ittage.update(pc, &pred, actual_target);
                // Path bit keeps indirect history flowing on taken control
                // transfers.
                self.tage.push_history(true);
                self.ittage.push_history(true);
                if kind == BranchKind::IndirectCall {
                    self.ras.push(pc + u64::from(len));
                }
            }
            BranchKind::Call => {
                self.ras.push(pc + u64::from(len));
            }
            BranchKind::Return => {
                let _ = self.ras.pop();
            }
            BranchKind::DirectUncond => {}
        }

        // Every decoded/retired branch is placed in the BTB (§1: missing
        // branches "typically have previously been decoded and placed in the
        // BTB").
        let btb_target = match kind {
            BranchKind::DirectCond | BranchKind::DirectUncond | BranchKind::Call => {
                static_target.unwrap_or(actual_target)
            }
            _ => actual_target,
        };
        self.btb.insert(pc, kind, btb_target, len);

        // Retired-bit maintenance for SBB-supplied predictions (§4.3).
        if recorded.is_some_and(|r| r.from_sbb) {
            if let Some(skia) = &mut self.skia {
                skia.mark_retired(pc);
            }
        }
    }

    /// Whether TAGE currently agrees with `taken` for the branch at `pc`
    /// (used to decide if a decode-time late predict rescues a missed
    /// conditional).
    #[must_use]
    pub fn tage_would_predict(&self, pc: u64, taken: bool) -> bool {
        self.tage.predict(pc).taken == taken
    }

    /// Whether ITTAGE currently predicts `target` for the indirect branch at
    /// `pc`.
    #[must_use]
    pub fn ittage_would_predict(&self, pc: u64, target: u64) -> bool {
        self.ittage.predict(pc).target == Some(target)
    }

    /// Whether the RAS top currently equals `target`.
    #[must_use]
    pub fn ras_top_is(&self, target: u64) -> bool {
        self.ras.peek() == Some(target)
    }

    /// Run Skia's shadow-decode hooks for a formed block whose prefetch has
    /// completed (paper: SBD runs off the critical path once the line is
    /// L1-I-resident). Branches already BTB-resident are filtered. Returns
    /// the number of shadow branches inserted into the SBB (the
    /// shadow-decode batch size, recorded by telemetry).
    pub fn shadow_decode(&mut self, program: &Program, block: &PredictedBlock) -> usize {
        let Some(skia) = &mut self.skia else { return 0 };
        let filter = skia.config().filter_btb_resident;
        let btb = &self.btb;
        let known = |pc: u64| filter && btb.probe(pc).is_some();
        let mut inserted = 0;
        // Head region: the line containing the block's entry point, when the
        // block was entered via a taken branch mid-line.
        if block.entered_by_branch {
            let entry_offset = (block.start % 64) as usize;
            if entry_offset != 0 {
                let (line_base, line) = program.line(block.start);
                inserted += skia.on_line_entered_filtered(&line, line_base, entry_offset, known);
            }
        }
        // Tail region: the line containing the taken branch's last byte,
        // when the exit point is mid-line.
        if let Some(b) = &block.branch {
            if b.taken {
                let end = b.pc + u64::from(b.len);
                let (line_base, line) = program.line(end.saturating_sub(1));
                let exit_offset = (end - line_base) as usize;
                if exit_offset < line.len() {
                    inserted += skia.on_line_exited_filtered(&line, line_base, exit_offset, known);
                }
            }
        }
        inserted
    }

    /// TAGE `(predictions, mispredictions)`.
    #[must_use]
    pub fn tage_stats(&self) -> (u64, u64) {
        self.tage.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skia_core::SkiaConfig;
    use skia_workloads::{BranchRecord, Program, ProgramSpec};

    fn rec(pc: u64, kind: BranchKind, len: u8) -> BranchRecord {
        BranchRecord {
            pc,
            block_start: pc & !63,
            target: None,
            fallthrough: pc + u64::from(len),
            insns: 2,
            len,
            kind,
        }
    }

    /// Static branch table covering every pc the unit tests commit.
    fn test_table() -> BranchTable {
        BranchTable::from_records(vec![
            rec(0x1010, BranchKind::DirectUncond, 5),
            rec(0x2000, BranchKind::Return, 1),
            rec(0x1000 + 500, BranchKind::DirectUncond, 5),
        ])
    }

    fn bpu(table: &BranchTable) -> Bpu<'_> {
        Bpu::new(&FrontendConfig::test_small(), 0x1000, table)
    }

    #[test]
    fn empty_bpu_predicts_sequential_lines() {
        let table = test_table();
        let mut b = bpu(&table);
        let blk = b.predict_block();
        assert_eq!(blk.start, 0x1000);
        assert_eq!(blk.end, 0x1040);
        assert!(blk.branch.is_none());
        assert_eq!(b.spec_pc(), 0x1040);
        let blk2 = b.predict_block();
        assert_eq!(blk2.start, 0x1040);
        assert!(!blk2.entered_by_branch);
    }

    #[test]
    fn btb_hit_forms_branch_block() {
        let table = test_table();
        let mut b = bpu(&table);
        b.commit_branch(
            0x1010,
            BranchKind::DirectUncond,
            true,
            0x2000,
            Some(0x2000),
            5,
            None,
        );
        let blk = b.predict_block();
        let br = blk.branch.expect("branch known");
        assert_eq!(br.pc, 0x1010);
        assert!(br.taken);
        assert_eq!(br.target, 0x2000);
        assert_eq!(blk.end, 0x1015);
        assert_eq!(b.spec_pc(), 0x2000);
        // The next block records that it was entered via a branch.
        let blk2 = b.predict_block();
        assert!(blk2.entered_by_branch);
    }

    #[test]
    fn call_and_return_use_the_ras() {
        let table = test_table();
        let mut b = bpu(&table);
        // Commit a call at 0x1010 (len 5) and a ret at 0x2000.
        b.commit_branch(
            0x1010,
            BranchKind::Call,
            true,
            0x2000,
            Some(0x2000),
            5,
            None,
        );
        b.commit_branch(0x2000, BranchKind::Return, true, 0x1015, None, 1, None);
        // Second round: predict the call, then the return target comes from
        // the RAS pushed by the committed call.
        b.resteer(0x1000, true);
        let call_blk = b.predict_block();
        assert_eq!(call_blk.branch.unwrap().kind, BranchKind::Call);
        // Model the call committing (pushes 0x1015).
        b.commit_branch(
            0x1010,
            BranchKind::Call,
            true,
            0x2000,
            Some(0x2000),
            5,
            None,
        );
        let ret_blk = b.predict_block();
        let ret = ret_blk.branch.unwrap();
        assert_eq!(ret.kind, BranchKind::Return);
        assert_eq!(ret.target, 0x1015, "RAS supplies the return target");
    }

    #[test]
    fn sbb_supplies_on_btb_miss() {
        let mut config = FrontendConfig::test_small();
        config.skia = Some(SkiaConfig::default());

        // Plant a shadow branch via the SBD tail path: build a line where a
        // taken branch exits at offset 2 and a jmp follows.
        let spec = ProgramSpec {
            functions: 30,
            ..ProgramSpec::default()
        };
        let program = Program::generate(&spec);
        let mut b = Bpu::new(&config, 0x1000, program.branch_table());
        // Find a real tail opportunity: any block whose taken terminator
        // ends mid-line.
        let mut planted = None;
        'outer: for f in program.functions() {
            for blk in &f.blocks {
                let t = &blk.terminator;
                if t.kind == BranchKind::DirectUncond {
                    let end = t.pc + u64::from(t.len);
                    if end % 64 != 0 {
                        planted = Some((blk.start, t.pc, t.len));
                        break 'outer;
                    }
                }
            }
        }
        let (start, pc, len) = planted.expect("some mid-line uncond exists");
        let pb = PredictedBlock {
            start,
            end: pc + u64::from(len),
            branch: Some(PredictedBranch {
                pc,
                len,
                kind: BranchKind::DirectUncond,
                taken: true,
                target: 0,
                from_sbb: false,
                tage: None,
                ittage: None,
            }),
            next_pc: 0,
            entered_by_branch: false,
        };
        b.shadow_decode(&program, &pb);
        let stats = b.skia.as_ref().unwrap().stats();
        // Tail decoding ran on the exit line.
        assert!(stats.sbd.tail_regions > 0);
    }

    #[test]
    fn scan_respects_window_limit() {
        let table = test_table();
        let mut b = bpu(&table);
        b.commit_branch(
            0x1000 + 500,
            BranchKind::DirectUncond,
            true,
            0x9000,
            Some(0x9000),
            5,
            None,
        );
        // Branch is 500 bytes ahead — outside the 64-byte window.
        let blk = b.predict_block();
        assert!(blk.branch.is_none());
    }
}
