//! Telemetry wiring between the simulator and [`skia_telemetry`].
//!
//! The single source of truth for the counter set is the
//! `for_each_sim_counter!` field↔name table below: it generates the
//! [`SimCounters`] handle struct, the registration code, and the
//! [`SimStats`] materialization, so the registry snapshot and the legacy
//! stats struct can never drift apart. The simulator increments the handles
//! on its hot path (one `Rc<Cell<u64>>` store each — no locks, no name
//! lookups) and [`SimStats`] is rebuilt from the registry on demand.

use skia_isa::BranchKind;
use skia_telemetry::{Counter, EventKind, EventTrace, Histogram, LocalHistogram, MetricRegistry};

use crate::stats::SimStats;

/// Apply a macro to every `(SimStats u64 field, metric name)` pair.
///
/// `cycles` is included even though it is computed (not incremented): the
/// simulator `set`s it during finalization so the snapshot carries it too.
macro_rules! for_each_sim_counter {
    ($apply:ident) => {
        $apply! {
            (instructions, "sim.instructions"),
            (cycles, "sim.cycles"),
            (branches, "sim.branches"),
            (taken_branches, "sim.taken_branches"),
            (btb_misses, "btb.misses"),
            (btb_miss_l1i_resident, "btb.miss_l1i_resident"),
            (btb_miss_taken, "btb.miss_taken"),
            (btb_miss_rescuable, "btb.miss_rescuable"),
            (sbb_rescues, "sbb.rescues"),
            (rescuable_seen_before, "sbb.rescuable_seen_before"),
            (decode_resteers, "resteer.decode"),
            (exec_resteers, "resteer.execute"),
            (bogus_resteers, "resteer.bogus"),
            (cond_branches, "branch.cond"),
            (cond_mispredicts, "branch.cond_mispredicts"),
            (indirect_branches, "branch.indirect"),
            (indirect_mispredicts, "branch.indirect_mispredicts"),
            (return_mispredicts, "branch.return_mispredicts"),
            (idle_icache_cycles, "decode.idle_icache_cycles"),
            (idle_resteer_cycles, "decode.idle_resteer_cycles"),
            (decode_busy_cycles, "decode.busy_cycles"),
            (wrong_path_blocks, "wrong_path.blocks"),
            (wrong_path_prefetches, "wrong_path.prefetches"),
        }
    };
}

macro_rules! define_sim_counters {
    ($(($field:ident, $name:literal)),+ $(,)?) => {
        /// One registered [`Counter`] handle per scalar `u64` field of
        /// [`SimStats`].
        #[derive(Debug, Clone)]
        pub struct SimCounters {
            $(
                #[doc = concat!("Handle for `", $name, "`.")]
                pub $field: Counter,
            )+
        }

        impl SimCounters {
            /// The registered metric names, in [`SimStats`] field order.
            pub const NAMES: &'static [&'static str] = &[$($name),+];

            /// Register (or look up) every counter in `reg`.
            #[must_use]
            pub fn register(reg: &mut MetricRegistry) -> Self {
                SimCounters { $($field: reg.counter($name),)+ }
            }

            /// Copy the current counter values into the matching
            /// [`SimStats`] fields.
            pub fn materialize_into(&self, stats: &mut SimStats) {
                $(stats.$field = self.$field.get();)+
            }

            /// Set every counter from the matching [`SimStats`] fields —
            /// the reverse of [`SimCounters::materialize_into`]. Sampled
            /// runs use this to rebuild a registry snapshot around an
            /// estimated stats struct, so `--emit-json` payloads keep one
            /// shape whether a run was full or sampled.
            pub fn store_from(&self, stats: &SimStats) {
                $(self.$field.set(stats.$field);)+
            }
        }
    };
}
for_each_sim_counter!(define_sim_counters);

macro_rules! define_sim_accum {
    ($(($field:ident, $name:literal)),+ $(,)?) => {
        /// Batch-local mirror of every hot-path metric: plain `u64` fields
        /// instead of `Rc<Cell>` handles and [`LocalHistogram`]s instead of
        /// shared [`Histogram`]s. The simulator increments this on its hot
        /// path and [`SimAccum::flush_into`] drains it into the registry
        /// handles — an exact operation (counter adds commute; histogram
        /// absorb is record-equivalent), so batching the flush is
        /// unobservable in [`SimStats`] or any snapshot.
        ///
        /// `cycles` is present for macro uniformity but never incremented:
        /// it is computed and `set` directly at finalization.
        #[derive(Debug, Clone, Default)]
        pub struct SimAccum {
            $(
                #[doc = concat!("Pending delta for `", $name, "`.")]
                pub $field: u64,
            )+
            /// Pending per-kind BTB-miss deltas ([`BranchKind::ALL`] order).
            pub btb_miss_by_kind: [u64; 6],
            /// Pending `ftq.occupancy` records.
            pub ftq_occupancy: LocalHistogram,
            /// Pending `resteer.repair_latency` records.
            pub resteer_latency: LocalHistogram,
            /// Pending `shadow_decode.batch_size` records.
            pub shadow_batch: LocalHistogram,
        }

        impl SimAccum {
            /// Drain every pending delta into the shared handles, leaving
            /// this accumulator empty.
            pub fn flush_into(&mut self, tel: &FrontendTelemetry) {
                $(
                    if self.$field != 0 {
                        tel.c.$field.add(self.$field);
                        self.$field = 0;
                    }
                )+
                for (c, v) in tel.btb_miss_by_kind.iter().zip(&mut self.btb_miss_by_kind) {
                    if *v != 0 {
                        c.add(*v);
                        *v = 0;
                    }
                }
                tel.ftq_occupancy.absorb(&mut self.ftq_occupancy);
                tel.resteer_latency.absorb(&mut self.resteer_latency);
                tel.shadow_batch.absorb(&mut self.shadow_batch);
            }
        }
    };
}
for_each_sim_counter!(define_sim_accum);

/// Metric name of the per-kind BTB-miss counter for `kind`.
#[must_use]
pub fn btb_miss_kind_name(kind: BranchKind) -> &'static str {
    match kind {
        BranchKind::DirectCond => "btb.miss_kind.direct_cond",
        BranchKind::DirectUncond => "btb.miss_kind.direct_uncond",
        BranchKind::Call => "btb.miss_kind.call",
        BranchKind::Return => "btb.miss_kind.return",
        BranchKind::IndirectJmp => "btb.miss_kind.indirect_jmp",
        BranchKind::IndirectCall => "btb.miss_kind.indirect_call",
    }
}

/// Every handle the simulator records through: the [`SimCounters`] set, the
/// per-kind BTB miss breakdown, the four standing histograms, and the
/// (optional) event trace.
#[derive(Debug, Clone)]
pub struct FrontendTelemetry {
    /// Scalar counters mirroring [`SimStats`].
    pub c: SimCounters,
    /// BTB misses by [`BranchKind`] (order of [`BranchKind::ALL`]).
    pub btb_miss_by_kind: [Counter; 6],
    /// FTQ occupancy sampled at every block formation.
    pub ftq_occupancy: Histogram,
    /// Resteer repair bubble (cycles from the mispredicted block's formation
    /// to the IAG restart).
    pub resteer_latency: Histogram,
    /// Shadow branches inserted per shadow-decode invocation.
    pub shadow_batch: Histogram,
    /// SBB entry residency in cycles (closed on eviction/invalidation;
    /// recorded by `skia-core` through its attachment).
    pub sbb_lifetime: Histogram,
    /// Event trace handle, when tracing is enabled.
    pub trace: Option<EventTrace>,
}

impl FrontendTelemetry {
    /// Register every frontend metric in `reg`. Tracing starts disabled;
    /// [`crate::Simulator::enable_trace`] turns it on.
    #[must_use]
    pub fn register(reg: &mut MetricRegistry) -> Self {
        FrontendTelemetry {
            c: SimCounters::register(reg),
            btb_miss_by_kind: BranchKind::ALL.map(|k| reg.counter(btb_miss_kind_name(k))),
            ftq_occupancy: reg.histogram("ftq.occupancy"),
            resteer_latency: reg.histogram("resteer.repair_latency"),
            shadow_batch: reg.histogram("shadow_decode.batch_size"),
            sbb_lifetime: reg.histogram("sbb.entry_lifetime"),
            trace: reg.trace(),
        }
    }

    /// Record an event if tracing is enabled (one branch otherwise).
    #[inline]
    pub fn event(&self, cycle: u64, kind: EventKind, pc: u64, arg: u64) {
        if let Some(t) = &self.trace {
            t.record(cycle, kind, pc, arg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct_and_registered() {
        let mut reg = MetricRegistry::new();
        let tel = FrontendTelemetry::register(&mut reg);
        // 23 scalar + 6 per-kind counters, all distinct.
        assert_eq!(SimCounters::NAMES.len(), 23);
        assert_eq!(reg.counter_count(), 23 + 6);
        tel.c.btb_misses.add(3);
        tel.btb_miss_by_kind[0].inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("btb.misses"), Some(3));
        assert_eq!(snap.counter("btb.miss_kind.direct_cond"), Some(1));
        assert!(snap.histogram("ftq.occupancy").is_some());
    }

    #[test]
    fn materialize_round_trips_every_field() {
        let mut reg = MetricRegistry::new();
        let tel = FrontendTelemetry::register(&mut reg);
        // Give every counter a distinct value via its registry name.
        for (i, name) in SimCounters::NAMES.iter().enumerate() {
            reg.counter(name).set(100 + i as u64);
        }
        let mut stats = SimStats::default();
        tel.c.materialize_into(&mut stats);
        assert_eq!(stats.instructions, 100);
        assert_eq!(stats.cycles, 101);
        assert_eq!(stats.wrong_path_prefetches, 100 + 22);
        // And the registry snapshot agrees with the struct, name by name.
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("sim.taken_branches"),
            Some(stats.taken_branches)
        );
        assert_eq!(
            snap.counter("decode.busy_cycles"),
            Some(stats.decode_busy_cycles)
        );
    }
}
