//! Sampled simulation: replay a [`SamplingPlan`]'s slices through
//! [`Simulator::run_slice`] and reconstruct a weighted whole-trace
//! [`SimStats`] estimate.
//!
//! ## Estimation arithmetic
//!
//! Each slice measures `simulate` steps and stands for `weight_steps` steps
//! of the full trace, so every counter is scaled by `weight_steps /
//! simulate` before summing. The scaling is integer-exact: `round(c × w /
//! s)` computed in `u128`, which for the degenerate plan (`w == s ==
//! total`) returns `c` unchanged — the whole-trace identity needs no
//! special case, and the `sampled_vs_full` proptest pins the resulting
//! byte-exact equality against [`Simulator::run_batched`].
//!
//! ## Field exhaustiveness
//!
//! The delta and scale helpers fully destructure every stats struct
//! ([`SimStats`], [`CacheStats`], [`SkiaStats`] and its members) with no
//! `..` rest pattern. Adding a field to any of them breaks this module's
//! compilation instead of silently leaking warmup state into measurements
//! or dropping the field from estimates — the same forcing function the
//! `for_each_sim_counter!` table provides for the registry.
//!
//! ## State carryover
//!
//! All slices of a plan replay through **one** simulator in trace order:
//! the branch/cache working set accumulated by earlier slices stays live,
//! and each slice's short warmup only re-syncs recent-phase state (TAGE
//! histories, RAS, replacement recency). Cold-starting every slice instead
//! would charge the full structure fill — hundreds of thousands of steps
//! at realistic BTB/L2 sizes — against a warmup budget of thousands,
//! biasing every miss-class counter upward. [`Simulator::run_slice`]
//! baselines all cumulative state at each warmup/measure boundary, so the
//! carryover is invisible in the per-slice results.
//!
//! Slices run serially (the simulator is deliberately `!Send`, and
//! carryover orders them anyway); sweep-level parallelism across
//! (workload, config) jobs is unchanged, so sampled sweeps keep the repo's
//! thread-count-invariance guarantee.

use skia_core::{SbbStats, ShadowDecoderStats, SkiaStats};
use skia_telemetry::{MetricRegistry, Snapshot};
use skia_uarch::cache::CacheStats;
use skia_workloads::{Program, RecordedTrace, SamplingPlan};

use crate::config::FrontendConfig;
use crate::sim::{SampleFault, Simulator};
use crate::stats::SimStats;
use crate::telemetry::FrontendTelemetry;

/// Simulate every slice of `plan` and return the weighted whole-trace
/// [`SimStats`] estimate.
///
/// One [`Simulator`] serves every slice in trace order (state carryover —
/// see the module docs); per-slice results are isolated by the baseline
/// subtraction inside [`Simulator::run_slice`]. `fault` plants a
/// deliberate sampling bug for harness validation; production callers pass
/// `None`.
///
/// # Panics
///
/// Panics if the plan fails [`SamplingPlan::validate`] against its own
/// `total_steps`, the plan is longer than the recording, or `chunk_size`
/// is 0.
#[must_use]
pub fn run_plan(
    program: &Program,
    config: &FrontendConfig,
    trace: &RecordedTrace,
    plan: &SamplingPlan,
    chunk_size: usize,
    fault: Option<SampleFault>,
) -> SimStats {
    plan.validate(plan.total_steps);
    assert!(
        plan.total_steps <= trace.len(),
        "plan longer than recording"
    );
    let mut est = SimStats::default();
    let mut ftq_means: Vec<(f64, u64)> = Vec::with_capacity(plan.slices.len());
    let mut sim = Simulator::new(program, config.clone());
    for slice in &plan.slices {
        let s = sim.run_slice(trace, slice, chunk_size, fault);
        add_scaled(&mut est, &s, slice.weight_steps, slice.simulate as u64);
        ftq_means.push((s.mean_ftq_occupancy, slice.weight_steps));
    }
    est.mean_ftq_occupancy = match ftq_means.as_slice() {
        [] => 0.0,
        // Single slice: pass the mean through untouched. `m × w / w` is not
        // bit-exact in f64, and the degenerate identity must be.
        [(m, _)] => *m,
        many => {
            let total: u64 = many.iter().map(|&(_, w)| w).sum();
            many.iter().map(|&(m, w)| m * w as f64).sum::<f64>() / total as f64
        }
    };
    est
}

/// [`run_plan`] plus a synthetic telemetry [`Snapshot`] carrying the
/// estimated counters and the plan's provenance, for `--emit-json` parity
/// with full runs.
///
/// The snapshot is an *estimate reconstruction*, not a live registry: the
/// scalar counters, per-kind BTB misses, cache levels and Skia counters
/// hold the weighted estimates, the `sampling.*` counters identify the
/// exact plan (fingerprint, slice count, step accounting), and
/// `sampling.active = 1` marks it as sampled. Histograms and TAGE pull
/// stats are per-slice artifacts with no sound whole-trace reconstruction,
/// so they are absent rather than misleading.
#[must_use]
pub fn run_plan_instrumented(
    program: &Program,
    config: &FrontendConfig,
    trace: &RecordedTrace,
    plan: &SamplingPlan,
    chunk_size: usize,
    fault: Option<SampleFault>,
) -> (SimStats, Snapshot) {
    let stats = run_plan(program, config, trace, plan, chunk_size, fault);
    let mut reg = MetricRegistry::new();
    let tel = FrontendTelemetry::register(&mut reg);
    tel.c.store_from(&stats);
    for (c, v) in tel.btb_miss_by_kind.iter().zip(stats.btb_misses_by_kind) {
        c.set(v);
    }
    stats.l1i.register_into(&mut reg, "l1i");
    stats.l2.register_into(&mut reg, "l2");
    stats.l3.register_into(&mut reg, "l3");
    if let Some(skia) = &stats.skia {
        skia.register_into(&mut reg);
    }
    reg.set_gauge("sim.mean_ftq_occupancy", stats.mean_ftq_occupancy);
    reg.set_gauge("sim.ipc", stats.ipc());
    register_plan(&mut reg, plan);
    (stats, reg.snapshot())
}

/// Upsert the `sampling.*` provenance counters for `plan` into `reg` —
/// the audit trail tying a sampled result to the exact plan that produced
/// it.
pub fn register_plan(reg: &mut MetricRegistry, plan: &SamplingPlan) {
    reg.set_counter("sampling.active", u64::from(!plan.is_degenerate()));
    reg.set_counter("sampling.plan_fingerprint", plan.fingerprint());
    reg.set_counter("sampling.slices", plan.slices.len() as u64);
    reg.set_counter("sampling.total_steps", plan.total_steps as u64);
    reg.set_counter("sampling.measured_steps", plan.measured_steps() as u64);
    reg.set_counter("sampling.replayed_steps", plan.replayed_steps() as u64);
    reg.set_counter("sampling.interval", plan.interval as u64);
    reg.set_counter("sampling.k", plan.k as u64);
    reg.set_counter("sampling.seed", plan.seed);
}

/// `round(c × num / den)` in `u128` — overflow-free for any counter a
/// simulation can produce, and exactly `c` when `num == den`.
fn scaled(c: u64, num: u64, den: u64) -> u64 {
    debug_assert!(den > 0, "scaling by an empty measure window");
    let n = u128::from(c) * u128::from(num) + u128::from(den) / 2;
    u64::try_from(n / u128::from(den)).expect("weighted counter exceeds u64")
}

// -- field-exhaustive delta helpers (measure-boundary subtraction) ----------

/// `now − base` over every cumulative [`SimStats`] field — the
/// measured-window extraction for state-carryover slices. The computed
/// fields get placeholders the caller must overwrite: `cycles` is 0 (the
/// cycle ledger has its own `decode_free` base) and `mean_ftq_occupancy`
/// is 0.0 (a mean cannot be differenced; `run_slice` rebuilds it from the
/// histogram's windowed sum/count).
pub(crate) fn sim_stats_delta(now: &SimStats, base: &SimStats) -> SimStats {
    let SimStats {
        instructions,
        cycles: _,
        branches,
        taken_branches,
        btb_misses,
        btb_misses_by_kind,
        btb_miss_l1i_resident,
        btb_miss_taken,
        btb_miss_rescuable,
        sbb_rescues,
        rescuable_seen_before,
        decode_resteers,
        exec_resteers,
        bogus_resteers,
        cond_branches,
        cond_mispredicts,
        indirect_branches,
        indirect_mispredicts,
        return_mispredicts,
        idle_icache_cycles,
        idle_resteer_cycles,
        decode_busy_cycles,
        wrong_path_blocks,
        wrong_path_prefetches,
        l1i,
        l2,
        l3,
        skia,
        mean_ftq_occupancy: _,
    } = now;
    let mut by_kind = [0u64; 6];
    for (d, (n, b)) in by_kind
        .iter_mut()
        .zip(btb_misses_by_kind.iter().zip(&base.btb_misses_by_kind))
    {
        *d = n - b;
    }
    SimStats {
        instructions: instructions - base.instructions,
        cycles: 0,
        branches: branches - base.branches,
        taken_branches: taken_branches - base.taken_branches,
        btb_misses: btb_misses - base.btb_misses,
        btb_misses_by_kind: by_kind,
        btb_miss_l1i_resident: btb_miss_l1i_resident - base.btb_miss_l1i_resident,
        btb_miss_taken: btb_miss_taken - base.btb_miss_taken,
        btb_miss_rescuable: btb_miss_rescuable - base.btb_miss_rescuable,
        sbb_rescues: sbb_rescues - base.sbb_rescues,
        rescuable_seen_before: rescuable_seen_before - base.rescuable_seen_before,
        decode_resteers: decode_resteers - base.decode_resteers,
        exec_resteers: exec_resteers - base.exec_resteers,
        bogus_resteers: bogus_resteers - base.bogus_resteers,
        cond_branches: cond_branches - base.cond_branches,
        cond_mispredicts: cond_mispredicts - base.cond_mispredicts,
        indirect_branches: indirect_branches - base.indirect_branches,
        indirect_mispredicts: indirect_mispredicts - base.indirect_mispredicts,
        return_mispredicts: return_mispredicts - base.return_mispredicts,
        idle_icache_cycles: idle_icache_cycles - base.idle_icache_cycles,
        idle_resteer_cycles: idle_resteer_cycles - base.idle_resteer_cycles,
        decode_busy_cycles: decode_busy_cycles - base.decode_busy_cycles,
        wrong_path_blocks: wrong_path_blocks - base.wrong_path_blocks,
        wrong_path_prefetches: wrong_path_prefetches - base.wrong_path_prefetches,
        l1i: cache_delta(l1i, &base.l1i),
        l2: cache_delta(l2, &base.l2),
        l3: cache_delta(l3, &base.l3),
        skia: match (skia, &base.skia) {
            (Some(n), Some(b)) => Some(skia_delta(n, b)),
            (None, None) => None,
            _ => unreachable!("Skia attachment cannot change mid-run"),
        },
        mean_ftq_occupancy: 0.0,
    }
}

/// `now − base`, field for field. Both come from the same monotone cache,
/// so plain subtraction doubles as an underflow check on that invariant.
pub(crate) fn cache_delta(now: &CacheStats, base: &CacheStats) -> CacheStats {
    let CacheStats {
        demand_hits,
        demand_misses,
        prefetch_hits,
        prefetch_misses,
        evictions,
        polluting_fills,
    } = *now;
    CacheStats {
        demand_hits: demand_hits - base.demand_hits,
        demand_misses: demand_misses - base.demand_misses,
        prefetch_hits: prefetch_hits - base.prefetch_hits,
        prefetch_misses: prefetch_misses - base.prefetch_misses,
        evictions: evictions - base.evictions,
        polluting_fills: polluting_fills - base.polluting_fills,
    }
}

/// `now − base` across the whole Skia counter tree.
pub(crate) fn skia_delta(now: &SkiaStats, base: &SkiaStats) -> SkiaStats {
    let SkiaStats {
        sbd,
        sbb,
        filtered_known,
        bogus_uses,
        useful_uses,
    } = now;
    SkiaStats {
        sbd: sbd_delta(sbd, &base.sbd),
        sbb: sbb_delta(sbb, &base.sbb),
        filtered_known: filtered_known - base.filtered_known,
        bogus_uses: bogus_uses - base.bogus_uses,
        useful_uses: useful_uses - base.useful_uses,
    }
}

fn sbd_delta(now: &ShadowDecoderStats, base: &ShadowDecoderStats) -> ShadowDecoderStats {
    let ShadowDecoderStats {
        head_regions,
        head_regions_valid,
        head_regions_discarded,
        tail_regions,
        head_branches,
        tail_branches,
        valid_path_sum,
    } = *now;
    ShadowDecoderStats {
        head_regions: head_regions - base.head_regions,
        head_regions_valid: head_regions_valid - base.head_regions_valid,
        head_regions_discarded: head_regions_discarded - base.head_regions_discarded,
        tail_regions: tail_regions - base.tail_regions,
        head_branches: head_branches - base.head_branches,
        tail_branches: tail_branches - base.tail_branches,
        valid_path_sum: valid_path_sum - base.valid_path_sum,
    }
}

fn sbb_delta(now: &SbbStats, base: &SbbStats) -> SbbStats {
    let SbbStats {
        u_hits,
        r_hits,
        lookups,
        u_inserts,
        r_inserts,
        retirements,
        evicted_unretired,
    } = *now;
    SbbStats {
        u_hits: u_hits - base.u_hits,
        r_hits: r_hits - base.r_hits,
        lookups: lookups - base.lookups,
        u_inserts: u_inserts - base.u_inserts,
        r_inserts: r_inserts - base.r_inserts,
        retirements: retirements - base.retirements,
        evicted_unretired: evicted_unretired - base.evicted_unretired,
    }
}

// -- field-exhaustive weighted accumulation ---------------------------------

/// `est += round(s × num/den)`, field for field. The float
/// `mean_ftq_occupancy` is weighted separately in [`run_plan`] (a mean
/// cannot be summed); it is destructured here so a new float field still
/// forces a review of its estimation rule.
fn add_scaled(est: &mut SimStats, s: &SimStats, num: u64, den: u64) {
    let SimStats {
        instructions,
        cycles,
        branches,
        taken_branches,
        btb_misses,
        btb_misses_by_kind,
        btb_miss_l1i_resident,
        btb_miss_taken,
        btb_miss_rescuable,
        sbb_rescues,
        rescuable_seen_before,
        decode_resteers,
        exec_resteers,
        bogus_resteers,
        cond_branches,
        cond_mispredicts,
        indirect_branches,
        indirect_mispredicts,
        return_mispredicts,
        idle_icache_cycles,
        idle_resteer_cycles,
        decode_busy_cycles,
        wrong_path_blocks,
        wrong_path_prefetches,
        l1i,
        l2,
        l3,
        skia,
        mean_ftq_occupancy: _, // weighted in run_plan
    } = s;
    est.instructions += scaled(*instructions, num, den);
    est.cycles += scaled(*cycles, num, den);
    est.branches += scaled(*branches, num, den);
    est.taken_branches += scaled(*taken_branches, num, den);
    est.btb_misses += scaled(*btb_misses, num, den);
    for (e, &v) in est.btb_misses_by_kind.iter_mut().zip(btb_misses_by_kind) {
        *e += scaled(v, num, den);
    }
    est.btb_miss_l1i_resident += scaled(*btb_miss_l1i_resident, num, den);
    est.btb_miss_taken += scaled(*btb_miss_taken, num, den);
    est.btb_miss_rescuable += scaled(*btb_miss_rescuable, num, den);
    est.sbb_rescues += scaled(*sbb_rescues, num, den);
    est.rescuable_seen_before += scaled(*rescuable_seen_before, num, den);
    est.decode_resteers += scaled(*decode_resteers, num, den);
    est.exec_resteers += scaled(*exec_resteers, num, den);
    est.bogus_resteers += scaled(*bogus_resteers, num, den);
    est.cond_branches += scaled(*cond_branches, num, den);
    est.cond_mispredicts += scaled(*cond_mispredicts, num, den);
    est.indirect_branches += scaled(*indirect_branches, num, den);
    est.indirect_mispredicts += scaled(*indirect_mispredicts, num, den);
    est.return_mispredicts += scaled(*return_mispredicts, num, den);
    est.idle_icache_cycles += scaled(*idle_icache_cycles, num, den);
    est.idle_resteer_cycles += scaled(*idle_resteer_cycles, num, den);
    est.decode_busy_cycles += scaled(*decode_busy_cycles, num, den);
    est.wrong_path_blocks += scaled(*wrong_path_blocks, num, den);
    est.wrong_path_prefetches += scaled(*wrong_path_prefetches, num, den);
    cache_add_scaled(&mut est.l1i, l1i, num, den);
    cache_add_scaled(&mut est.l2, l2, num, den);
    cache_add_scaled(&mut est.l3, l3, num, den);
    if let Some(s_skia) = skia {
        skia_add_scaled(
            est.skia.get_or_insert_with(SkiaStats::default),
            s_skia,
            num,
            den,
        );
    }
}

fn cache_add_scaled(est: &mut CacheStats, s: &CacheStats, num: u64, den: u64) {
    let CacheStats {
        demand_hits,
        demand_misses,
        prefetch_hits,
        prefetch_misses,
        evictions,
        polluting_fills,
    } = *s;
    est.demand_hits += scaled(demand_hits, num, den);
    est.demand_misses += scaled(demand_misses, num, den);
    est.prefetch_hits += scaled(prefetch_hits, num, den);
    est.prefetch_misses += scaled(prefetch_misses, num, den);
    est.evictions += scaled(evictions, num, den);
    est.polluting_fills += scaled(polluting_fills, num, den);
}

fn skia_add_scaled(est: &mut SkiaStats, s: &SkiaStats, num: u64, den: u64) {
    let SkiaStats {
        sbd,
        sbb,
        filtered_known,
        bogus_uses,
        useful_uses,
    } = s;
    sbd_add_scaled(&mut est.sbd, sbd, num, den);
    sbb_add_scaled(&mut est.sbb, sbb, num, den);
    est.filtered_known += scaled(*filtered_known, num, den);
    est.bogus_uses += scaled(*bogus_uses, num, den);
    est.useful_uses += scaled(*useful_uses, num, den);
}

fn sbd_add_scaled(est: &mut ShadowDecoderStats, s: &ShadowDecoderStats, num: u64, den: u64) {
    let ShadowDecoderStats {
        head_regions,
        head_regions_valid,
        head_regions_discarded,
        tail_regions,
        head_branches,
        tail_branches,
        valid_path_sum,
    } = *s;
    est.head_regions += scaled(head_regions, num, den);
    est.head_regions_valid += scaled(head_regions_valid, num, den);
    est.head_regions_discarded += scaled(head_regions_discarded, num, den);
    est.tail_regions += scaled(tail_regions, num, den);
    est.head_branches += scaled(head_branches, num, den);
    est.tail_branches += scaled(tail_branches, num, den);
    est.valid_path_sum += scaled(valid_path_sum, num, den);
}

fn sbb_add_scaled(est: &mut SbbStats, s: &SbbStats, num: u64, den: u64) {
    let SbbStats {
        u_hits,
        r_hits,
        lookups,
        u_inserts,
        r_inserts,
        retirements,
        evicted_unretired,
    } = *s;
    est.u_hits += scaled(u_hits, num, den);
    est.r_hits += scaled(r_hits, num, den);
    est.lookups += scaled(lookups, num, den);
    est.u_inserts += scaled(u_inserts, num, den);
    est.r_inserts += scaled(r_inserts, num, den);
    est.retirements += scaled(retirements, num, den);
    est.evicted_unretired += scaled(evicted_unretired, num, den);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_is_identity_when_num_equals_den() {
        for c in [0u64, 1, 7, 1_000_003, u64::MAX / 2] {
            for d in [1u64, 3, 400_000] {
                assert_eq!(scaled(c, d, d), c);
            }
        }
    }

    #[test]
    fn scaled_rounds_to_nearest() {
        assert_eq!(scaled(10, 1, 4), 3); // 2.5 rounds up
        assert_eq!(scaled(10, 1, 3), 3); // 3.33 rounds down
        assert_eq!(scaled(0, 7, 3), 0);
        // Near-overflow inputs stay exact through the u128 path.
        assert_eq!(scaled(u64::MAX / 3, 3, 3), u64::MAX / 3);
    }

    #[test]
    fn cache_delta_subtracts_every_field() {
        let now = CacheStats {
            demand_hits: 10,
            demand_misses: 9,
            prefetch_hits: 8,
            prefetch_misses: 7,
            evictions: 6,
            polluting_fills: 5,
        };
        let base = CacheStats {
            demand_hits: 1,
            demand_misses: 2,
            prefetch_hits: 3,
            prefetch_misses: 4,
            evictions: 5,
            polluting_fills: 5,
        };
        let d = cache_delta(&now, &base);
        assert_eq!(
            (
                d.demand_hits,
                d.demand_misses,
                d.prefetch_hits,
                d.prefetch_misses,
                d.evictions,
                d.polluting_fills
            ),
            (9, 7, 5, 3, 1, 0)
        );
    }

    #[test]
    fn add_scaled_degenerate_reproduces_input() {
        let mut s = SimStats {
            instructions: 1_000,
            cycles: 777,
            branches: 123,
            mean_ftq_occupancy: 1.5,
            ..SimStats::default()
        };
        s.btb_misses_by_kind[2] = 9;
        s.l1i.demand_hits = 55;
        s.skia = Some(SkiaStats::default());
        let mut est = SimStats::default();
        add_scaled(&mut est, &s, 400_000, 400_000);
        est.mean_ftq_occupancy = s.mean_ftq_occupancy; // run_plan's job
        assert_eq!(est, s);
    }
}
