//! Front-end configuration (the paper's Table 1).

use skia_core::SkiaConfig;
use skia_uarch::btb::BtbConfig;
use skia_uarch::cache::HierarchyConfig;
use skia_uarch::tage::TageConfig;

/// Which BTB the BPU uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BtbMode {
    /// A finite set-associative BTB.
    Finite(BtbConfig),
    /// The paper's "Infinite, Fully Associative BTB" upper bound (Fig. 3).
    Infinite,
}

/// ITTAGE geometry knobs (tables × 2^index_bits entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IttageParams {
    /// Number of tagged tables.
    pub tables: usize,
    /// log2 entries per table.
    pub index_bits: usize,
    /// Longest history length.
    pub max_history: usize,
}

/// Complete front-end configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontendConfig {
    /// BTB geometry (8K-entry, 4-way, 78 KB in the paper).
    pub btb: BtbMode,
    /// Cache hierarchy (32 KB L1-I / 1 MB L2 / 2 MB L3 in the paper).
    pub hierarchy: HierarchyConfig,
    /// Conditional predictor (TAGE-SC-L class, 64 KB in the paper).
    pub tage: TageConfig,
    /// Indirect predictor (ITTAGE, 64 KB in the paper).
    pub ittage: IttageParams,
    /// Return address stack depth.
    pub ras_depth: usize,
    /// Fetch Target Queue entries (24 in the paper).
    pub ftq_depth: usize,
    /// Decode width in instructions/cycle (12 in the paper).
    pub decode_width: u32,
    /// Retire width in instructions/cycle (12 in the paper).
    pub retire_width: u32,
    /// Pipeline stages from IAG to decode (fetch pipeline depth).
    pub fetch_to_decode: u32,
    /// Extra cycles after decode start until an execute-stage resteer is
    /// signalled (branch resolution depth).
    pub exec_detect: u32,
    /// Cycles to repair the IAG after a resteer signal (the paper's working
    /// example uses 2, §2.6).
    pub decode_repair: u32,
    /// Extra IAG latency per resteer charged for BTB capacity scaling
    /// (derived from the CACTI model; 0 at the nominal 8K size).
    pub btb_extra_latency: u32,
    /// Skia configuration; `None` disables shadow decoding entirely.
    pub skia: Option<SkiaConfig>,
    /// Maximum bytes the IAG scans ahead for a known branch when forming one
    /// basic block (a fetch-window worth).
    pub max_block_bytes: u64,
    /// Back-end pipeline depth added to the final cycle count.
    pub backend_depth: u32,
}

impl FrontendConfig {
    /// The paper's baseline (Table 1): Alder-Lake/Golden-Cove-like with an
    /// 8K-entry BTB, no Skia.
    #[must_use]
    pub fn alder_lake_like() -> Self {
        FrontendConfig {
            btb: BtbMode::Finite(BtbConfig::with_entries(8192)),
            hierarchy: HierarchyConfig::default(),
            tage: TageConfig::default(),
            ittage: IttageParams {
                tables: 6,
                index_bits: 11,
                max_history: 320,
            },
            ras_depth: 64,
            ftq_depth: 24,
            decode_width: 12,
            retire_width: 12,
            fetch_to_decode: 4,
            decode_repair: 2,
            exec_detect: 12,
            btb_extra_latency: 0,
            skia: None,
            max_block_bytes: 64,
            backend_depth: 8,
        }
    }

    /// The paper's Skia configuration: baseline plus the 12.25 KB SBB.
    #[must_use]
    pub fn alder_lake_with_skia() -> Self {
        FrontendConfig {
            skia: Some(SkiaConfig::default()),
            ..FrontendConfig::alder_lake_like()
        }
    }

    /// A small configuration for fast unit tests.
    #[must_use]
    pub fn test_small() -> Self {
        FrontendConfig {
            btb: BtbMode::Finite(BtbConfig {
                entries: 256,
                ways: 4,
            }),
            tage: TageConfig::small(),
            ittage: IttageParams {
                tables: 3,
                index_bits: 7,
                max_history: 32,
            },
            ras_depth: 16,
            ..FrontendConfig::alder_lake_like()
        }
    }

    /// Replace the BTB entry count (4-way), charging CACTI-model latency for
    /// sizes beyond the nominal 8K (the Fig. 3 sweep).
    #[must_use]
    pub fn with_btb_entries(mut self, entries: usize) -> Self {
        self.btb = BtbMode::Finite(BtbConfig::with_entries(entries));
        self.btb_extra_latency = skia_uarch::cacti::btb_extra_cycles(entries);
        self
    }

    /// Enable/replace the Skia configuration.
    #[must_use]
    pub fn with_skia(mut self, skia: SkiaConfig) -> Self {
        self.skia = Some(skia);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_table1() {
        let c = FrontendConfig::alder_lake_like();
        match c.btb {
            BtbMode::Finite(b) => {
                assert_eq!(b.entries, 8192);
                assert_eq!(b.ways, 4);
                assert!((b.storage_kb() - 78.0).abs() < 1e-9);
            }
            BtbMode::Infinite => panic!("baseline BTB must be finite"),
        }
        assert_eq!(c.ftq_depth, 24);
        assert_eq!(c.decode_width, 12);
        assert_eq!(c.retire_width, 12);
        assert!(c.skia.is_none());
        assert_eq!(c.hierarchy.l1i.size_bytes, 32 * 1024);
    }

    #[test]
    fn skia_config_adds_the_sbb() {
        let c = FrontendConfig::alder_lake_with_skia();
        let skia = c.skia.expect("skia enabled");
        assert!((skia.sbb.storage_kb() - 12.25).abs() < 0.01);
        assert!(skia.head && skia.tail);
    }

    #[test]
    fn btb_scaling_charges_latency() {
        let base = FrontendConfig::alder_lake_like().with_btb_entries(8192);
        assert_eq!(base.btb_extra_latency, 0);
        let big = FrontendConfig::alder_lake_like().with_btb_entries(128 * 1024);
        assert!(big.btb_extra_latency >= 1);
    }
}
