//! End-to-end simulator properties on generated workloads.

use skia_core::SkiaConfig;
use skia_frontend::{run, BtbMode, FrontendConfig};
use skia_uarch::btb::BtbConfig;
use skia_workloads::{Program, ProgramSpec, Walker};

fn program(functions: usize, seed: u64) -> Program {
    Program::generate(&ProgramSpec {
        functions,
        seed,
        ..ProgramSpec::default()
    })
}

fn sim(p: &Program, config: FrontendConfig, steps: usize) -> skia_frontend::SimStats {
    run(p, config, Walker::new(p, 11, 6).take(steps))
}

#[test]
fn simulation_is_deterministic() {
    let p = program(120, 5);
    let a = sim(&p, FrontendConfig::test_small(), 3_000);
    let b = sim(&p, FrontendConfig::test_small(), 3_000);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.btb_misses, b.btb_misses);
    assert_eq!(a.instructions, b.instructions);
}

#[test]
fn instructions_match_trace() {
    let p = program(100, 6);
    let expected: u64 = Walker::new(&p, 11, 6)
        .take(2_000)
        .map(|s| u64::from(s.insns))
        .sum();
    let stats = sim(&p, FrontendConfig::test_small(), 2_000);
    assert_eq!(stats.instructions, expected);
    assert_eq!(stats.branches, 2_000);
}

#[test]
fn cycles_are_sane() {
    let p = program(100, 7);
    let stats = sim(&p, FrontendConfig::test_small(), 5_000);
    // IPC must be positive and below the decode width.
    assert!(stats.cycles > 0);
    let ipc = stats.ipc();
    assert!(ipc > 0.05, "ipc {ipc}");
    assert!(ipc <= 12.0, "ipc {ipc}");
    // Idle + busy accounting cannot exceed total cycles grossly.
    assert!(stats.decode_busy_cycles <= stats.cycles);
}

#[test]
fn bigger_btb_never_hurts_miss_rate() {
    let p = program(600, 8);
    let small = sim(
        &p,
        FrontendConfig {
            btb: BtbMode::Finite(BtbConfig::with_entries(256)),
            ..FrontendConfig::test_small()
        },
        20_000,
    );
    let big = sim(
        &p,
        FrontendConfig {
            btb: BtbMode::Finite(BtbConfig::with_entries(8192)),
            ..FrontendConfig::test_small()
        },
        20_000,
    );
    assert!(
        big.btb_misses < small.btb_misses,
        "8K BTB {} vs 256-entry {}",
        big.btb_misses,
        small.btb_misses
    );
}

#[test]
fn infinite_btb_only_misses_compulsory() {
    let p = program(200, 9);
    let stats = sim(
        &p,
        FrontendConfig {
            btb: BtbMode::Infinite,
            ..FrontendConfig::test_small()
        },
        30_000,
    );
    // With an infinite BTB every miss is the first encounter of a branch:
    // misses ≤ static branch count.
    assert!(
        stats.btb_misses <= p.branch_count() as u64,
        "misses {} vs static branches {}",
        stats.btb_misses,
        p.branch_count()
    );
}

#[test]
fn skia_reduces_unknown_branch_resteers() {
    let p = program(1500, 10);
    let steps = 60_000;
    let base_cfg = FrontendConfig {
        btb: BtbMode::Finite(BtbConfig::with_entries(512)),
        ..FrontendConfig::test_small()
    };
    let skia_cfg = FrontendConfig {
        skia: Some(SkiaConfig::default()),
        ..base_cfg.clone()
    };
    let base = sim(&p, base_cfg, steps);
    let with = sim(&p, skia_cfg, steps);
    assert!(with.sbb_rescues > 0, "SBB must rescue some BTB misses");
    assert!(
        with.decode_resteers + with.exec_resteers < base.decode_resteers + base.exec_resteers,
        "skia {}+{} vs base {}+{}",
        with.decode_resteers,
        with.exec_resteers,
        base.decode_resteers,
        base.exec_resteers
    );
    assert!(
        with.cycles <= base.cycles,
        "skia should not slow the machine: {} vs {}",
        with.cycles,
        base.cycles
    );
}

#[test]
fn skia_bogus_rate_is_tiny() {
    let p = program(1500, 12);
    let cfg = FrontendConfig {
        btb: BtbMode::Finite(BtbConfig::with_entries(512)),
        skia: Some(SkiaConfig::default()),
        ..FrontendConfig::test_small()
    };
    let stats = sim(&p, cfg, 60_000);
    let sk = stats.skia.expect("skia stats present");
    // §3.2.2: bogus branches are a vanishing fraction of SBB insertions.
    assert!(
        sk.bogus_rate() < 0.01,
        "bogus rate {} too high",
        sk.bogus_rate()
    );
}

#[test]
fn head_only_and_tail_only_are_subsets_of_both() {
    let p = program(1500, 13);
    let steps = 40_000;
    let mk = |skia: Option<SkiaConfig>| FrontendConfig {
        btb: BtbMode::Finite(BtbConfig::with_entries(512)),
        skia,
        ..FrontendConfig::test_small()
    };
    let head = sim(&p, mk(Some(SkiaConfig::head_only())), steps);
    let tail = sim(&p, mk(Some(SkiaConfig::tail_only())), steps);
    let both = sim(&p, mk(Some(SkiaConfig::default())), steps);
    let h = head.skia.unwrap();
    let t = tail.skia.unwrap();
    let b = both.skia.unwrap();
    assert_eq!(h.sbd.tail_regions, 0, "head-only must not tail-decode");
    assert_eq!(t.sbd.head_regions, 0, "tail-only must not head-decode");
    assert!(b.sbd.head_regions > 0 && b.sbd.tail_regions > 0);
    // Combined coverage rescues at least as much as either alone (allowing
    // small interference noise).
    let min_single = head.sbb_rescues.min(tail.sbb_rescues);
    assert!(
        both.sbb_rescues >= min_single,
        "both {} vs min single {}",
        both.sbb_rescues,
        min_single
    );
}

#[test]
fn wrong_path_pollution_is_observed() {
    let p = program(800, 14);
    let stats = sim(
        &p,
        FrontendConfig {
            btb: BtbMode::Finite(BtbConfig::with_entries(256)),
            ..FrontendConfig::test_small()
        },
        30_000,
    );
    assert!(stats.wrong_path_blocks > 0);
    assert!(stats.wrong_path_prefetches >= stats.wrong_path_blocks);
}

#[test]
fn btb_miss_l1i_residency_mostly_high() {
    // The paper's core observation: most BTB misses hit lines already
    // resident in the L1-I. The synthetic workloads must reproduce it.
    let p = program(2000, 15);
    let stats = sim(
        &p,
        FrontendConfig {
            btb: BtbMode::Finite(BtbConfig::with_entries(1024)),
            ..FrontendConfig::test_small()
        },
        60_000,
    );
    assert!(stats.btb_misses > 100, "need miss pressure for the test");
    let frac = stats.btb_miss_l1i_resident_fraction();
    assert!(frac > 0.3, "L1-I resident fraction {frac} unexpectedly low");
}

#[test]
fn decoder_idle_splits_into_causes() {
    let p = program(800, 16);
    let stats = sim(&p, FrontendConfig::test_small(), 20_000);
    assert!(stats.idle_resteer_cycles > 0);
    assert!(stats.decoder_idle_cycles() >= stats.idle_resteer_cycles);
}
