//! Failure injection: the simulator must stay correct and make forward
//! progress when the SBB is poisoned with adversarial garbage.

use skia_core::{ShadowBranch, SkiaConfig};
use skia_frontend::{BtbMode, FrontendConfig, Simulator};
use skia_isa::BranchKind;
use skia_uarch::btb::BtbConfig;
use skia_workloads::{Program, ProgramSpec, Walker};

fn small_cfg() -> FrontendConfig {
    FrontendConfig {
        btb: BtbMode::Finite(BtbConfig::with_entries(256)),
        skia: Some(SkiaConfig::default()),
        ..FrontendConfig::test_small()
    }
}

#[test]
fn poisoned_sbb_cannot_stall_or_corrupt_the_simulation() {
    let program = Program::generate(&ProgramSpec {
        functions: 400,
        ..ProgramSpec::default()
    });
    let steps = 20_000;
    let expected: u64 = Walker::new(&program, 5, 6)
        .take(steps)
        .map(|s| u64::from(s.insns))
        .sum();

    let mut sim = Simulator::new(&program, small_cfg());
    // Poison: plant bogus branches at mid-instruction addresses throughout
    // the image — phantom returns and jumps to garbage targets.
    {
        let skia = sim.bpu_mut().skia.as_mut().expect("skia enabled");
        for i in 0..2000u64 {
            let pc = program.base() + 1 + i * 13; // deliberately misaligned
            let kind = if i % 2 == 0 {
                BranchKind::Return
            } else {
                BranchKind::DirectUncond
            };
            skia.force_insert(&ShadowBranch {
                pc,
                len: 2,
                kind,
                target: Some(program.base() ^ 0xFFF),
                line_offset: (pc % 64) as u8,
            });
        }
    }

    let stats = sim.run(Walker::new(&program, 5, 6).take(steps));
    // Forward progress and exact instruction accounting despite poison.
    assert_eq!(stats.instructions, expected);
    assert!(stats.cycles > 0);
    // The poison must have been noticed and cleaned, not silently believed.
    assert!(stats.bogus_resteers > 0, "poison never detected");
    let sk = stats.skia.expect("skia stats");
    assert!(sk.bogus_uses > 0);
}

#[test]
fn poisoned_run_costs_cycles_but_converges() {
    let program = Program::generate(&ProgramSpec {
        functions: 400,
        ..ProgramSpec::default()
    });
    let steps = 20_000;

    let clean = {
        let mut sim = Simulator::new(&program, small_cfg());
        sim.run(Walker::new(&program, 7, 6).take(steps))
    };
    let poisoned = {
        let mut sim = Simulator::new(&program, small_cfg());
        {
            let skia = sim.bpu_mut().skia.as_mut().unwrap();
            for i in 0..500u64 {
                skia.force_insert(&ShadowBranch {
                    pc: program.base() + 3 + i * 29,
                    len: 1,
                    kind: BranchKind::Return,
                    target: None,
                    line_offset: 0,
                });
            }
        }
        sim.run(Walker::new(&program, 7, 6).take(steps))
    };
    assert_eq!(clean.instructions, poisoned.instructions);
    // Poison may cost cycles but the retired-bit policy + bogus invalidation
    // keep the penalty bounded (well under a 2x blowup).
    assert!(
        poisoned.cycles < clean.cycles * 2,
        "poison blowup: {} vs {}",
        poisoned.cycles,
        clean.cycles
    );
}
