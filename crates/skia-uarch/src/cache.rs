//! Instruction-side cache hierarchy.
//!
//! Models the path an FDIP prefetch or demand fetch takes: L1-I, then L2,
//! then L3, then DRAM, with additive fill latencies. Lines are filled into
//! every level on the way back (inclusive-on-fill), which is the behaviour
//! the paper's pollution argument relies on: wrong-path prefetches insert
//! real lines into the L1-I and displace useful ones.

use skia_isa::CACHE_LINE_BYTES;

use crate::tag_array::TagArray;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (64 everywhere in the paper).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    #[must_use]
    pub fn sets(&self) -> usize {
        assert_eq!(self.size_bytes % (self.ways * self.line_bytes), 0);
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// Hit/miss/fill counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups that hit.
    pub demand_hits: u64,
    /// Demand lookups that missed.
    pub demand_misses: u64,
    /// Prefetch lookups that hit (no fill needed).
    pub prefetch_hits: u64,
    /// Prefetch lookups that missed and triggered a fill.
    pub prefetch_misses: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
    /// Lines filled by prefetches that were evicted without ever being
    /// demand-hit — the pollution measure.
    pub polluting_fills: u64,
}

impl CacheStats {
    /// All lookups.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.demand_hits + self.demand_misses + self.prefetch_hits + self.prefetch_misses
    }

    /// All misses.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.demand_misses + self.prefetch_misses
    }

    /// Upsert every counter into `reg` under `prefix` (e.g. `l1i`) — the
    /// pull-model telemetry bridge for snapshot-time export.
    pub fn register_into(&self, reg: &mut skia_telemetry::MetricRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.demand_hits"), self.demand_hits);
        reg.set_counter(&format!("{prefix}.demand_misses"), self.demand_misses);
        reg.set_counter(&format!("{prefix}.prefetch_hits"), self.prefetch_hits);
        reg.set_counter(&format!("{prefix}.prefetch_misses"), self.prefetch_misses);
        reg.set_counter(&format!("{prefix}.evictions"), self.evictions);
        reg.set_counter(&format!("{prefix}.polluting_fills"), self.polluting_fills);
    }
}

/// Per-line bookkeeping stored in the tag array.
#[derive(Debug, Clone, Copy)]
struct LineMeta {
    /// Filled by a prefetch and not yet demand-hit.
    prefetched_unused: bool,
}

/// A single cache level holding 64-byte lines.
#[derive(Debug, Clone)]
pub struct Cache {
    arr: TagArray<LineMeta>,
    line_shift: u32,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache from its geometry.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(config.line_bytes.is_power_of_two());
        Cache {
            arr: TagArray::new(sets, config.ways),
            line_shift: config.line_bytes.trailing_zeros(),
            stats: CacheStats::default(),
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    fn set_of(&self, line: u64) -> usize {
        self.arr.set_of(line)
    }

    /// Whether the line containing `addr` is resident (no state change).
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        self.arr.probe(self.set_of(line), line).is_some()
    }

    /// Demand access: returns `true` on hit; updates recency and stats.
    pub fn demand_access(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        match self.arr.access(set, line) {
            Some(meta) => {
                meta.prefetched_unused = false;
                self.stats.demand_hits += 1;
                true
            }
            None => {
                self.stats.demand_misses += 1;
                false
            }
        }
    }

    /// Prefetch probe: returns `true` on hit; counts separately from demand.
    pub fn prefetch_access(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        if self.arr.access(set, line).is_some() {
            self.stats.prefetch_hits += 1;
            true
        } else {
            self.stats.prefetch_misses += 1;
            false
        }
    }

    /// Fill the line containing `addr`. `prefetch` marks the fill for
    /// pollution accounting.
    pub fn fill(&mut self, addr: u64, prefetch: bool) {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        if self.arr.peek_mut(set, line).is_some() {
            return; // already resident
        }
        let evicted = self.arr.insert(
            set,
            line,
            LineMeta {
                prefetched_unused: prefetch,
            },
        );
        if let Some((_, meta)) = evicted {
            self.stats.evictions += 1;
            if meta.prefetched_unused {
                self.stats.polluting_fills += 1;
            }
        }
    }

    /// Invalidate the line containing `addr` (testing aid).
    pub fn invalidate(&mut self, addr: u64) {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        self.arr.invalidate(set, line);
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident lines.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.arr.len()
    }
}

/// Fill latencies (in cycles) for each place a line can be found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelLatencies {
    /// L1-I hit (pipelined; normally 0 extra cycles at fetch).
    pub l1_hit: u32,
    /// Fill from L2.
    pub l2: u32,
    /// Fill from L3.
    pub l3: u32,
    /// Fill from DRAM.
    pub dram: u32,
}

impl Default for LevelLatencies {
    fn default() -> Self {
        // Golden-Cove-like round-trip latencies in core cycles.
        LevelLatencies {
            l1_hit: 0,
            l2: 14,
            l3: 42,
            dram: 180,
        }
    }
}

/// Geometry of the full hierarchy (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Shared L3.
    pub l3: CacheConfig,
    /// Latencies per level.
    pub latencies: LevelLatencies,
}

impl Default for HierarchyConfig {
    /// The paper's Table 1: 32 KB 8-way L1-I, 1 MB 16-way L2, 2 MB 16-way L3,
    /// 64-byte lines.
    fn default() -> Self {
        HierarchyConfig {
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: CACHE_LINE_BYTES,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                ways: 16,
                line_bytes: CACHE_LINE_BYTES,
            },
            l3: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                ways: 16,
                line_bytes: CACHE_LINE_BYTES,
            },
            latencies: LevelLatencies::default(),
        }
    }
}

/// The instruction-fetch path: L1-I backed by L2, L3 and DRAM.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1i: Cache,
    l2: Cache,
    l3: Cache,
    latencies: LevelLatencies,
}

impl Hierarchy {
    /// Build the hierarchy.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Self {
        Hierarchy {
            l1i: Cache::new(config.l1i),
            l2: Cache::new(config.l2),
            l3: Cache::new(config.l3),
            latencies: config.latencies,
        }
    }

    /// Access the line containing `addr` for instruction fetch.
    ///
    /// Returns the latency in cycles until the line is usable. Fills the line
    /// into L1-I (and the levels it passed through) if it missed. `prefetch`
    /// selects prefetch-vs-demand accounting and pollution tracking.
    pub fn fetch_line(&mut self, addr: u64, prefetch: bool) -> u32 {
        self.fetch_line_tracking(addr, prefetch).1
    }

    /// As [`Hierarchy::fetch_line`], additionally returning whether the line
    /// was already L1-I resident before the access — the hit outcome of the
    /// L1 lookup itself, saving the FDIP loop a separate residency probe.
    pub fn fetch_line_tracking(&mut self, addr: u64, prefetch: bool) -> (bool, u32) {
        let l1_hit = if prefetch {
            self.l1i.prefetch_access(addr)
        } else {
            self.l1i.demand_access(addr)
        };
        if l1_hit {
            return (true, self.latencies.l1_hit);
        }
        // L2 lookup.
        let latency = if self.l2.demand_access(addr) {
            self.latencies.l2
        } else if self.l3.demand_access(addr) {
            self.l2.fill(addr, prefetch);
            self.latencies.l3
        } else {
            self.l3.fill(addr, prefetch);
            self.l2.fill(addr, prefetch);
            self.latencies.dram
        };
        self.l1i.fill(addr, prefetch);
        (false, latency)
    }

    /// Whether the line containing `addr` is resident in the L1-I — the
    /// paper's "BTB miss with L1-I hit" measurement (Figs. 1 and 15).
    #[must_use]
    pub fn l1i_contains(&self, addr: u64) -> bool {
        self.l1i.contains(addr)
    }

    /// L1-I statistics.
    #[must_use]
    pub fn l1i_stats(&self) -> CacheStats {
        self.l1i.stats()
    }

    /// L2 statistics.
    #[must_use]
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// L3 statistics.
    #[must_use]
    pub fn l3_stats(&self) -> CacheStats {
        self.l3.stats()
    }

    /// Direct mutable access to the L1-I (testing aid).
    pub fn l1i_mut(&mut self) -> &mut Cache {
        &mut self.l1i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 4 * 64, // 4 lines
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
        };
        assert_eq!(c.sets(), 64);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.demand_access(0x1000));
        c.fill(0x1000, false);
        assert!(c.demand_access(0x1000));
        assert!(c.demand_access(0x103F)); // same line
        assert!(!c.demand_access(0x1040)); // next line
        let s = c.stats();
        assert_eq!(s.demand_hits, 2);
        assert_eq!(s.demand_misses, 2);
    }

    #[test]
    fn pollution_accounting() {
        let mut c = tiny(); // 2 sets × 2 ways
                            // Fill both ways of set 0 by prefetch, never touch them, then evict.
        c.fill(0x0000, true); // set 0
        c.fill(0x0080, true); // set 0 (2 sets ⇒ stride 128 maps to same set)
        c.fill(0x0100, false); // evicts one prefetched-unused line
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.polluting_fills, 1);
        // A demand hit clears the unused flag.
        c.fill(0x0200, false);
        assert!(c.demand_access(0x0100) || c.demand_access(0x0200));
    }

    #[test]
    fn demand_hit_clears_prefetch_flag() {
        let mut c = tiny();
        c.fill(0x0000, true);
        assert!(c.demand_access(0x0000));
        // Force eviction of line 0.
        c.fill(0x0080, false);
        c.fill(0x0100, false);
        assert_eq!(c.stats().polluting_fills, 0);
    }

    #[test]
    fn hierarchy_latency_ladder() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        let lat = h.latencies;
        // Cold: DRAM.
        assert_eq!(h.fetch_line(0x4000, false), lat.dram);
        // Now in L1.
        assert_eq!(h.fetch_line(0x4000, false), lat.l1_hit);
        // Evict from tiny? L1 is 32KB; use a fresh address for L2 behaviour:
        // fill another line, invalidate it from L1 only → L2 hit.
        assert_eq!(h.fetch_line(0x8000, false), lat.dram);
        h.l1i_mut().invalidate(0x8000);
        assert_eq!(h.fetch_line(0x8000, false), lat.l2);
    }

    #[test]
    fn hierarchy_prefetch_then_demand() {
        let mut h = Hierarchy::new(HierarchyConfig::default());
        h.fetch_line(0x100, true);
        assert!(h.l1i_contains(0x100));
        assert_eq!(h.fetch_line(0x100, false), 0);
        let s = h.l1i_stats();
        assert_eq!(s.prefetch_misses, 1);
        assert_eq!(s.demand_hits, 1);
    }
}
