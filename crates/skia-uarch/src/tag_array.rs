//! A generic set-associative tag array with true-LRU replacement and
//! caller-controlled victim preference.
//!
//! Caches, the BTB and Skia's Shadow Branch Buffer are all tag arrays that
//! differ only in what they store per entry and in how they pick victims
//! (the SBB prefers evicting entries whose *retired* bit is clear, §4.3).
//! This type factors out the shared mechanics.

/// One way of one set.
#[derive(Debug, Clone)]
struct Slot<V> {
    tag: u64,
    last_use: u64,
    value: V,
}

/// A set-associative array of `V` values keyed by `(set, tag)`.
///
/// The number of sets does not have to be a power of two (the paper's R-SBB
/// has 2024 entries at 4 ways = 506 sets); callers map addresses to sets with
/// [`TagArray::set_of`], which reduces modulo the set count.
#[derive(Debug, Clone)]
pub struct TagArray<V> {
    sets: usize,
    ways: usize,
    /// `sets - 1` when `sets` is a power of two, else 0 — lets [`set_of`]
    /// replace the 64-bit modulo with an AND on the common configurations
    /// (every cache and BTB here; only the R-SBB's 506 sets fall back).
    ///
    /// [`set_of`]: TagArray::set_of
    set_mask: u64,
    slots: Vec<Option<Slot<V>>>,
    tick: u64,
}

impl<V> TagArray<V> {
    /// Create an array of `sets × ways` invalid slots.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0, "tag array needs at least one set");
        assert!(ways > 0, "tag array needs at least one way");
        let mut slots = Vec::new();
        slots.resize_with(sets * ways, || None);
        TagArray {
            sets,
            ways,
            set_mask: if sets.is_power_of_two() {
                sets as u64 - 1
            } else {
                0
            },
            slots,
            tick: 0,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of ways.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total number of entry slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of currently valid entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no entry is valid.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Map a key to its set index: a mask when the set count is a power of
    /// two (identical result to the modulo, without the 64-bit division in
    /// the lookup hot path), modulo reduction otherwise.
    #[must_use]
    pub fn set_of(&self, key: u64) -> usize {
        if self.set_mask != 0 {
            (key & self.set_mask) as usize
        } else {
            (key % self.sets as u64) as usize
        }
    }

    fn range(&self, set: usize) -> std::ops::Range<usize> {
        debug_assert!(set < self.sets);
        set * self.ways..(set + 1) * self.ways
    }

    /// Look up without updating recency (a *probe* in hardware terms).
    #[must_use]
    pub fn probe(&self, set: usize, tag: u64) -> Option<&V> {
        self.slots[self.range(set)]
            .iter()
            .flatten()
            .find(|s| s.tag == tag)
            .map(|s| &s.value)
    }

    /// Look up and update recency on hit.
    pub fn access(&mut self, set: usize, tag: u64) -> Option<&mut V> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.range(set);
        self.slots[range]
            .iter_mut()
            .flatten()
            .find(|s| s.tag == tag)
            .map(|s| {
                s.last_use = tick;
                &mut s.value
            })
    }

    /// Get a mutable reference without a recency update.
    pub fn peek_mut(&mut self, set: usize, tag: u64) -> Option<&mut V> {
        let range = self.range(set);
        self.slots[range]
            .iter_mut()
            .flatten()
            .find(|s| s.tag == tag)
            .map(|s| &mut s.value)
    }

    /// Insert (or overwrite) an entry using plain LRU victim selection.
    ///
    /// Returns the evicted `(tag, value)` if a valid entry was displaced.
    pub fn insert(&mut self, set: usize, tag: u64, value: V) -> Option<(u64, V)> {
        self.insert_with(set, tag, value, |_| false)
    }

    /// Insert with a victim *preference*: among valid candidates, entries for
    /// which `prefer_evict` returns `true` are victimized first (oldest such
    /// entry); only if none qualifies does plain LRU apply. Invalid slots are
    /// always used before any eviction.
    ///
    /// This implements the SBB's retired-bit policy: pass
    /// `|e| !e.retired` so never-committed ("possibly bogus") entries leave
    /// first (paper §4.3).
    pub fn insert_with(
        &mut self,
        set: usize,
        tag: u64,
        value: V,
        prefer_evict: impl Fn(&V) -> bool,
    ) -> Option<(u64, V)> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.range(set);

        // Overwrite on tag match.
        if let Some(slot) = self.slots[range.clone()]
            .iter_mut()
            .flatten()
            .find(|s| s.tag == tag)
        {
            slot.last_use = tick;
            let old = std::mem::replace(&mut slot.value, value);
            return Some((tag, old));
        }

        // Free slot?
        if let Some(slot) = self.slots[range.clone()].iter_mut().find(|s| s.is_none()) {
            *slot = Some(Slot {
                tag,
                last_use: tick,
                value,
            });
            return None;
        }

        // Victim: preferred class first (oldest within it), else global LRU.
        let victim_idx = {
            let slice = &self.slots[range.clone()];
            let mut best: Option<(usize, bool, u64)> = None;
            for (i, slot) in slice.iter().enumerate() {
                let s = slot.as_ref().expect("set is full here");
                let preferred = prefer_evict(&s.value);
                let candidate = (i, preferred, s.last_use);
                best = Some(match best {
                    None => candidate,
                    Some(b) => {
                        // Prefer the preferred class; within a class, older wins.
                        let better = match (candidate.1, b.1) {
                            (true, false) => true,
                            (false, true) => false,
                            _ => candidate.2 < b.2,
                        };
                        if better {
                            candidate
                        } else {
                            b
                        }
                    }
                });
            }
            range.start + best.expect("ways > 0").0
        };
        let old = self.slots[victim_idx].replace(Slot {
            tag,
            last_use: tick,
            value,
        });
        old.map(|s| (s.tag, s.value))
    }

    /// Remove an entry, returning its value.
    pub fn invalidate(&mut self, set: usize, tag: u64) -> Option<V> {
        let range = self.range(set);
        for slot in &mut self.slots[range] {
            if slot.as_ref().is_some_and(|s| s.tag == tag) {
                return slot.take().map(|s| s.value);
            }
        }
        None
    }

    /// Clear all entries.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
    }

    /// Iterate over all valid `(set, tag, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64, &V)> + '_ {
        self.slots.iter().enumerate().filter_map(move |(i, s)| {
            s.as_ref()
                .map(|slot| (i / self.ways, slot.tag, &slot.value))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_of_mask_matches_modulo() {
        // Power-of-two set counts take the mask path; it must agree with
        // the plain modulo for every key, including the R-SBB's 506 sets
        // (non-power-of-two fallback) and the single-set degenerate case.
        for sets in [1usize, 2, 64, 506, 512, 1024] {
            let a: TagArray<u8> = TagArray::new(sets, 1);
            for key in (0u64..4096).chain([u64::MAX, u64::MAX - 1, 1 << 63]) {
                assert_eq!(a.set_of(key), (key % sets as u64) as usize, "sets={sets}");
            }
        }
    }

    #[test]
    fn insert_and_probe() {
        let mut a: TagArray<u32> = TagArray::new(4, 2);
        assert!(a.is_empty());
        assert_eq!(a.insert(1, 100, 7), None);
        assert_eq!(a.probe(1, 100), Some(&7));
        assert_eq!(a.probe(1, 101), None);
        assert_eq!(a.probe(2, 100), None);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn overwrite_returns_old_value() {
        let mut a: TagArray<u32> = TagArray::new(2, 2);
        a.insert(0, 5, 1);
        assert_eq!(a.insert(0, 5, 2), Some((5, 1)));
        assert_eq!(a.probe(0, 5), Some(&2));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut a: TagArray<&str> = TagArray::new(1, 2);
        a.insert(0, 1, "one");
        a.insert(0, 2, "two");
        // Touch tag 1 so tag 2 becomes LRU.
        assert!(a.access(0, 1).is_some());
        let evicted = a.insert(0, 3, "three");
        assert_eq!(evicted, Some((2, "two")));
        assert!(a.probe(0, 1).is_some());
        assert!(a.probe(0, 3).is_some());
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut a: TagArray<u8> = TagArray::new(1, 2);
        a.insert(0, 1, 0);
        a.insert(0, 2, 0);
        // probe (not access) of tag 1: tag 1 stays LRU and is evicted.
        assert!(a.probe(0, 1).is_some());
        let evicted = a.insert(0, 3, 0);
        assert_eq!(evicted.map(|e| e.0), Some(1));
    }

    #[test]
    fn preferred_victims_evicted_first_even_if_recent() {
        #[derive(Debug, PartialEq)]
        struct E {
            retired: bool,
        }
        let mut a: TagArray<E> = TagArray::new(1, 2);
        a.insert(0, 1, E { retired: true });
        a.insert(0, 2, E { retired: false }); // newer but not retired
        let evicted = a.insert_with(0, 3, E { retired: false }, |e| !e.retired);
        assert_eq!(evicted.map(|e| e.0), Some(2), "non-retired evicted first");
    }

    #[test]
    fn preference_falls_back_to_lru_when_no_preferred_candidate() {
        #[derive(Debug)]
        struct E {
            retired: bool,
        }
        let mut a: TagArray<E> = TagArray::new(1, 2);
        a.insert(0, 1, E { retired: true });
        a.insert(0, 2, E { retired: true });
        let evicted = a.insert_with(0, 3, E { retired: false }, |e| !e.retired);
        assert_eq!(evicted.map(|e| e.0), Some(1), "plain LRU fallback");
    }

    #[test]
    fn invalidate_removes() {
        let mut a: TagArray<u8> = TagArray::new(2, 2);
        a.insert(1, 9, 42);
        assert_eq!(a.invalidate(1, 9), Some(42));
        assert_eq!(a.invalidate(1, 9), None);
        assert!(a.is_empty());
    }

    #[test]
    fn non_power_of_two_sets() {
        // R-SBB shape: 506 sets × 4 ways = 2024 entries.
        let mut a: TagArray<u8> = TagArray::new(506, 4);
        assert_eq!(a.capacity(), 2024);
        for key in 0..5000u64 {
            let set = a.set_of(key);
            assert!(set < 506);
            a.insert(set, key, 0);
        }
        assert!(a.len() <= 2024);
    }

    #[test]
    fn iter_reports_sets() {
        let mut a: TagArray<u8> = TagArray::new(4, 1);
        a.insert(3, 77, 5);
        let items: Vec<_> = a.iter().collect();
        assert_eq!(items, vec![(3usize, 77u64, &5u8)]);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_rejected() {
        let _ = TagArray::<u8>::new(0, 1);
    }

    #[test]
    fn clear_empties() {
        let mut a: TagArray<u8> = TagArray::new(2, 2);
        a.insert(0, 1, 1);
        a.insert(1, 2, 2);
        a.clear();
        assert!(a.is_empty());
    }
}
