//! # skia-uarch — microarchitectural substrates for the Skia reproduction
//!
//! Everything the paper's front-end depends on but does not itself contribute:
//!
//! * [`tag_array`] — a generic set-associative tag array with LRU and
//!   caller-controlled victim preference (shared by caches, the BTB and the
//!   Shadow Branch Buffer).
//! * [`cache`] — instruction-side cache hierarchy (L1-I → L2 → L3 → DRAM)
//!   with demand/prefetch fill accounting.
//! * [`btb`] — the Branch Target Buffer with the paper's 78-bit entry layout.
//! * [`tage`] — a TAGE-SC-L-style conditional branch predictor with
//!   checkpointable speculative history.
//! * [`ittage`] — an ITTAGE indirect target predictor.
//! * [`ras`] — a repairable return address stack.
//! * [`ftq`] — the Fetch Target Queue (bounded FIFO with occupancy stats).
//! * [`cacti`] — an analytical SRAM access-latency model standing in for the
//!   CACTI tool the paper uses to justify BTB scaling costs.
//!
//! All structures are deterministic and allocation-free on their hot paths so
//! the cycle simulator in `skia-frontend` can run multi-million-instruction
//! traces quickly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btb;
pub mod cache;
pub mod cacti;
pub mod ftq;
pub mod ittage;
pub mod ras;
pub mod tag_array;
pub mod tage;

pub use btb::{Btb, BtbConfig, BtbEntry, IdealBtb};
pub use cache::{Cache, CacheConfig, CacheStats, Hierarchy, HierarchyConfig, LevelLatencies};
pub use ftq::Ftq;
pub use ittage::Ittage;
pub use ras::ReturnAddressStack;
pub use tag_array::TagArray;
pub use tage::{Tage, TageCheckpoint, TageConfig, TagePrediction};
