//! ITTAGE indirect-branch target predictor (Seznec, CBP-2 "A 64-Kbytes
//! ITTAGE indirect branch predictor").
//!
//! Tagged geometric-history tables store full targets with a 2-bit
//! confidence counter; a PC-indexed base table catches the monomorphic
//! majority. Like [`crate::tage::Tage`], history is pushed speculatively and
//! the frontend repairs it with checkpoints on resteers — ITTAGE shares the
//! TAGE history discipline, so we reuse the same folded-register scheme.

/// Folded history register (same arithmetic as in `tage.rs`).
#[derive(Debug, Clone, Copy)]
struct Folded {
    comp: u32,
    olen: usize,
    /// `clen % olen`, precomputed (loop-invariant in `update`).
    out_shift: u32,
}

impl Folded {
    fn new(clen: usize, olen: usize) -> Self {
        Folded {
            comp: 0,
            olen,
            out_shift: (clen % olen) as u32,
        }
    }

    fn update(&mut self, new_bit: bool, old_bit: bool) {
        self.comp = (self.comp << 1) | u32::from(new_bit);
        self.comp ^= u32::from(old_bit) << self.out_shift;
        self.comp ^= self.comp >> self.olen;
        self.comp &= (1u32 << self.olen) - 1;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ItEntry {
    tag: u16,
    target: u64,
    confidence: u8, // 2-bit
    useful: u8,     // 1-bit
}

#[derive(Debug, Clone)]
struct ItTable {
    entries: Vec<ItEntry>,
    hist_len: usize,
    index_bits: usize,
    tag_bits: usize,
    idx_fold: Folded,
    tag_fold1: Folded,
    tag_fold2: Folded,
}

impl ItTable {
    fn new(hist_len: usize, index_bits: usize, tag_bits: usize) -> Self {
        ItTable {
            entries: vec![ItEntry::default(); 1 << index_bits],
            hist_len,
            index_bits,
            tag_bits,
            idx_fold: Folded::new(hist_len, index_bits),
            tag_fold1: Folded::new(hist_len, tag_bits),
            tag_fold2: Folded::new(hist_len, tag_bits - 1),
        }
    }

    fn index(&self, pc: u64) -> usize {
        let pc = pc >> 1;
        ((pc as u32 ^ (pc >> self.index_bits as u32 as u64 as usize) as u32 ^ self.idx_fold.comp)
            & ((1 << self.index_bits) - 1)) as usize
    }

    fn tag(&self, pc: u64) -> u16 {
        let pc = pc >> 1;
        ((pc as u32 ^ self.tag_fold1.comp ^ (self.tag_fold2.comp << 1))
            & ((1 << self.tag_bits) - 1)) as u16
    }
}

/// Rewind token for the speculative history.
#[derive(Debug, Clone)]
pub struct IttageCheckpoint {
    folds: Vec<(u32, u32, u32)>,
    pos: usize,
}

/// Training handle recorded at prediction time.
#[derive(Debug, Clone, Copy)]
pub struct IttagePrediction {
    /// Predicted target (`None` until the branch has been seen once).
    pub target: Option<u64>,
    provider: Option<usize>,
    indices: [u16; 8],
    tags: [u16; 8],
    base_index: u16,
}

/// The ITTAGE predictor.
#[derive(Debug, Clone)]
pub struct Ittage {
    tables: Vec<ItTable>,
    base: Vec<ItEntry>,
    hist_bits: Vec<bool>,
    hist_pos: usize,
    predictions: u64,
    mispredictions: u64,
}

impl Ittage {
    /// Build an ITTAGE with `num_tables` tagged tables of `2^index_bits`
    /// entries and geometric history lengths up to `max_history`.
    ///
    /// # Panics
    ///
    /// Panics if `num_tables` is 0 or greater than 8.
    #[must_use]
    pub fn new(num_tables: usize, index_bits: usize, max_history: usize) -> Self {
        assert!((1..=8).contains(&num_tables));
        // Prediction metadata stores indices as u16.
        assert!(index_bits <= 16);
        let min_history = 2usize;
        let ratio =
            (max_history as f64 / min_history as f64).powf(1.0 / (num_tables.max(2) - 1) as f64);
        let tables = (0..num_tables)
            .map(|i| {
                let h = (min_history as f64 * ratio.powi(i as i32)).round() as usize;
                ItTable::new(h.max(i + 1), index_bits, 11)
            })
            .collect();
        let capacity = (max_history + 1).next_power_of_two() * 8;
        assert!(capacity.is_power_of_two(), "bit_ago relies on mask wrap");
        Ittage {
            tables,
            base: vec![ItEntry::default(); 1 << index_bits],
            hist_bits: vec![false; capacity],
            hist_pos: 0,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// The paper-scale configuration (~64 KB class).
    #[must_use]
    pub fn default_64kb() -> Self {
        Ittage::new(6, 11, 320)
    }

    fn bit_ago(&self, ago: usize) -> bool {
        // `hist_bits.len()` is a power of two (asserted in `new`), so the
        // circular wrap is a mask instead of a division.
        let n = self.hist_bits.len();
        self.hist_bits[(self.hist_pos + n - ago) & (n - 1)]
    }

    /// Push one path/direction bit into the speculative history.
    pub fn push_history(&mut self, bit: bool) {
        // Fixed array (≤ 8 tables): this runs once per committed branch and
        // must not heap-allocate.
        let mut olds = [false; 8];
        for (i, t) in self.tables.iter().enumerate() {
            olds[i] = self.bit_ago(t.hist_len);
        }
        for (t, &old) in self.tables.iter_mut().zip(&olds) {
            t.idx_fold.update(bit, old);
            t.tag_fold1.update(bit, old);
            t.tag_fold2.update(bit, old);
        }
        let mask = self.hist_bits.len() - 1;
        self.hist_bits[self.hist_pos] = bit;
        self.hist_pos = (self.hist_pos + 1) & mask;
    }

    /// Capture the speculative history state.
    #[must_use]
    pub fn checkpoint(&self) -> IttageCheckpoint {
        IttageCheckpoint {
            folds: self
                .tables
                .iter()
                .map(|t| (t.idx_fold.comp, t.tag_fold1.comp, t.tag_fold2.comp))
                .collect(),
            pos: self.hist_pos,
        }
    }

    /// Rewind to a checkpoint taken earlier on this path.
    pub fn restore(&mut self, cp: &IttageCheckpoint) {
        for (t, &(a, b, c)) in self.tables.iter_mut().zip(&cp.folds) {
            t.idx_fold.comp = a;
            t.tag_fold1.comp = b;
            t.tag_fold2.comp = c;
        }
        self.hist_pos = cp.pos;
    }

    /// Predict the target of the indirect branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u64) -> IttagePrediction {
        let mut indices = [0u16; 8];
        let mut tags = [0u16; 8];
        for (i, t) in self.tables.iter().enumerate() {
            indices[i] = t.index(pc) as u16;
            tags[i] = t.tag(pc);
        }
        let base_index = ((pc >> 1) as usize & (self.base.len() - 1)) as u16;

        let mut provider = None;
        for i in (0..self.tables.len()).rev() {
            let e = &self.tables[i].entries[indices[i] as usize];
            if e.tag == tags[i] && e.confidence > 0 {
                provider = Some(i);
                break;
            }
        }
        let target = match provider {
            Some(i) => Some(self.tables[i].entries[indices[i] as usize].target),
            None => {
                let b = &self.base[base_index as usize];
                if b.confidence > 0 {
                    Some(b.target)
                } else {
                    None
                }
            }
        };
        IttagePrediction {
            target,
            provider,
            indices,
            tags,
            base_index,
        }
    }

    /// Train with the resolved target.
    pub fn update(&mut self, pc: u64, pred: &IttagePrediction, target: u64) {
        let _ = pc;
        self.predictions += 1;
        let correct = pred.target == Some(target);
        if !correct {
            self.mispredictions += 1;
        }

        // Train provider (or base).
        match pred.provider {
            Some(p) => {
                let e = &mut self.tables[p].entries[pred.indices[p] as usize];
                if e.target == target {
                    e.confidence = (e.confidence + 1).min(3);
                    e.useful = 1;
                } else if e.confidence > 1 {
                    e.confidence -= 1;
                } else {
                    e.target = target;
                    e.confidence = 1;
                    e.useful = 0;
                }
            }
            None => {
                let e = &mut self.base[pred.base_index as usize];
                if e.target == target && e.confidence > 0 {
                    e.confidence = (e.confidence + 1).min(3);
                } else if e.confidence > 1 {
                    e.confidence -= 1;
                } else {
                    e.target = target;
                    e.confidence = 1;
                }
            }
        }

        // Allocate a longer-history entry on a wrong target.
        if !correct {
            let start = pred.provider.map_or(0, |p| p + 1);
            for i in start..self.tables.len() {
                let e = &mut self.tables[i].entries[pred.indices[i] as usize];
                if e.useful == 0 {
                    *e = ItEntry {
                        tag: pred.tags[i],
                        target,
                        confidence: 1,
                        useful: 0,
                    };
                    break;
                }
            }
        }
    }

    /// `(predictions, mispredictions)` counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.predictions, self.mispredictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomorphic_target_learned_quickly() {
        let mut it = Ittage::new(4, 8, 64);
        let pc = 0x7000;
        let mut wrong = 0;
        for i in 0..200 {
            let p = it.predict(pc);
            if i > 4 && p.target != Some(0xDEAD) {
                wrong += 1;
            }
            it.update(pc, &p, 0xDEAD);
            it.push_history(i % 2 == 0);
        }
        assert!(wrong < 10, "monomorphic: {wrong} wrong after warmup");
    }

    #[test]
    fn history_correlated_targets() {
        let mut it = Ittage::new(4, 8, 64);
        let pc = 0x9000;
        // Target alternates with the history bit pushed in between.
        let mut wrong = 0;
        let mut total = 0;
        for rep in 0..600 {
            let phase = rep % 2 == 0;
            let target = if phase { 0xAAAA } else { 0xBBBB };
            let p = it.predict(pc);
            if rep > 300 {
                total += 1;
                if p.target != Some(target) {
                    wrong += 1;
                }
            }
            it.update(pc, &p, target);
            it.push_history(phase);
        }
        assert!(
            wrong * 3 < total,
            "history-correlated targets should mostly hit: {wrong}/{total}"
        );
    }

    #[test]
    fn cold_branch_predicts_none() {
        let it = Ittage::new(2, 6, 16);
        assert_eq!(it.predict(0x1234).target, None);
    }

    #[test]
    fn checkpoint_restore_is_exact() {
        let mut it = Ittage::new(4, 8, 64);
        for i in 0..40 {
            it.push_history(i % 5 == 0);
        }
        let cp = it.checkpoint();
        let before = it.predict(0x42);
        for _ in 0..15 {
            it.push_history(true);
        }
        it.restore(&cp);
        let after = it.predict(0x42);
        assert_eq!(before.indices, after.indices);
        assert_eq!(before.tags, after.tags);
    }
}
