//! Analytical SRAM access-latency model.
//!
//! The paper uses the CACTI 7 tool to "approximate the latency as the BTB
//! scales" (§5.1): growing the BTB is not free, which is part of why adding
//! 12.25 KB to the BTB is less attractive than adding the SBB. CACTI itself
//! is a large C++ tool; this module substitutes a fitted analytical model of
//! its SRAM access-time trend — access time grows roughly with the square
//! root of capacity (wordline/bitline RC), which in core cycles at multi-GHz
//! becomes a staircase of extra pipeline stages.

/// Access time in picoseconds for an SRAM of `bytes` capacity with the given
/// associativity, fitted to published CACTI 7 22 nm curves.
///
/// The fit anchors: ~8 KB ≈ 220 ps, ~32 KB ≈ 310 ps, ~128 KB ≈ 470 ps,
/// ~1 MB ≈ 900 ps. Associativity adds comparator/mux delay.
#[must_use]
pub fn sram_access_ps(bytes: usize, ways: usize) -> f64 {
    let kb = (bytes as f64 / 1024.0).max(0.25);
    let base = 95.0 + 44.0 * kb.sqrt().min(64.0) + 18.0 * kb.ln().max(0.0);
    let assoc_penalty = 12.0 * (ways as f64).log2().max(0.0);
    base + assoc_penalty
}

/// Pipelined access latency in core cycles at `freq_ghz`.
///
/// The first cycle is free (every structure takes at least one); the value
/// returned is the number of *extra* cycles beyond a small baseline
/// structure, which is how the frontend charges BTB-scaling latency.
#[must_use]
pub fn access_cycles(bytes: usize, ways: usize, freq_ghz: f64) -> u32 {
    let ps = sram_access_ps(bytes, ways);
    let cycle_ps = 1000.0 / freq_ghz;
    (ps / cycle_ps).ceil() as u32
}

/// Extra BTB pipeline cycles relative to the nominal 8K-entry design, at
/// 4 GHz. Used by the Fig. 3 sweep so that very large BTBs pay a bubble on
/// every predicted taken branch.
#[must_use]
pub fn btb_extra_cycles(entries: usize) -> u32 {
    const NOMINAL_BYTES: usize = 8192 * 78 / 8;
    let nominal = access_cycles(NOMINAL_BYTES, 4, 4.0);
    let this = access_cycles(entries * 78 / 8, 4, 4.0);
    this.saturating_sub(nominal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_time_is_monotonic_in_capacity() {
        let mut last = 0.0;
        for kb in [1usize, 4, 16, 64, 256, 1024, 4096] {
            let t = sram_access_ps(kb * 1024, 4);
            assert!(t > last, "{kb}KB: {t} !> {last}");
            last = t;
        }
    }

    #[test]
    fn associativity_costs_time() {
        assert!(sram_access_ps(32 * 1024, 16) > sram_access_ps(32 * 1024, 2));
    }

    #[test]
    fn nominal_btb_pays_no_extra_cycles() {
        assert_eq!(btb_extra_cycles(8192), 0);
        assert_eq!(btb_extra_cycles(4096), 0);
    }

    #[test]
    fn huge_btb_pays_extra_cycles() {
        assert!(btb_extra_cycles(64 * 1024) >= 1);
        assert!(btb_extra_cycles(512 * 1024) >= btb_extra_cycles(64 * 1024));
    }

    #[test]
    fn cycles_scale_with_frequency() {
        assert!(access_cycles(64 * 1024, 4, 5.0) >= access_cycles(64 * 1024, 4, 2.0));
    }
}
