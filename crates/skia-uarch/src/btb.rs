//! Branch Target Buffer.
//!
//! Entry layout follows the paper's Fig. 12: 10-bit tag, valid bit, per-way
//! LRU bit, 2-bit branch type and 64-bit target — 78 bits ≈ 9.75 bytes per
//! entry, so the paper's 8K-entry BTB is 78 KB. The model keeps full-precision
//! tags internally (no aliasing) but reports storage with the paper's entry
//! size so ISO-storage comparisons (BTB+12.25 KB vs. SBB) match the paper.

use skia_isa::BranchKind;

use crate::tag_array::TagArray;

/// Bits per BTB entry per the paper (Fig. 12).
pub const BTB_ENTRY_BITS: usize = 78;

/// BTB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Total entries (sets × ways).
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl BtbConfig {
    /// Standard configuration used throughout the paper: 4-way.
    #[must_use]
    pub fn with_entries(entries: usize) -> Self {
        BtbConfig { entries, ways: 4 }
    }

    /// Sets implied by the geometry (entries need not be a power of two).
    #[must_use]
    pub fn sets(&self) -> usize {
        assert!(self.entries >= self.ways && self.entries.is_multiple_of(self.ways));
        self.entries / self.ways
    }

    /// Storage in kilobytes at the paper's 78 bits/entry.
    #[must_use]
    pub fn storage_kb(&self) -> f64 {
        (self.entries * BTB_ENTRY_BITS) as f64 / 8.0 / 1024.0
    }

    /// How many extra entries a given extra storage budget buys, rounded down
    /// to a multiple of the associativity (used for the BTB+12.25 KB
    /// configurations of Figs. 3 and 16).
    #[must_use]
    pub fn entries_for_budget_kb(budget_kb: f64, ways: usize) -> usize {
        let raw = (budget_kb * 1024.0 * 8.0 / BTB_ENTRY_BITS as f64) as usize;
        raw - raw % ways
    }
}

/// A BTB entry payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbEntry {
    /// Branch classification (2-bit field in hardware).
    pub kind: BranchKind,
    /// Predicted target. For returns this field is unused (the RAS provides
    /// the target) but the entry still identifies the instruction as a
    /// branch, which is what FDIP needs.
    pub target: u64,
    /// Encoded instruction length (predecode metadata; real designs carry
    /// equivalent end-of-branch information to form fetch blocks and return
    /// addresses).
    pub len: u8,
}

/// Set-associative BTB indexed by branch PC.
///
/// The BPU's "where is the next branch I know about in this fetch window?"
/// question is answered by probing the program's dense branch side table
/// (`skia-workloads`) against [`Btb::probe`] — a resident pc is always a
/// static branch of the program, so the BTB keeps no ordered key mirror
/// and inserts/evictions pay no index maintenance.
#[derive(Debug, Clone)]
pub struct Btb {
    arr: TagArray<BtbEntry>,
    config: BtbConfig,
    lookups: u64,
    hits: u64,
}

impl Btb {
    /// Build a BTB.
    #[must_use]
    pub fn new(config: BtbConfig) -> Self {
        Btb {
            arr: TagArray::new(config.sets(), config.ways),
            config,
            lookups: 0,
            hits: 0,
        }
    }

    /// Geometry.
    #[must_use]
    pub fn config(&self) -> BtbConfig {
        self.config
    }

    fn set_of(&self, pc: u64) -> usize {
        self.arr.set_of(pc)
    }

    /// Predict: look up the branch at `pc`, updating recency and hit stats.
    pub fn lookup(&mut self, pc: u64) -> Option<BtbEntry> {
        self.lookups += 1;
        let set = self.set_of(pc);
        let hit = self.arr.access(set, pc).copied();
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Probe without recency/stat updates (used by the shadow-decode scan and
    /// by tests).
    #[must_use]
    pub fn probe(&self, pc: u64) -> Option<BtbEntry> {
        self.arr.probe(self.set_of(pc), pc).copied()
    }

    /// Install or refresh the branch at `pc`. Returns the PC of a displaced
    /// branch, if the insertion evicted one.
    pub fn insert(&mut self, pc: u64, kind: BranchKind, target: u64, len: u8) -> Option<u64> {
        let set = self.set_of(pc);
        let evicted = self.arr.insert(set, pc, BtbEntry { kind, target, len });
        match evicted {
            Some((old_pc, _)) if old_pc != pc => Some(old_pc),
            _ => None,
        }
    }

    /// Number of valid entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arr.len()
    }

    /// Whether the BTB holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arr.is_empty()
    }

    /// `(lookups, hits)` counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }
}

/// An unbounded, fully associative BTB — the paper's "Infinite, Fully
/// Associative BTB" upper-bound configuration (Fig. 3).
///
/// Keyed-lookup only (never iterated), so a hash map's unspecified order
/// cannot leak into results.
#[derive(Debug, Clone, Default)]
pub struct IdealBtb {
    map: std::collections::HashMap<u64, BtbEntry>,
}

impl IdealBtb {
    /// Create an empty ideal BTB.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up the branch at `pc`.
    #[must_use]
    pub fn lookup(&self, pc: u64) -> Option<BtbEntry> {
        self.map.get(&pc).copied()
    }

    /// Install the branch at `pc`.
    pub fn insert(&mut self, pc: u64, kind: BranchKind, target: u64, len: u8) {
        self.map.insert(pc, BtbEntry { kind, target, len });
    }

    /// Number of distinct branches ever installed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizing_is_reproduced() {
        // 8K entries × 78 bits = 78 KB (the paper's headline geometry).
        let c = BtbConfig::with_entries(8192);
        assert!((c.storage_kb() - 78.0).abs() < 1e-9);
        assert_eq!(c.sets(), 2048);
    }

    #[test]
    fn budget_conversion() {
        // 12.25 KB at 78 bits/entry ≈ 1285 entries → 1284 at 4-way.
        let extra = BtbConfig::entries_for_budget_kb(12.25, 4);
        assert_eq!(extra, 1284);
    }

    #[test]
    fn lookup_insert_roundtrip() {
        let mut btb = Btb::new(BtbConfig {
            entries: 8,
            ways: 2,
        });
        assert_eq!(btb.lookup(0x400), None);
        btb.insert(0x400, BranchKind::DirectUncond, 0x500, 5);
        let e = btb.lookup(0x400).unwrap();
        assert_eq!(e.kind, BranchKind::DirectUncond);
        assert_eq!(e.target, 0x500);
        assert_eq!(btb.stats(), (2, 1));
    }

    #[test]
    fn capacity_pressure_evicts() {
        let mut btb = Btb::new(BtbConfig {
            entries: 4,
            ways: 2,
        });
        // 2 sets × 2 ways; flood one set.
        for i in 0..8u64 {
            let pc = i * 2; // even pcs → set 0 (set = pc % 2 == 0)
            btb.insert(pc, BranchKind::Call, pc + 100, 5);
        }
        let resident = (0..8u64).filter(|i| btb.probe(i * 2).is_some()).count();
        assert_eq!(resident, 2, "only the last two survive in a 2-way set");
    }

    #[test]
    fn probe_is_stats_and_recency_neutral() {
        // The BPU's window scan probes candidate pcs every predict; those
        // probes must not disturb LRU order or the lookup/hit counters.
        let mut btb = Btb::new(BtbConfig {
            entries: 2,
            ways: 2,
        });
        btb.insert(0x100, BranchKind::Call, 0, 5);
        btb.insert(0x102, BranchKind::Return, 0, 1);
        let stats_before = btb.stats();
        for _ in 0..100 {
            assert!(btb.probe(0x100).is_some());
            assert!(btb.probe(0x104).is_none());
        }
        assert_eq!(btb.stats(), stats_before);
        // 0x100 is still LRU despite the probes: the next insert evicts it.
        btb.insert(0x104, BranchKind::Call, 0, 5);
        assert!(btb.probe(0x100).is_none(), "probe must not refresh LRU");
        assert!(btb.probe(0x102).is_some());
    }

    #[test]
    fn ideal_btb_never_evicts() {
        let mut b = IdealBtb::new();
        for pc in 0..100_000u64 {
            b.insert(pc, BranchKind::DirectCond, pc ^ 0xFFFF, 6);
        }
        assert_eq!(b.len(), 100_000);
        assert_eq!(b.lookup(99_999).unwrap().target, 99_999 ^ 0xFFFF);
    }
}
