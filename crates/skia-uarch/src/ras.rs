//! Return Address Stack with speculative repair.
//!
//! The BPU pushes on predicted calls and pops on predicted returns; both
//! happen speculatively, so a resteer must restore the stack. The classic
//! low-cost repair (used here) checkpoints the stack pointer plus the entry
//! that the next push would overwrite, which exactly undoes any single
//! wrong-path excursion bounded by the checkpoint.

/// Fixed-depth circular return address stack.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    entries: Vec<u64>,
    /// Index of the current top entry.
    top: usize,
    /// Number of valid entries (saturates at capacity).
    depth: usize,
    pushes: u64,
    pops: u64,
    underflows: u64,
}

/// Repair token for [`ReturnAddressStack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasCheckpoint {
    top: usize,
    depth: usize,
    top_value: u64,
}

impl ReturnAddressStack {
    /// Create a stack with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS needs at least one entry");
        ReturnAddressStack {
            entries: vec![0; capacity],
            top: 0,
            depth: 0,
            pushes: 0,
            pops: 0,
            underflows: 0,
        }
    }

    /// Push a return address (on a call).
    pub fn push(&mut self, return_address: u64) {
        self.pushes += 1;
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = return_address;
        self.depth = (self.depth + 1).min(self.entries.len());
    }

    /// Pop the predicted return address (on a return). Returns `None` on
    /// underflow (the stack has wrapped past all valid entries).
    pub fn pop(&mut self) -> Option<u64> {
        self.pops += 1;
        if self.depth == 0 {
            self.underflows += 1;
            return None;
        }
        let v = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.depth -= 1;
        Some(v)
    }

    /// Peek at the top without popping.
    #[must_use]
    pub fn peek(&self) -> Option<u64> {
        (self.depth > 0).then(|| self.entries[self.top])
    }

    /// Capture repair state (call before speculating past a branch).
    #[must_use]
    pub fn checkpoint(&self) -> RasCheckpoint {
        RasCheckpoint {
            top: self.top,
            depth: self.depth,
            top_value: self.entries[self.top],
        }
    }

    /// Undo wrong-path pushes/pops back to `cp`.
    pub fn restore(&mut self, cp: RasCheckpoint) {
        self.top = cp.top;
        self.depth = cp.depth;
        self.entries[cp.top] = cp.top_value;
    }

    /// Current number of valid entries.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// `(pushes, pops, underflows)` counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.pushes, self.pops, self.underflows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnAddressStack::new(8);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), Some(1));
        assert_eq!(ras.pop(), None);
        assert_eq!(ras.stats().2, 1);
    }

    #[test]
    fn wraps_and_loses_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites 1
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        // Depth saturated at 2 so entry "1" is gone.
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn checkpoint_undoes_wrong_path_push() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(0xA);
        let cp = ras.checkpoint();
        ras.push(0xBAD); // wrong path call
        ras.restore(cp);
        assert_eq!(ras.pop(), Some(0xA));
    }

    #[test]
    fn checkpoint_undoes_wrong_path_pop() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(0xA);
        ras.push(0xB);
        let cp = ras.checkpoint();
        assert_eq!(ras.pop(), Some(0xB)); // wrong path return
        ras.restore(cp);
        assert_eq!(ras.pop(), Some(0xB));
        assert_eq!(ras.pop(), Some(0xA));
    }

    #[test]
    fn checkpoint_undoes_pop_then_push() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(0xA);
        ras.push(0xB);
        let cp = ras.checkpoint();
        ras.pop();
        ras.push(0xBAD); // overwrites the slot holding 0xB
        ras.restore(cp);
        assert_eq!(ras.pop(), Some(0xB), "top entry repaired from checkpoint");
        assert_eq!(ras.pop(), Some(0xA));
    }

    #[test]
    fn peek_matches_pop() {
        let mut ras = ReturnAddressStack::new(4);
        assert_eq!(ras.peek(), None);
        ras.push(7);
        assert_eq!(ras.peek(), Some(7));
        assert_eq!(ras.pop(), Some(7));
    }
}
