//! TAGE conditional branch predictor with a loop predictor, in the spirit of
//! the TAGE-SC-L predictor the paper uses as its BPU baseline (Seznec,
//! CBP-5).
//!
//! The predictor supports *speculative* operation as required by a decoupled
//! front-end: global history is pushed at prediction time with the predicted
//! outcome, and a cheap [`TageCheckpoint`] (folded-history registers + history
//! position) is taken per prediction so a later resteer can rewind the
//! predictor to the mispredicted branch and continue on the correct path.
//! Table updates use the indices/tags recorded in the [`TagePrediction`], so
//! a delayed (decode/execute-time) update trains exactly the entries that
//! produced the prediction.

/// A folded (compressed) history register, CBP-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Folded {
    comp: u32,
    olen: usize,
    /// `clen % olen`, precomputed: `update` runs on every history push for
    /// every table, and the modulo is loop-invariant.
    out_shift: u32,
}

impl Folded {
    fn new(clen: usize, olen: usize) -> Self {
        Folded {
            comp: 0,
            olen,
            out_shift: (clen % olen) as u32,
        }
    }

    fn update(&mut self, new_bit: bool, old_bit: bool) {
        self.comp = (self.comp << 1) | u32::from(new_bit);
        self.comp ^= u32::from(old_bit) << self.out_shift;
        self.comp ^= self.comp >> self.olen;
        self.comp &= (1u32 << self.olen) - 1;
    }
}

/// Circular global-history bit buffer sized for deep speculation. The
/// capacity is always a power of two so index wrap is a mask, not a 64-bit
/// division (`bit_ago` runs once per table per history push).
#[derive(Debug, Clone)]
struct GlobalHistory {
    bits: Vec<bool>,
    pos: usize,
    mask: usize,
}

impl GlobalHistory {
    fn new(capacity: usize) -> Self {
        assert!(capacity.is_power_of_two());
        GlobalHistory {
            bits: vec![false; capacity],
            pos: 0,
            mask: capacity - 1,
        }
    }

    fn bit_ago(&self, ago: usize) -> bool {
        self.bits[(self.pos + self.bits.len() - ago) & self.mask]
    }

    fn push(&mut self, bit: bool) {
        self.bits[self.pos] = bit;
        self.pos = (self.pos + 1) & self.mask;
    }
}

/// One entry of a tagged TAGE component.
#[derive(Debug, Clone, Copy, Default)]
struct TageEntry {
    ctr: i8, // 3-bit signed counter, -4..=3
    tag: u16,
    useful: u8, // 2-bit
}

#[derive(Debug, Clone)]
struct TageTable {
    entries: Vec<TageEntry>,
    hist_len: usize,
    index_bits: usize,
    tag_bits: usize,
    idx_fold: Folded,
    tag_fold1: Folded,
    tag_fold2: Folded,
}

impl TageTable {
    fn new(hist_len: usize, index_bits: usize, tag_bits: usize) -> Self {
        TageTable {
            entries: vec![TageEntry::default(); 1 << index_bits],
            hist_len,
            index_bits,
            tag_bits,
            idx_fold: Folded::new(hist_len, index_bits),
            tag_fold1: Folded::new(hist_len, tag_bits),
            tag_fold2: Folded::new(hist_len, tag_bits - 1),
        }
    }

    fn index(&self, pc: u64) -> usize {
        let pc = pc >> 1;
        let mix =
            pc ^ (pc >> self.index_bits) ^ (pc >> (2 * self.index_bits as u32 as u64 as usize));
        ((mix as u32 ^ self.idx_fold.comp) & ((1 << self.index_bits) - 1)) as usize
    }

    fn tag(&self, pc: u64) -> u16 {
        let pc = pc >> 1;
        ((pc as u32 ^ self.tag_fold1.comp ^ (self.tag_fold2.comp << 1))
            & ((1 << self.tag_bits) - 1)) as u16
    }
}

/// Loop predictor entry (64-entry, direct mapped by PC).
#[derive(Debug, Clone, Copy, Default)]
struct LoopEntry {
    tag: u16,
    trip: u16,
    current: u16,
    confidence: u8,
    valid: bool,
}

/// TAGE geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageConfig {
    /// Number of tagged components.
    pub num_tables: usize,
    /// Shortest history length (geometric series up to `max_history`).
    pub min_history: usize,
    /// Longest history length.
    pub max_history: usize,
    /// log2 entries per tagged table.
    pub table_index_bits: usize,
    /// Tag width in bits.
    pub tag_bits: usize,
    /// log2 entries of the bimodal base predictor.
    pub base_index_bits: usize,
    /// Enable the loop predictor component.
    pub loop_predictor: bool,
}

impl Default for TageConfig {
    /// A ~64 KB configuration matching the paper's BPU budget.
    fn default() -> Self {
        TageConfig {
            num_tables: 12,
            min_history: 4,
            max_history: 640,
            table_index_bits: 11,
            tag_bits: 12,
            base_index_bits: 14,
            loop_predictor: true,
        }
    }
}

impl TageConfig {
    /// A small configuration for fast unit tests.
    #[must_use]
    pub fn small() -> Self {
        TageConfig {
            num_tables: 4,
            min_history: 2,
            max_history: 64,
            table_index_bits: 8,
            tag_bits: 9,
            base_index_bits: 10,
            loop_predictor: false,
        }
    }

    /// Approximate storage in KB (ctr+tag+u per tagged entry, 2-bit bimodal).
    #[must_use]
    pub fn storage_kb(&self) -> f64 {
        let tagged_bits = self.num_tables * (1 << self.table_index_bits) * (3 + 2 + self.tag_bits);
        let base_bits = (1 << self.base_index_bits) * 2;
        let loop_bits = if self.loop_predictor { 64 * 52 } else { 0 };
        (tagged_bits + base_bits + loop_bits) as f64 / 8.0 / 1024.0
    }
}

const MAX_TABLES: usize = 16;

/// Everything needed to train the entries that produced one prediction.
#[derive(Debug, Clone, Copy)]
pub struct TagePrediction {
    /// Final predicted direction.
    pub taken: bool,
    provider: Option<usize>,
    alt_taken: bool,
    provider_weak: bool,
    indices: [u16; MAX_TABLES],
    tags: [u16; MAX_TABLES],
    base_index: u16,
    from_loop: bool,
    loop_index: usize,
}

/// Rewind token: folded registers of every table plus the history position.
#[derive(Debug, Clone)]
pub struct TageCheckpoint {
    folds: Vec<(u32, u32, u32)>,
    pos: usize,
}

/// The predictor.
#[derive(Debug, Clone)]
pub struct Tage {
    config: TageConfig,
    tables: Vec<TageTable>,
    base: Vec<i8>, // 2-bit counters, -2..=1
    ghist: GlobalHistory,
    use_alt_on_na: i8,
    loops: Vec<LoopEntry>,
    rng: u64,
    tick: u64,
    // stats
    predictions: u64,
    mispredictions: u64,
}

impl Tage {
    /// Build a predictor from its geometry.
    #[must_use]
    pub fn new(config: TageConfig) -> Self {
        assert!(config.num_tables >= 2 && config.num_tables <= MAX_TABLES);
        // Prediction metadata stores indices as u16.
        assert!(config.table_index_bits <= 16 && config.base_index_bits <= 16);
        let mut tables = Vec::new();
        // Geometric history lengths between min and max.
        let ratio = (config.max_history as f64 / config.min_history as f64)
            .powf(1.0 / (config.num_tables - 1) as f64);
        for i in 0..config.num_tables {
            let h = (config.min_history as f64 * ratio.powi(i as i32)).round() as usize;
            let h = h.max(i + 1);
            tables.push(TageTable::new(h, config.table_index_bits, config.tag_bits));
        }
        let ghist = GlobalHistory::new((config.max_history + 1).next_power_of_two() * 8);
        Tage {
            base: vec![0; 1 << config.base_index_bits],
            loops: vec![LoopEntry::default(); 64],
            tables,
            ghist,
            config,
            use_alt_on_na: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
            tick: 0,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Geometry.
    #[must_use]
    pub fn config(&self) -> &TageConfig {
        &self.config
    }

    fn next_rand(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }

    fn base_index(&self, pc: u64) -> usize {
        ((pc >> 1) & ((1 << self.config.base_index_bits) - 1)) as usize
    }

    /// Predict the direction of the conditional branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u64) -> TagePrediction {
        let mut indices = [0u16; MAX_TABLES];
        let mut tags = [0u16; MAX_TABLES];
        for (i, t) in self.tables.iter().enumerate() {
            indices[i] = t.index(pc) as u16;
            tags[i] = t.tag(pc);
        }
        let base_index = self.base_index(pc) as u16;
        let base_taken = self.base[base_index as usize] >= 0;

        let mut provider = None;
        let mut alt = None;
        for i in (0..self.tables.len()).rev() {
            let e = &self.tables[i].entries[indices[i] as usize];
            if e.tag == tags[i] {
                if provider.is_none() {
                    provider = Some(i);
                } else {
                    alt = Some(i);
                    break;
                }
            }
        }

        let alt_taken = match alt {
            Some(i) => self.tables[i].entries[indices[i] as usize].ctr >= 0,
            None => base_taken,
        };
        let (taken, provider_weak) = match provider {
            Some(i) => {
                let e = &self.tables[i].entries[indices[i] as usize];
                let weak = e.ctr == 0 || e.ctr == -1;
                let newly_alloc = e.useful == 0 && weak;
                if newly_alloc && self.use_alt_on_na >= 0 {
                    (alt_taken, weak)
                } else {
                    (e.ctr >= 0, weak)
                }
            }
            None => (base_taken, false),
        };

        // Loop predictor override when confident.
        let (taken, from_loop, loop_index) = if self.config.loop_predictor {
            // `loops` is a fixed 64-entry table; mask instead of modulo.
            let li = (pc >> 1) as usize & (self.loops.len() - 1);
            let le = &self.loops[li];
            if le.valid && le.tag == ((pc >> 7) & 0xFFFF) as u16 && le.confidence >= 3 {
                // `current` counts taken iterations so far; the loop exits
                // (not-taken) exactly when it reaches the learned trip count.
                (le.current != le.trip, true, li)
            } else {
                (taken, false, li)
            }
        } else {
            (taken, false, 0)
        };

        TagePrediction {
            taken,
            provider,
            alt_taken,
            provider_weak,
            indices,
            tags,
            base_index,
            from_loop,
            loop_index,
        }
    }

    /// Push one speculative outcome bit into the global history (call once
    /// per predicted conditional branch, with the *predicted* direction; call
    /// with the resolved direction after a [`Tage::restore`]).
    pub fn push_history(&mut self, taken: bool) {
        // Compute leaving bits before mutating the buffer. A fixed array —
        // this runs once per committed branch and must not heap-allocate.
        let mut olds = [false; MAX_TABLES];
        for (i, t) in self.tables.iter().enumerate() {
            olds[i] = self.ghist.bit_ago(t.hist_len);
        }
        for (t, &old) in self.tables.iter_mut().zip(&olds) {
            t.idx_fold.update(taken, old);
            t.tag_fold1.update(taken, old);
            t.tag_fold2.update(taken, old);
        }
        self.ghist.push(taken);
    }

    /// Capture the speculative history state.
    #[must_use]
    pub fn checkpoint(&self) -> TageCheckpoint {
        TageCheckpoint {
            folds: self
                .tables
                .iter()
                .map(|t| (t.idx_fold.comp, t.tag_fold1.comp, t.tag_fold2.comp))
                .collect(),
            pos: self.ghist.pos,
        }
    }

    /// Rewind to a checkpoint taken earlier on this path.
    pub fn restore(&mut self, cp: &TageCheckpoint) {
        for (t, &(a, b, c)) in self.tables.iter_mut().zip(&cp.folds) {
            t.idx_fold.comp = a;
            t.tag_fold1.comp = b;
            t.tag_fold2.comp = c;
        }
        self.ghist.pos = cp.pos;
    }

    /// Train the predictor with the resolved direction of a branch predicted
    /// earlier (the `pred` returned by [`Tage::predict`] for that branch).
    pub fn update(&mut self, pc: u64, pred: &TagePrediction, taken: bool) {
        self.predictions += 1;
        if pred.taken != taken {
            self.mispredictions += 1;
        }
        self.tick += 1;

        // Loop predictor training.
        if self.config.loop_predictor {
            let tag = ((pc >> 7) & 0xFFFF) as u16;
            let le = &mut self.loops[pred.loop_index];
            if le.valid && le.tag == tag {
                if taken {
                    le.current = le.current.saturating_add(1);
                    if le.current > le.trip && le.confidence > 0 {
                        // Longer than learned trip count: distrust.
                        le.confidence -= 1;
                    }
                } else {
                    if le.current == le.trip {
                        le.confidence = (le.confidence + 1).min(7);
                    } else {
                        le.trip = le.current;
                        le.confidence = 0;
                    }
                    le.current = 0;
                }
            } else if !taken {
                // Seed a new loop candidate on a not-taken backedge close.
                *le = LoopEntry {
                    tag,
                    trip: 0,
                    current: 0,
                    confidence: 0,
                    valid: true,
                };
            }
            if pred.from_loop {
                // The tagged tables were bypassed; still train them below.
            }
        }

        let correct = pred.taken == taken;

        match pred.provider {
            Some(p) => {
                let (tables_before, tables_from) = self.tables.split_at_mut(p);
                let _ = tables_before;
                let e = &mut tables_from[0].entries[pred.indices[p] as usize];
                let provider_taken = e.ctr >= 0;

                // use_alt_on_na bookkeeping for newly allocated entries.
                if e.useful == 0 && (e.ctr == 0 || e.ctr == -1) && provider_taken != pred.alt_taken
                {
                    self.use_alt_on_na = if pred.alt_taken == taken {
                        (self.use_alt_on_na + 1).min(7)
                    } else {
                        (self.use_alt_on_na - 1).max(-8)
                    };
                }

                // Useful counter: provider differs from alt and was right.
                if provider_taken != pred.alt_taken {
                    if provider_taken == taken {
                        e.useful = (e.useful + 1).min(3);
                    } else {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
                // Train provider counter.
                e.ctr = if taken {
                    (e.ctr + 1).min(3)
                } else {
                    (e.ctr - 1).max(-4)
                };
            }
            None => {
                let c = &mut self.base[pred.base_index as usize];
                *c = if taken {
                    (*c + 1).min(1)
                } else {
                    (*c - 1).max(-2)
                };
            }
        }

        // Allocate on misprediction (or on weak correct predictions, rarely).
        let start = pred.provider.map_or(0, |p| p + 1);
        if !correct && start < self.tables.len() {
            let mut free = [0usize; MAX_TABLES];
            let mut nfree = 0usize;
            for i in start..self.tables.len() {
                if self.tables[i].entries[pred.indices[i] as usize].useful == 0 {
                    free[nfree] = i;
                    nfree += 1;
                }
            }
            if nfree == 0 {
                for i in start..self.tables.len() {
                    let e = &mut self.tables[i].entries[pred.indices[i] as usize];
                    e.useful = e.useful.saturating_sub(1);
                }
            } else {
                // Prefer shorter history; skip ahead pseudo-randomly (Seznec).
                let pick = if nfree > 1 && self.next_rand().is_multiple_of(2) {
                    free[1]
                } else {
                    free[0]
                };
                let e = &mut self.tables[pick].entries[pred.indices[pick] as usize];
                e.tag = pred.tags[pick];
                e.ctr = if taken { 0 } else { -1 };
                e.useful = 0;
            }
        }

        // Graceful useful-bit aging.
        if self.tick & 0x3FFFF == 0 {
            for t in &mut self.tables {
                for e in &mut t.entries {
                    e.useful >>= 1;
                }
            }
        }

        let _ = pred.provider_weak;
    }

    /// `(predictions, mispredictions)` counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.predictions, self.mispredictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pattern(tage: &mut Tage, pc: u64, pattern: &[bool], reps: usize) -> (u64, u64) {
        let mut total = 0;
        let mut wrong = 0;
        for _ in 0..reps {
            for &taken in pattern {
                let cp = tage.checkpoint();
                let p = tage.predict(pc);
                tage.push_history(p.taken);
                if p.taken != taken {
                    wrong += 1;
                    // Resteer: rewind the speculative history and replay the
                    // resolved outcome, as the frontend does.
                    tage.restore(&cp);
                    tage.push_history(taken);
                }
                tage.update(pc, &p, taken);
                total += 1;
            }
        }
        (total, wrong)
    }

    #[test]
    fn learns_always_taken() {
        let mut t = Tage::new(TageConfig::small());
        let (total, wrong) = run_pattern(&mut t, 0x400, &[true], 500);
        assert!(wrong * 20 < total, "{wrong}/{total} mispredictions");
    }

    #[test]
    fn learns_alternating_pattern() {
        let mut t = Tage::new(TageConfig::small());
        // Warm up: the pattern is history-predictable, bimodal can't get it.
        let (_, _) = run_pattern(&mut t, 0x400, &[true, false], 100);
        let (total, wrong) = run_pattern(&mut t, 0x400, &[true, false], 200);
        assert!(
            wrong * 10 < total,
            "alternating pattern should be learned: {wrong}/{total}"
        );
    }

    #[test]
    fn learns_short_repeating_pattern() {
        let mut t = Tage::new(TageConfig::small());
        let pat = [true, true, false, true, false, false];
        run_pattern(&mut t, 0x1234, &pat, 150);
        let (total, wrong) = run_pattern(&mut t, 0x1234, &pat, 150);
        assert!(
            wrong * 5 < total,
            "period-6 pattern should be mostly learned: {wrong}/{total}"
        );
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let mut t = Tage::new(TageConfig::small());
        for i in 0..50 {
            t.push_history(i % 3 == 0);
        }
        let cp = t.checkpoint();
        let before = t.predict(0xABCD);
        // Wander down a wrong path.
        for _ in 0..20 {
            t.push_history(true);
        }
        t.restore(&cp);
        let after = t.predict(0xABCD);
        assert_eq!(before.taken, after.taken);
        assert_eq!(before.indices, after.indices);
        assert_eq!(before.tags, after.tags);
    }

    #[test]
    fn different_pcs_use_different_entries() {
        let t = Tage::new(TageConfig::small());
        let a = t.predict(0x1000);
        let b = t.predict(0x2002);
        // Base indices must differ for these PCs.
        assert_ne!(a.base_index, b.base_index);
    }

    #[test]
    fn stats_count() {
        let mut t = Tage::new(TageConfig::small());
        let p = t.predict(0x10);
        t.update(0x10, &p, !p.taken);
        let (n, m) = t.stats();
        assert_eq!(n, 1);
        assert_eq!(m, 1);
    }

    #[test]
    fn storage_is_about_64kb_for_default() {
        let kb = TageConfig::default().storage_kb();
        assert!(
            (40.0..=72.0).contains(&kb),
            "default TAGE should be in the paper's 64KB class, got {kb}"
        );
    }

    #[test]
    fn loop_predictor_locks_onto_fixed_trip_count() {
        let mut cfg = TageConfig::small();
        cfg.loop_predictor = true;
        let mut t = Tage::new(cfg);
        // Loop with trip count 7: taken 6×, not-taken once.
        let mut pattern = vec![true; 6];
        pattern.push(false);
        run_pattern(&mut t, 0x808, &pattern, 120);
        let (total, wrong) = run_pattern(&mut t, 0x808, &pattern, 100);
        assert!(
            wrong * 8 < total,
            "loop predictor should capture trip count: {wrong}/{total}"
        );
    }
}
