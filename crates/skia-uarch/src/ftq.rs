//! Fetch Target Queue.
//!
//! The FTQ is the decoupling buffer between the Instruction Address Generator
//! and the Instruction Fetch Unit (paper §2.1): a bounded FIFO of predicted
//! basic blocks. Its depth controls how far FDIP can run ahead — the paper
//! uses 24 entries. The queue is generic over its entry type; the frontend
//! stores basic-block descriptors plus predictor checkpoints in it.

use std::collections::VecDeque;

/// Bounded FIFO with occupancy statistics.
#[derive(Debug, Clone)]
pub struct Ftq<T> {
    entries: VecDeque<T>,
    capacity: usize,
    enqueues: u64,
    flushes: u64,
    occupancy_sum: u64,
    occupancy_samples: u64,
}

impl<T> Ftq<T> {
    /// Create a queue holding up to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FTQ needs at least one entry");
        Ftq {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            enqueues: 0,
            flushes: 0,
            occupancy_sum: 0,
            occupancy_samples: 0,
        }
    }

    /// Maximum entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether another entry fits.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Enqueue at the tail. Returns the entry back if the queue is full.
    pub fn push(&mut self, entry: T) -> Result<(), T> {
        if self.is_full() {
            return Err(entry);
        }
        self.enqueues += 1;
        self.entries.push_back(entry);
        Ok(())
    }

    /// Dequeue from the head.
    pub fn pop(&mut self) -> Option<T> {
        self.entries.pop_front()
    }

    /// Inspect the head without dequeuing.
    #[must_use]
    pub fn front(&self) -> Option<&T> {
        self.entries.front()
    }

    /// Inspect the tail (most recently predicted block).
    #[must_use]
    pub fn back(&self) -> Option<&T> {
        self.entries.back()
    }

    /// Drop every entry (control-flow resteer, §5.2: "the FTQ is flushed").
    pub fn flush(&mut self) {
        if !self.entries.is_empty() {
            self.flushes += 1;
        }
        self.entries.clear();
    }

    /// Record an occupancy sample (call once per simulated cycle).
    pub fn sample_occupancy(&mut self) {
        self.occupancy_sum += self.entries.len() as u64;
        self.occupancy_samples += 1;
    }

    /// Mean sampled occupancy.
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        if self.occupancy_samples == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.occupancy_samples as f64
        }
    }

    /// `(enqueues, flushes)` counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.enqueues, self.flushes)
    }

    /// Iterate entries from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let mut q = Ftq::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn flush_clears_and_counts() {
        let mut q = Ftq::new(4);
        q.push('a').unwrap();
        q.push('b').unwrap();
        q.flush();
        assert!(q.is_empty());
        assert_eq!(q.stats(), (2, 1));
        // Flushing an empty queue is not counted.
        q.flush();
        assert_eq!(q.stats().1, 1);
    }

    #[test]
    fn occupancy_sampling() {
        let mut q = Ftq::new(4);
        q.sample_occupancy(); // 0
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.sample_occupancy(); // 2
        assert!((q.mean_occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = Ftq::<u8>::new(0);
    }
}
