//! Property tests on the microarchitectural structures.

use proptest::prelude::*;
use skia_isa::BranchKind;
use skia_uarch::btb::{Btb, BtbConfig};
use skia_uarch::cache::{Cache, CacheConfig};
use skia_uarch::ras::ReturnAddressStack;
use skia_uarch::tag_array::TagArray;

proptest! {
    /// A tag array never exceeds capacity and always finds the most
    /// recently inserted entry for a key.
    #[test]
    fn tag_array_capacity_and_mru(
        sets in 1usize..16,
        ways in 1usize..8,
        ops in proptest::collection::vec((any::<u64>(), any::<u32>()), 1..200),
    ) {
        let mut arr: TagArray<u32> = TagArray::new(sets, ways);
        let mut last: std::collections::HashMap<u64, u32> = Default::default();
        for (key, val) in &ops {
            let set = arr.set_of(*key);
            arr.insert(set, *key, *val);
            last.insert(*key, *val);
            prop_assert!(arr.len() <= arr.capacity());
        }
        // Every resident entry must carry the last value written to it.
        for (set, tag, val) in arr.iter() {
            prop_assert_eq!(arr.set_of(tag), set);
            prop_assert_eq!(Some(val), last.get(&tag));
        }
    }

    /// Cache residency is exact: after a fill the line is resident until an
    /// eviction displaces it, and stats add up.
    #[test]
    fn cache_stats_add_up(addrs in proptest::collection::vec(any::<u32>(), 1..300)) {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 8 * 64,
            ways: 2,
            line_bytes: 64,
        });
        for &a in &addrs {
            let addr = u64::from(a);
            let hit = c.demand_access(addr);
            if !hit {
                c.fill(addr, false);
                prop_assert!(c.contains(addr));
            }
        }
        let s = c.stats();
        prop_assert_eq!(s.demand_hits + s.demand_misses, addrs.len() as u64);
        prop_assert!(c.resident_lines() <= 8);
    }

    /// Residency reconstructed from insert()'s evicted-pc return value
    /// always agrees with probe() — the contract the BPU's side-table
    /// window scan (probe per static-branch candidate) depends on.
    #[test]
    fn btb_eviction_reports_track_residency(pcs in proptest::collection::vec(any::<u32>(), 1..200)) {
        let mut btb = Btb::new(BtbConfig { entries: 32, ways: 4 });
        let mut resident = std::collections::BTreeSet::new();
        for &pc in &pcs {
            let pc = u64::from(pc);
            if let Some(evicted) = btb.insert(pc, BranchKind::Call, 0, 5) {
                prop_assert!(resident.remove(&evicted), "evicted {evicted:#x} was not resident");
            }
            resident.insert(pc);
        }
        prop_assert_eq!(resident.len(), btb.len());
        for &pc in &resident {
            prop_assert!(btb.probe(pc).is_some(), "tracked pc {pc:#x} not resident");
        }
        for &pc in &pcs {
            let pc = u64::from(pc);
            prop_assert_eq!(btb.probe(pc).is_some(), resident.contains(&pc));
        }
    }

    /// RAS checkpoint/restore always undoes one speculative excursion of
    /// pushes and pops (bounded by capacity).
    #[test]
    fn ras_checkpoint_roundtrip(
        setup in proptest::collection::vec(any::<u16>(), 0..8),
        spec_ops in proptest::collection::vec(any::<bool>(), 1..4),
    ) {
        let mut ras = ReturnAddressStack::new(16);
        for &v in &setup {
            ras.push(u64::from(v));
        }
        let before_top = ras.peek();
        let cp = ras.checkpoint();
        // A short wrong-path excursion with at most one net overwrite.
        let mut pushed = false;
        for &push in &spec_ops {
            if push && !pushed {
                ras.push(0xBAD);
                pushed = true;
            } else if !push {
                let _ = ras.pop();
            }
        }
        ras.restore(cp);
        prop_assert_eq!(ras.peek(), before_top);
    }
}
