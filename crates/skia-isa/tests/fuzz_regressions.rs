//! Decoder regressions pinned from the `skia-fuzz` decode-target corpus.
//!
//! Each case is a corpus entry (or its interesting suffix) that exercised a
//! decode path no hand-written test covered: stacked segment prefixes,
//! prefix interactions with immediate width, and exact `Truncated(n)`
//! accounting. The hex bodies are literal `decode` fuzz-target tokens, so
//! any of them can be replayed with
//! `SKIA_FUZZ_REPLAY='decode:<hex>' cargo test -p skia-fuzz --test fuzz`.

use skia_isa::decode::{decode, DecodeError};
use skia_isa::{BranchKind, InsnKind};

fn hex(s: &str) -> Vec<u8> {
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap())
        .collect()
}

/// Fig. 8's shadow-branch ambiguity at the byte level: `31 C3` is one
/// 2-byte `xor ebx, eax`, but the same bytes re-decoded from offset 1 are a
/// 1-byte `ret` — the whole reason shadow decoding needs Path Validation.
#[test]
fn fig8_bytes_decode_differently_by_start_offset() {
    let bytes = hex("31c3");
    let full = decode(&bytes).unwrap();
    assert_eq!((full.len, full.kind), (2, InsnKind::Other));
    let from1 = decode(&bytes[1..]).unwrap();
    assert_eq!(from1.len, 1);
    let InsnKind::Branch(b) = from1.kind else {
        panic!("expected a branch, got {:?}", from1.kind);
    };
    assert_eq!(b.kind, BranchKind::Return);
}

/// Corpus `26653e5889480035`: three stacked segment prefixes (`es`, `gs`,
/// `ds`) in front of `pop rax`. All legacy prefixes count toward the
/// length; none change the operation class.
#[test]
fn stacked_segment_prefixes_extend_length_only() {
    let d = decode(&hex("26653e5889480035")).unwrap();
    assert_eq!((d.len, d.kind), (4, InsnKind::Other));
}

/// Corpus `676448b8000000000e00000099`: address-size + `fs` + REX.W in
/// front of `B8` (`mov rax, imm`). REX.W widens the immediate to 64 bits
/// and the `67` prefix does NOT shrink it (it only affects `moffs` forms),
/// so the instruction spans 4 prefix/opcode bytes + 8 immediate bytes.
#[test]
fn rex_w_mov_imm_keeps_imm64_under_addr_size_prefix() {
    let d = decode(&hex("676448b8000000000e00000099")).unwrap();
    assert_eq!((d.len, d.kind), (12, InsnKind::Other));
}

/// Corpus `2e0f8dc0ffffff`: a `cs`-prefixed `jge rel32`. The prefix is
/// counted in the length, and the relative displacement is applied from
/// the *end* of the full (prefixed) instruction.
#[test]
fn segment_prefixed_jcc_rel32_targets_from_prefixed_end() {
    let d = decode(&hex("2e0f8dc0ffffff")).unwrap();
    assert_eq!(d.len, 7);
    let InsnKind::Branch(b) = d.kind else {
        panic!("expected a branch, got {:?}", d.kind);
    };
    assert_eq!((b.kind, b.rel), (BranchKind::DirectCond, Some(-64)));
    assert_eq!(d.branch_target(0x1000), Some(0x1000 + 7 - 64));
}

/// Corpus `64c20800`: `fs`-prefixed `ret imm16` is still a return (the
/// R-SBB cares about exactly this classification).
#[test]
fn prefixed_ret_imm16_stays_a_return() {
    let d = decode(&hex("64c20800")).unwrap();
    assert_eq!(d.len, 4);
    let InsnKind::Branch(b) = d.kind else {
        panic!("expected a branch, got {:?}", d.kind);
    };
    assert_eq!(b.kind, BranchKind::Return);
}

/// Corpus `bf87b8630000` re-decoded from offset 1 (the shadow-decode view):
/// `87 b8 <disp32>` is `xchg [rax+disp32], edi` and needs 6 bytes, but only
/// 5 are available — `Truncated` must report the exact available count,
/// which is what lets the SBD distinguish "spills past the line" from
/// "garbage".
#[test]
fn truncated_reports_exact_available_bytes() {
    let bytes = hex("bf87b8630000");
    assert_eq!(decode(&bytes[1..]), Err(DecodeError::Truncated(5)));
    assert_eq!(decode(&bytes[2..]), Err(DecodeError::Truncated(4)));
    // And every proper prefix of the *full* instruction truncates at its
    // own length — the invariant the decode fuzz target checks for every
    // input.
    let full = decode(&bytes).unwrap();
    assert_eq!(full.len, 5);
    for n in 1..usize::from(full.len) {
        assert_eq!(
            decode(&bytes[..n]),
            Err(DecodeError::Truncated(n)),
            "prefix of {n} bytes"
        );
    }
}

/// Re-decoding any successful instruction from its reported length is
/// stable: the corpus entries above all decode identically when the slice
/// is cut to exactly `len` bytes (the fuzz idempotence invariant).
#[test]
fn corpus_entries_redecode_identically_at_reported_length() {
    for hex_body in [
        "26653e5889480035",
        "676448b8000000000e00000099",
        "2e0f8dc0ffffff",
        "64c20800",
        "40e665489400",
        "6566484a2b448300c5",
    ] {
        let bytes = hex(hex_body);
        let d = decode(&bytes).unwrap();
        assert_eq!(
            decode(&bytes[..usize::from(d.len)]),
            Ok(d),
            "re-decode of {hex_body} at len {}",
            d.len
        );
    }
}
