//! Property tests: every encoder template round-trips through the decoder,
//! and the decoder is total (never panics) on arbitrary byte soup.

use proptest::prelude::*;
use skia_isa::{decode, encode, BranchKind, DecodeError, InsnKind, MAX_INSN_LEN};

proptest! {
    /// Decoding arbitrary bytes must never panic and must never report a
    /// length outside 1..=15 or beyond the available bytes.
    #[test]
    fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        match decode::decode(&bytes) {
            Ok(d) => {
                prop_assert!(d.len >= 1);
                prop_assert!(usize::from(d.len) <= MAX_INSN_LEN);
                prop_assert!(usize::from(d.len) <= bytes.len());
            }
            Err(DecodeError::Truncated(n)) => prop_assert_eq!(n, bytes.len()),
            Err(_) => {}
        }
    }

    /// A decode result is a pure function of the first `len` bytes: appending
    /// garbage after a complete instruction must not change the result.
    #[test]
    fn decode_ignores_trailing_bytes(
        selector in any::<u64>(),
        garbage in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let mut buf = Vec::new();
        encode::emit_nonbranch(&mut buf, selector);
        let clean = decode::decode(&buf).unwrap();
        buf.extend_from_slice(&garbage);
        let noisy = decode::decode(&buf).unwrap();
        prop_assert_eq!(clean, noisy);
    }

    /// Every non-branch template decodes to its own emitted length and is
    /// classified as a non-branch.
    #[test]
    fn nonbranch_roundtrip(selector in any::<u64>()) {
        let mut buf = Vec::new();
        let len = encode::emit_nonbranch(&mut buf, selector);
        let d = decode::decode(&buf).unwrap();
        prop_assert_eq!(usize::from(d.len), len);
        prop_assert_eq!(d.kind, InsnKind::Other);
    }

    /// Direct branch encodings carry their displacement through the decoder.
    #[test]
    fn direct_branch_rel_roundtrip(rel in any::<i32>(), cc in 0u8..16) {
        let mut buf = Vec::new();
        encode::jmp_rel32(&mut buf, rel);
        let d = decode::decode(&buf).unwrap();
        let b = d.kind.branch().expect("jmp is a branch");
        prop_assert_eq!(b.kind, BranchKind::DirectUncond);
        prop_assert_eq!(b.rel, Some(rel));

        buf.clear();
        encode::jcc_rel32(&mut buf, cc, rel);
        let d = decode::decode(&buf).unwrap();
        let b = d.kind.branch().expect("jcc is a branch");
        prop_assert_eq!(b.kind, BranchKind::DirectCond);
        prop_assert_eq!(b.rel, Some(rel));

        buf.clear();
        encode::call_rel32(&mut buf, rel);
        let d = decode::decode(&buf).unwrap();
        let b = d.kind.branch().expect("call is a branch");
        prop_assert_eq!(b.kind, BranchKind::Call);
        prop_assert_eq!(b.rel, Some(rel));
    }

    /// rel8 branch displacements sign-extend correctly.
    #[test]
    fn rel8_sign_extension(rel in any::<i8>()) {
        let mut buf = Vec::new();
        encode::jmp_rel8(&mut buf, rel);
        let d = decode::decode(&buf).unwrap();
        prop_assert_eq!(d.kind.branch().unwrap().rel, Some(i32::from(rel)));
    }

    /// Branch target arithmetic: target = pc + len + rel, mod 2^64.
    #[test]
    fn branch_target_arithmetic(pc in any::<u64>(), rel in any::<i32>()) {
        let mut buf = Vec::new();
        encode::jmp_rel32(&mut buf, rel);
        let d = decode::decode(&buf).unwrap();
        let expect = pc.wrapping_add(5).wrapping_add(rel as i64 as u64);
        prop_assert_eq!(d.branch_target(pc), Some(expect));
    }

    /// Concatenated instruction streams decode back instruction-by-
    /// instruction with the same boundaries the encoder produced.
    #[test]
    fn stream_boundaries_recoverable(selectors in proptest::collection::vec(any::<u64>(), 1..64)) {
        let mut buf = Vec::new();
        let mut lens = Vec::new();
        for s in &selectors {
            lens.push(encode::emit_nonbranch(&mut buf, *s));
        }
        let mut off = 0usize;
        for (i, want) in lens.iter().enumerate() {
            let d = decode::decode(&buf[off..]).unwrap();
            prop_assert_eq!(usize::from(d.len), *want, "insn {} at {}", i, off);
            off += *want;
        }
        prop_assert_eq!(off, buf.len());
    }
}
