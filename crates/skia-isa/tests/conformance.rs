//! ISA conformance: golden (bytes → length/kind) vectors for the supported
//! x86-64 subset, assembled from the Intel SDM encodings. Complements the
//! property tests with exact known-answer coverage.

use skia_isa::{decode, BranchKind, DecodeError, InsnKind};

struct Golden {
    bytes: &'static [u8],
    len: u8,
    branch: Option<BranchKind>,
    what: &'static str,
}

const GOLDEN: &[Golden] = &[
    // --- one-byte ALU forms ---
    Golden {
        bytes: &[0x01, 0xD8],
        len: 2,
        branch: None,
        what: "add eax, ebx",
    },
    Golden {
        bytes: &[0x48, 0x01, 0xD8],
        len: 3,
        branch: None,
        what: "add rax, rbx",
    },
    Golden {
        bytes: &[0x29, 0xC8],
        len: 2,
        branch: None,
        what: "sub eax, ecx",
    },
    Golden {
        bytes: &[0x31, 0xC0],
        len: 2,
        branch: None,
        what: "xor eax, eax",
    },
    Golden {
        bytes: &[0x3C, 0x7F],
        len: 2,
        branch: None,
        what: "cmp al, 0x7f",
    },
    Golden {
        bytes: &[0x3D, 0x00, 0x01, 0x00, 0x00],
        len: 5,
        branch: None,
        what: "cmp eax, imm32",
    },
    Golden {
        bytes: &[0x66, 0x3D, 0x00, 0x01],
        len: 4,
        branch: None,
        what: "cmp ax, imm16",
    },
    // --- stack ---
    Golden {
        bytes: &[0x55],
        len: 1,
        branch: None,
        what: "push rbp",
    },
    Golden {
        bytes: &[0x41, 0x57],
        len: 2,
        branch: None,
        what: "push r15 (REX.B)",
    },
    Golden {
        bytes: &[0x5D],
        len: 1,
        branch: None,
        what: "pop rbp",
    },
    Golden {
        bytes: &[0x68, 0x44, 0x33, 0x22, 0x11],
        len: 5,
        branch: None,
        what: "push imm32",
    },
    Golden {
        bytes: &[0x6A, 0x01],
        len: 2,
        branch: None,
        what: "push imm8",
    },
    // --- moves ---
    Golden {
        bytes: &[0x89, 0xC3],
        len: 2,
        branch: None,
        what: "mov ebx, eax",
    },
    Golden {
        bytes: &[0x48, 0x89, 0xE5],
        len: 3,
        branch: None,
        what: "mov rbp, rsp",
    },
    Golden {
        bytes: &[0x8B, 0x45, 0xF8],
        len: 3,
        branch: None,
        what: "mov eax, [rbp-8]",
    },
    Golden {
        bytes: &[0x48, 0x8B, 0x04, 0x25, 0, 0, 0, 0],
        len: 8,
        branch: None,
        what: "mov rax, [abs32 via SIB]",
    },
    Golden {
        bytes: &[0xB8, 0x2A, 0, 0, 0],
        len: 5,
        branch: None,
        what: "mov eax, 42",
    },
    Golden {
        bytes: &[0x48, 0xC7, 0xC0, 0x2A, 0, 0, 0],
        len: 7,
        branch: None,
        what: "mov rax, imm32 (C7)",
    },
    Golden {
        bytes: &[0x49, 0xB9, 1, 2, 3, 4, 5, 6, 7, 8],
        len: 10,
        branch: None,
        what: "mov r9, imm64",
    },
    Golden {
        bytes: &[0xC6, 0x00, 0x7F],
        len: 3,
        branch: None,
        what: "mov byte [rax], 0x7f",
    },
    // --- lea ---
    Golden {
        bytes: &[0x48, 0x8D, 0x05, 0, 0, 0, 0],
        len: 7,
        branch: None,
        what: "lea rax, [rip+0]",
    },
    Golden {
        bytes: &[0x8D, 0x44, 0x08, 0x10],
        len: 4,
        branch: None,
        what: "lea eax, [rax+rcx+16]",
    },
    // --- test / shifts / grp3 ---
    Golden {
        bytes: &[0x85, 0xC0],
        len: 2,
        branch: None,
        what: "test eax, eax",
    },
    Golden {
        bytes: &[0xC1, 0xE0, 0x04],
        len: 3,
        branch: None,
        what: "shl eax, 4",
    },
    Golden {
        bytes: &[0xD1, 0xE8],
        len: 2,
        branch: None,
        what: "shr eax, 1",
    },
    Golden {
        bytes: &[0xF7, 0xD8],
        len: 2,
        branch: None,
        what: "neg eax",
    },
    Golden {
        bytes: &[0xF7, 0xC0, 1, 0, 0, 0],
        len: 6,
        branch: None,
        what: "test eax, imm32",
    },
    Golden {
        bytes: &[0xF6, 0xC1, 0x01],
        len: 3,
        branch: None,
        what: "test cl, 1",
    },
    // --- nops ---
    Golden {
        bytes: &[0x90],
        len: 1,
        branch: None,
        what: "nop",
    },
    Golden {
        bytes: &[0x0F, 0x1F, 0x44, 0x00, 0x00],
        len: 5,
        branch: None,
        what: "nop5",
    },
    Golden {
        bytes: &[0x66, 0x0F, 0x1F, 0x84, 0, 0, 0, 0, 0],
        len: 9,
        branch: None,
        what: "nop9",
    },
    // --- two-byte map ---
    Golden {
        bytes: &[0x0F, 0x05],
        len: 2,
        branch: None,
        what: "syscall",
    },
    Golden {
        bytes: &[0x0F, 0xA2],
        len: 2,
        branch: None,
        what: "cpuid",
    },
    Golden {
        bytes: &[0x0F, 0xAF, 0xC3],
        len: 3,
        branch: None,
        what: "imul eax, ebx",
    },
    Golden {
        bytes: &[0x0F, 0xB6, 0xC0],
        len: 3,
        branch: None,
        what: "movzx eax, al",
    },
    Golden {
        bytes: &[0x0F, 0xBE, 0xC9],
        len: 3,
        branch: None,
        what: "movsx ecx, cl",
    },
    Golden {
        bytes: &[0x0F, 0x44, 0xC8],
        len: 3,
        branch: None,
        what: "cmove ecx, eax",
    },
    Golden {
        bytes: &[0x0F, 0x94, 0xC0],
        len: 3,
        branch: None,
        what: "sete al",
    },
    Golden {
        bytes: &[0x0F, 0x10, 0x01],
        len: 3,
        branch: None,
        what: "movups xmm0, [rcx]",
    },
    Golden {
        bytes: &[0x0F, 0xC8],
        len: 2,
        branch: None,
        what: "bswap eax",
    },
    Golden {
        bytes: &[0x0F, 0x70, 0xC1, 0x1B],
        len: 4,
        branch: None,
        what: "pshufw mm0, mm1, 27",
    },
    Golden {
        bytes: &[0xF3, 0x0F, 0xB8, 0xC3],
        len: 4,
        branch: None,
        what: "popcnt eax, ebx",
    },
    // --- direct branches ---
    Golden {
        bytes: &[0xEB, 0x10],
        len: 2,
        branch: Some(BranchKind::DirectUncond),
        what: "jmp +16 (rel8)",
    },
    Golden {
        bytes: &[0xE9, 0, 0x10, 0, 0],
        len: 5,
        branch: Some(BranchKind::DirectUncond),
        what: "jmp rel32",
    },
    Golden {
        bytes: &[0x74, 0x05],
        len: 2,
        branch: Some(BranchKind::DirectCond),
        what: "je +5",
    },
    Golden {
        bytes: &[0x0F, 0x85, 0, 0, 0, 0],
        len: 6,
        branch: Some(BranchKind::DirectCond),
        what: "jne rel32",
    },
    Golden {
        bytes: &[0xE8, 0, 0, 0, 0],
        len: 5,
        branch: Some(BranchKind::Call),
        what: "call rel32",
    },
    Golden {
        bytes: &[0xE0, 0xFB],
        len: 2,
        branch: Some(BranchKind::DirectCond),
        what: "loopne -5",
    },
    Golden {
        bytes: &[0xE3, 0x02],
        len: 2,
        branch: Some(BranchKind::DirectCond),
        what: "jrcxz +2",
    },
    // --- returns ---
    Golden {
        bytes: &[0xC3],
        len: 1,
        branch: Some(BranchKind::Return),
        what: "ret",
    },
    Golden {
        bytes: &[0xC2, 0x10, 0x00],
        len: 3,
        branch: Some(BranchKind::Return),
        what: "ret 16",
    },
    // --- indirect branches ---
    Golden {
        bytes: &[0xFF, 0xE0],
        len: 2,
        branch: Some(BranchKind::IndirectJmp),
        what: "jmp rax",
    },
    Golden {
        bytes: &[0xFF, 0xE7],
        len: 2,
        branch: Some(BranchKind::IndirectJmp),
        what: "jmp rdi",
    },
    Golden {
        bytes: &[0xFF, 0xD2],
        len: 2,
        branch: Some(BranchKind::IndirectCall),
        what: "call rdx",
    },
    Golden {
        bytes: &[0xFF, 0x15, 0, 0, 0, 0],
        len: 6,
        branch: Some(BranchKind::IndirectCall),
        what: "call [rip+0]",
    },
    Golden {
        bytes: &[0xFF, 0x24, 0xC5, 0, 0, 0, 0],
        len: 7,
        branch: Some(BranchKind::IndirectJmp),
        what: "jmp [rax*8+disp32]",
    },
    Golden {
        bytes: &[0x41, 0xFF, 0xE2],
        len: 3,
        branch: Some(BranchKind::IndirectJmp),
        what: "jmp r10",
    },
    // --- group 5 non-branch forms ---
    Golden {
        bytes: &[0xFF, 0xC0],
        len: 2,
        branch: None,
        what: "inc eax (ff /0)",
    },
    Golden {
        bytes: &[0xFF, 0xC9],
        len: 2,
        branch: None,
        what: "dec ecx (ff /1)",
    },
    Golden {
        bytes: &[0xFF, 0x30],
        len: 2,
        branch: None,
        what: "push [rax] (ff /6)",
    },
    // --- string / misc ---
    Golden {
        bytes: &[0xF3, 0xA4],
        len: 2,
        branch: None,
        what: "rep movsb",
    },
    Golden {
        bytes: &[0xF0, 0x48, 0x0F, 0xB1, 0x0A],
        len: 5,
        branch: None,
        what: "lock cmpxchg [rdx], rcx",
    },
    Golden {
        bytes: &[0xCC],
        len: 1,
        branch: None,
        what: "int3",
    },
    Golden {
        bytes: &[0xC9],
        len: 1,
        branch: None,
        what: "leave",
    },
    Golden {
        bytes: &[0xC8, 0x20, 0x00, 0x00],
        len: 4,
        branch: None,
        what: "enter 32, 0",
    },
    Golden {
        bytes: &[0x98],
        len: 1,
        branch: None,
        what: "cwde",
    },
    Golden {
        bytes: &[0x63, 0xC3],
        len: 2,
        branch: None,
        what: "movsxd eax, ebx",
    },
    Golden {
        bytes: &[0xA8, 0x01],
        len: 2,
        branch: None,
        what: "test al, 1",
    },
    Golden {
        bytes: &[0xA1, 0, 0, 0, 0, 0, 0, 0, 0],
        len: 9,
        branch: None,
        what: "mov eax, moffs64",
    },
];

#[test]
fn golden_vectors_decode_exactly() {
    for g in GOLDEN {
        let d =
            decode::decode(g.bytes).unwrap_or_else(|e| panic!("{}: {:02x?}: {e}", g.what, g.bytes));
        assert_eq!(d.len, g.len, "{}: {:02x?}", g.what, g.bytes);
        match (g.branch, d.kind) {
            (None, InsnKind::Other) => {}
            (Some(k), InsnKind::Branch(b)) => {
                assert_eq!(b.kind, k, "{}: {:02x?}", g.what, g.bytes)
            }
            (want, got) => panic!("{}: wanted {want:?}, got {got:?}", g.what),
        }
    }
}

#[test]
fn golden_vectors_are_length_exact() {
    // Removing the final byte must yield Truncated for every vector (no
    // vector contains slack bytes).
    for g in GOLDEN {
        let short = &g.bytes[..g.bytes.len() - 1];
        match decode::decode(short) {
            Err(DecodeError::Truncated(_)) => {}
            other => {
                // A shorter prefix may itself decode as a *different*,
                // shorter instruction only if the vector's length equals
                // that prefix... which would mean the table entry is wrong.
                if let Ok(d) = other {
                    assert!(
                        usize::from(d.len) < g.bytes.len(),
                        "{}: prefix decoded to full length",
                        g.what
                    );
                }
            }
        }
    }
}

#[test]
fn invalid_64bit_opcodes_rejected() {
    // Opcodes removed in 64-bit mode, plus VEX/EVEX space we exclude.
    let invalid: &[&[u8]] = &[
        &[0x06],                   // push es
        &[0x07],                   // pop es
        &[0x0E],                   // push cs
        &[0x16],                   // push ss
        &[0x17],                   // pop ss
        &[0x1E],                   // push ds
        &[0x1F],                   // pop ds
        &[0x27],                   // daa
        &[0x2F],                   // das
        &[0x37],                   // aaa
        &[0x3F],                   // aas
        &[0x60],                   // pusha
        &[0x61],                   // popa
        &[0x62, 0, 0, 0, 0, 0],    // EVEX space
        &[0x82, 0xC0, 0x01],       // alias group (invalid in 64-bit)
        &[0x9A, 0, 0, 0, 0, 0, 0], // far call
        &[0xC4, 0, 0, 0],          // VEX3 (excluded subset)
        &[0xC5, 0, 0],             // VEX2 (excluded subset)
        &[0xCE],                   // into
        &[0xD4, 0x0A],             // aam
        &[0xD5, 0x0A],             // aad
        &[0xD6],                   // salc
        &[0xEA, 0, 0, 0, 0, 0, 0], // far jmp
        &[0xFE, 0xD0],             // grp4 /2 undefined
        &[0xFF, 0xF8],             // grp5 /7 undefined
    ];
    for bytes in invalid {
        assert_eq!(
            decode::decode(bytes),
            Err(DecodeError::InvalidOpcode),
            "{bytes:02x?} must be invalid"
        );
    }
}

#[test]
fn rel_branch_targets_match_sdm_semantics() {
    // jmp rel8 forward and backward across the instruction boundary.
    let fwd = decode::decode(&[0xEB, 0x7F]).unwrap();
    assert_eq!(fwd.branch_target(0x1000), Some(0x1000 + 2 + 0x7F));
    let back = decode::decode(&[0xEB, 0x80]).unwrap();
    assert_eq!(back.branch_target(0x1000), Some(0x1000 + 2 - 128));
    // call rel32 negative displacement.
    let call = decode::decode(&[0xE8, 0xFC, 0xFF, 0xFF, 0xFF]).unwrap();
    assert_eq!(call.branch_target(0x2000), Some(0x2000 + 5 - 4));
}
