//! Instruction and branch classification types.

/// The branch taxonomy of the paper (§2.4).
///
/// Skia's Shadow Branch Buffer only stores branches whose target can be
/// computed without execution-time register state: [`BranchKind::DirectUncond`]
/// and [`BranchKind::Call`] (PC + encoded offset) and [`BranchKind::Return`]
/// (recoverable from recent calls through the return address stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BranchKind {
    /// Conditional PC-relative jump (`Jcc rel8/rel32`, `LOOPcc`, `JCXZ`).
    DirectCond,
    /// Unconditional PC-relative jump (`JMP rel8/rel32`).
    DirectUncond,
    /// Direct call (`CALL rel32`) — unconditional, pushes a return address.
    Call,
    /// Near return (`RET`, `RET imm16`).
    Return,
    /// Indirect jump through a register or memory operand (`JMP r/m64`).
    IndirectJmp,
    /// Indirect call through a register or memory operand (`CALL r/m64`).
    IndirectCall,
}

impl BranchKind {
    /// All kinds, in a stable report order used by the experiment harness.
    pub const ALL: [BranchKind; 6] = [
        BranchKind::DirectCond,
        BranchKind::DirectUncond,
        BranchKind::Call,
        BranchKind::Return,
        BranchKind::IndirectJmp,
        BranchKind::IndirectCall,
    ];

    /// Whether the branch target is encoded in the instruction bytes
    /// (PC-relative), i.e. computable at decode time.
    #[must_use]
    pub fn is_direct(self) -> bool {
        matches!(
            self,
            BranchKind::DirectCond | BranchKind::DirectUncond | BranchKind::Call
        )
    }

    /// Whether the branch unconditionally redirects control flow.
    #[must_use]
    pub fn is_unconditional(self) -> bool {
        !matches!(self, BranchKind::DirectCond)
    }

    /// Whether Skia's Shadow Branch Decoder may insert this branch into the
    /// SBB (§2.4: direct unconditional jumps, calls, and returns).
    #[must_use]
    pub fn sbb_eligible(self) -> bool {
        matches!(
            self,
            BranchKind::DirectUncond | BranchKind::Call | BranchKind::Return
        )
    }

    /// Short label used in experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BranchKind::DirectCond => "DirectCond",
            BranchKind::DirectUncond => "DirectUncond",
            BranchKind::Call => "Call",
            BranchKind::Return => "Return",
            BranchKind::IndirectJmp => "IndirectJmp",
            BranchKind::IndirectCall => "IndirectCall",
        }
    }
}

impl std::fmt::Display for BranchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Branch-specific decode result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Classification per the paper's taxonomy.
    pub kind: BranchKind,
    /// PC-relative displacement for direct branches; `None` for indirect
    /// branches and returns, whose targets are not encoded in the bytes.
    pub rel: Option<i32>,
}

impl BranchInfo {
    /// Compute the branch target given the address of the *first byte* of the
    /// instruction and its decoded length.
    ///
    /// Returns `None` for branch kinds whose target is not in the encoding.
    #[must_use]
    pub fn target(&self, pc: u64, len: u8) -> Option<u64> {
        self.rel.map(|rel| {
            pc.wrapping_add(u64::from(len))
                .wrapping_add(rel as i64 as u64)
        })
    }
}

/// Coarse instruction classification produced by the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsnKind {
    /// A control-flow instruction.
    Branch(BranchInfo),
    /// Anything else (ALU, moves, loads/stores, NOPs, …).
    Other,
}

impl InsnKind {
    /// The branch info if this is a branch.
    #[must_use]
    pub fn branch(&self) -> Option<&BranchInfo> {
        match self {
            InsnKind::Branch(b) => Some(b),
            InsnKind::Other => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_kinds_are_direct() {
        assert!(BranchKind::DirectCond.is_direct());
        assert!(BranchKind::DirectUncond.is_direct());
        assert!(BranchKind::Call.is_direct());
        assert!(!BranchKind::Return.is_direct());
        assert!(!BranchKind::IndirectJmp.is_direct());
        assert!(!BranchKind::IndirectCall.is_direct());
    }

    #[test]
    fn sbb_eligibility_matches_paper() {
        // §2.4: only direct unconditional branches, calls and returns can be
        // inserted by the shadow decoder.
        let eligible: Vec<_> = BranchKind::ALL
            .into_iter()
            .filter(|k| k.sbb_eligible())
            .collect();
        assert_eq!(
            eligible,
            vec![
                BranchKind::DirectUncond,
                BranchKind::Call,
                BranchKind::Return
            ]
        );
    }

    #[test]
    fn conditional_is_not_unconditional() {
        for k in BranchKind::ALL {
            assert_eq!(k.is_unconditional(), k != BranchKind::DirectCond);
        }
    }

    #[test]
    fn target_arithmetic() {
        let b = BranchInfo {
            kind: BranchKind::DirectUncond,
            rel: Some(-5),
        };
        assert_eq!(b.target(100, 2), Some(97));
        let r = BranchInfo {
            kind: BranchKind::Return,
            rel: None,
        };
        assert_eq!(r.target(100, 1), None);
    }

    #[test]
    fn target_wraps_at_address_space_edge() {
        let b = BranchInfo {
            kind: BranchKind::Call,
            rel: Some(-1),
        };
        assert_eq!(b.target(0, 0), Some(u64::MAX));
    }
}
