//! Instruction templates for emitting synthetic x86-64 code.
//!
//! The workload generator builds program images out of these templates. Every
//! emitter appends the encoding of exactly one instruction to the output
//! buffer and returns its length. All encodings round-trip through
//! [`crate::decode::decode`] (property-tested in `tests/roundtrip.rs`).

use crate::kind::BranchKind;

/// General-purpose register numbers (the low 8; REX-extended registers are
/// reached through the `rex` parameters of individual templates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Reg {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
}

impl Reg {
    /// The eight encodable low registers, for selector-driven choice.
    pub const ALL: [Reg; 8] = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rbx,
        Reg::Rsp,
        Reg::Rbp,
        Reg::Rsi,
        Reg::Rdi,
    ];

    fn idx(self) -> u8 {
        self as u8
    }
}

fn modrm(md: u8, reg: u8, rm: u8) -> u8 {
    (md << 6) | ((reg & 7) << 3) | (rm & 7)
}

// ---------------------------------------------------------------------------
// Branch templates
// ---------------------------------------------------------------------------

/// `JMP rel8` (2 bytes).
pub fn jmp_rel8(out: &mut Vec<u8>, rel: i8) -> usize {
    out.extend_from_slice(&[0xEB, rel as u8]);
    2
}

/// `JMP rel32` (5 bytes).
pub fn jmp_rel32(out: &mut Vec<u8>, rel: i32) -> usize {
    out.push(0xE9);
    out.extend_from_slice(&rel.to_le_bytes());
    5
}

/// `Jcc rel8` (2 bytes). `cc` is the low nibble of the 7x opcode (0–15).
pub fn jcc_rel8(out: &mut Vec<u8>, cc: u8, rel: i8) -> usize {
    out.extend_from_slice(&[0x70 | (cc & 0x0F), rel as u8]);
    2
}

/// `Jcc rel32` (6 bytes).
pub fn jcc_rel32(out: &mut Vec<u8>, cc: u8, rel: i32) -> usize {
    out.extend_from_slice(&[0x0F, 0x80 | (cc & 0x0F)]);
    out.extend_from_slice(&rel.to_le_bytes());
    6
}

/// `CALL rel32` (5 bytes).
pub fn call_rel32(out: &mut Vec<u8>, rel: i32) -> usize {
    out.push(0xE8);
    out.extend_from_slice(&rel.to_le_bytes());
    5
}

/// `RET` (1 byte).
pub fn ret(out: &mut Vec<u8>) -> usize {
    out.push(0xC3);
    1
}

/// `RET imm16` (3 bytes).
pub fn ret_imm16(out: &mut Vec<u8>, imm: u16) -> usize {
    out.push(0xC2);
    out.extend_from_slice(&imm.to_le_bytes());
    3
}

/// `JMP r64` (2 bytes).
pub fn jmp_reg(out: &mut Vec<u8>, r: Reg) -> usize {
    out.extend_from_slice(&[0xFF, modrm(0b11, 4, r.idx())]);
    2
}

/// `CALL r64` (2 bytes).
pub fn call_reg(out: &mut Vec<u8>, r: Reg) -> usize {
    out.extend_from_slice(&[0xFF, modrm(0b11, 2, r.idx())]);
    2
}

/// `JMP [RIP+disp32]` (6 bytes) — the common PLT/jump-table form.
pub fn jmp_mem_rip(out: &mut Vec<u8>, disp: i32) -> usize {
    out.extend_from_slice(&[0xFF, modrm(0b00, 4, 0b101)]);
    out.extend_from_slice(&disp.to_le_bytes());
    6
}

/// `CALL [RIP+disp32]` (6 bytes).
pub fn call_mem_rip(out: &mut Vec<u8>, disp: i32) -> usize {
    out.extend_from_slice(&[0xFF, modrm(0b00, 2, 0b101)]);
    out.extend_from_slice(&disp.to_le_bytes());
    6
}

/// Encoded length of the branch template the generator will use for `kind`,
/// given whether the relative displacement fits in 8 bits.
///
/// The generator needs lengths *before* targets are resolved, so it always
/// reserves the rel32 form for direct jumps/calls (targets may be far).
#[must_use]
pub fn branch_template_len(kind: BranchKind) -> usize {
    match kind {
        BranchKind::DirectCond => 6,
        BranchKind::DirectUncond => 5,
        BranchKind::Call => 5,
        BranchKind::Return => 1,
        BranchKind::IndirectJmp => 2,
        BranchKind::IndirectCall => 2,
    }
}

// ---------------------------------------------------------------------------
// Non-branch templates
// ---------------------------------------------------------------------------

/// Emit a canonical multi-byte `NOP` of exactly `len` bytes (1–15).
///
/// Uses the recommended Intel long-NOP encodings, extended with `66` prefixes
/// beyond 9 bytes.
///
/// # Panics
///
/// Panics if `len` is 0 or greater than 15.
pub fn nop_exact(out: &mut Vec<u8>, len: usize) -> usize {
    assert!((1..=15).contains(&len), "nop length {len} out of range");
    const CORE: [&[u8]; 9] = [
        &[0x90],
        &[0x66, 0x90],
        &[0x0F, 0x1F, 0x00],
        &[0x0F, 0x1F, 0x40, 0x00],
        &[0x0F, 0x1F, 0x44, 0x00, 0x00],
        &[0x66, 0x0F, 0x1F, 0x44, 0x00, 0x00],
        &[0x0F, 0x1F, 0x80, 0x00, 0x00, 0x00, 0x00],
        &[0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00],
        &[0x66, 0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00],
    ];
    if len <= 9 {
        out.extend_from_slice(CORE[len - 1]);
    } else {
        for _ in 0..len - 9 {
            out.push(0x66);
        }
        out.extend_from_slice(CORE[8]);
    }
    len
}

/// Emit one realistic non-branch instruction chosen by `selector`.
///
/// The selector deterministically picks a template and fills register and
/// immediate fields from its bits, so the same selector always produces the
/// same bytes. Returns the encoded length (1–10 bytes across the template
/// set). This is how the workload generator gets diverse, genuinely
/// variable-length code without depending on an RNG inside this crate.
pub fn emit_nonbranch(out: &mut Vec<u8>, selector: u64) -> usize {
    let r1 = Reg::ALL[(selector >> 8) as usize % 8];
    let r2 = Reg::ALL[(selector >> 16) as usize % 8];
    let imm8 = (selector >> 24) as u8;
    let imm32 = (selector >> 24) as u32;
    let start = out.len();
    match selector % 20 {
        // push r64 (1B)
        0 => out.push(0x50 | r1.idx()),
        // pop r64 (1B)
        1 => out.push(0x58 | r1.idx()),
        // xor r32, r32 (2B)
        2 => out.extend_from_slice(&[0x31, modrm(0b11, r1.idx(), r2.idx())]),
        // mov r32, r32 (2B)
        3 => out.extend_from_slice(&[0x89, modrm(0b11, r1.idx(), r2.idx())]),
        // add r64, r64 (3B)
        4 => out.extend_from_slice(&[0x48, 0x01, modrm(0b11, r1.idx(), r2.idx())]),
        // test r64, r64 (3B)
        5 => out.extend_from_slice(&[0x48, 0x85, modrm(0b11, r1.idx(), r2.idx())]),
        // add r64, imm8 (4B)
        6 => out.extend_from_slice(&[0x48, 0x83, modrm(0b11, 0, r1.idx()), imm8]),
        // mov r32, imm32 (5B)
        7 => {
            out.push(0xB8 | r1.idx());
            out.extend_from_slice(&imm32.to_le_bytes());
        }
        // mov r64, [r64+disp8] (4B); avoid rm=100/101 special forms
        8 => {
            let base = if matches!(r2, Reg::Rsp | Reg::Rbp) {
                Reg::Rbx
            } else {
                r2
            };
            out.extend_from_slice(&[0x48, 0x8B, modrm(0b01, r1.idx(), base.idx()), imm8]);
        }
        // mov [r64+disp8], r64 (4B)
        9 => {
            let base = if matches!(r2, Reg::Rsp | Reg::Rbp) {
                Reg::Rsi
            } else {
                r2
            };
            out.extend_from_slice(&[0x48, 0x89, modrm(0b01, r1.idx(), base.idx()), imm8]);
        }
        // lea r64, [RIP+disp32] (7B)
        10 => {
            out.extend_from_slice(&[0x48, 0x8D, modrm(0b00, r1.idx(), 0b101)]);
            out.extend_from_slice(&imm32.to_le_bytes());
        }
        // cmp r64, imm32 (7B)
        11 => {
            out.extend_from_slice(&[0x48, 0x81, modrm(0b11, 7, r1.idx())]);
            out.extend_from_slice(&imm32.to_le_bytes());
        }
        // movzx r32, r/m8 (3B)
        12 => out.extend_from_slice(&[0x0F, 0xB6, modrm(0b11, r1.idx(), r2.idx())]),
        // imul r64, r64 (4B)
        13 => out.extend_from_slice(&[0x48, 0x0F, 0xAF, modrm(0b11, r1.idx(), r2.idx())]),
        // mov r64, imm64 (10B)
        14 => {
            out.extend_from_slice(&[0x48, 0xB8 | r1.idx()]);
            out.extend_from_slice(&(u64::from(imm32) | (selector << 32)).to_le_bytes());
        }
        // movups xmm, xmm (3B SSE)
        15 => out.extend_from_slice(&[0x0F, 0x10, modrm(0b11, r1.idx(), r2.idx())]),
        // mov r64, [r64 + r64*4 + disp8] via SIB (5B)
        16 => {
            let index = if r2 == Reg::Rsp { Reg::Rcx } else { r2 };
            out.extend_from_slice(&[
                0x48,
                0x8B,
                modrm(0b01, r1.idx(), 0b100),
                (0b10 << 6) | ((index.idx() & 7) << 3) | Reg::Rbx.idx(),
                imm8,
            ]);
        }
        // test al, imm8 (2B)
        17 => out.extend_from_slice(&[0xA8, imm8]),
        // sub r32, imm8 (3B)
        18 => out.extend_from_slice(&[0x83, modrm(0b11, 5, r1.idx()), imm8]),
        // nop (1B)
        _ => out.push(0x90),
    }
    out.len() - start
}

/// Number of distinct non-branch templates addressable by
/// [`emit_nonbranch`]'s selector.
pub const NONBRANCH_TEMPLATES: u64 = 20;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::kind::InsnKind;

    #[test]
    fn nop_exact_every_length_roundtrips() {
        for len in 1..=15 {
            let mut buf = Vec::new();
            assert_eq!(nop_exact(&mut buf, len), len);
            let d = decode(&buf).unwrap();
            assert_eq!(d.len as usize, len, "nop of length {len}");
            assert_eq!(d.kind, InsnKind::Other);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nop_exact_rejects_zero() {
        nop_exact(&mut Vec::new(), 0);
    }

    #[test]
    fn branch_templates_decode_to_declared_lengths() {
        let cases: Vec<(Vec<u8>, BranchKind)> = {
            let mut v = Vec::new();
            let mut b = Vec::new();
            jmp_rel32(&mut b, 64);
            v.push((std::mem::take(&mut b), BranchKind::DirectUncond));
            jcc_rel32(&mut b, 4, -32);
            v.push((std::mem::take(&mut b), BranchKind::DirectCond));
            call_rel32(&mut b, 1000);
            v.push((std::mem::take(&mut b), BranchKind::Call));
            ret(&mut b);
            v.push((std::mem::take(&mut b), BranchKind::Return));
            jmp_reg(&mut b, Reg::Rdx);
            v.push((std::mem::take(&mut b), BranchKind::IndirectJmp));
            call_mem_rip(&mut b, 0x40);
            v.push((std::mem::take(&mut b), BranchKind::IndirectCall));
            v
        };
        for (bytes, kind) in cases {
            let d = decode(&bytes).unwrap();
            assert_eq!(d.len as usize, bytes.len());
            assert_eq!(d.kind.branch().map(|b| b.kind), Some(kind));
        }
    }

    #[test]
    fn template_len_matches_emitters() {
        let mut b = Vec::new();
        assert_eq!(
            jcc_rel32(&mut b, 0, 0),
            branch_template_len(BranchKind::DirectCond)
        );
        b.clear();
        assert_eq!(
            jmp_rel32(&mut b, 0),
            branch_template_len(BranchKind::DirectUncond)
        );
        b.clear();
        assert_eq!(call_rel32(&mut b, 0), branch_template_len(BranchKind::Call));
        b.clear();
        assert_eq!(ret(&mut b), branch_template_len(BranchKind::Return));
        b.clear();
        assert_eq!(
            jmp_reg(&mut b, Reg::Rax),
            branch_template_len(BranchKind::IndirectJmp)
        );
        b.clear();
        assert_eq!(
            call_reg(&mut b, Reg::Rax),
            branch_template_len(BranchKind::IndirectCall)
        );
    }

    #[test]
    fn nonbranch_templates_all_decode_as_nonbranch() {
        for t in 0..NONBRANCH_TEMPLATES {
            for salt in [0u64, 0x0123_4567_89AB_CDEF, u64::MAX - 7] {
                let selector = t.wrapping_add(salt.wrapping_mul(NONBRANCH_TEMPLATES));
                // Force the template id while varying the field bits.
                let selector = selector - (selector % NONBRANCH_TEMPLATES) + t;
                let mut buf = Vec::new();
                let len = emit_nonbranch(&mut buf, selector);
                assert_eq!(len, buf.len());
                let d = decode(&buf)
                    .unwrap_or_else(|e| panic!("template {t} salt {salt:#x}: {e} ({buf:02x?})"));
                assert_eq!(d.len as usize, len, "template {t} ({buf:02x?})");
                assert_eq!(d.kind, InsnKind::Other, "template {t} ({buf:02x?})");
            }
        }
    }
}
