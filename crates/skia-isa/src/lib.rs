//! # skia-isa — an x86-64 subset encoder and length decoder
//!
//! This crate is the instruction-set substrate of the Skia reproduction
//! (*"Exposing Shadow Branches"*, ASPLOS 2025). Skia's Shadow Branch Decoder
//! operates on **raw instruction bytes** in cache lines, so the reproduction
//! needs a genuine variable-length encoding with all the ambiguity of x86:
//! decoding the same bytes from different start offsets must be able to yield
//! different — sometimes both valid — instruction streams (paper Fig. 8).
//!
//! The crate provides:
//!
//! * [`decode::decode`] — a single-instruction length decoder for 64-bit mode
//!   covering legacy prefixes, REX, the one-byte and `0F` two-byte opcode maps
//!   (plus generic `0F 38`/`0F 3A` handling), ModRM/SIB/displacement and all
//!   immediate forms (1–15 bytes total).
//! * [`encode`] — instruction templates used by the synthetic workload
//!   generator to emit realistic code bytes, including every branch form the
//!   paper cares about.
//! * [`BranchKind`] — the paper's branch taxonomy (§2.4): `DirectCond`,
//!   `DirectUncond`, `Call`, `Return`, `IndirectJmp`, `IndirectCall`.
//!
//! ## Subset boundaries
//!
//! VEX/EVEX (`C4`/`C5`/`62`) encodings, far control transfers and a few legacy
//! opcodes invalid in 64-bit mode are treated as *undecodable*; the decoder
//! reports [`DecodeError::InvalidOpcode`] for them, which the Shadow Branch
//! Decoder interprets exactly like the paper's "cannot decode a valid
//! instruction from this byte" case (the `0` entries of Fig. 9).
//!
//! ## Example
//!
//! ```rust
//! use skia_isa::{decode, encode, BranchKind, InsnKind};
//!
//! let mut code = Vec::new();
//! encode::jmp_rel32(&mut code, 0x1234);
//! let d = decode::decode(&code).expect("valid encoding");
//! assert_eq!(d.len as usize, code.len());
//! match d.kind {
//!     InsnKind::Branch(b) => {
//!         assert_eq!(b.kind, BranchKind::DirectUncond);
//!         assert_eq!(b.rel, Some(0x1234));
//!     }
//!     _ => unreachable!("jmp must decode as a branch"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decode;
pub mod disasm;
pub mod encode;
mod kind;

pub use decode::{decode, DecodeError, Decoded};
pub use disasm::{disasm_one, disasm_range, DisasmInsn};
pub use kind::{BranchInfo, BranchKind, InsnKind};

/// Size of an instruction cache line in bytes, used throughout the project.
///
/// The paper models 64-byte lines everywhere (Table 1).
pub const CACHE_LINE_BYTES: usize = 64;

/// Maximum length of a legal x86-64 instruction in bytes.
pub const MAX_INSN_LEN: usize = 15;
