//! Single-instruction x86-64 length decoder.
//!
//! Decodes exactly one instruction from the start of a byte slice, returning
//! its total length and a coarse classification. This is the primitive both
//! the front-end decode stage and Skia's Shadow Branch Decoder are built on:
//! the SBD's *Index Computation* phase (paper §3.2.1) repeatedly calls
//! [`decode`] at every byte offset of a cache line to build the `Length`
//! vector, and its *Path Validation* phase re-decodes along candidate paths.
//!
//! The decoder implements 64-bit mode rules: legacy prefix groups, REX,
//! the one-byte map, the `0F` two-byte map, generic `0F 38`/`0F 3A` three-byte
//! handling, ModRM/SIB addressing forms (including RIP-relative), and the
//! immediate-size rules (`imm8/16/32/64`, operand-size override, the `moffs`
//! forms, and the `F6`/`F7` group-3 ModRM-dependent immediates).

use crate::kind::{BranchInfo, BranchKind, InsnKind};
use crate::MAX_INSN_LEN;

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeError {
    /// The opcode (or opcode + ModRM.reg combination) is not a valid
    /// instruction in 64-bit mode, or is outside the supported subset
    /// (VEX/EVEX, far transfers, …).
    InvalidOpcode,
    /// The slice ended before the instruction was complete. Contains the
    /// number of bytes that were available.
    Truncated(usize),
    /// Prefixes pushed the total length past the 15-byte architectural limit.
    TooLong,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::InvalidOpcode => write!(f, "invalid or unsupported opcode"),
            DecodeError::Truncated(n) => {
                write!(f, "instruction truncated after {n} available bytes")
            }
            DecodeError::TooLong => write!(f, "instruction exceeds 15-byte limit"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A successfully decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decoded {
    /// Total instruction length in bytes (1–15).
    pub len: u8,
    /// Coarse classification.
    pub kind: InsnKind,
}

impl Decoded {
    /// The branch target for direct branches, given the instruction address.
    #[must_use]
    pub fn branch_target(&self, pc: u64) -> Option<u64> {
        self.kind.branch().and_then(|b| b.target(pc, self.len))
    }
}

/// Immediate-operand shape attached to an opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Imm {
    /// No immediate.
    None,
    /// 1-byte immediate.
    B1,
    /// 2-byte immediate (`RET imm16`, …).
    B2,
    /// `ENTER imm16, imm8`.
    B3,
    /// 16 or 32 bits depending on the operand-size override (`immz`).
    Bz,
    /// 16/32/64 bits: `MOV r, imm` (`B8+r`) widens to 64 with REX.W.
    Bv,
    /// `moffs` forms (`A0`–`A3`): address-size-wide offset (8 bytes in 64-bit
    /// mode, 4 with the `67` override).
    Moffs,
    /// Group 3 (`F6`/`F7`): immediate present only for ModRM.reg ∈ {0, 1}.
    Grp3,
}

/// Decoded prefix state accumulated before the opcode.
#[derive(Debug, Default, Clone, Copy)]
struct Prefixes {
    operand_size: bool, // 66
    address_size: bool, // 67
    rex_w: bool,
}

/// Per-opcode attributes for the supported maps.
#[derive(Debug, Clone, Copy)]
struct Attr {
    modrm: bool,
    imm: Imm,
    branch: Option<BranchKind>,
}

impl Attr {
    const fn plain(modrm: bool, imm: Imm) -> Self {
        Attr {
            modrm,
            imm,
            branch: None,
        }
    }

    const fn branch(kind: BranchKind, imm: Imm) -> Self {
        Attr {
            modrm: false,
            imm,
            branch: Some(kind),
        }
    }
}

/// One-byte opcode map (64-bit mode). `None` = invalid/unsupported.
fn one_byte_attr(op: u8) -> Option<Attr> {
    use Imm::*;
    let a = match op {
        // ADD/OR/ADC/SBB/AND/SUB/XOR/CMP blocks: 8 groups of 6 opcodes.
        0x00..=0x05
        | 0x08..=0x0D
        | 0x10..=0x15
        | 0x18..=0x1D
        | 0x20..=0x25
        | 0x28..=0x2D
        | 0x30..=0x35
        | 0x38..=0x3D => {
            let low = op & 0x07;
            match low {
                0x00..=0x03 => Attr::plain(true, None),
                0x04 => Attr::plain(false, B1),
                0x05 => Attr::plain(false, Bz),
                _ => return Option::None,
            }
        }
        // 0x0F handled by the caller (two-byte escape).
        // MOVSXD
        0x63 => Attr::plain(true, None),
        // PUSH/POP r64
        0x50..=0x5F => Attr::plain(false, None),
        // PUSH immz / IMUL r,r/m,immz / PUSH imm8 / IMUL r,r/m,imm8
        0x68 => Attr::plain(false, Bz),
        0x69 => Attr::plain(true, Bz),
        0x6A => Attr::plain(false, B1),
        0x6B => Attr::plain(true, B1),
        // INS/OUTS string ops
        0x6C..=0x6F => Attr::plain(false, None),
        // Jcc rel8
        0x70..=0x7F => Attr::branch(BranchKind::DirectCond, B1),
        // Group 1: ALU r/m, imm
        0x80 => Attr::plain(true, B1),
        0x81 => Attr::plain(true, Bz),
        0x83 => Attr::plain(true, B1),
        // TEST / XCHG r/m,r
        0x84..=0x87 => Attr::plain(true, None),
        // MOV r/m,r forms; MOV Sreg; LEA; POP r/m
        0x88..=0x8E => Attr::plain(true, None),
        0x8F => Attr::plain(true, None),
        // XCHG rAX,r / NOP
        0x90..=0x97 => Attr::plain(false, None),
        // CWDE/CDQ/WAIT/PUSHF/POPF/SAHF/LAHF
        0x98 | 0x99 | 0x9B..=0x9F => Attr::plain(false, None),
        // MOV moffs forms
        0xA0..=0xA3 => Attr::plain(false, Moffs),
        // MOVS/CMPS
        0xA4..=0xA7 => Attr::plain(false, None),
        // TEST AL/eAX, imm
        0xA8 => Attr::plain(false, B1),
        0xA9 => Attr::plain(false, Bz),
        // STOS/LODS/SCAS
        0xAA..=0xAF => Attr::plain(false, None),
        // MOV r8, imm8
        0xB0..=0xB7 => Attr::plain(false, B1),
        // MOV r, immv (REX.W -> imm64)
        0xB8..=0xBF => Attr::plain(false, Bv),
        // Group 2 shifts with imm8
        0xC0 | 0xC1 => Attr::plain(true, B1),
        // Near returns
        0xC2 => Attr::branch(BranchKind::Return, B2),
        0xC3 => Attr::branch(BranchKind::Return, None),
        // Group 11 MOV r/m, imm
        0xC6 => Attr::plain(true, B1),
        0xC7 => Attr::plain(true, Bz),
        // ENTER / LEAVE
        0xC8 => Attr::plain(false, B3),
        0xC9 => Attr::plain(false, None),
        // INT3 / INT imm8
        0xCC => Attr::plain(false, None),
        0xCD => Attr::plain(false, B1),
        // Group 2 shifts by 1/CL
        0xD0..=0xD3 => Attr::plain(true, None),
        // XLAT
        0xD7 => Attr::plain(false, None),
        // x87 escape block: all take ModRM
        0xD8..=0xDF => Attr::plain(true, None),
        // LOOPNE/LOOPE/LOOP/JrCXZ rel8
        0xE0..=0xE3 => Attr::branch(BranchKind::DirectCond, B1),
        // IN/OUT imm8
        0xE4..=0xE7 => Attr::plain(false, B1),
        // CALL rel32 / JMP rel32 / JMP rel8
        0xE8 => Attr::branch(BranchKind::Call, Bz),
        0xE9 => Attr::branch(BranchKind::DirectUncond, Bz),
        0xEB => Attr::branch(BranchKind::DirectUncond, B1),
        // IN/OUT via DX
        0xEC..=0xEF => Attr::plain(false, None),
        // INT1 / HLT / CMC
        0xF1 | 0xF4 | 0xF5 => Attr::plain(false, None),
        // Group 3: TEST/NOT/NEG/MUL/IMUL/DIV/IDIV — imm depends on /reg
        0xF6 | 0xF7 => Attr::plain(true, Grp3),
        // CLC..STD
        0xF8..=0xFD => Attr::plain(false, None),
        // Group 4 INC/DEC r/m8
        0xFE => Attr::plain(true, None),
        // Group 5: INC/DEC/CALL/JMP/PUSH r/m — branch kind resolved by /reg
        0xFF => Attr::plain(true, None),
        _ => return Option::None,
    };
    Some(a)
}

/// Two-byte (`0F xx`) opcode map subset. `None` = invalid/unsupported.
fn two_byte_attr(op: u8) -> Option<Attr> {
    use Imm::*;
    let a = match op {
        // SYSCALL / SYSRET
        0x05 | 0x07 => Attr::plain(false, None),
        // Long NOP / hintable NOP space
        0x0D | 0x18..=0x1F => Attr::plain(true, None),
        // SSE moves and conversions (modrm, no immediate)
        0x10 | 0x11 | 0x12 | 0x13 | 0x14 | 0x15 | 0x16 | 0x17 | 0x28 | 0x29 | 0x2A | 0x2B
        | 0x2C | 0x2D | 0x2E | 0x2F => Attr::plain(true, None),
        // RDTSC / RDMSR / CPUID family
        0x30..=0x33 | 0xA2 => Attr::plain(false, None),
        // CMOVcc
        0x40..=0x4F => Attr::plain(true, None),
        // SSE arithmetic block
        0x51..=0x6F => Attr::plain(true, None),
        // PSHUF* take imm8
        0x70 => Attr::plain(true, B1),
        // Group 12/13/14 shifts with imm8
        0x71..=0x73 => Attr::plain(true, B1),
        // PCMPEQ / EMMS-adjacent / MOVD/MOVQ stores
        0x74..=0x77 | 0x7E | 0x7F => Attr::plain(true, None),
        // Jcc rel32
        0x80..=0x8F => Attr::branch(BranchKind::DirectCond, Bz),
        // SETcc
        0x90..=0x9F => Attr::plain(true, None),
        // PUSH/POP FS/GS, CPUID handled above
        0xA0 | 0xA1 | 0xA8 | 0xA9 => Attr::plain(false, None),
        // BT / SHLD
        0xA3 => Attr::plain(true, None),
        0xA4 => Attr::plain(true, B1),
        0xA5 => Attr::plain(true, None),
        // BTS / SHRD
        0xAB => Attr::plain(true, None),
        0xAC => Attr::plain(true, B1),
        0xAD => Attr::plain(true, None),
        // Group 15 (fences, XSAVE area ops)
        0xAE => Attr::plain(true, None),
        // IMUL r, r/m
        0xAF => Attr::plain(true, None),
        // CMPXCHG
        0xB0 | 0xB1 => Attr::plain(true, None),
        // MOVZX / MOVSX
        0xB6 | 0xB7 | 0xBE | 0xBF => Attr::plain(true, None),
        // POPCNT/TZCNT/LZCNT share BSF/BSR encodings with F3 prefixes
        0xB8 | 0xBC | 0xBD => Attr::plain(true, None),
        // Group 8 BT r/m, imm8
        0xBA => Attr::plain(true, B1),
        // BTC
        0xBB => Attr::plain(true, None),
        // XADD
        0xC0 | 0xC1 => Attr::plain(true, None),
        // CMPPS xmm, xmm/m, imm8
        0xC2 => Attr::plain(true, B1),
        // MOVNTI
        0xC3 => Attr::plain(true, None),
        // PINSRW / PEXTRW / SHUFPS: imm8
        0xC4..=0xC6 => Attr::plain(true, B1),
        // Group 9 (CMPXCHG8B/16B)
        0xC7 => Attr::plain(true, None),
        // BSWAP r
        0xC8..=0xCF => Attr::plain(false, None),
        // Wide MMX/SSE integer op block
        0xD1..=0xD5
        | 0xD6
        | 0xD8..=0xDF
        | 0xE0..=0xE5
        | 0xE7..=0xEF
        | 0xF1..=0xF7
        | 0xF8..=0xFE => Attr::plain(true, None),
        _ => return Option::None,
    };
    Some(a)
}

/// Is this byte a legacy prefix in 64-bit mode?
fn legacy_prefix(b: u8) -> bool {
    matches!(
        b,
        0xF0 | 0xF2 | 0xF3 | 0x2E | 0x36 | 0x3E | 0x26 | 0x64 | 0x65 | 0x66 | 0x67
    )
}

/// Decode a single instruction from the start of `bytes`.
///
/// `bytes` need not be exactly one instruction long; decoding stops at the
/// instruction's natural end. At most [`MAX_INSN_LEN`] bytes are examined.
///
/// # Errors
///
/// * [`DecodeError::InvalidOpcode`] — not a valid 64-bit-mode instruction, or
///   outside the supported subset (see crate docs).
/// * [`DecodeError::Truncated`] — `bytes` ended mid-instruction. Callers that
///   decode up to a cache-line boundary treat this as "instruction continues
///   on the next line".
/// * [`DecodeError::TooLong`] — prefix run pushed the length past 15 bytes.
pub fn decode(bytes: &[u8]) -> Result<Decoded, DecodeError> {
    let mut pos = 0usize;
    let mut pfx = Prefixes::default();

    // Prefix scan: legacy prefixes and REX. A REX byte only takes effect when
    // it is the byte immediately before the opcode; earlier REX bytes are
    // consumed but ignored (matching hardware behaviour).
    loop {
        if pos >= MAX_INSN_LEN {
            return Err(DecodeError::TooLong);
        }
        let b = *bytes.get(pos).ok_or(DecodeError::Truncated(bytes.len()))?;
        if legacy_prefix(b) {
            match b {
                0x66 => pfx.operand_size = true,
                0x67 => pfx.address_size = true,
                _ => {}
            }
            pfx.rex_w = false; // any prefix after REX voids it
            pos += 1;
        } else if (0x40..=0x4F).contains(&b) {
            pfx.rex_w = b & 0x08 != 0;
            pos += 1;
        } else {
            break;
        }
    }

    // Opcode.
    let op0 = *bytes.get(pos).ok_or(DecodeError::Truncated(bytes.len()))?;
    pos += 1;

    let (attr, escape_3a) = if op0 == 0x0F {
        let op1 = *bytes.get(pos).ok_or(DecodeError::Truncated(bytes.len()))?;
        pos += 1;
        match op1 {
            0x38 => {
                // Three-byte map 0F 38: ModRM, no immediate (subset-generic).
                let _op2 = *bytes.get(pos).ok_or(DecodeError::Truncated(bytes.len()))?;
                pos += 1;
                (Attr::plain(true, Imm::None), false)
            }
            0x3A => {
                // Three-byte map 0F 3A: ModRM + imm8 (subset-generic).
                let _op2 = *bytes.get(pos).ok_or(DecodeError::Truncated(bytes.len()))?;
                pos += 1;
                (Attr::plain(true, Imm::B1), true)
            }
            _ => (two_byte_attr(op1).ok_or(DecodeError::InvalidOpcode)?, false),
        }
    } else {
        (one_byte_attr(op0).ok_or(DecodeError::InvalidOpcode)?, false)
    };
    let _ = escape_3a;

    let mut branch = attr.branch;
    let mut imm = attr.imm;

    // ModRM / SIB / displacement.
    let mut modrm_reg = 0u8;
    if attr.modrm {
        let modrm = *bytes.get(pos).ok_or(DecodeError::Truncated(bytes.len()))?;
        pos += 1;
        let md = modrm >> 6;
        let rm = modrm & 0x07;
        modrm_reg = (modrm >> 3) & 0x07;

        // Group 4 (FE): only /0 and /1 are defined.
        if op0 == 0xFE && modrm_reg > 1 {
            return Err(DecodeError::InvalidOpcode);
        }
        // Group 5 (FF): /7 undefined; /2 /3 call, /4 /5 jmp.
        if op0 == 0xFF {
            match modrm_reg {
                2 => branch = Some(BranchKind::IndirectCall),
                3 => {
                    // Far call through memory: memory form only.
                    if md == 0b11 {
                        return Err(DecodeError::InvalidOpcode);
                    }
                    branch = Some(BranchKind::IndirectCall);
                }
                4 => branch = Some(BranchKind::IndirectJmp),
                5 => {
                    if md == 0b11 {
                        return Err(DecodeError::InvalidOpcode);
                    }
                    branch = Some(BranchKind::IndirectJmp);
                }
                7 => return Err(DecodeError::InvalidOpcode),
                _ => {}
            }
        }
        // Group 3 (F6/F7): /0 and /1 carry an immediate, the rest do not.
        if imm == Imm::Grp3 {
            imm = if modrm_reg <= 1 {
                if op0 == 0xF6 {
                    Imm::B1
                } else {
                    Imm::Bz
                }
            } else {
                Imm::None
            };
        }

        if md != 0b11 {
            let mut disp = 0usize;
            if rm == 0b100 {
                // SIB byte.
                let sib = *bytes.get(pos).ok_or(DecodeError::Truncated(bytes.len()))?;
                pos += 1;
                let base = sib & 0x07;
                if md == 0b00 && base == 0b101 {
                    disp = 4;
                }
            } else if md == 0b00 && rm == 0b101 {
                // RIP-relative.
                disp = 4;
            }
            match md {
                0b01 => disp = 1,
                0b10 => disp = 4,
                _ => {}
            }
            if bytes.len() < pos + disp {
                return Err(DecodeError::Truncated(bytes.len()));
            }
            pos += disp;
        }
    }
    let _ = modrm_reg;

    // Immediate.
    let imm_len = match imm {
        Imm::None => 0,
        Imm::B1 => 1,
        Imm::B2 => 2,
        Imm::B3 => 3,
        Imm::Bz => {
            // Near branches ignore the operand-size override in 64-bit mode
            // (Intel behaviour): rel32 always.
            if branch.is_some() {
                4
            } else if pfx.operand_size {
                2
            } else {
                4
            }
        }
        Imm::Bv => {
            if pfx.rex_w {
                8
            } else if pfx.operand_size {
                2
            } else {
                4
            }
        }
        Imm::Moffs => {
            if pfx.address_size {
                4
            } else {
                8
            }
        }
        Imm::Grp3 => unreachable!("resolved during ModRM handling"),
    };
    if bytes.len() < pos + imm_len {
        return Err(DecodeError::Truncated(bytes.len()));
    }

    // Capture the PC-relative displacement for direct branches.
    let rel = match (branch, imm_len) {
        (Some(k), 1) if k.is_direct() => Some(i32::from(bytes[pos] as i8)),
        (Some(k), 4) if k.is_direct() => {
            let d =
                i32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
            Some(d)
        }
        _ => None,
    };
    pos += imm_len;

    if pos > MAX_INSN_LEN {
        return Err(DecodeError::TooLong);
    }

    let kind = match branch {
        Some(kind) => InsnKind::Branch(BranchInfo { kind, rel }),
        None => InsnKind::Other,
    };
    Ok(Decoded {
        len: pos as u8,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn len_of(bytes: &[u8]) -> u8 {
        decode(bytes).unwrap().len
    }

    fn kind_of(bytes: &[u8]) -> BranchKind {
        match decode(bytes).unwrap().kind {
            InsnKind::Branch(b) => b.kind,
            InsnKind::Other => panic!("expected branch in {bytes:02x?}"),
        }
    }

    #[test]
    fn one_byte_instructions() {
        assert_eq!(len_of(&[0x90]), 1); // nop
        assert_eq!(len_of(&[0xC3]), 1); // ret
        assert_eq!(len_of(&[0x50]), 1); // push rax
        assert_eq!(len_of(&[0xF9]), 1); // stc — Fig. 9's single-byte example
        assert_eq!(len_of(&[0x45, 0x00, 0xC0]), 3); // REX.RB + add r/m8,r8 + modrm
    }

    #[test]
    fn rel_branches() {
        // jmp rel32: e9 f9 03 00 00 — the Fig. 9 example.
        let d = decode(&[0xE9, 0xF9, 0x03, 0x00, 0x00]).unwrap();
        assert_eq!(d.len, 5);
        assert_eq!(
            d.kind,
            InsnKind::Branch(BranchInfo {
                kind: BranchKind::DirectUncond,
                rel: Some(0x3F9)
            })
        );
        assert_eq!(d.branch_target(0x1000), Some(0x1000 + 5 + 0x3F9));

        assert_eq!(kind_of(&[0xEB, 0x10]), BranchKind::DirectUncond);
        assert_eq!(kind_of(&[0x74, 0xFE]), BranchKind::DirectCond);
        assert_eq!(kind_of(&[0xE8, 0, 0, 0, 0]), BranchKind::Call);
        assert_eq!(kind_of(&[0xC3]), BranchKind::Return);
        assert_eq!(kind_of(&[0xC2, 0x08, 0x00]), BranchKind::Return);
        // 0F 84 jcc rel32
        assert_eq!(kind_of(&[0x0F, 0x84, 1, 0, 0, 0]), BranchKind::DirectCond);
    }

    #[test]
    fn negative_rel8_sign_extends() {
        let d = decode(&[0xEB, 0xFE]).unwrap(); // jmp -2 (self)
        assert_eq!(d.branch_target(0x2000), Some(0x2000));
    }

    #[test]
    fn indirect_branches_via_group5() {
        // ff e0 = jmp rax; ff d0 = call rax; ff 25 disp32 = jmp [rip+disp]
        assert_eq!(kind_of(&[0xFF, 0xE0]), BranchKind::IndirectJmp);
        assert_eq!(kind_of(&[0xFF, 0xD0]), BranchKind::IndirectCall);
        let d = decode(&[0xFF, 0x25, 0x10, 0x00, 0x00, 0x00]).unwrap();
        assert_eq!(d.len, 6);
        assert_eq!(
            d.kind.branch().map(|b| b.kind),
            Some(BranchKind::IndirectJmp)
        );
        // Indirect targets are not decodable from bytes.
        assert_eq!(d.branch_target(0), None);
        // ff /7 is undefined
        assert_eq!(decode(&[0xFF, 0xF8]), Err(DecodeError::InvalidOpcode));
    }

    #[test]
    fn modrm_sib_disp_forms() {
        // mov eax, [rbx] : 8b 03
        assert_eq!(len_of(&[0x8B, 0x03]), 2);
        // mov eax, [rbx+0x10] : 8b 43 10
        assert_eq!(len_of(&[0x8B, 0x43, 0x10]), 3);
        // mov eax, [rbx+0x12345678] : 8b 83 78 56 34 12
        assert_eq!(len_of(&[0x8B, 0x83, 0x78, 0x56, 0x34, 0x12]), 6);
        // mov eax, [rbx+rcx*4] : 8b 04 8b
        assert_eq!(len_of(&[0x8B, 0x04, 0x8B]), 3);
        // mov eax, [rcx*4 + disp32] (mod=00, rm=100, base=101): 8b 04 8d xx xx xx xx
        assert_eq!(len_of(&[0x8B, 0x04, 0x8D, 0, 0, 0, 0]), 7);
        // RIP-relative: 8b 05 disp32
        assert_eq!(len_of(&[0x8B, 0x05, 0, 0, 0, 0]), 6);
        // SIB with mod=01: 8b 44 8b 10
        assert_eq!(len_of(&[0x8B, 0x44, 0x8B, 0x10]), 4);
    }

    #[test]
    fn immediate_sizes() {
        // add eax, imm32: 05 xx xx xx xx
        assert_eq!(len_of(&[0x05, 1, 2, 3, 4]), 5);
        // 66 05 xx xx — operand-size override shrinks immz to 16 bits
        assert_eq!(len_of(&[0x66, 0x05, 1, 2]), 4);
        // mov rax, imm64: 48 b8 + 8 bytes
        assert_eq!(len_of(&[0x48, 0xB8, 0, 0, 0, 0, 0, 0, 0, 0]), 10);
        // mov eax, imm32: b8 + 4
        assert_eq!(len_of(&[0xB8, 0, 0, 0, 0]), 5);
        // enter imm16, imm8
        assert_eq!(len_of(&[0xC8, 0x10, 0x00, 0x00]), 4);
        // moffs: a1 + 8-byte address
        assert_eq!(len_of(&[0xA1, 0, 0, 0, 0, 0, 0, 0, 0]), 9);
        // 67 a1 + 4-byte address
        assert_eq!(len_of(&[0x67, 0xA1, 0, 0, 0, 0]), 6);
    }

    #[test]
    fn group3_immediates_depend_on_reg_field() {
        // f7 /0 = test r/m32, imm32 → modrm + imm32
        assert_eq!(len_of(&[0xF7, 0xC0, 1, 2, 3, 4]), 6);
        // f7 /3 = neg r/m32 → no immediate
        assert_eq!(len_of(&[0xF7, 0xD8]), 2);
        // f6 /0 = test r/m8, imm8
        assert_eq!(len_of(&[0xF6, 0xC0, 0x7F]), 3);
    }

    #[test]
    fn near_branch_ignores_operand_size_override() {
        // 66 e9: still rel32 on Intel in 64-bit mode.
        assert_eq!(len_of(&[0x66, 0xE9, 0, 0, 0, 0]), 6);
    }

    #[test]
    fn invalid_in_64bit_mode() {
        for op in [
            0x06u8, 0x07, 0x0E, 0x16, 0x17, 0x27, 0x37, 0x60, 0x61, 0x9A, 0xC4, 0xC5, 0xD4, 0xEA,
        ] {
            assert_eq!(
                decode(&[op, 0, 0, 0, 0, 0, 0]),
                Err(DecodeError::InvalidOpcode),
                "opcode {op:#x} should be rejected"
            );
        }
    }

    #[test]
    fn truncation_reported() {
        assert_eq!(decode(&[]), Err(DecodeError::Truncated(0)));
        assert_eq!(decode(&[0xE9, 0x01]), Err(DecodeError::Truncated(2)));
        assert_eq!(decode(&[0x8B]), Err(DecodeError::Truncated(1)));
        assert_eq!(decode(&[0x8B, 0x05, 0, 0]), Err(DecodeError::Truncated(4)));
        assert_eq!(decode(&[0x0F]), Err(DecodeError::Truncated(1)));
    }

    #[test]
    fn prefix_run_hits_length_limit() {
        let bytes = [0x66u8; 16];
        assert_eq!(decode(&bytes), Err(DecodeError::TooLong));
        // 14 prefixes + one-byte opcode = 15 bytes: legal.
        let mut ok = vec![0x66u8; 14];
        ok.push(0x90);
        assert_eq!(len_of(&ok), 15);
    }

    #[test]
    fn max_length_instruction_truncates_at_line_boundary() {
        // 14 operand-size prefixes + NOP = the architectural 15-byte maximum.
        let mut insn = vec![0x66u8; 14];
        insn.push(0x90);
        assert_eq!(len_of(&insn), 15);
        // Start it 8 bytes before a 64-byte cache-line boundary: the in-line
        // slice holds only prefixes, and the decoder must report how many
        // bytes were available — the SBD treats that as "continues on the
        // next line" — rather than inventing a length.
        for cut in 1..insn.len() {
            assert_eq!(
                decode(&insn[..cut]),
                Err(DecodeError::Truncated(cut)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn truncated_slice_at_image_end_never_panics() {
        // Every proper prefix of a compound instruction (prefix + REX +
        // two-byte opcode + ModRM + imm8) — the shape of a slice at the very
        // end of a program image — reports Truncated with the exact number
        // of available bytes.
        let insn = [0x66, 0x48, 0x0F, 0xBA, 0xE0, 0x05]; // 66 REX.W bt rax, 5
        assert_eq!(len_of(&insn), 6);
        for cut in 0..insn.len() {
            assert_eq!(
                decode(&insn[..cut]),
                Err(DecodeError::Truncated(cut)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn rex_voided_by_following_prefix() {
        // 48 66 b8: REX.W then 66 — REX is dropped, so imm is 16-bit.
        assert_eq!(len_of(&[0x48, 0x66, 0xB8, 0, 0]), 5);
        // 66 48 b8: REX.W wins (it is adjacent to the opcode) → imm64.
        assert_eq!(len_of(&[0x66, 0x48, 0xB8, 0, 0, 0, 0, 0, 0, 0, 0]), 11);
    }

    #[test]
    fn figure8_ambiguity_reproduced() {
        // Paper Fig. 8: "31 C3" decodes as xor ebx,eax from byte 0, while
        // byte 1 alone decodes as ret. Both are valid instruction streams.
        let line = [0x31, 0xC3];
        let from0 = decode(&line).unwrap();
        assert_eq!(from0.len, 2);
        assert_eq!(from0.kind, InsnKind::Other);
        let from1 = decode(&line[1..]).unwrap();
        assert_eq!(from1.len, 1);
        assert_eq!(
            from1.kind.branch().map(|b| b.kind),
            Some(BranchKind::Return)
        );
    }

    #[test]
    fn three_byte_maps() {
        // 0f 38 xx r/m and 0f 3a xx r/m imm8 (generic subset handling)
        assert_eq!(len_of(&[0x0F, 0x38, 0x00, 0xC0]), 4);
        assert_eq!(len_of(&[0x0F, 0x3A, 0x0F, 0xC0, 0x04]), 5);
    }
}
