//! A small textual disassembler for the supported subset.
//!
//! Produces AT&T-free, Intel-ish mnemonics with enough operand detail to
//! debug shadow-decode paths and read generated code images. Exactness of
//! operand rendering is *not* a goal (the length decoder is the contract);
//! the disassembler never disagrees with [`crate::decode::decode`] about
//! lengths or branch classification — that invariant is property-tested.

use crate::decode::{decode, DecodeError, Decoded};
use crate::kind::{BranchKind, InsnKind};

/// One disassembled instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisasmInsn {
    /// Address of the first byte.
    pub pc: u64,
    /// Decoded metadata (length, classification).
    pub decoded: Decoded,
    /// Textual form, e.g. `"jmp 0x401020"` or `"mov r, imm32"`.
    pub text: String,
}

/// Registers for display.
const REG64: [&str; 8] = ["rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi"];

fn cc_name(cc: u8) -> &'static str {
    match cc & 0xF {
        0x0 => "o",
        0x1 => "no",
        0x2 => "b",
        0x3 => "ae",
        0x4 => "e",
        0x5 => "ne",
        0x6 => "be",
        0x7 => "a",
        0x8 => "s",
        0x9 => "ns",
        0xA => "p",
        0xB => "np",
        0xC => "l",
        0xD => "ge",
        0xE => "le",
        _ => "g",
    }
}

/// Mnemonic for the opcode byte(s), skipping prefixes. Falls back to a
/// generic family name for instructions the subset treats generically.
fn mnemonic(bytes: &[u8], decoded: &Decoded, pc: u64) -> String {
    // Skip prefixes the same way the decoder does.
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        let legacy = matches!(
            b,
            0xF0 | 0xF2 | 0xF3 | 0x2E | 0x36 | 0x3E | 0x26 | 0x64 | 0x65 | 0x66 | 0x67
        );
        if legacy || (0x40..=0x4F).contains(&b) {
            i += 1;
        } else {
            break;
        }
    }
    let op = bytes.get(i).copied().unwrap_or(0);

    if let InsnKind::Branch(b) = decoded.kind {
        let target = b
            .target(pc, decoded.len)
            .map(|t| format!("{t:#x}"))
            .unwrap_or_else(|| "<dynamic>".to_string());
        return match b.kind {
            BranchKind::DirectUncond => format!("jmp {target}"),
            BranchKind::Call => format!("call {target}"),
            BranchKind::Return => "ret".to_string(),
            BranchKind::IndirectJmp => {
                let modrm = bytes.get(i + 1).copied().unwrap_or(0);
                if modrm >> 6 == 0b11 {
                    format!("jmp {}", REG64[(modrm & 7) as usize])
                } else {
                    "jmp [mem]".to_string()
                }
            }
            BranchKind::IndirectCall => {
                let modrm = bytes.get(i + 1).copied().unwrap_or(0);
                if modrm >> 6 == 0b11 {
                    format!("call {}", REG64[(modrm & 7) as usize])
                } else {
                    "call [mem]".to_string()
                }
            }
            BranchKind::DirectCond => {
                let cc = if op == 0x0F {
                    bytes.get(i + 1).copied().unwrap_or(0) & 0xF
                } else if (0x70..=0x7F).contains(&op) {
                    op & 0xF
                } else {
                    // LOOPcc / JCXZ family
                    return format!("loopcc {target}");
                };
                format!("j{} {target}", cc_name(cc))
            }
        };
    }

    match op {
        0x0F => {
            let op1 = bytes.get(i + 1).copied().unwrap_or(0);
            match op1 {
                0x05 => "syscall".into(),
                0x1F => "nop r/m".into(),
                0x0D | 0x18..=0x1E => "hint-nop".into(),
                0x40..=0x4F => format!("cmov{}", cc_name(op1 & 0xF)),
                0x90..=0x9F => format!("set{}", cc_name(op1 & 0xF)),
                0xA2 => "cpuid".into(),
                0xAF => "imul r, r/m".into(),
                0xB6 | 0xB7 => "movzx".into(),
                0xBE | 0xBF => "movsx".into(),
                0xC8..=0xCF => "bswap".into(),
                0x10 | 0x11 => "movups".into(),
                0x28 | 0x29 => "movaps".into(),
                0x38 => "sse-0f38".into(),
                0x3A => "sse-0f3a imm8".into(),
                _ => "sse/sys op".into(),
            }
        }
        0x00..=0x05 => "add".into(),
        0x08..=0x0D => "or".into(),
        0x10..=0x15 => "adc".into(),
        0x18..=0x1D => "sbb".into(),
        0x20..=0x25 => "and".into(),
        0x28..=0x2D => "sub".into(),
        0x30..=0x35 => "xor".into(),
        0x38..=0x3D => "cmp".into(),
        0x50..=0x57 => format!("push {}", REG64[(op & 7) as usize]),
        0x58..=0x5F => format!("pop {}", REG64[(op & 7) as usize]),
        0x63 => "movsxd".into(),
        0x68 | 0x6A => "push imm".into(),
        0x69 | 0x6B => "imul r, r/m, imm".into(),
        0x6C..=0x6F => "ins/outs".into(),
        0x80 | 0x81 | 0x83 => "alu r/m, imm".into(),
        0x84 | 0x85 => "test".into(),
        0x86 | 0x87 => "xchg".into(),
        0x88..=0x8B => "mov".into(),
        0x8D => "lea".into(),
        0x8F => "pop r/m".into(),
        0x90 => "nop".into(),
        0x91..=0x97 => "xchg rax, r".into(),
        0x98 => "cwde".into(),
        0x99 => "cdq".into(),
        0xA4..=0xA7 => "movs/cmps".into(),
        0xA8 | 0xA9 => "test acc, imm".into(),
        0xAA..=0xAF => "stos/lods/scas".into(),
        0xB0..=0xB7 => "mov r8, imm8".into(),
        0xB8..=0xBF => format!("mov {}, imm", REG64[(op & 7) as usize]),
        0xC0 | 0xC1 | 0xD0..=0xD3 => "shift".into(),
        0xC6 | 0xC7 => "mov r/m, imm".into(),
        0xC8 => "enter".into(),
        0xC9 => "leave".into(),
        0xCC => "int3".into(),
        0xCD => "int imm8".into(),
        0xD7 => "xlat".into(),
        0xD8..=0xDF => "x87 op".into(),
        0xE4..=0xE7 | 0xEC..=0xEF => "in/out".into(),
        0xF4 => "hlt".into(),
        0xF5 => "cmc".into(),
        0xF6 | 0xF7 => "grp3 op".into(),
        0xF8..=0xFD => "flag op".into(),
        0xFE => "inc/dec r/m8".into(),
        0xFF => "grp5 op".into(),
        _ => format!("op {op:#04x}"),
    }
}

/// Disassemble one instruction at `pc`.
///
/// # Errors
///
/// Propagates the decode error for invalid/truncated encodings.
pub fn disasm_one(bytes: &[u8], pc: u64) -> Result<DisasmInsn, DecodeError> {
    let decoded = decode(bytes)?;
    let text = mnemonic(bytes, &decoded, pc);
    Ok(DisasmInsn { pc, decoded, text })
}

/// Disassemble a byte range sequentially from `pc`, stopping at the first
/// undecodable or truncated instruction.
#[must_use]
pub fn disasm_range(bytes: &[u8], pc: u64) -> Vec<DisasmInsn> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        match disasm_one(&bytes[off..], pc + off as u64) {
            Ok(insn) => {
                let len = usize::from(insn.decoded.len);
                out.push(insn);
                off += len;
            }
            Err(_) => break,
        }
    }
    out
}

/// Format a disassembly listing with addresses and byte columns.
#[must_use]
pub fn format_listing(bytes: &[u8], pc: u64) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let mut off = 0usize;
    for insn in disasm_range(bytes, pc) {
        let len = usize::from(insn.decoded.len);
        let hex: Vec<String> = bytes[off..off + len]
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        let _ = writeln!(s, "{:#010x}:  {:<24} {}", insn.pc, hex.join(" "), insn.text);
        off += len;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    #[test]
    fn branch_mnemonics() {
        let mut b = Vec::new();
        encode::jmp_rel32(&mut b, 0x10);
        let d = disasm_one(&b, 0x1000).unwrap();
        assert_eq!(d.text, format!("jmp {:#x}", 0x1000 + 5 + 0x10));

        b.clear();
        encode::jcc_rel8(&mut b, 0x4, -2);
        let d = disasm_one(&b, 0x2000).unwrap();
        assert_eq!(d.text, "je 0x2000");

        b.clear();
        encode::ret(&mut b);
        assert_eq!(disasm_one(&b, 0).unwrap().text, "ret");

        b.clear();
        encode::call_reg(&mut b, encode::Reg::Rbx);
        assert_eq!(disasm_one(&b, 0).unwrap().text, "call rbx");

        b.clear();
        encode::jmp_mem_rip(&mut b, 8);
        assert_eq!(disasm_one(&b, 0).unwrap().text, "jmp [mem]");
    }

    #[test]
    fn nonbranch_mnemonics_cover_push_pop_mov() {
        assert_eq!(disasm_one(&[0x50], 0).unwrap().text, "push rax");
        assert_eq!(disasm_one(&[0x5B], 0).unwrap().text, "pop rbx");
        assert_eq!(
            disasm_one(&[0xB9, 1, 0, 0, 0], 0).unwrap().text,
            "mov rcx, imm"
        );
        assert_eq!(disasm_one(&[0x90], 0).unwrap().text, "nop");
    }

    #[test]
    fn range_disassembly_stops_at_invalid() {
        let mut b = Vec::new();
        encode::nop_exact(&mut b, 3);
        encode::ret(&mut b);
        b.push(0x06); // invalid
        encode::nop_exact(&mut b, 1);
        let insns = disasm_range(&b, 0x100);
        assert_eq!(insns.len(), 2);
        assert_eq!(insns[1].text, "ret");
    }

    #[test]
    fn listing_contains_addresses_and_bytes() {
        let mut b = Vec::new();
        encode::jmp_rel8(&mut b, 4);
        let listing = format_listing(&b, 0x400000);
        assert!(listing.contains("0x00400000"));
        assert!(listing.contains("eb 04"));
        assert!(listing.contains("jmp"));
    }

    #[test]
    fn disasm_agrees_with_decoder_on_generated_code() {
        // Disassembly must never disagree with decode about lengths.
        let mut bytes = Vec::new();
        for sel in 0..512u64 {
            encode::emit_nonbranch(&mut bytes, sel.wrapping_mul(0x9E37_79B9_97F4_A7C1));
        }
        let insns = disasm_range(&bytes, 0);
        let total: usize = insns.iter().map(|i| usize::from(i.decoded.len)).sum();
        assert_eq!(total, bytes.len());
    }
}
